//! Two-phase parallel aggregation (paper Section 4.4, Figure 8).
//!
//! Phase 1 runs as a pipeline sink: each worker pre-aggregates heavy
//! hitters in a small fixed-size thread-local table; when the table fills
//! up on a new key, it is flushed to hash-partitioned overflow buffers
//! (partitioned by the *high* bits of the group hash). Phase 2 is a
//! separate pipeline job whose chunks are the partitions: each worker
//! exclusively aggregates whole partitions into a local table and emits
//! result tuples immediately (cache-friendly handoff).
//!
//! Unlike the join, aggregation only produces output after consuming all
//! input, so partitioning costs nothing in pipelining (Section 4.4's
//! closing remark).

use std::sync::{Arc, OnceLock};

use morsel_core::{Morsel, PipelineJob, ResultSlot, TaskContext};
use morsel_numa::SocketId;
use morsel_storage::{
    AreaSet, Batch, Column, DataType, DictColumn, Dictionary, Schema, StorageArea,
};
use parking_lot::Mutex;

use crate::key::{for_each_row, hash_rows, FxHashMap, FxHashSet, GroupKey, Rows};
use crate::pipeline::SelBatch;
use crate::sink::{AreaSlot, Sink};
use crate::weights;

/// Number of overflow partitions ("more partitions than worker threads",
/// Section 4.4 — 64 matches the paper's largest thread count).
pub const N_PARTITIONS: usize = 64;

/// Pre-aggregation table capacity per worker (fits in L2).
pub const PREAGG_CAPACITY: usize = 4096;

/// An aggregate function over the working batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// `count(*)`.
    Count,
    /// `sum` of an integer (fixed-point) column.
    SumI64(usize),
    /// `sum` of a float column.
    SumF64(usize),
    MinI64(usize),
    MaxI64(usize),
    /// `avg` of an integer column, emitted as `f64`.
    AvgI64(usize),
    /// `count(distinct col)` of an integer column.
    CountDistinctI64(usize),
}

impl AggFn {
    pub fn output_type(&self) -> DataType {
        match self {
            AggFn::Count | AggFn::SumI64(_) | AggFn::MinI64(_) | AggFn::MaxI64(_) => DataType::I64,
            AggFn::SumF64(_) | AggFn::AvgI64(_) => DataType::F64,
            AggFn::CountDistinctI64(_) => DataType::I64,
        }
    }

    fn new_state(&self) -> AccState {
        match self {
            AggFn::Count => AccState::I64(0),
            AggFn::SumI64(_) => AccState::I64(0),
            AggFn::SumF64(_) => AccState::F64(0.0),
            AggFn::MinI64(_) => AccState::I64(i64::MAX),
            AggFn::MaxI64(_) => AccState::I64(i64::MIN),
            AggFn::AvgI64(_) => AccState::Avg(0, 0),
            AggFn::CountDistinctI64(_) => AccState::Set(FxHashSet::default()),
        }
    }

    fn update(&self, state: &mut AccState, batch: &Batch, row: usize) {
        match (self, state) {
            (AggFn::Count, AccState::I64(c)) => *c += 1,
            (AggFn::SumI64(col), AccState::I64(s)) => *s += int_at(batch, *col, row),
            (AggFn::SumF64(col), AccState::F64(s)) => *s += batch.column(*col).as_f64()[row],
            (AggFn::MinI64(col), AccState::I64(m)) => *m = (*m).min(int_at(batch, *col, row)),
            (AggFn::MaxI64(col), AccState::I64(m)) => *m = (*m).max(int_at(batch, *col, row)),
            (AggFn::AvgI64(col), AccState::Avg(s, c)) => {
                *s += int_at(batch, *col, row);
                *c += 1;
            }
            (AggFn::CountDistinctI64(col), AccState::Set(set)) => {
                set.insert(int_at(batch, *col, row));
            }
            (f, s) => panic!("aggregate state mismatch: {f:?} with {s:?}"),
        }
    }

    fn merge(&self, into: &mut AccState, from: &AccState) {
        match (self, into, from) {
            (AggFn::Count | AggFn::SumI64(_), AccState::I64(a), AccState::I64(b)) => *a += b,
            (AggFn::SumF64(_), AccState::F64(a), AccState::F64(b)) => *a += b,
            (AggFn::MinI64(_), AccState::I64(a), AccState::I64(b)) => *a = (*a).min(*b),
            (AggFn::MaxI64(_), AccState::I64(a), AccState::I64(b)) => *a = (*a).max(*b),
            (AggFn::AvgI64(_), AccState::Avg(s, c), AccState::Avg(s2, c2)) => {
                *s += s2;
                *c += c2;
            }
            (AggFn::CountDistinctI64(_), AccState::Set(a), AccState::Set(b)) => {
                a.extend(b.iter().copied());
            }
            (f, a, b) => panic!("cannot merge {f:?}: {a:?} with {b:?}"),
        }
    }

    fn emit(&self, state: &AccState, out: &mut Column) {
        match (self, state, out) {
            (AggFn::Count | AggFn::SumI64(_), AccState::I64(v), Column::I64(col)) => col.push(*v),
            (AggFn::MinI64(_) | AggFn::MaxI64(_), AccState::I64(v), Column::I64(col)) => {
                col.push(*v)
            }
            (AggFn::SumF64(_), AccState::F64(v), Column::F64(col)) => col.push(*v),
            (AggFn::AvgI64(_), AccState::Avg(s, c), Column::F64(col)) => {
                col.push(if *c == 0 { 0.0 } else { *s as f64 / *c as f64 })
            }
            (AggFn::CountDistinctI64(_), AccState::Set(set), Column::I64(col)) => {
                col.push(set.len() as i64)
            }
            (f, s, c) => panic!("cannot emit {f:?} state {s:?} into {:?}", c.data_type()),
        }
    }
}

#[inline]
fn int_at(batch: &Batch, col: usize, row: usize) -> i64 {
    match batch.column(col) {
        Column::I64(v) => v[row],
        Column::I32(v) => i64::from(v[row]),
        other => panic!("expected integer column, got {:?}", other.data_type()),
    }
}

/// A partial aggregate state vector.
#[derive(Debug, Clone)]
pub enum AccState {
    I64(i64),
    F64(f64),
    Avg(i64, i64),
    Set(FxHashSet<i64>),
}

impl AccState {
    #[inline]
    fn as_i64_mut(&mut self) -> &mut i64 {
        match self {
            AccState::I64(v) => v,
            other => panic!("expected I64 state, got {other:?}"),
        }
    }

    #[inline]
    fn as_f64_mut(&mut self) -> &mut f64 {
        match self {
            AccState::F64(v) => v,
            other => panic!("expected F64 state, got {other:?}"),
        }
    }

    #[inline]
    fn as_avg_mut(&mut self) -> (&mut i64, &mut i64) {
        match self {
            AccState::Avg(s, c) => (s, c),
            other => panic!("expected Avg state, got {other:?}"),
        }
    }

    #[inline]
    fn as_set_mut(&mut self) -> &mut FxHashSet<i64> {
        match self {
            AccState::Set(s) => s,
            other => panic!("expected Set state, got {other:?}"),
        }
    }
}

/// Approximate bytes of one spilled entry (key + states), for traffic
/// accounting.
fn entry_bytes(key: &GroupKey, states: &[AccState]) -> u64 {
    let key_bytes = match key {
        GroupKey::I64(_) => 8,
        GroupKey::I64x2(..) => 16,
        GroupKey::Str(s) => 8 + s.len() as u64,
        GroupKey::Composite(parts) => parts.len() as u64 * 12,
    };
    key_bytes + 16 * states.len() as u64
}

/// A columnar run of spilled groups: `keys[i]`'s aggregate states live at
/// `states[i*n_aggs .. (i+1)*n_aggs]`. Flat storage keeps spilling and
/// merging free of per-entry heap allocations.
#[derive(Default)]
struct Fragment {
    keys: Vec<GroupKey>,
    states: Vec<AccState>,
}

impl Fragment {
    fn len(&self) -> usize {
        self.keys.len()
    }

    fn push(&mut self, key: GroupKey, states: impl IntoIterator<Item = AccState>) {
        self.keys.push(key);
        self.states.extend(states);
    }
}

/// Open-addressing pre-aggregation table with inline keys, addressed by a
/// precomputed hash vector (the all-integer-key fast path). Sized at twice
/// the flush capacity so the load factor stays ≤ 0.5. States are stored
/// flat (`slots * n_aggs`), so inserting a group allocates nothing.
struct FlatTable<K> {
    keys: Vec<K>,
    occupied: Vec<bool>,
    states: Vec<AccState>,
    n_aggs: usize,
    mask: usize,
    len: usize,
    /// Distinct keys before a flush is forced.
    capacity: usize,
}

impl<K: Copy + PartialEq + Default> FlatTable<K> {
    fn new(capacity: usize, n_aggs: usize) -> Self {
        let slots = (capacity.max(1) * 2).next_power_of_two();
        FlatTable {
            keys: vec![K::default(); slots],
            occupied: vec![false; slots],
            states: vec![AccState::I64(0); slots * n_aggs],
            n_aggs,
            mask: slots - 1,
            len: 0,
            capacity,
        }
    }

    /// Find or insert `key`; `None` means the table is full on a new key
    /// (the caller must flush and retry).
    #[inline]
    fn upsert(&mut self, hash: u64, key: K, aggs: &[AggFn]) -> Option<usize> {
        let mut slot = (hash as usize) & self.mask;
        loop {
            if self.occupied[slot] {
                if self.keys[slot] == key {
                    return Some(slot);
                }
                slot = (slot + 1) & self.mask;
            } else {
                if self.len >= self.capacity {
                    return None;
                }
                self.occupied[slot] = true;
                self.keys[slot] = key;
                let base = slot * self.n_aggs;
                for (ai, f) in aggs.iter().enumerate() {
                    self.states[base + ai] = f.new_state();
                }
                self.len += 1;
                return Some(slot);
            }
        }
    }

    /// Move every entry into its overflow partition fragment; returns the
    /// spilled bytes.
    fn drain_into(&mut self, to_key: impl Fn(K) -> GroupKey, spill: &mut [Fragment]) -> u64 {
        let mut bytes = 0;
        for slot in 0..self.keys.len() {
            if self.occupied[slot] {
                self.occupied[slot] = false;
                let key = to_key(self.keys[slot]);
                let base = slot * self.n_aggs;
                let states = &mut self.states[base..base + self.n_aggs];
                bytes += entry_bytes(&key, states);
                let frag = &mut spill[partition_of(&key)];
                frag.keys.push(key);
                frag.states.extend(
                    states
                        .iter_mut()
                        .map(|s| std::mem::replace(s, AccState::I64(0))),
                );
            }
        }
        self.len = 0;
        bytes
    }
}

/// Per-worker pre-aggregation state. The mode is picked on the first
/// batch: inline `i64` / `(i64, i64)` keys with the flat table for
/// all-integer group columns, the `GroupKey` hash map otherwise (strings,
/// 3+ columns, or the scalar reference path).
enum PreAgg {
    /// Mode not yet decided (no batch seen).
    Pending,
    Scalar(FxHashMap<GroupKey, Vec<AccState>>),
    /// Scalar (no GROUP BY) aggregation: exactly one group, no hashing.
    Single(Vec<AccState>),
    Int1(FlatTable<i64>),
    Int2(FlatTable<(i64, i64)>),
}

/// Spilled partition fragments of one worker.
struct WorkerAgg {
    table: PreAgg,
    spill: Vec<Fragment>,
}

/// Output of phase 1: per partition, fragments tagged with the node of
/// the worker that produced them. Each partition is consumed exclusively
/// by one phase-2 morsel, which *takes* the fragments (no entry cloning);
/// the mutex only guards that single handoff.
pub struct AggPartitions {
    /// `parts[p]` = list of (node, fragment).
    parts: Vec<Vec<(SocketId, Mutex<Fragment>)>>,
    /// Per group column: the shared dictionary, when that column arrived
    /// dictionary-encoded. Spilled keys for such columns are integer
    /// *codes*; phase 2 emits them into a code column sharing this
    /// dictionary (strings never materialize inside the aggregation).
    group_dicts: Vec<Option<Arc<Dictionary>>>,
}

impl AggPartitions {
    pub fn partition_rows(&self, p: usize) -> usize {
        self.parts[p].iter().map(|(_, e)| e.lock().len()).sum()
    }
}

/// Shared slot between phase 1 and phase 2.
pub type AggSlot = Arc<Mutex<Option<Arc<AggPartitions>>>>;

pub fn agg_slot() -> AggSlot {
    Arc::new(Mutex::new(None))
}

#[inline]
fn partition_of(key: &GroupKey) -> usize {
    (key.hash() >> (64 - N_PARTITIONS.trailing_zeros())) as usize
}

/// Phase-1 sink: thread-local pre-aggregation with overflow partitioning.
pub struct AggPartialSink {
    group_cols: Vec<usize>,
    aggs: Vec<AggFn>,
    workers: Vec<Mutex<WorkerAgg>>,
    worker_nodes: Vec<SocketId>,
    out: AggSlot,
    capacity: usize,
    /// Force the row-at-a-time `GroupKey` path (benches, property tests).
    scalar: bool,
    /// Dictionaries of dictionary-encoded group columns, captured from the
    /// first batch (every batch of one pipeline shares them).
    group_dicts: OnceLock<Vec<Option<Arc<Dictionary>>>>,
    /// Profile slot of the aggregation plan node (credited with spill
    /// fragments).
    prof_slot: Option<u32>,
}

impl AggPartialSink {
    pub fn new(
        group_cols: Vec<usize>,
        aggs: Vec<AggFn>,
        worker_nodes: &[SocketId],
        out: AggSlot,
    ) -> Self {
        Self::with_capacity(group_cols, aggs, worker_nodes, out, PREAGG_CAPACITY)
    }

    pub fn with_capacity(
        group_cols: Vec<usize>,
        aggs: Vec<AggFn>,
        worker_nodes: &[SocketId],
        out: AggSlot,
        capacity: usize,
    ) -> Self {
        AggPartialSink {
            group_cols,
            aggs,
            workers: (0..worker_nodes.len())
                .map(|_| {
                    Mutex::new(WorkerAgg {
                        table: PreAgg::Pending,
                        spill: (0..N_PARTITIONS).map(|_| Fragment::default()).collect(),
                    })
                })
                .collect(),
            worker_nodes: worker_nodes.to_vec(),
            out,
            capacity: capacity.max(1),
            scalar: false,
            group_dicts: OnceLock::new(),
            prof_slot: None,
        }
    }

    /// Use the row-at-a-time reference path even for integer keys.
    pub fn with_scalar_path(mut self, scalar: bool) -> Self {
        self.scalar = scalar;
        self
    }

    /// Credit spill fragments to the given profile slot.
    pub fn with_prof_slot(mut self, slot: Option<u32>) -> Self {
        self.prof_slot = slot;
        self
    }

    /// Pick the pre-aggregation mode for this sink given the first batch.
    /// Dictionary-encoded string group columns count as integer columns —
    /// their codes are the keys — which is what unlocks the flat-table
    /// fast path for TPC-H's string group-bys (Q1 et al.).
    fn make_table(&self, batch: &Batch) -> PreAgg {
        let int_col = |c: usize| {
            matches!(
                batch.column(c),
                Column::I64(_) | Column::I32(_) | Column::Dict(_)
            )
        };
        if self.scalar {
            return PreAgg::Scalar(FxHashMap::default());
        }
        match self.group_cols.as_slice() {
            [] => PreAgg::Single(self.aggs.iter().map(AggFn::new_state).collect()),
            [a] if int_col(*a) => PreAgg::Int1(FlatTable::new(self.capacity, self.aggs.len())),
            [a, b] if int_col(*a) && int_col(*b) => {
                PreAgg::Int2(FlatTable::new(self.capacity, self.aggs.len()))
            }
            _ => PreAgg::Scalar(FxHashMap::default()),
        }
    }

    /// Spill every in-table group to its overflow partition; returns the
    /// spilled bytes.
    fn flush(table: &mut PreAgg, spill: &mut [Fragment]) -> u64 {
        match table {
            PreAgg::Pending => 0,
            PreAgg::Scalar(map) => {
                let mut bytes = 0;
                for (key, states) in map.drain() {
                    bytes += entry_bytes(&key, &states);
                    spill[partition_of(&key)].push(key, states);
                }
                bytes
            }
            // The one-group key mirrors `GroupKey::extract` over no
            // columns, so partition routing agrees with the scalar path.
            PreAgg::Single(states) => {
                let key = GroupKey::I64(0);
                let states = std::mem::take(states);
                let bytes = entry_bytes(&key, &states);
                spill[partition_of(&key)].push(key, states);
                bytes
            }
            PreAgg::Int1(t) => t.drain_into(GroupKey::I64, spill),
            PreAgg::Int2(t) => t.drain_into(|(a, b)| GroupKey::I64x2(a, b), spill),
        }
    }

    /// Reference path: per-row `GroupKey` extraction into the hash map.
    fn consume_scalar(
        &self,
        map: &mut FxHashMap<GroupKey, Vec<AccState>>,
        spill: &mut [Fragment],
        batch: &Batch,
        rows: Rows<'_>,
    ) -> u64 {
        let mut spilled = 0u64;
        let n = rows.len();
        for i in 0..n {
            let row = rows.at(i);
            let key = GroupKey::extract(batch, &self.group_cols, row);
            if !map.contains_key(&key) && map.len() >= self.capacity {
                // Pre-aggregation table full on a new key: flush it to the
                // overflow partitions (paper Figure 8, "spill when ht
                // becomes full").
                let mut t = PreAgg::Scalar(std::mem::take(map));
                spilled += Self::flush(&mut t, spill);
                if let PreAgg::Scalar(m) = t {
                    *map = m;
                }
            }
            let entry = map
                .entry(key)
                .or_insert_with(|| self.aggs.iter().map(AggFn::new_state).collect());
            for (f, st) in self.aggs.iter().zip(entry.iter_mut()) {
                f.update(st, batch, row);
            }
        }
        spilled
    }

    /// Fast path: columnar key extraction + precomputed hash vector into
    /// the flat table, then one typed update pass per aggregate over each
    /// flush-free segment.
    #[allow(clippy::too_many_arguments)] // kernel plumbing: table + spill + batch views
    fn consume_fast<K: Copy + PartialEq + Default>(
        &self,
        table: &mut FlatTable<K>,
        spill: &mut [Fragment],
        batch: &Batch,
        rows: Rows<'_>,
        keys: &[K],
        hashes: &[u64],
        to_key: impl Fn(K) -> GroupKey + Copy,
    ) -> u64 {
        let n = keys.len();
        let n_aggs = self.aggs.len();
        let mut slot_of: Vec<u32> = Vec::with_capacity(n);
        let mut seg_start = 0;
        let mut spilled = 0u64;
        let mut i = 0;
        while i < n {
            match table.upsert(hashes[i], keys[i], &self.aggs) {
                Some(slot) => {
                    slot_of.push(slot as u32);
                    i += 1;
                }
                None => {
                    // Full on a new key: update the states for the segment
                    // seen so far (their slots are still valid), then spill
                    // the whole table and continue with an empty one.
                    Self::apply_updates(
                        &self.aggs,
                        batch,
                        rows.slice(seg_start..i),
                        &slot_of,
                        &mut table.states,
                        n_aggs,
                    );
                    slot_of.clear();
                    spilled += table.drain_into(to_key, spill);
                    seg_start = i;
                }
            }
        }
        Self::apply_updates(
            &self.aggs,
            batch,
            rows.slice(seg_start..n),
            &slot_of,
            &mut table.states,
            n_aggs,
        );
        spilled
    }

    /// One typed pass per aggregate function over a segment: the column
    /// is matched once, the inner loop only indexes slices and states.
    fn apply_updates(
        aggs: &[AggFn],
        batch: &Batch,
        seg_rows: Rows<'_>,
        slot_of: &[u32],
        states: &mut [AccState],
        n_aggs: usize,
    ) {
        debug_assert_eq!(seg_rows.len(), slot_of.len());
        for (ai, f) in aggs.iter().enumerate() {
            match f {
                AggFn::Count => {
                    for &slot in slot_of {
                        *states[slot as usize * n_aggs + ai].as_i64_mut() += 1;
                    }
                }
                AggFn::SumI64(c) => match batch.column(*c) {
                    Column::I64(v) => for_each_row!(seg_rows, i, r, {
                        *states[slot_of[i] as usize * n_aggs + ai].as_i64_mut() += v[r];
                    }),
                    Column::I32(v) => for_each_row!(seg_rows, i, r, {
                        *states[slot_of[i] as usize * n_aggs + ai].as_i64_mut() += i64::from(v[r]);
                    }),
                    other => panic!("expected integer column, got {:?}", other.data_type()),
                },
                AggFn::SumF64(c) => {
                    let v = batch.column(*c).as_f64();
                    for_each_row!(seg_rows, i, r, {
                        *states[slot_of[i] as usize * n_aggs + ai].as_f64_mut() += v[r];
                    });
                }
                AggFn::MinI64(c) => match batch.column(*c) {
                    Column::I64(v) => for_each_row!(seg_rows, i, r, {
                        let m = states[slot_of[i] as usize * n_aggs + ai].as_i64_mut();
                        *m = (*m).min(v[r]);
                    }),
                    Column::I32(v) => for_each_row!(seg_rows, i, r, {
                        let m = states[slot_of[i] as usize * n_aggs + ai].as_i64_mut();
                        *m = (*m).min(i64::from(v[r]));
                    }),
                    other => panic!("expected integer column, got {:?}", other.data_type()),
                },
                AggFn::MaxI64(c) => match batch.column(*c) {
                    Column::I64(v) => for_each_row!(seg_rows, i, r, {
                        let m = states[slot_of[i] as usize * n_aggs + ai].as_i64_mut();
                        *m = (*m).max(v[r]);
                    }),
                    Column::I32(v) => for_each_row!(seg_rows, i, r, {
                        let m = states[slot_of[i] as usize * n_aggs + ai].as_i64_mut();
                        *m = (*m).max(i64::from(v[r]));
                    }),
                    other => panic!("expected integer column, got {:?}", other.data_type()),
                },
                AggFn::AvgI64(c) => match batch.column(*c) {
                    Column::I64(v) => for_each_row!(seg_rows, i, r, {
                        let (s, cnt) = states[slot_of[i] as usize * n_aggs + ai].as_avg_mut();
                        *s += v[r];
                        *cnt += 1;
                    }),
                    Column::I32(v) => for_each_row!(seg_rows, i, r, {
                        let (s, cnt) = states[slot_of[i] as usize * n_aggs + ai].as_avg_mut();
                        *s += i64::from(v[r]);
                        *cnt += 1;
                    }),
                    other => panic!("expected integer column, got {:?}", other.data_type()),
                },
                AggFn::CountDistinctI64(c) => match batch.column(*c) {
                    Column::I64(v) => for_each_row!(seg_rows, i, r, {
                        states[slot_of[i] as usize * n_aggs + ai]
                            .as_set_mut()
                            .insert(v[r]);
                    }),
                    Column::I32(v) => for_each_row!(seg_rows, i, r, {
                        states[slot_of[i] as usize * n_aggs + ai]
                            .as_set_mut()
                            .insert(i64::from(v[r]));
                    }),
                    other => panic!("expected integer column, got {:?}", other.data_type()),
                },
            }
        }
    }
}

/// Extract an integer group column as widened `i64` keys. Dictionary
/// columns contribute their codes — a valid key domain because all
/// fragments of one aggregation share the dictionary.
fn extract_i64_keys(col: &Column, rows: Rows<'_>) -> Vec<i64> {
    let mut out = vec![0i64; rows.len()];
    match col {
        Column::I64(v) => for_each_row!(rows, i, r, out[i] = v[r]),
        Column::I32(v) => for_each_row!(rows, i, r, out[i] = i64::from(v[r])),
        Column::Dict(d) => {
            let codes = d.codes();
            for_each_row!(rows, i, r, out[i] = i64::from(codes[r]))
        }
        other => panic!("expected integer group column, got {:?}", other.data_type()),
    }
    out
}

impl Sink for AggPartialSink {
    fn consume(&self, ctx: &mut TaskContext<'_>, input: SelBatch) {
        if input.is_empty() {
            return;
        }
        let mut w = self.workers[ctx.worker].lock();
        let rows = input.rows();
        ctx.cpu(
            rows as u64,
            weights::HASH_NS + weights::AGG_UPDATE_NS * self.aggs.len() as f64,
        );
        if matches!(w.table, PreAgg::Pending) {
            w.table = self.make_table(&input.batch);
        }
        self.group_dicts.get_or_init(|| {
            self.group_cols
                .iter()
                .map(|&c| {
                    input
                        .batch
                        .column(c)
                        .as_dict()
                        .map(|d| Arc::clone(d.dict()))
                })
                .collect()
        });
        let WorkerAgg { table, spill } = &mut *w;
        let batch = &input.batch;
        let row_ref = input.rows_ref();
        let spilled_bytes = match table {
            PreAgg::Pending => unreachable!("mode decided above"),
            PreAgg::Scalar(map) => self.consume_scalar(map, spill, batch, row_ref),
            PreAgg::Single(states) => {
                // One group: typed update passes straight into the single
                // state vector, no key extraction or lookup at all.
                let slot_of = vec![0u32; rows];
                let n_aggs = self.aggs.len();
                Self::apply_updates(&self.aggs, batch, row_ref, &slot_of, states, n_aggs);
                0
            }
            PreAgg::Int1(t) => {
                let keys = extract_i64_keys(batch.column(self.group_cols[0]), row_ref);
                let hashes = hash_rows(batch, &self.group_cols, row_ref);
                self.consume_fast(t, spill, batch, row_ref, &keys, &hashes, GroupKey::I64)
            }
            PreAgg::Int2(t) => {
                let a = extract_i64_keys(batch.column(self.group_cols[0]), row_ref);
                let b = extract_i64_keys(batch.column(self.group_cols[1]), row_ref);
                let keys: Vec<(i64, i64)> = a.into_iter().zip(b).collect();
                let hashes = hash_rows(batch, &self.group_cols, row_ref);
                self.consume_fast(t, spill, batch, row_ref, &keys, &hashes, |(x, y)| {
                    GroupKey::I64x2(x, y)
                })
            }
        };
        if spilled_bytes > 0 {
            if let Some(slot) = self.prof_slot {
                ctx.prof_fragments(slot, 1);
            }
            // Spill fragments are the unbounded part of pre-aggregation
            // state (the pre-agg tables themselves are capacity-bounded):
            // charge them to the query's budget. Accounting trails the
            // append by one morsel at most — refusal fails the query and
            // execution stops at this morsel boundary.
            let _ = ctx.try_reserve(spilled_bytes);
            ctx.write(self.worker_nodes[ctx.worker], spilled_bytes);
        }
    }

    fn finish(&self, ctx: &mut TaskContext<'_>) {
        let mut parts: Vec<Vec<(SocketId, Mutex<Fragment>)>> =
            (0..N_PARTITIONS).map(|_| Vec::new()).collect();
        let mut bytes = 0;
        for (wi, w) in self.workers.iter().enumerate() {
            let mut w = w.lock();
            let WorkerAgg { table, spill } = &mut *w;
            bytes += Self::flush(table, spill);
            let node = self.worker_nodes[wi];
            for (p, frag) in w.spill.iter_mut().enumerate() {
                if frag.len() > 0 {
                    parts[p].push((node, Mutex::new(std::mem::take(frag))));
                }
            }
        }
        // The final flush converts bounded pre-agg tables into spill
        // fragments that outlive this pipeline; account for them.
        let _ = ctx.try_reserve(bytes);
        ctx.write(ctx.socket, bytes);
        let group_dicts = self
            .group_dicts
            .get()
            .cloned()
            .unwrap_or_else(|| vec![None; self.group_cols.len()]);
        *self.out.lock() = Some(Arc::new(AggPartitions { parts, group_dicts }));
    }
}

/// Phase-2 job: aggregate partitions exclusively, emit result tuples.
pub struct AggMergeJob {
    input: Arc<AggPartitions>,
    aggs: Vec<AggFn>,
    /// Output schema: group columns then aggregate columns.
    schema: Schema,
    areas: Vec<Mutex<StorageArea>>,
    out: AreaSlot,
    result: Option<ResultSlot>,
    /// Scalar (no GROUP BY) aggregation: an empty result is fixed up to
    /// the SQL default row (count = 0, sum = 0, ...).
    scalar_default: Option<Vec<AggFn>>,
    /// Profile slot of the aggregation plan node (credited with emitted
    /// groups and merge wall time).
    prof_slot: Option<u32>,
}

impl AggMergeJob {
    pub fn new(
        input: Arc<AggPartitions>,
        aggs: Vec<AggFn>,
        schema: Schema,
        worker_nodes: &[SocketId],
        out: AreaSlot,
        result: Option<ResultSlot>,
    ) -> Self {
        let types = schema.data_types();
        AggMergeJob {
            input,
            aggs,
            schema,
            areas: worker_nodes
                .iter()
                .map(|&n| Mutex::new(StorageArea::new(n, &types)))
                .collect(),
            out,
            result,
            scalar_default: None,
            prof_slot: None,
        }
    }

    /// Credit emitted groups and merge wall time to the given profile
    /// slot.
    pub fn with_prof_slot(mut self, slot: Option<u32>) -> Self {
        self.prof_slot = slot;
        self
    }

    /// Configure the SQL scalar-aggregation default row (only meaningful
    /// when there are no group columns).
    pub fn with_scalar_default(mut self, scalar: bool, aggs: Vec<AggFn>) -> Self {
        if scalar {
            self.scalar_default = Some(aggs);
        }
        self
    }

    /// Chunk metadata for the dispatcher: one chunk per partition.
    pub fn chunk_meta(input: &AggPartitions, sockets: u16) -> Vec<morsel_core::ChunkMeta> {
        (0..N_PARTITIONS)
            .map(|p| morsel_core::ChunkMeta {
                node: SocketId((p % sockets as usize) as u16),
                rows: input.partition_rows(p),
            })
            .collect()
    }
}

impl PipelineJob for AggMergeJob {
    fn run_morsel(&self, ctx: &mut TaskContext<'_>, morsel: Morsel) {
        // One morsel = one whole partition (the dispatcher is configured
        // with an unbounded morsel size for this job).
        let prof = (ctx.profiling() && self.prof_slot.is_some()).then(std::time::Instant::now);
        let p = morsel.chunk;
        let fragments = &self.input.parts[p];
        let n_aggs = self.aggs.len();
        // Slot map + flat state storage: each distinct group gets a stride
        // of `n_aggs` states in `flat`; the map only holds the slot.
        let mut table: FxHashMap<GroupKey, u32> = FxHashMap::default();
        let mut flat: Vec<AccState> = Vec::new();
        let mut entries = 0u64;
        for (node, frag) in fragments {
            // Exclusive consumption: take the fragment and move its
            // entries into the table (first occurrence of a group needs no
            // clone of key or states).
            let frag = std::mem::take(&mut *frag.lock());
            let bytes: u64 = frag
                .keys
                .iter()
                .zip(frag.states.chunks_exact(n_aggs))
                .map(|(k, s)| entry_bytes(k, s))
                .sum();
            ctx.read(*node, bytes);
            entries += frag.len() as u64;
            let mut states = frag.states.into_iter();
            for key in frag.keys {
                match table.entry(key) {
                    std::collections::hash_map::Entry::Occupied(o) => {
                        let base = *o.get() as usize * n_aggs;
                        for (ai, f) in self.aggs.iter().enumerate() {
                            let b = states.next().expect("fragment state stride");
                            f.merge(&mut flat[base + ai], &b);
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert((flat.len() / n_aggs) as u32);
                        flat.extend(states.by_ref().take(n_aggs));
                    }
                }
            }
        }
        ctx.cpu(entries, weights::AGG_MERGE_NS * self.aggs.len() as f64);

        // Emit: group key columns then aggregate columns, straight into
        // the worker's local area.
        let n_groups = table.len();
        if let (Some(slot), Some(t0)) = (self.prof_slot, prof) {
            // The merged groups of this partition are the aggregation's
            // output rows (each partition is consumed exactly once);
            // `rows_in` is credited at the phase-1 sink, not here.
            ctx.prof_rows_out(slot, n_groups as u64);
            ctx.prof_wall_ns(slot, t0.elapsed().as_nanos() as u64);
        }
        if n_groups == 0 {
            return;
        }
        let types = self.schema.data_types();
        let n_group_cols = types.len() - self.aggs.len();
        // Group columns that arrived dictionary-encoded emit code columns
        // sharing the pipeline's dictionary; everything else by type.
        let mut cols: Vec<Column> = types
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                if i < n_group_cols {
                    if let Some(Some(dict)) = self.input.group_dicts.get(i) {
                        return Column::Dict(DictColumn::with_capacity(Arc::clone(dict), n_groups));
                    }
                }
                Column::with_capacity(t, n_groups)
            })
            .collect();
        for (key, slot) in &table {
            if n_group_cols > 0 {
                key.push_into(&mut cols[..n_group_cols]);
            }
            let base = *slot as usize * n_aggs;
            for (ai, (f, col)) in self
                .aggs
                .iter()
                .zip(cols[n_group_cols..].iter_mut())
                .enumerate()
            {
                f.emit(&flat[base + ai], col);
            }
        }
        let batch = Batch::from_columns(cols);
        // The merged partition's result rows are retained in the worker
        // area until the next stage consumes them.
        if ctx.try_reserve(batch.total_bytes()).is_err() {
            return;
        }
        let mut area = self.areas[ctx.worker].lock();
        ctx.write(area.node(), batch.total_bytes());
        area.data_mut().extend_from(&batch);
    }

    fn finish(&self, ctx: &mut TaskContext<'_>) {
        let areas: Vec<StorageArea> = self
            .areas
            .iter()
            .map(|a| {
                let mut guard = a.lock();
                let node = guard.node();
                std::mem::replace(&mut *guard, StorageArea::new(node, &[]))
            })
            .collect();
        let mut set = AreaSet::new(self.schema.clone(), areas).prune_empty();
        if set.total_rows() == 0 {
            if let Some(aggs) = &self.scalar_default {
                let types = self.schema.data_types();
                let mut area = StorageArea::new(SocketId(0), &types);
                area.data_mut().push_row(scalar_default_row(aggs));
                set = AreaSet::new(self.schema.clone(), vec![area]);
                // The synthesized default row is an output row too.
                if let Some(slot) = self.prof_slot {
                    ctx.prof_rows_out(slot, 1);
                }
            }
        }
        if let Some(result) = &self.result {
            // Late materialization: group-key codes decode to strings only
            // at the query-result boundary.
            *result.lock() = Some(set.gather().decoded());
        }
        *self.out.lock() = Some(Arc::new(set));
        // Merge done: the aggregate's output cardinality is now final.
        if let Some(slot) = self.prof_slot {
            ctx.prof_breaker_done(slot);
        }
    }
}

/// A scalar (no GROUP BY) aggregation always produces exactly one row,
/// even over empty input. `ensure_scalar_row` fixes up the gathered result
/// (SQL semantics: `select count(*) from empty` returns 0).
pub fn scalar_default_row(aggs: &[AggFn]) -> Vec<morsel_storage::Value> {
    aggs.iter()
        .map(|f| match f {
            AggFn::Count | AggFn::CountDistinctI64(_) => morsel_storage::Value::I64(0),
            AggFn::SumI64(_) => morsel_storage::Value::I64(0),
            AggFn::MinI64(_) => morsel_storage::Value::I64(i64::MAX),
            AggFn::MaxI64(_) => morsel_storage::Value::I64(i64::MIN),
            AggFn::SumF64(_) | AggFn::AvgI64(_) => morsel_storage::Value::F64(0.0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::area_slot;
    use morsel_core::{result_slot, ExecEnv};
    use morsel_numa::Topology;

    fn env() -> ExecEnv {
        ExecEnv::new(Topology::nehalem_ex())
    }

    /// Run both phases single-threaded over the given batches.
    fn run_agg(
        group_cols: Vec<usize>,
        aggs: Vec<AggFn>,
        schema: Schema,
        batches: Vec<Batch>,
        capacity: usize,
    ) -> Batch {
        let env = env();
        let nodes = env.worker_sockets(2);
        let slot = agg_slot();
        let sink =
            AggPartialSink::with_capacity(group_cols, aggs.clone(), &nodes, slot.clone(), capacity);
        let mut ctx = TaskContext::new(&env, 0);
        for b in batches {
            sink.consume(&mut ctx, crate::pipeline::SelBatch::dense(b));
        }
        sink.finish(&mut ctx);
        let parts = slot.lock().take().unwrap();
        let out = area_slot();
        let result = result_slot();
        let job = AggMergeJob::new(
            parts.clone(),
            aggs,
            schema,
            &nodes,
            out,
            Some(result.clone()),
        );
        for p in 0..N_PARTITIONS {
            if parts.partition_rows(p) > 0 {
                job.run_morsel(
                    &mut ctx,
                    Morsel {
                        chunk: p,
                        range: 0..parts.partition_rows(p),
                    },
                );
            }
        }
        job.finish(&mut ctx);
        let batch = result.lock().take().unwrap();
        batch
    }

    fn sorted_by_key(b: &Batch) -> Vec<Vec<morsel_storage::Value>> {
        let mut rows: Vec<Vec<morsel_storage::Value>> = (0..b.rows()).map(|i| b.row(i)).collect();
        rows.sort_by_key(|r| r[0].as_i64());
        rows
    }

    #[test]
    fn grouped_sum_count_min_max_avg() {
        let batch = Batch::from_columns(vec![
            Column::I64(vec![1, 2, 1, 2, 1]),
            Column::I64(vec![10, 20, 30, 40, 50]),
        ]);
        let schema = Schema::new(vec![
            ("g", DataType::I64),
            ("cnt", DataType::I64),
            ("sum", DataType::I64),
            ("min", DataType::I64),
            ("max", DataType::I64),
            ("avg", DataType::F64),
        ]);
        let out = run_agg(
            vec![0],
            vec![
                AggFn::Count,
                AggFn::SumI64(1),
                AggFn::MinI64(1),
                AggFn::MaxI64(1),
                AggFn::AvgI64(1),
            ],
            schema,
            vec![batch],
            PREAGG_CAPACITY,
        );
        let rows = sorted_by_key(&out);
        assert_eq!(rows.len(), 2);
        use morsel_storage::Value as V;
        assert_eq!(
            rows[0],
            vec![
                V::I64(1),
                V::I64(3),
                V::I64(90),
                V::I64(10),
                V::I64(50),
                V::F64(30.0)
            ]
        );
        assert_eq!(
            rows[1],
            vec![
                V::I64(2),
                V::I64(2),
                V::I64(60),
                V::I64(20),
                V::I64(40),
                V::F64(30.0)
            ]
        );
    }

    #[test]
    fn spilling_matches_in_cache_results() {
        // Many distinct groups with a tiny pre-agg capacity: the result
        // must be identical to the roomy-capacity run.
        let n = 10_000i64;
        let batch = Batch::from_columns(vec![
            Column::I64((0..n).map(|x| x % 1000).collect()),
            Column::I64((0..n).collect()),
        ]);
        let schema = Schema::new(vec![("g", DataType::I64), ("sum", DataType::I64)]);
        let roomy = run_agg(
            vec![0],
            vec![AggFn::SumI64(1)],
            schema.clone(),
            vec![batch.clone()],
            PREAGG_CAPACITY,
        );
        let tiny = run_agg(vec![0], vec![AggFn::SumI64(1)], schema, vec![batch], 16);
        assert_eq!(sorted_by_key(&roomy), sorted_by_key(&tiny));
        assert_eq!(roomy.rows(), 1000);
    }

    #[test]
    fn scalar_aggregation_single_group() {
        let batch = Batch::from_columns(vec![Column::I64(vec![5, 7, 9])]);
        let schema = Schema::new(vec![("cnt", DataType::I64), ("sum", DataType::I64)]);
        let out = run_agg(
            vec![],
            vec![AggFn::Count, AggFn::SumI64(0)],
            schema,
            vec![batch],
            PREAGG_CAPACITY,
        );
        assert_eq!(out.rows(), 1);
        assert_eq!(
            out.row(0),
            vec![
                morsel_storage::Value::I64(3),
                morsel_storage::Value::I64(21)
            ]
        );
    }

    #[test]
    fn count_distinct() {
        let batch = Batch::from_columns(vec![
            Column::I64(vec![1, 1, 1, 2]),
            Column::I64(vec![7, 7, 8, 9]),
        ]);
        let schema = Schema::new(vec![("g", DataType::I64), ("d", DataType::I64)]);
        let out = run_agg(
            vec![0],
            vec![AggFn::CountDistinctI64(1)],
            schema,
            vec![batch],
            2, // force spills to also exercise distinct-set merging
        );
        let rows = sorted_by_key(&out);
        assert_eq!(rows[0][1].as_i64(), 2); // group 1: {7, 8}
        assert_eq!(rows[1][1].as_i64(), 1); // group 2: {9}
    }

    #[test]
    fn string_group_keys() {
        let batch = Batch::from_columns(vec![
            Column::Str(vec!["x".into(), "y".into(), "x".into()]),
            Column::I64(vec![1, 2, 3]),
        ]);
        let schema = Schema::new(vec![("g", DataType::Str), ("sum", DataType::I64)]);
        let out = run_agg(
            vec![0],
            vec![AggFn::SumI64(1)],
            schema,
            vec![batch],
            PREAGG_CAPACITY,
        );
        let mut rows: Vec<(String, i64)> = (0..out.rows())
            .map(|i| (out.column(0).as_str()[i].clone(), out.column(1).as_i64()[i]))
            .collect();
        rows.sort();
        assert_eq!(rows, vec![("x".into(), 4), ("y".into(), 2)]);
    }

    #[test]
    fn empty_input_produces_no_groups() {
        let schema = Schema::new(vec![("g", DataType::I64), ("sum", DataType::I64)]);
        let out = run_agg(
            vec![0],
            vec![AggFn::SumI64(1)],
            schema,
            vec![],
            PREAGG_CAPACITY,
        );
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn scalar_default_row_values() {
        let row = scalar_default_row(&[AggFn::Count, AggFn::SumF64(0)]);
        assert_eq!(row[0], morsel_storage::Value::I64(0));
        assert_eq!(row[1], morsel_storage::Value::F64(0.0));
    }

    /// Like `run_agg` but forcing the row-at-a-time reference path.
    fn run_agg_scalar(
        group_cols: Vec<usize>,
        aggs: Vec<AggFn>,
        schema: Schema,
        batches: Vec<Batch>,
        capacity: usize,
    ) -> Batch {
        let env = env();
        let nodes = env.worker_sockets(2);
        let slot = agg_slot();
        let sink =
            AggPartialSink::with_capacity(group_cols, aggs.clone(), &nodes, slot.clone(), capacity)
                .with_scalar_path(true);
        let mut ctx = TaskContext::new(&env, 0);
        for b in batches {
            sink.consume(&mut ctx, crate::pipeline::SelBatch::dense(b));
        }
        sink.finish(&mut ctx);
        let parts = slot.lock().take().unwrap();
        let out = area_slot();
        let result = result_slot();
        let job = AggMergeJob::new(
            parts.clone(),
            aggs,
            schema,
            &nodes,
            out,
            Some(result.clone()),
        );
        for p in 0..N_PARTITIONS {
            if parts.partition_rows(p) > 0 {
                job.run_morsel(
                    &mut ctx,
                    Morsel {
                        chunk: p,
                        range: 0..parts.partition_rows(p),
                    },
                );
            }
        }
        job.finish(&mut ctx);
        let batch = result.lock().take().unwrap();
        batch
    }

    #[test]
    fn fast_path_matches_scalar_path() {
        // Single i64 key, all aggregate kinds, through spills (capacity 8).
        let n = 5_000i64;
        let batch = Batch::from_columns(vec![
            Column::I64((0..n).map(|x| (x * 7) % 400).collect()),
            Column::I64((0..n).map(|x| (x % 91) - 45).collect()),
        ]);
        let schema = Schema::new(vec![
            ("g", DataType::I64),
            ("cnt", DataType::I64),
            ("sum", DataType::I64),
            ("min", DataType::I64),
            ("max", DataType::I64),
            ("avg", DataType::F64),
            ("dist", DataType::I64),
        ]);
        let aggs = vec![
            AggFn::Count,
            AggFn::SumI64(1),
            AggFn::MinI64(1),
            AggFn::MaxI64(1),
            AggFn::AvgI64(1),
            AggFn::CountDistinctI64(1),
        ];
        let fast = run_agg(
            vec![0],
            aggs.clone(),
            schema.clone(),
            vec![batch.clone()],
            8,
        );
        let scalar = run_agg_scalar(vec![0], aggs, schema, vec![batch], 8);
        assert_eq!(sorted_by_key(&fast), sorted_by_key(&scalar));
        assert_eq!(fast.rows(), 400);
    }

    #[test]
    fn fast_path_two_int_keys_matches_scalar() {
        let n = 3_000i64;
        let batch = Batch::from_columns(vec![
            Column::I64((0..n).map(|x| x % 13).collect()),
            Column::I32((0..n).map(|x| (x % 7) as i32).collect()),
            Column::I64((0..n).collect()),
        ]);
        let schema = Schema::new(vec![
            ("a", DataType::I64),
            ("b", DataType::I32),
            ("sum", DataType::I64),
        ]);
        let aggs = vec![AggFn::SumI64(2)];
        let fast = run_agg(
            vec![0, 1],
            aggs.clone(),
            schema.clone(),
            vec![batch.clone()],
            16,
        );
        let scalar = run_agg_scalar(vec![0, 1], aggs, schema, vec![batch], 16);
        let key2 = |b: &Batch| {
            let mut rows: Vec<Vec<morsel_storage::Value>> =
                (0..b.rows()).map(|i| b.row(i)).collect();
            rows.sort_by_key(|r| (r[0].as_i64(), r[1].as_i64()));
            rows
        };
        assert_eq!(key2(&fast), key2(&scalar));
        assert_eq!(fast.rows(), 13 * 7);
    }

    #[test]
    fn selection_vector_input_aggregates_selected_rows_only() {
        let batch = Batch::from_columns(vec![
            Column::I64(vec![1, 1, 2, 2, 3]),
            Column::I64(vec![10, 20, 30, 40, 50]),
        ]);
        let env = env();
        let nodes = env.worker_sockets(1);
        let slot = agg_slot();
        let aggs = vec![AggFn::SumI64(1)];
        let sink = AggPartialSink::new(vec![0], aggs.clone(), &nodes, slot.clone());
        let mut ctx = TaskContext::new(&env, 0);
        sink.consume(
            &mut ctx,
            crate::pipeline::SelBatch {
                batch,
                sel: Some(vec![0, 2, 3]),
            },
        );
        sink.finish(&mut ctx);
        let parts = slot.lock().take().unwrap();
        let out = area_slot();
        let result = result_slot();
        let schema = Schema::new(vec![("g", DataType::I64), ("sum", DataType::I64)]);
        let job = AggMergeJob::new(
            parts.clone(),
            aggs,
            schema,
            &nodes,
            out,
            Some(result.clone()),
        );
        for p in 0..N_PARTITIONS {
            if parts.partition_rows(p) > 0 {
                job.run_morsel(
                    &mut ctx,
                    Morsel {
                        chunk: p,
                        range: 0..parts.partition_rows(p),
                    },
                );
            }
        }
        job.finish(&mut ctx);
        let got = sorted_by_key(&result.lock().take().unwrap());
        use morsel_storage::Value as V;
        assert_eq!(
            got,
            vec![vec![V::I64(1), V::I64(10)], vec![V::I64(2), V::I64(70)]]
        );
    }

    #[test]
    fn partition_routing_is_stable() {
        let k = GroupKey::I64(42);
        assert_eq!(partition_of(&k), partition_of(&GroupKey::I64(42)));
        assert!(partition_of(&k) < N_PARTITIONS);
    }
}
