//! Two-phase parallel aggregation (paper Section 4.4, Figure 8).
//!
//! Phase 1 runs as a pipeline sink: each worker pre-aggregates heavy
//! hitters in a small fixed-size thread-local table; when the table fills
//! up on a new key, it is flushed to hash-partitioned overflow buffers
//! (partitioned by the *high* bits of the group hash). Phase 2 is a
//! separate pipeline job whose chunks are the partitions: each worker
//! exclusively aggregates whole partitions into a local table and emits
//! result tuples immediately (cache-friendly handoff).
//!
//! Unlike the join, aggregation only produces output after consuming all
//! input, so partitioning costs nothing in pipelining (Section 4.4's
//! closing remark).

use std::sync::Arc;

use morsel_core::{Morsel, PipelineJob, ResultSlot, TaskContext};
use morsel_numa::SocketId;
use morsel_storage::{AreaSet, Batch, Column, DataType, Schema, StorageArea};
use parking_lot::Mutex;

use crate::key::{FxHashMap, FxHashSet, GroupKey};
use crate::sink::{AreaSlot, Sink};
use crate::weights;

/// Number of overflow partitions ("more partitions than worker threads",
/// Section 4.4 — 64 matches the paper's largest thread count).
pub const N_PARTITIONS: usize = 64;

/// Pre-aggregation table capacity per worker (fits in L2).
pub const PREAGG_CAPACITY: usize = 4096;

/// An aggregate function over the working batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// `count(*)`.
    Count,
    /// `sum` of an integer (fixed-point) column.
    SumI64(usize),
    /// `sum` of a float column.
    SumF64(usize),
    MinI64(usize),
    MaxI64(usize),
    /// `avg` of an integer column, emitted as `f64`.
    AvgI64(usize),
    /// `count(distinct col)` of an integer column.
    CountDistinctI64(usize),
}

impl AggFn {
    pub fn output_type(&self) -> DataType {
        match self {
            AggFn::Count | AggFn::SumI64(_) | AggFn::MinI64(_) | AggFn::MaxI64(_) => DataType::I64,
            AggFn::SumF64(_) | AggFn::AvgI64(_) => DataType::F64,
            AggFn::CountDistinctI64(_) => DataType::I64,
        }
    }

    fn new_state(&self) -> AccState {
        match self {
            AggFn::Count => AccState::I64(0),
            AggFn::SumI64(_) => AccState::I64(0),
            AggFn::SumF64(_) => AccState::F64(0.0),
            AggFn::MinI64(_) => AccState::I64(i64::MAX),
            AggFn::MaxI64(_) => AccState::I64(i64::MIN),
            AggFn::AvgI64(_) => AccState::Avg(0, 0),
            AggFn::CountDistinctI64(_) => AccState::Set(FxHashSet::default()),
        }
    }

    fn update(&self, state: &mut AccState, batch: &Batch, row: usize) {
        match (self, state) {
            (AggFn::Count, AccState::I64(c)) => *c += 1,
            (AggFn::SumI64(col), AccState::I64(s)) => *s += int_at(batch, *col, row),
            (AggFn::SumF64(col), AccState::F64(s)) => *s += batch.column(*col).as_f64()[row],
            (AggFn::MinI64(col), AccState::I64(m)) => *m = (*m).min(int_at(batch, *col, row)),
            (AggFn::MaxI64(col), AccState::I64(m)) => *m = (*m).max(int_at(batch, *col, row)),
            (AggFn::AvgI64(col), AccState::Avg(s, c)) => {
                *s += int_at(batch, *col, row);
                *c += 1;
            }
            (AggFn::CountDistinctI64(col), AccState::Set(set)) => {
                set.insert(int_at(batch, *col, row));
            }
            (f, s) => panic!("aggregate state mismatch: {f:?} with {s:?}"),
        }
    }

    fn merge(&self, into: &mut AccState, from: &AccState) {
        match (self, into, from) {
            (AggFn::Count | AggFn::SumI64(_), AccState::I64(a), AccState::I64(b)) => *a += b,
            (AggFn::SumF64(_), AccState::F64(a), AccState::F64(b)) => *a += b,
            (AggFn::MinI64(_), AccState::I64(a), AccState::I64(b)) => *a = (*a).min(*b),
            (AggFn::MaxI64(_), AccState::I64(a), AccState::I64(b)) => *a = (*a).max(*b),
            (AggFn::AvgI64(_), AccState::Avg(s, c), AccState::Avg(s2, c2)) => {
                *s += s2;
                *c += c2;
            }
            (AggFn::CountDistinctI64(_), AccState::Set(a), AccState::Set(b)) => {
                a.extend(b.iter().copied());
            }
            (f, a, b) => panic!("cannot merge {f:?}: {a:?} with {b:?}"),
        }
    }

    fn emit(&self, state: &AccState, out: &mut Column) {
        match (self, state, out) {
            (AggFn::Count | AggFn::SumI64(_), AccState::I64(v), Column::I64(col)) => col.push(*v),
            (AggFn::MinI64(_) | AggFn::MaxI64(_), AccState::I64(v), Column::I64(col)) => {
                col.push(*v)
            }
            (AggFn::SumF64(_), AccState::F64(v), Column::F64(col)) => col.push(*v),
            (AggFn::AvgI64(_), AccState::Avg(s, c), Column::F64(col)) => {
                col.push(if *c == 0 { 0.0 } else { *s as f64 / *c as f64 })
            }
            (AggFn::CountDistinctI64(_), AccState::Set(set), Column::I64(col)) => {
                col.push(set.len() as i64)
            }
            (f, s, c) => panic!("cannot emit {f:?} state {s:?} into {:?}", c.data_type()),
        }
    }
}

#[inline]
fn int_at(batch: &Batch, col: usize, row: usize) -> i64 {
    match batch.column(col) {
        Column::I64(v) => v[row],
        Column::I32(v) => i64::from(v[row]),
        other => panic!("expected integer column, got {:?}", other.data_type()),
    }
}

/// A partial aggregate state vector.
#[derive(Debug, Clone)]
pub enum AccState {
    I64(i64),
    F64(f64),
    Avg(i64, i64),
    Set(FxHashSet<i64>),
}

/// Approximate bytes of one spilled entry (key + states), for traffic
/// accounting.
fn entry_bytes(key: &GroupKey, states: &[AccState]) -> u64 {
    let key_bytes = match key {
        GroupKey::I64(_) => 8,
        GroupKey::I64x2(..) => 16,
        GroupKey::Str(s) => 8 + s.len() as u64,
        GroupKey::Composite(parts) => parts.len() as u64 * 12,
    };
    key_bytes + 16 * states.len() as u64
}

type Entry = (GroupKey, Vec<AccState>);

/// Spilled partition fragments of one worker.
struct WorkerAgg {
    table: FxHashMap<GroupKey, Vec<AccState>>,
    spill: Vec<Vec<Entry>>,
}

/// Output of phase 1: per partition, fragments tagged with the node of
/// the worker that produced them.
pub struct AggPartitions {
    /// `parts[p]` = list of (node, entries).
    pub parts: Vec<Vec<(SocketId, Vec<Entry>)>>,
}

impl AggPartitions {
    pub fn partition_rows(&self, p: usize) -> usize {
        self.parts[p].iter().map(|(_, e)| e.len()).sum()
    }
}

/// Shared slot between phase 1 and phase 2.
pub type AggSlot = Arc<Mutex<Option<Arc<AggPartitions>>>>;

pub fn agg_slot() -> AggSlot {
    Arc::new(Mutex::new(None))
}

#[inline]
fn partition_of(key: &GroupKey) -> usize {
    (key.hash() >> (64 - N_PARTITIONS.trailing_zeros())) as usize
}

/// Phase-1 sink: thread-local pre-aggregation with overflow partitioning.
pub struct AggPartialSink {
    group_cols: Vec<usize>,
    aggs: Vec<AggFn>,
    workers: Vec<Mutex<WorkerAgg>>,
    worker_nodes: Vec<SocketId>,
    out: AggSlot,
    capacity: usize,
}

impl AggPartialSink {
    pub fn new(
        group_cols: Vec<usize>,
        aggs: Vec<AggFn>,
        worker_nodes: &[SocketId],
        out: AggSlot,
    ) -> Self {
        Self::with_capacity(group_cols, aggs, worker_nodes, out, PREAGG_CAPACITY)
    }

    pub fn with_capacity(
        group_cols: Vec<usize>,
        aggs: Vec<AggFn>,
        worker_nodes: &[SocketId],
        out: AggSlot,
        capacity: usize,
    ) -> Self {
        AggPartialSink {
            group_cols,
            aggs,
            workers: (0..worker_nodes.len())
                .map(|_| {
                    Mutex::new(WorkerAgg {
                        table: FxHashMap::default(),
                        spill: (0..N_PARTITIONS).map(|_| Vec::new()).collect(),
                    })
                })
                .collect(),
            worker_nodes: worker_nodes.to_vec(),
            out,
            capacity: capacity.max(1),
        }
    }

    fn flush(w: &mut WorkerAgg) -> u64 {
        let mut bytes = 0;
        for (key, states) in w.table.drain() {
            bytes += entry_bytes(&key, &states);
            w.spill[partition_of(&key)].push((key, states));
        }
        bytes
    }
}

impl Sink for AggPartialSink {
    fn consume(&self, ctx: &mut TaskContext<'_>, batch: Batch) {
        if batch.is_empty() {
            return;
        }
        let mut w = self.workers[ctx.worker].lock();
        let rows = batch.rows();
        ctx.cpu(rows as u64, weights::HASH_NS + weights::AGG_UPDATE_NS * self.aggs.len() as f64);
        let mut spilled_bytes = 0u64;
        for row in 0..rows {
            let key = GroupKey::extract(&batch, &self.group_cols, row);
            if !w.table.contains_key(&key) && w.table.len() >= self.capacity {
                // Pre-aggregation table full on a new key: flush it to the
                // overflow partitions (paper Figure 8, "spill when ht
                // becomes full").
                spilled_bytes += Self::flush(&mut w);
            }
            let entry = w
                .table
                .entry(key)
                .or_insert_with(|| self.aggs.iter().map(AggFn::new_state).collect());
            for (f, st) in self.aggs.iter().zip(entry.iter_mut()) {
                f.update(st, &batch, row);
            }
        }
        if spilled_bytes > 0 {
            ctx.write(self.worker_nodes[ctx.worker], spilled_bytes);
        }
    }

    fn finish(&self, ctx: &mut TaskContext<'_>) {
        let mut parts: Vec<Vec<(SocketId, Vec<Entry>)>> =
            (0..N_PARTITIONS).map(|_| Vec::new()).collect();
        let mut bytes = 0;
        for (wi, w) in self.workers.iter().enumerate() {
            let mut w = w.lock();
            bytes += Self::flush(&mut w);
            let node = self.worker_nodes[wi];
            for (p, entries) in w.spill.iter_mut().enumerate() {
                if !entries.is_empty() {
                    parts[p].push((node, std::mem::take(entries)));
                }
            }
        }
        ctx.write(ctx.socket, bytes);
        *self.out.lock() = Some(Arc::new(AggPartitions { parts }));
    }
}

/// Phase-2 job: aggregate partitions exclusively, emit result tuples.
pub struct AggMergeJob {
    input: Arc<AggPartitions>,
    aggs: Vec<AggFn>,
    /// Output schema: group columns then aggregate columns.
    schema: Schema,
    areas: Vec<Mutex<StorageArea>>,
    out: AreaSlot,
    result: Option<ResultSlot>,
    /// Scalar (no GROUP BY) aggregation: an empty result is fixed up to
    /// the SQL default row (count = 0, sum = 0, ...).
    scalar_default: Option<Vec<AggFn>>,
}

impl AggMergeJob {
    pub fn new(
        input: Arc<AggPartitions>,
        aggs: Vec<AggFn>,
        schema: Schema,
        worker_nodes: &[SocketId],
        out: AreaSlot,
        result: Option<ResultSlot>,
    ) -> Self {
        let types = schema.data_types();
        AggMergeJob {
            input,
            aggs,
            schema,
            areas: worker_nodes.iter().map(|&n| Mutex::new(StorageArea::new(n, &types))).collect(),
            out,
            result,
            scalar_default: None,
        }
    }

    /// Configure the SQL scalar-aggregation default row (only meaningful
    /// when there are no group columns).
    pub fn with_scalar_default(mut self, scalar: bool, aggs: Vec<AggFn>) -> Self {
        if scalar {
            self.scalar_default = Some(aggs);
        }
        self
    }

    /// Chunk metadata for the dispatcher: one chunk per partition.
    pub fn chunk_meta(input: &AggPartitions, sockets: u16) -> Vec<morsel_core::ChunkMeta> {
        (0..N_PARTITIONS)
            .map(|p| morsel_core::ChunkMeta {
                node: SocketId((p % sockets as usize) as u16),
                rows: input.partition_rows(p),
            })
            .collect()
    }
}

impl PipelineJob for AggMergeJob {
    fn run_morsel(&self, ctx: &mut TaskContext<'_>, morsel: Morsel) {
        // One morsel = one whole partition (the dispatcher is configured
        // with an unbounded morsel size for this job).
        let p = morsel.chunk;
        let fragments = &self.input.parts[p];
        let mut table: FxHashMap<GroupKey, Vec<AccState>> = FxHashMap::default();
        let mut entries = 0u64;
        for (node, frag) in fragments {
            let bytes: u64 = frag.iter().map(|(k, s)| entry_bytes(k, s)).sum();
            ctx.read(*node, bytes);
            entries += frag.len() as u64;
            for (key, states) in frag {
                match table.entry(key.clone()) {
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        for (f, (a, b)) in
                            self.aggs.iter().zip(o.get_mut().iter_mut().zip(states))
                        {
                            f.merge(a, b);
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(states.clone());
                    }
                }
            }
        }
        ctx.cpu(entries, weights::AGG_MERGE_NS * self.aggs.len() as f64);

        // Emit: group key columns then aggregate columns, straight into
        // the worker's local area.
        let n_groups = table.len();
        if n_groups == 0 {
            return;
        }
        let types = self.schema.data_types();
        let n_group_cols = types.len() - self.aggs.len();
        let mut cols: Vec<Column> =
            types.iter().map(|&t| Column::with_capacity(t, n_groups)).collect();
        for (key, states) in &table {
            if n_group_cols > 0 {
                key.push_into(&mut cols[..n_group_cols]);
            }
            for ((f, st), col) in
                self.aggs.iter().zip(states).zip(cols[n_group_cols..].iter_mut())
            {
                f.emit(st, col);
            }
        }
        let batch = Batch::from_columns(cols);
        let mut area = self.areas[ctx.worker].lock();
        ctx.write(area.node(), batch.total_bytes());
        area.data_mut().extend_from(&batch);
    }

    fn finish(&self, _ctx: &mut TaskContext<'_>) {
        let areas: Vec<StorageArea> = self
            .areas
            .iter()
            .map(|a| {
                let mut guard = a.lock();
                let node = guard.node();
                std::mem::replace(&mut *guard, StorageArea::new(node, &[]))
            })
            .collect();
        let mut set = AreaSet::new(self.schema.clone(), areas).prune_empty();
        if set.total_rows() == 0 {
            if let Some(aggs) = &self.scalar_default {
                let types = self.schema.data_types();
                let mut area = StorageArea::new(SocketId(0), &types);
                area.data_mut().push_row(scalar_default_row(aggs));
                set = AreaSet::new(self.schema.clone(), vec![area]);
            }
        }
        if let Some(result) = &self.result {
            *result.lock() = Some(set.gather());
        }
        *self.out.lock() = Some(Arc::new(set));
    }
}

/// A scalar (no GROUP BY) aggregation always produces exactly one row,
/// even over empty input. `ensure_scalar_row` fixes up the gathered result
/// (SQL semantics: `select count(*) from empty` returns 0).
pub fn scalar_default_row(aggs: &[AggFn]) -> Vec<morsel_storage::Value> {
    aggs.iter()
        .map(|f| match f {
            AggFn::Count | AggFn::CountDistinctI64(_) => morsel_storage::Value::I64(0),
            AggFn::SumI64(_) => morsel_storage::Value::I64(0),
            AggFn::MinI64(_) => morsel_storage::Value::I64(i64::MAX),
            AggFn::MaxI64(_) => morsel_storage::Value::I64(i64::MIN),
            AggFn::SumF64(_) | AggFn::AvgI64(_) => morsel_storage::Value::F64(0.0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use morsel_core::{result_slot, ExecEnv};
    use morsel_numa::Topology;
    use crate::sink::area_slot;

    fn env() -> ExecEnv {
        ExecEnv::new(Topology::nehalem_ex())
    }

    /// Run both phases single-threaded over the given batches.
    fn run_agg(
        group_cols: Vec<usize>,
        aggs: Vec<AggFn>,
        schema: Schema,
        batches: Vec<Batch>,
        capacity: usize,
    ) -> Batch {
        let env = env();
        let nodes = env.worker_sockets(2);
        let slot = agg_slot();
        let sink = AggPartialSink::with_capacity(group_cols, aggs.clone(), &nodes, slot.clone(), capacity);
        let mut ctx = TaskContext::new(&env, 0);
        for b in batches {
            sink.consume(&mut ctx, b);
        }
        sink.finish(&mut ctx);
        let parts = slot.lock().take().unwrap();
        let out = area_slot();
        let result = result_slot();
        let job = AggMergeJob::new(parts.clone(), aggs, schema, &nodes, out, Some(result.clone()));
        for p in 0..N_PARTITIONS {
            if parts.partition_rows(p) > 0 {
                job.run_morsel(&mut ctx, Morsel { chunk: p, range: 0..parts.partition_rows(p) });
            }
        }
        job.finish(&mut ctx);
        let batch = result.lock().take().unwrap();
        batch
    }

    fn sorted_by_key(b: &Batch) -> Vec<Vec<morsel_storage::Value>> {
        let mut rows: Vec<Vec<morsel_storage::Value>> = (0..b.rows()).map(|i| b.row(i)).collect();
        rows.sort_by_key(|r| r[0].as_i64());
        rows
    }

    #[test]
    fn grouped_sum_count_min_max_avg() {
        let batch = Batch::from_columns(vec![
            Column::I64(vec![1, 2, 1, 2, 1]),
            Column::I64(vec![10, 20, 30, 40, 50]),
        ]);
        let schema = Schema::new(vec![
            ("g", DataType::I64),
            ("cnt", DataType::I64),
            ("sum", DataType::I64),
            ("min", DataType::I64),
            ("max", DataType::I64),
            ("avg", DataType::F64),
        ]);
        let out = run_agg(
            vec![0],
            vec![
                AggFn::Count,
                AggFn::SumI64(1),
                AggFn::MinI64(1),
                AggFn::MaxI64(1),
                AggFn::AvgI64(1),
            ],
            schema,
            vec![batch],
            PREAGG_CAPACITY,
        );
        let rows = sorted_by_key(&out);
        assert_eq!(rows.len(), 2);
        use morsel_storage::Value as V;
        assert_eq!(rows[0], vec![V::I64(1), V::I64(3), V::I64(90), V::I64(10), V::I64(50), V::F64(30.0)]);
        assert_eq!(rows[1], vec![V::I64(2), V::I64(2), V::I64(60), V::I64(20), V::I64(40), V::F64(30.0)]);
    }

    #[test]
    fn spilling_matches_in_cache_results() {
        // Many distinct groups with a tiny pre-agg capacity: the result
        // must be identical to the roomy-capacity run.
        let n = 10_000i64;
        let batch = Batch::from_columns(vec![
            Column::I64((0..n).map(|x| x % 1000).collect()),
            Column::I64((0..n).collect()),
        ]);
        let schema = Schema::new(vec![("g", DataType::I64), ("sum", DataType::I64)]);
        let roomy = run_agg(
            vec![0],
            vec![AggFn::SumI64(1)],
            schema.clone(),
            vec![batch.clone()],
            PREAGG_CAPACITY,
        );
        let tiny = run_agg(vec![0], vec![AggFn::SumI64(1)], schema, vec![batch], 16);
        assert_eq!(sorted_by_key(&roomy), sorted_by_key(&tiny));
        assert_eq!(roomy.rows(), 1000);
    }

    #[test]
    fn scalar_aggregation_single_group() {
        let batch = Batch::from_columns(vec![Column::I64(vec![5, 7, 9])]);
        let schema = Schema::new(vec![("cnt", DataType::I64), ("sum", DataType::I64)]);
        let out = run_agg(
            vec![],
            vec![AggFn::Count, AggFn::SumI64(0)],
            schema,
            vec![batch],
            PREAGG_CAPACITY,
        );
        assert_eq!(out.rows(), 1);
        assert_eq!(out.row(0), vec![morsel_storage::Value::I64(3), morsel_storage::Value::I64(21)]);
    }

    #[test]
    fn count_distinct() {
        let batch = Batch::from_columns(vec![
            Column::I64(vec![1, 1, 1, 2]),
            Column::I64(vec![7, 7, 8, 9]),
        ]);
        let schema = Schema::new(vec![("g", DataType::I64), ("d", DataType::I64)]);
        let out = run_agg(
            vec![0],
            vec![AggFn::CountDistinctI64(1)],
            schema,
            vec![batch],
            2, // force spills to also exercise distinct-set merging
        );
        let rows = sorted_by_key(&out);
        assert_eq!(rows[0][1].as_i64(), 2); // group 1: {7, 8}
        assert_eq!(rows[1][1].as_i64(), 1); // group 2: {9}
    }

    #[test]
    fn string_group_keys() {
        let batch = Batch::from_columns(vec![
            Column::Str(vec!["x".into(), "y".into(), "x".into()]),
            Column::I64(vec![1, 2, 3]),
        ]);
        let schema = Schema::new(vec![("g", DataType::Str), ("sum", DataType::I64)]);
        let out = run_agg(vec![0], vec![AggFn::SumI64(1)], schema, vec![batch], PREAGG_CAPACITY);
        let mut rows: Vec<(String, i64)> = (0..out.rows())
            .map(|i| (out.column(0).as_str()[i].clone(), out.column(1).as_i64()[i]))
            .collect();
        rows.sort();
        assert_eq!(rows, vec![("x".into(), 4), ("y".into(), 2)]);
    }

    #[test]
    fn empty_input_produces_no_groups() {
        let schema = Schema::new(vec![("g", DataType::I64), ("sum", DataType::I64)]);
        let out = run_agg(vec![0], vec![AggFn::SumI64(1)], schema, vec![], PREAGG_CAPACITY);
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn scalar_default_row_values() {
        let row = scalar_default_row(&[AggFn::Count, AggFn::SumF64(0)]);
        assert_eq!(row[0], morsel_storage::Value::I64(0));
        assert_eq!(row[1], morsel_storage::Value::F64(0.0));
    }

    #[test]
    fn partition_routing_is_stable() {
        let k = GroupKey::I64(42);
        assert_eq!(partition_of(&k), partition_of(&GroupKey::I64(42)));
        assert!(partition_of(&k) < N_PARTITIONS);
    }
}
