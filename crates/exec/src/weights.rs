//! CPU cost weights (virtual nanoseconds per tuple) for the simulator.
//!
//! Calibrated to a ~2.3 GHz Nehalem-class core executing JIT-compiled
//! pipeline code: a handful of instructions per tuple per operation,
//! tuned so that single-threaded scans are CPU-bound (as the paper's
//! engine is) and many-core scans approach the node bandwidth limits —
//! this is what lets scan-heavy queries scale past 30x as in Table 1. The
//! absolute values only set the time scale; the *shapes* the benchmarks
//! reproduce (speedup curves, crossovers) depend on the ratios, which
//! follow the paper's qualitative statements (hashing and probing dominate
//! scan/filter; sorting is the most expensive per tuple — Section 4.5).

/// Per tuple, per expression node, for filters and projections.
pub const EXPR_NODE_NS: f64 = 1.0;

/// Per tuple, per column gathered/copied into or out of a working batch.
pub const GATHER_NS: f64 = 0.8;

/// Hashing a key (per tuple).
pub const HASH_NS: f64 = 2.0;

/// Hash-table probe: directory load + tag check (per probe tuple).
pub const PROBE_NS: f64 = 2.5;

/// Per chain link traversed during a probe.
pub const CHAIN_NS: f64 = 2.0;

/// Per produced join match (output row assembly bookkeeping, excl. gather).
pub const MATCH_NS: f64 = 1.5;

/// Lock-free CAS insert into the global hash table (per build tuple).
pub const INSERT_NS: f64 = 4.0;

/// Aggregate update in a hot (cache-resident) pre-aggregation table.
pub const AGG_UPDATE_NS: f64 = 3.0;

/// Aggregate update in a phase-2 partition table (cold).
pub const AGG_MERGE_NS: f64 = 3.5;

/// Per comparison during local sort (~n log n of these per run).
pub const SORT_CMP_NS: f64 = 3.0;

/// Per tuple moved during merge.
pub const MERGE_NS: f64 = 2.5;

/// Per tuple crossing a Volcano exchange operator (the plan-driven
/// baseline's partition/route/copy overhead; Section 6 of the paper
/// discusses why on-the-fly exchange partitioning is not free).
pub const EXCHANGE_NS: f64 = 3.0;

/// Entry size charged per hash-table entry touched (hash + next + loc).
pub const HT_ENTRY_BYTES: u64 = 24;

/// Directory word size.
pub const HT_DIR_BYTES: u64 = 8;
