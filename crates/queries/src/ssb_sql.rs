//! All 13 Star Schema Benchmark queries as SQL text fixtures.
//!
//! Counterpart of [`crate::ssb_logical`]; same dialect notes as
//! [`crate::tpch_sql`]. The date dimension is the catalog table `date`.

pub use crate::ssb_queries::IDS;

/// SQL text of SSB query `id` (e.g. `"2.1"`).
pub fn text(id: &str) -> Option<&'static str> {
    Some(match id {
        "1.1" => include_str!("../sql/ssb/q1_1.sql"),
        "1.2" => include_str!("../sql/ssb/q1_2.sql"),
        "1.3" => include_str!("../sql/ssb/q1_3.sql"),
        "2.1" => include_str!("../sql/ssb/q2_1.sql"),
        "2.2" => include_str!("../sql/ssb/q2_2.sql"),
        "2.3" => include_str!("../sql/ssb/q2_3.sql"),
        "3.1" => include_str!("../sql/ssb/q3_1.sql"),
        "3.2" => include_str!("../sql/ssb/q3_2.sql"),
        "3.3" => include_str!("../sql/ssb/q3_3.sql"),
        "3.4" => include_str!("../sql/ssb/q3_4.sql"),
        "4.1" => include_str!("../sql/ssb/q4_1.sql"),
        "4.2" => include_str!("../sql/ssb/q4_2.sql"),
        "4.3" => include_str!("../sql/ssb/q4_3.sql"),
        _ => return None,
    })
}

/// All fixtures as `(query id, text)` pairs.
pub fn all() -> Vec<(&'static str, &'static str)> {
    IDS.iter().map(|&id| (id, text(id).unwrap())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_ssb_query_has_a_sql_fixture() {
        for &id in &IDS {
            assert!(text(id).is_some(), "SSB Q{id} fixture missing");
        }
        assert!(text("9.9").is_none());
        assert_eq!(all().len(), 13);
    }
}
