//! Helpers shared by the TPC-H and SSB query builders (hand-authored and
//! logical alike). Previously duplicated as private functions inside the
//! per-benchmark modules.

use morsel_exec::expr::{add, col, div, lit, mul, sub, Expr};
use morsel_exec::plan::Plan;
use morsel_storage::date;

/// Day number of a calendar date, as the `i64` the expression layer uses.
pub fn d(y: i32, m: u32, day: u32) -> i64 {
    i64::from(date(y, m, day))
}

/// Append a computed column to a plan, keeping all existing columns.
pub fn append(plan: Plan, name: &str, e: Expr) -> Plan {
    let s = plan.schema();
    let mut project: Vec<(String, Expr)> = (0..s.len())
        .map(|i| (s.name(i).to_owned(), col(i)))
        .collect();
    project.push((name.to_owned(), e));
    Plan::Map {
        input: Box::new(plan),
        project,
    }
}

/// TPC-H `revenue`-style expression: `price * (100 - disc) / 100` in
/// fixed-point cents.
pub fn discounted(price: Expr, disc: Expr) -> Expr {
    div(mul(price, sub(lit(100), disc)), lit(100))
}

/// TPC-H `charge` expression: `disc_price * (100 + tax) / 100`.
pub fn charged(price: Expr, disc: Expr, tax: Expr) -> Expr {
    div(mul(discounted(price, disc), add(lit(100), tax)), lit(100))
}

/// SSB revenue expression: `extendedprice * discount / 100` in cents.
pub fn disc_product(price: Expr, disc: Expr) -> Expr {
    div(mul(price, disc), lit(100))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_helper_matches_storage_dates() {
        assert_eq!(d(1970, 1, 1), 0);
        assert_eq!(d(1970, 1, 2), 1);
        assert!(d(1998, 9, 2) > d(1994, 1, 1));
    }
}
