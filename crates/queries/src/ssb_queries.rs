//! The 13 Star Schema Benchmark queries (Table 3 of the paper).
//!
//! Every query probes the big `lineorder` fact table through one or more
//! small dimension hash tables — the workload where the paper's pipelined
//! single-table join shines (Section 5.5: "All SSB queries join a large
//! fact table with multiple smaller dimension tables").

use morsel_datagen::SsbDb;
use morsel_exec::agg::AggFn;
use morsel_exec::expr::{self, and, between, col, eq, ge, in_str, le, lit, sub};
use morsel_exec::join::JoinKind;
use morsel_exec::plan::Plan;
use morsel_exec::sort::SortKey;

/// Dimension scan helpers.
fn dates(db: &SsbDb, filter: Option<expr::Expr>, cols: &[&str]) -> Plan {
    Plan::scan(db.date_dim.clone(), filter, cols)
}

/// Q1.x: revenue from discount brackets in a date window.
fn q1_template(db: &SsbDb, date_filter: expr::Expr, disc: (i64, i64), qty: expr::Expr) -> Plan {
    let dim = dates(db, Some(date_filter), &["d_datekey"]);
    Plan::scan_project(
        db.lineorder.clone(),
        Some(and(between(col(7), disc.0, disc.1), qty)),
        vec![
            ("lo_orderdate", col(4)),
            ("rev", expr::div(expr::mul(col(6), col(7)), lit(100))),
        ],
    )
    .join_kind(dim, &["lo_orderdate"], &["d_datekey"], &[], JoinKind::Semi)
    .agg(&[], vec![("revenue", AggFn::SumI64(1))])
}

pub fn q1_1(db: &SsbDb) -> Plan {
    q1_template(db, eq(col(1), lit(1993)), (1, 3), expr::lt(col(5), lit(25)))
}

pub fn q1_2(db: &SsbDb) -> Plan {
    q1_template(db, eq(col(2), lit(199401)), (4, 6), between(col(5), 26, 35))
}

pub fn q1_3(db: &SsbDb) -> Plan {
    q1_template(
        db,
        and(eq(col(4), lit(6)), eq(col(1), lit(1994))),
        (5, 7),
        between(col(5), 26, 35),
    )
}

/// Q2.x: revenue by year and brand for a part subset and supplier region.
fn q2_template(db: &SsbDb, part_filter: expr::Expr, region: &str) -> Plan {
    let parts = Plan::scan(
        db.part.clone(),
        Some(part_filter),
        &["p_partkey", "p_brand1"],
    );
    let supp = Plan::scan(
        db.supplier.clone(),
        Some(eq(col(4), expr::lits(region))),
        &["s_suppkey"],
    );
    let dim = dates(db, None, &["d_datekey", "d_year"]);
    Plan::scan(
        db.lineorder.clone(),
        None,
        &["lo_partkey", "lo_suppkey", "lo_orderdate", "lo_revenue"],
    )
    .join(parts, &["lo_partkey"], &["p_partkey"], &["p_brand1"])
    .join_kind(supp, &["lo_suppkey"], &["s_suppkey"], &[], JoinKind::Semi)
    .join(dim, &["lo_orderdate"], &["d_datekey"], &["d_year"])
    .agg(&["d_year", "p_brand1"], vec![("revenue", AggFn::SumI64(3))])
    .sort_by(vec![SortKey::asc(0), SortKey::asc(1)], None)
}

pub fn q2_1(db: &SsbDb) -> Plan {
    q2_template(db, eq(col(3), expr::lits("MFGR#12")), "AMERICA")
}

pub fn q2_2(db: &SsbDb) -> Plan {
    q2_template(
        db,
        and(
            ge(col(4), expr::lits("MFGR#2221")),
            le(col(4), expr::lits("MFGR#2228")),
        ),
        "ASIA",
    )
}

pub fn q2_3(db: &SsbDb) -> Plan {
    q2_template(db, eq(col(4), expr::lits("MFGR#2239")), "EUROPE")
}

/// Q3.x: revenue by customer/supplier geography and year.
fn q3_template(
    db: &SsbDb,
    cust_filter: expr::Expr,
    supp_filter: expr::Expr,
    cust_group: &str,
    supp_group: &str,
    date_filter: Option<expr::Expr>,
) -> Plan {
    let cust = Plan::scan_project(
        db.customer.clone(),
        Some(cust_filter),
        vec![
            ("c_custkey", col(0)),
            ("c_group", col_by_name_cust(cust_group)),
        ],
    );
    let supp = Plan::scan_project(
        db.supplier.clone(),
        Some(supp_filter),
        vec![
            ("s_suppkey", col(0)),
            ("s_group", col_by_name_supp(supp_group)),
        ],
    );
    let dim = dates(db, date_filter, &["d_datekey", "d_year"]);
    Plan::scan(
        db.lineorder.clone(),
        None,
        &["lo_custkey", "lo_suppkey", "lo_orderdate", "lo_revenue"],
    )
    .join(cust, &["lo_custkey"], &["c_custkey"], &["c_group"])
    .join(supp, &["lo_suppkey"], &["s_suppkey"], &["s_group"])
    .join(dim, &["lo_orderdate"], &["d_datekey"], &["d_year"])
    .agg(
        &["c_group", "s_group", "d_year"],
        vec![("revenue", AggFn::SumI64(3))],
    )
    .sort_by(vec![SortKey::asc(2), SortKey::desc(3)], None)
}

// Customer columns: 0 key, 1 name, 2 city, 3 nation, 4 region.
fn col_by_name_cust(name: &str) -> expr::Expr {
    match name {
        "c_city" => col(2),
        "c_nation" => col(3),
        "c_region" => col(4),
        other => panic!("unknown customer group column {other}"),
    }
}

// Supplier columns: 0 key, 1 name, 2 city, 3 nation, 4 region.
fn col_by_name_supp(name: &str) -> expr::Expr {
    match name {
        "s_city" => col(2),
        "s_nation" => col(3),
        "s_region" => col(4),
        other => panic!("unknown supplier group column {other}"),
    }
}

pub fn q3_1(db: &SsbDb) -> Plan {
    q3_template(
        db,
        eq(col(4), expr::lits("ASIA")),
        eq(col(4), expr::lits("ASIA")),
        "c_nation",
        "s_nation",
        Some(between(col(1), 1992, 1997)),
    )
}

pub fn q3_2(db: &SsbDb) -> Plan {
    q3_template(
        db,
        eq(col(3), expr::lits("UNITED STATES")),
        eq(col(3), expr::lits("UNITED STATES")),
        "c_city",
        "s_city",
        Some(between(col(1), 1992, 1997)),
    )
}

pub fn q3_3(db: &SsbDb) -> Plan {
    let cities: [&str; 2] = ["UNITED KI1", "UNITED KI5"];
    q3_template(
        db,
        in_str(col(2), &cities),
        in_str(col(2), &cities),
        "c_city",
        "s_city",
        Some(between(col(1), 1992, 1997)),
    )
}

pub fn q3_4(db: &SsbDb) -> Plan {
    let cities: [&str; 2] = ["UNITED KI1", "UNITED KI5"];
    q3_template(
        db,
        in_str(col(2), &cities),
        in_str(col(2), &cities),
        "c_city",
        "s_city",
        Some(eq(col(3), expr::lits("Dec1997"))),
    )
}

/// Q4.x: profit (revenue - supplycost) drill-down.
pub fn q4_1(db: &SsbDb) -> Plan {
    let cust = Plan::scan(
        db.customer.clone(),
        Some(eq(col(4), expr::lits("AMERICA"))),
        &["c_custkey", "c_nation"],
    );
    let supp = Plan::scan(
        db.supplier.clone(),
        Some(eq(col(4), expr::lits("AMERICA"))),
        &["s_suppkey"],
    );
    let parts = Plan::scan(
        db.part.clone(),
        Some(in_str(col(2), &["MFGR#1", "MFGR#2"])),
        &["p_partkey"],
    );
    let dim = dates(db, None, &["d_datekey", "d_year"]);
    Plan::scan_project(
        db.lineorder.clone(),
        None,
        vec![
            ("lo_custkey", col(1)),
            ("lo_partkey", col(2)),
            ("lo_suppkey", col(3)),
            ("lo_orderdate", col(4)),
            ("profit", sub(col(8), col(9))),
        ],
    )
    .join_kind(supp, &["lo_suppkey"], &["s_suppkey"], &[], JoinKind::Semi)
    .join_kind(parts, &["lo_partkey"], &["p_partkey"], &[], JoinKind::Semi)
    .join(cust, &["lo_custkey"], &["c_custkey"], &["c_nation"])
    .join(dim, &["lo_orderdate"], &["d_datekey"], &["d_year"])
    .agg(&["d_year", "c_nation"], vec![("profit", AggFn::SumI64(4))])
    .sort_by(vec![SortKey::asc(0), SortKey::asc(1)], None)
}

pub fn q4_2(db: &SsbDb) -> Plan {
    let cust = Plan::scan(
        db.customer.clone(),
        Some(eq(col(4), expr::lits("AMERICA"))),
        &["c_custkey"],
    );
    let supp = Plan::scan(
        db.supplier.clone(),
        Some(eq(col(4), expr::lits("AMERICA"))),
        &["s_suppkey", "s_nation"],
    );
    let parts = Plan::scan(
        db.part.clone(),
        Some(in_str(col(2), &["MFGR#1", "MFGR#2"])),
        &["p_partkey", "p_category"],
    );
    let dim = dates(db, Some(in_str_i64_years()), &["d_datekey", "d_year"]);
    Plan::scan_project(
        db.lineorder.clone(),
        None,
        vec![
            ("lo_custkey", col(1)),
            ("lo_partkey", col(2)),
            ("lo_suppkey", col(3)),
            ("lo_orderdate", col(4)),
            ("profit", sub(col(8), col(9))),
        ],
    )
    .join_kind(cust, &["lo_custkey"], &["c_custkey"], &[], JoinKind::Semi)
    .join(supp, &["lo_suppkey"], &["s_suppkey"], &["s_nation"])
    .join(parts, &["lo_partkey"], &["p_partkey"], &["p_category"])
    .join(dim, &["lo_orderdate"], &["d_datekey"], &["d_year"])
    .agg(
        &["d_year", "s_nation", "p_category"],
        vec![("profit", AggFn::SumI64(4))],
    )
    .sort_by(
        vec![SortKey::asc(0), SortKey::asc(1), SortKey::asc(2)],
        None,
    )
}

fn in_str_i64_years() -> expr::Expr {
    expr::in_i64(col(1), vec![1997, 1998])
}

pub fn q4_3(db: &SsbDb) -> Plan {
    let supp = Plan::scan(
        db.supplier.clone(),
        Some(eq(col(3), expr::lits("UNITED STATES"))),
        &["s_suppkey", "s_city"],
    );
    let parts = Plan::scan(
        db.part.clone(),
        Some(eq(col(3), expr::lits("MFGR#14"))),
        &["p_partkey", "p_brand1"],
    );
    let dim = dates(db, Some(in_str_i64_years()), &["d_datekey", "d_year"]);
    Plan::scan_project(
        db.lineorder.clone(),
        None,
        vec![
            ("lo_partkey", col(2)),
            ("lo_suppkey", col(3)),
            ("lo_orderdate", col(4)),
            ("profit", sub(col(8), col(9))),
        ],
    )
    .join(supp, &["lo_suppkey"], &["s_suppkey"], &["s_city"])
    .join(parts, &["lo_partkey"], &["p_partkey"], &["p_brand1"])
    .join(dim, &["lo_orderdate"], &["d_datekey"], &["d_year"])
    .agg(
        &["d_year", "s_city", "p_brand1"],
        vec![("profit", AggFn::SumI64(3))],
    )
    .sort_by(
        vec![SortKey::asc(0), SortKey::asc(1), SortKey::asc(2)],
        None,
    )
}

/// The 13 query ids in Table 3 order.
pub const IDS: [&str; 13] = [
    "1.1", "1.2", "1.3", "2.1", "2.2", "2.3", "3.1", "3.2", "3.3", "3.4", "4.1", "4.2", "4.3",
];

pub fn query(db: &SsbDb, id: &str) -> Plan {
    match id {
        "1.1" => q1_1(db),
        "1.2" => q1_2(db),
        "1.3" => q1_3(db),
        "2.1" => q2_1(db),
        "2.2" => q2_2(db),
        "2.3" => q2_3(db),
        "3.1" => q3_1(db),
        "3.2" => q3_2(db),
        "3.3" => q3_3(db),
        "3.4" => q3_4(db),
        "4.1" => q4_1(db),
        "4.2" => q4_2(db),
        "4.3" => q4_3(db),
        other => panic!("unknown SSB query {other}"),
    }
}

pub fn all(db: &SsbDb) -> Vec<(String, Plan)> {
    IDS.iter()
        .map(|id| (format!("SSB Q{id}"), query(db, id)))
        .collect()
}
