//! Hand-authored physical plans for all 22 TPC-H queries.
//!
//! The paper evaluates execution, not optimization; like its authors we
//! fix the plans (hash joins everywhere, probe side = the larger input,
//! dimension tables built — the "team player" property of Section 4.1).
//! Dates are day numbers, decimals are cents, and arithmetic rescales
//! fixed-point values explicitly.
//!
//! Correlated subqueries are decorrelated the standard way (aggregate +
//! re-join); Q13's left outer join uses the fused count-join
//! ([`JoinKind::Count`]).

use morsel_datagen::TpchDb;
use morsel_exec::agg::AggFn;
use morsel_exec::expr::{
    self, and, between, case, col, div, eq, ge, gt, in_i64, in_str, le, like, lit, litf, lt, mul,
    ne, not, or, prefix, sub, substr, to_f64, year_of,
};
use morsel_exec::join::JoinKind;
use morsel_exec::plan::Plan;
use morsel_exec::sort::SortKey;

use crate::util::{append, charged, d, disc_product, discounted};

/// Q1: pricing summary report.
pub fn q1(db: &TpchDb) -> Plan {
    let l = db.lineitem.clone();
    let p = Plan::scan_project(
        l,
        Some(le(col(10), lit(d(1998, 9, 2)))),
        vec![
            ("l_returnflag", col(8)),
            ("l_linestatus", col(9)),
            ("l_quantity", col(4)),
            ("l_extendedprice", col(5)),
            ("disc_price", discounted(col(5), col(6))),
            ("charge", charged(col(5), col(6), col(7))),
            ("l_discount", col(6)),
        ],
    );
    p.agg(
        &["l_returnflag", "l_linestatus"],
        vec![
            ("sum_qty", AggFn::SumI64(2)),
            ("sum_base_price", AggFn::SumI64(3)),
            ("sum_disc_price", AggFn::SumI64(4)),
            ("sum_charge", AggFn::SumI64(5)),
            ("avg_qty", AggFn::AvgI64(2)),
            ("avg_price", AggFn::AvgI64(3)),
            ("avg_disc", AggFn::AvgI64(6)),
            ("count_order", AggFn::Count),
        ],
    )
    .sort_by(vec![SortKey::asc(0), SortKey::asc(1)], None)
}

/// Q2: minimum cost supplier (EUROPE, size 15, %BRASS).
pub fn q2(db: &TpchDb) -> Plan {
    // European suppliers with their nation name.
    let eu_nations = Plan::scan(
        db.nation.clone(),
        None,
        &["n_nationkey", "n_name", "n_regionkey"],
    )
    .join(
        Plan::scan(
            db.region.clone(),
            Some(eq(col(1), expr::lits("EUROPE"))),
            &["r_regionkey"],
        ),
        &["n_regionkey"],
        &["r_regionkey"],
        &[],
    );
    let eu_supp = Plan::scan(
        db.supplier.clone(),
        None,
        &[
            "s_suppkey",
            "s_name",
            "s_address",
            "s_nationkey",
            "s_phone",
            "s_acctbal",
            "s_comment",
        ],
    )
    .join(eu_nations, &["s_nationkey"], &["n_nationkey"], &["n_name"]);

    // Candidate parts.
    let parts = Plan::scan(
        db.part.clone(),
        Some(and(eq(col(5), lit(15)), like(col(4), "%BRASS"))),
        &["p_partkey", "p_mfgr"],
    );

    // partsupp ⨝ eu_supp ⨝ parts.
    let ps = Plan::scan(
        db.partsupp.clone(),
        None,
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
    )
    .join(
        eu_supp,
        &["ps_suppkey"],
        &["s_suppkey"],
        &[
            "s_name",
            "s_address",
            "s_phone",
            "s_acctbal",
            "s_comment",
            "n_name",
        ],
    )
    .join(parts, &["ps_partkey"], &["p_partkey"], &["p_mfgr"]);

    // min cost per part over the same join (re-computed as a build side).
    let eu_nations2 = Plan::scan(db.nation.clone(), None, &["n_nationkey", "n_regionkey"]).join(
        Plan::scan(
            db.region.clone(),
            Some(eq(col(1), expr::lits("EUROPE"))),
            &["r_regionkey"],
        ),
        &["n_regionkey"],
        &["r_regionkey"],
        &[],
    );
    let eu_supp2 = Plan::scan(db.supplier.clone(), None, &["s_suppkey", "s_nationkey"]).join(
        eu_nations2,
        &["s_nationkey"],
        &["n_nationkey"],
        &[],
    );
    let min_cost = Plan::scan(
        db.partsupp.clone(),
        None,
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
    )
    .join(eu_supp2, &["ps_suppkey"], &["s_suppkey"], &[])
    .agg(&["ps_partkey"], vec![("min_cost", AggFn::MinI64(2))]);

    ps.join(min_cost, &["ps_partkey"], &["ps_partkey"], &["min_cost"])
        .filter(eq(col(2), col(10))) // ps_supplycost == min_cost
        .sort_by(
            vec![
                SortKey::desc(6),
                SortKey::asc(8),
                SortKey::asc(3),
                SortKey::asc(0),
            ],
            Some(100),
        )
}

/// Q3: shipping priority.
pub fn q3(db: &TpchDb) -> Plan {
    let cust = Plan::scan(
        db.customer.clone(),
        Some(eq(col(6), expr::lits("BUILDING"))),
        &["c_custkey"],
    );
    let orders = Plan::scan(
        db.orders.clone(),
        Some(lt(col(4), lit(d(1995, 3, 15)))),
        &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
    )
    .join(cust, &["o_custkey"], &["c_custkey"], &[]);
    Plan::scan_project(
        db.lineitem.clone(),
        Some(gt(col(10), lit(d(1995, 3, 15)))),
        vec![
            ("l_orderkey", col(0)),
            ("revenue", discounted(col(5), col(6))),
        ],
    )
    .join(
        orders,
        &["l_orderkey"],
        &["o_orderkey"],
        &["o_orderdate", "o_shippriority"],
    )
    .agg(
        &["l_orderkey", "o_orderdate", "o_shippriority"],
        vec![("revenue", AggFn::SumI64(1))],
    )
    .sort_by(vec![SortKey::desc(3), SortKey::asc(1)], Some(10))
}

/// Q4: order priority checking (EXISTS -> semi join).
pub fn q4(db: &TpchDb) -> Plan {
    let late_lines = Plan::scan_project(
        db.lineitem.clone(),
        Some(lt(col(11), col(12))), // l_commitdate < l_receiptdate
        vec![("l_orderkey", col(0))],
    );
    Plan::scan(
        db.orders.clone(),
        Some(between(col(4), d(1993, 7, 1), d(1993, 10, 1) - 1)),
        &["o_orderkey", "o_orderpriority"],
    )
    .join_kind(
        late_lines,
        &["o_orderkey"],
        &["l_orderkey"],
        &[],
        JoinKind::Semi,
    )
    .agg(&["o_orderpriority"], vec![("order_count", AggFn::Count)])
    .sort_by(vec![SortKey::asc(0)], None)
}

/// Q5: local supplier volume (ASIA 1994).
pub fn q5(db: &TpchDb) -> Plan {
    let asia_nations = Plan::scan(
        db.nation.clone(),
        None,
        &["n_nationkey", "n_name", "n_regionkey"],
    )
    .join(
        Plan::scan(
            db.region.clone(),
            Some(eq(col(1), expr::lits("ASIA"))),
            &["r_regionkey"],
        ),
        &["n_regionkey"],
        &["r_regionkey"],
        &[],
    );
    let supp = Plan::scan(db.supplier.clone(), None, &["s_suppkey", "s_nationkey"]).join(
        asia_nations,
        &["s_nationkey"],
        &["n_nationkey"],
        &["n_name"],
    );
    let cust = Plan::scan(db.customer.clone(), None, &["c_custkey", "c_nationkey"]);
    let orders = Plan::scan(
        db.orders.clone(),
        Some(between(col(4), d(1994, 1, 1), d(1995, 1, 1) - 1)),
        &["o_orderkey", "o_custkey"],
    )
    .join(cust, &["o_custkey"], &["c_custkey"], &["c_nationkey"]);
    Plan::scan_project(
        db.lineitem.clone(),
        None,
        vec![
            ("l_orderkey", col(0)),
            ("l_suppkey", col(2)),
            ("revenue", discounted(col(5), col(6))),
        ],
    )
    .join(orders, &["l_orderkey"], &["o_orderkey"], &["c_nationkey"])
    .join(
        supp,
        &["l_suppkey"],
        &["s_suppkey"],
        &["s_nationkey", "n_name"],
    )
    .filter(eq(col(3), col(4))) // c_nationkey == s_nationkey
    .agg(&["n_name"], vec![("revenue", AggFn::SumI64(2))])
    .sort_by(vec![SortKey::desc(1)], None)
}

/// Q6: forecasting revenue change (scan only).
pub fn q6(db: &TpchDb) -> Plan {
    Plan::scan_project(
        db.lineitem.clone(),
        Some(and(
            and(
                between(col(10), d(1994, 1, 1), d(1995, 1, 1) - 1),
                between(col(6), 5, 7),
            ),
            lt(col(4), lit(24)),
        )),
        vec![("rev", disc_product(col(5), col(6)))],
    )
    .agg(&[], vec![("revenue", AggFn::SumI64(0))])
}

/// Q7: volume shipping between FRANCE and GERMANY.
pub fn q7(db: &TpchDb) -> Plan {
    let supp = Plan::scan(db.supplier.clone(), None, &["s_suppkey", "s_nationkey"]).join(
        Plan::scan_project(
            db.nation.clone(),
            Some(in_str(col(1), &["FRANCE", "GERMANY"])),
            vec![("n1_key", col(0)), ("supp_nation", col(1))],
        ),
        &["s_nationkey"],
        &["n1_key"],
        &["supp_nation"],
    );
    let cust = Plan::scan(db.customer.clone(), None, &["c_custkey", "c_nationkey"]).join(
        Plan::scan_project(
            db.nation.clone(),
            Some(in_str(col(1), &["FRANCE", "GERMANY"])),
            vec![("n2_key", col(0)), ("cust_nation", col(1))],
        ),
        &["c_nationkey"],
        &["n2_key"],
        &["cust_nation"],
    );
    let orders = Plan::scan(db.orders.clone(), None, &["o_orderkey", "o_custkey"]).join(
        cust,
        &["o_custkey"],
        &["c_custkey"],
        &["cust_nation"],
    );
    Plan::scan_project(
        db.lineitem.clone(),
        Some(between(col(10), d(1995, 1, 1), d(1996, 12, 31))),
        vec![
            ("l_orderkey", col(0)),
            ("l_suppkey", col(2)),
            ("l_year", year_of(col(10))),
            ("volume", discounted(col(5), col(6))),
        ],
    )
    .join(supp, &["l_suppkey"], &["s_suppkey"], &["supp_nation"])
    .join(orders, &["l_orderkey"], &["o_orderkey"], &["cust_nation"])
    .filter(or(
        and(
            eq(col(4), expr::lits("FRANCE")),
            eq(col(5), expr::lits("GERMANY")),
        ),
        and(
            eq(col(4), expr::lits("GERMANY")),
            eq(col(5), expr::lits("FRANCE")),
        ),
    ))
    .agg(
        &["supp_nation", "cust_nation", "l_year"],
        vec![("revenue", AggFn::SumI64(3))],
    )
    .sort_by(
        vec![SortKey::asc(0), SortKey::asc(1), SortKey::asc(2)],
        None,
    )
}

/// Q8: national market share (BRAZIL, AMERICA, ECONOMY ANODIZED STEEL).
pub fn q8(db: &TpchDb) -> Plan {
    let parts = Plan::scan(
        db.part.clone(),
        Some(eq(col(4), expr::lits("ECONOMY ANODIZED STEEL"))),
        &["p_partkey"],
    );
    let supp = Plan::scan(db.supplier.clone(), None, &["s_suppkey", "s_nationkey"]).join(
        Plan::scan_project(
            db.nation.clone(),
            None,
            vec![("nkey", col(0)), ("supp_nation", col(1))],
        ),
        &["s_nationkey"],
        &["nkey"],
        &["supp_nation"],
    );
    let america_cust = Plan::scan(db.customer.clone(), None, &["c_custkey", "c_nationkey"]).join(
        Plan::scan(db.nation.clone(), None, &["n_nationkey", "n_regionkey"]).join(
            Plan::scan(
                db.region.clone(),
                Some(eq(col(1), expr::lits("AMERICA"))),
                &["r_regionkey"],
            ),
            &["n_regionkey"],
            &["r_regionkey"],
            &[],
        ),
        &["c_nationkey"],
        &["n_nationkey"],
        &[],
    );
    let orders = Plan::scan(
        db.orders.clone(),
        Some(between(col(4), d(1995, 1, 1), d(1996, 12, 31))),
        &["o_orderkey", "o_custkey", "o_orderdate"],
    )
    .join(america_cust, &["o_custkey"], &["c_custkey"], &[]);

    Plan::scan_project(
        db.lineitem.clone(),
        None,
        vec![
            ("l_orderkey", col(0)),
            ("l_partkey", col(1)),
            ("l_suppkey", col(2)),
            ("volume", discounted(col(5), col(6))),
        ],
    )
    .join(parts, &["l_partkey"], &["p_partkey"], &[])
    .join(supp, &["l_suppkey"], &["s_suppkey"], &["supp_nation"])
    .join(orders, &["l_orderkey"], &["o_orderkey"], &["o_orderdate"])
    .map(vec![
        ("o_year", year_of(col(5))),
        ("volume", col(3)),
        (
            "brazil_volume",
            case(eq(col(4), expr::lits("BRAZIL")), col(3), lit(0)),
        ),
    ])
    .agg(
        &["o_year"],
        vec![("brazil", AggFn::SumI64(2)), ("total", AggFn::SumI64(1))],
    )
    .map(vec![
        ("o_year", col(0)),
        (
            "mkt_share",
            div(mul(to_f64(col(1)), litf(1.0)), to_f64(col(2))),
        ),
    ])
    .sort_by(vec![SortKey::asc(0)], None)
}

/// Q9: product type profit measure (%green%).
pub fn q9(db: &TpchDb) -> Plan {
    let parts = Plan::scan(
        db.part.clone(),
        Some(like(col(1), "%green%")),
        &["p_partkey"],
    );
    let supp = Plan::scan(db.supplier.clone(), None, &["s_suppkey", "s_nationkey"]).join(
        Plan::scan_project(
            db.nation.clone(),
            None,
            vec![("nkey", col(0)), ("nation", col(1))],
        ),
        &["s_nationkey"],
        &["nkey"],
        &["nation"],
    );
    let ps = Plan::scan(
        db.partsupp.clone(),
        None,
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
    );
    let orders = Plan::scan(db.orders.clone(), None, &["o_orderkey", "o_orderdate"]);

    Plan::scan_project(
        db.lineitem.clone(),
        None,
        vec![
            ("l_orderkey", col(0)),
            ("l_partkey", col(1)),
            ("l_suppkey", col(2)),
            ("l_quantity", col(4)),
            ("disc_rev", discounted(col(5), col(6))),
        ],
    )
    .join(parts, &["l_partkey"], &["p_partkey"], &[])
    .join(
        ps,
        &["l_partkey", "l_suppkey"],
        &["ps_partkey", "ps_suppkey"],
        &["ps_supplycost"],
    )
    .join(supp, &["l_suppkey"], &["s_suppkey"], &["nation"])
    .join(orders, &["l_orderkey"], &["o_orderkey"], &["o_orderdate"])
    .map(vec![
        ("nation", col(6)),
        ("o_year", year_of(col(7))),
        ("amount", sub(col(4), mul(col(5), col(3)))),
    ])
    .agg(
        &["nation", "o_year"],
        vec![("sum_profit", AggFn::SumI64(2))],
    )
    .sort_by(vec![SortKey::asc(0), SortKey::desc(1)], None)
}

/// Q10: returned item reporting (top 20 customers).
pub fn q10(db: &TpchDb) -> Plan {
    let nations = Plan::scan_project(
        db.nation.clone(),
        None,
        vec![("nkey", col(0)), ("n_name", col(1))],
    );
    let cust = Plan::scan(
        db.customer.clone(),
        None,
        &[
            "c_custkey",
            "c_name",
            "c_acctbal",
            "c_phone",
            "c_address",
            "c_comment",
            "c_nationkey",
        ],
    )
    .join(nations, &["c_nationkey"], &["nkey"], &["n_name"]);
    let orders = Plan::scan(
        db.orders.clone(),
        Some(between(col(4), d(1993, 10, 1), d(1994, 1, 1) - 1)),
        &["o_orderkey", "o_custkey"],
    )
    .join(
        cust,
        &["o_custkey"],
        &["c_custkey"],
        &[
            "c_name",
            "c_acctbal",
            "c_phone",
            "c_address",
            "c_comment",
            "n_name",
        ],
    );
    Plan::scan_project(
        db.lineitem.clone(),
        Some(eq(col(8), expr::lits("R"))),
        vec![
            ("l_orderkey", col(0)),
            ("revenue", discounted(col(5), col(6))),
        ],
    )
    .join(
        orders,
        &["l_orderkey"],
        &["o_orderkey"],
        &[
            "o_custkey",
            "c_name",
            "c_acctbal",
            "c_phone",
            "c_address",
            "c_comment",
            "n_name",
        ],
    )
    .agg(
        &[
            "o_custkey",
            "c_name",
            "c_acctbal",
            "c_phone",
            "n_name",
            "c_address",
            "c_comment",
        ],
        vec![("revenue", AggFn::SumI64(1))],
    )
    .sort_by(vec![SortKey::desc(7)], Some(20))
}

/// Q11: important stock identification (GERMANY).
pub fn q11(db: &TpchDb) -> Plan {
    let german_supp = Plan::scan(db.supplier.clone(), None, &["s_suppkey", "s_nationkey"]).join(
        Plan::scan(
            db.nation.clone(),
            Some(eq(col(1), expr::lits("GERMANY"))),
            &["n_nationkey"],
        ),
        &["s_nationkey"],
        &["n_nationkey"],
        &[],
    );
    let value_per_part = Plan::scan(
        db.partsupp.clone(),
        None,
        &["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"],
    )
    .join(german_supp, &["ps_suppkey"], &["s_suppkey"], &[])
    .map(vec![("ps_partkey", col(0)), ("value", mul(col(3), col(2)))])
    .agg(&["ps_partkey"], vec![("value", AggFn::SumI64(1))]);

    // Total value (scalar) broadcast back via a constant-key join.
    let german_supp2 = Plan::scan(db.supplier.clone(), None, &["s_suppkey", "s_nationkey"]).join(
        Plan::scan(
            db.nation.clone(),
            Some(eq(col(1), expr::lits("GERMANY"))),
            &["n_nationkey"],
        ),
        &["s_nationkey"],
        &["n_nationkey"],
        &[],
    );
    let total = Plan::scan(
        db.partsupp.clone(),
        None,
        &["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"],
    )
    .join(german_supp2, &["ps_suppkey"], &["s_suppkey"], &[])
    .map(vec![("value", mul(col(3), col(2)))])
    .agg(&[], vec![("total", AggFn::SumI64(0))])
    .map(vec![("k", lit(0)), ("total", col(0))]);

    // Spec threshold: total * 0.0001 / SF.
    let frac = 0.0001 / db.config.scale;
    append(value_per_part, "k", lit(0))
        .join(total, &["k"], &["k"], &["total"])
        .filter(gt(to_f64(col(1)), mul(litf(frac), to_f64(col(3)))))
        .map(vec![("ps_partkey", col(0)), ("value", col(1))])
        .sort_by(vec![SortKey::desc(1)], None)
}

/// Q12: shipping modes and order priority (MAIL, SHIP in 1994).
pub fn q12(db: &TpchDb) -> Plan {
    let lines = Plan::scan_project(
        db.lineitem.clone(),
        Some(and(
            and(
                in_str(col(14), &["MAIL", "SHIP"]),
                and(lt(col(11), col(12)), lt(col(10), col(11))),
            ),
            between(col(12), d(1994, 1, 1), d(1995, 1, 1) - 1),
        )),
        vec![("l_orderkey", col(0)), ("l_shipmode", col(14))],
    );
    Plan::scan(db.orders.clone(), None, &["o_orderkey", "o_orderpriority"])
        .join(lines, &["o_orderkey"], &["l_orderkey"], &["l_shipmode"])
        .map(vec![
            ("l_shipmode", col(2)),
            (
                "high",
                case(in_str(col(1), &["1-URGENT", "2-HIGH"]), lit(1), lit(0)),
            ),
            (
                "low",
                case(in_str(col(1), &["1-URGENT", "2-HIGH"]), lit(0), lit(1)),
            ),
        ])
        .agg(
            &["l_shipmode"],
            vec![
                ("high_line_count", AggFn::SumI64(1)),
                ("low_line_count", AggFn::SumI64(2)),
            ],
        )
        .sort_by(vec![SortKey::asc(0)], None)
}

/// Q13: customer distribution (left outer join + count, fused).
pub fn q13(db: &TpchDb) -> Plan {
    let orders = Plan::scan_project(
        db.orders.clone(),
        Some(not(like(col(8), "%special%requests%"))),
        vec![("o_custkey", col(1))],
    );
    Plan::scan(db.customer.clone(), None, &["c_custkey"])
        .join_kind(orders, &["c_custkey"], &["o_custkey"], &[], JoinKind::Count)
        .agg(&["match_count"], vec![("custdist", AggFn::Count)])
        .sort_by(vec![SortKey::desc(1), SortKey::desc(0)], None)
}

/// Q14: promotion effect (1995-09).
pub fn q14(db: &TpchDb) -> Plan {
    let parts = Plan::scan_project(
        db.part.clone(),
        None,
        vec![("p_partkey", col(0)), ("p_type", col(4))],
    );
    Plan::scan_project(
        db.lineitem.clone(),
        Some(between(col(10), d(1995, 9, 1), d(1995, 10, 1) - 1)),
        vec![("l_partkey", col(1)), ("rev", discounted(col(5), col(6)))],
    )
    .join(parts, &["l_partkey"], &["p_partkey"], &["p_type"])
    .map(vec![
        ("rev", col(1)),
        ("promo_rev", case(prefix(col(2), "PROMO"), col(1), lit(0))),
    ])
    .agg(
        &[],
        vec![("promo", AggFn::SumI64(1)), ("total", AggFn::SumI64(0))],
    )
    .map(vec![(
        "promo_revenue",
        div(mul(litf(100.0), to_f64(col(0))), to_f64(col(1))),
    )])
}

/// Q15: top supplier (revenue view + max).
pub fn q15(db: &TpchDb) -> Plan {
    let revenue = |db: &TpchDb| {
        Plan::scan_project(
            db.lineitem.clone(),
            Some(between(col(10), d(1996, 1, 1), d(1996, 4, 1) - 1)),
            vec![("l_suppkey", col(2)), ("rev", discounted(col(5), col(6)))],
        )
        .agg(&["l_suppkey"], vec![("total_revenue", AggFn::SumI64(1))])
    };
    let max_rev = revenue(db)
        .agg(&[], vec![("max_rev", AggFn::MaxI64(1))])
        .map(vec![("k", lit(0)), ("max_rev", col(0))]);
    let best = append(revenue(db), "k", lit(0))
        .join(max_rev, &["k"], &["k"], &["max_rev"])
        .filter(eq(col(1), col(3)));
    Plan::scan(
        db.supplier.clone(),
        None,
        &["s_suppkey", "s_name", "s_address", "s_phone"],
    )
    .join(best, &["s_suppkey"], &["l_suppkey"], &["total_revenue"])
    .sort_by(vec![SortKey::asc(0)], None)
}

/// Q16: parts/supplier relationship (anti join on complaints).
pub fn q16(db: &TpchDb) -> Plan {
    let complainers = Plan::scan_project(
        db.supplier.clone(),
        Some(like(col(6), "%Customer%Complaints%")),
        vec![("bad_suppkey", col(0))],
    );
    let parts = Plan::scan(
        db.part.clone(),
        Some(and(
            and(
                ne(col(3), expr::lits("Brand#45")),
                not(prefix(col(4), "MEDIUM POLISHED")),
            ),
            in_i64(col(5), vec![49, 14, 23, 45, 19, 3, 36, 9]),
        )),
        &["p_partkey", "p_brand", "p_type", "p_size"],
    );
    Plan::scan(db.partsupp.clone(), None, &["ps_partkey", "ps_suppkey"])
        .join_kind(
            complainers,
            &["ps_suppkey"],
            &["bad_suppkey"],
            &[],
            JoinKind::Anti,
        )
        .join(
            parts,
            &["ps_partkey"],
            &["p_partkey"],
            &["p_brand", "p_type", "p_size"],
        )
        .agg(
            &["p_brand", "p_type", "p_size"],
            vec![("supplier_cnt", AggFn::CountDistinctI64(1))],
        )
        .sort_by(
            vec![
                SortKey::desc(3),
                SortKey::asc(0),
                SortKey::asc(1),
                SortKey::asc(2),
            ],
            None,
        )
}

/// Q17: small-quantity-order revenue (Brand#23, MED BOX).
pub fn q17(db: &TpchDb) -> Plan {
    let parts = |db: &TpchDb| {
        Plan::scan(
            db.part.clone(),
            Some(and(
                eq(col(3), expr::lits("Brand#23")),
                eq(col(6), expr::lits("MED BOX")),
            )),
            &["p_partkey"],
        )
    };
    let avg_qty = Plan::scan_project(
        db.lineitem.clone(),
        None,
        vec![("l_partkey", col(1)), ("l_quantity", col(4))],
    )
    .join(parts(db), &["l_partkey"], &["p_partkey"], &[])
    .agg(&["l_partkey"], vec![("avg_qty", AggFn::AvgI64(1))]);

    Plan::scan_project(
        db.lineitem.clone(),
        None,
        vec![
            ("l_partkey", col(1)),
            ("l_quantity", col(4)),
            ("l_extendedprice", col(5)),
        ],
    )
    .join(avg_qty, &["l_partkey"], &["l_partkey"], &["avg_qty"])
    .filter(lt(to_f64(col(1)), mul(litf(0.2), col(3))))
    .agg(&[], vec![("sum_price", AggFn::SumI64(2))])
    .map(vec![("avg_yearly", div(to_f64(col(0)), litf(7.0)))])
}

/// Q18: large volume customers (top 100).
pub fn q18(db: &TpchDb) -> Plan {
    let big_orders = Plan::scan_project(
        db.lineitem.clone(),
        None,
        vec![("l_orderkey", col(0)), ("l_quantity", col(4))],
    )
    .agg(&["l_orderkey"], vec![("sum_qty", AggFn::SumI64(1))])
    .filter(gt(col(1), lit(300)));
    let cust = Plan::scan(db.customer.clone(), None, &["c_custkey", "c_name"]);
    Plan::scan(
        db.orders.clone(),
        None,
        &["o_orderkey", "o_custkey", "o_totalprice", "o_orderdate"],
    )
    .join(big_orders, &["o_orderkey"], &["l_orderkey"], &["sum_qty"])
    .join(cust, &["o_custkey"], &["c_custkey"], &["c_name"])
    .sort_by(vec![SortKey::desc(2), SortKey::asc(3)], Some(100))
}

/// Q19: discounted revenue (three OR-ed brand/container brackets).
pub fn q19(db: &TpchDb) -> Plan {
    let parts = Plan::scan(
        db.part.clone(),
        None,
        &["p_partkey", "p_brand", "p_container", "p_size"],
    );
    let bracket = |brand: &str, containers: &[&str], qlo: i64, qhi: i64, smax: i64| {
        and(
            and(eq(col(3), expr::lits(brand)), in_str(col(4), containers)),
            and(between(col(1), qlo, qhi), between(col(5), 1, smax)),
        )
    };
    Plan::scan_project(
        db.lineitem.clone(),
        Some(and(
            in_str(col(14), &["AIR", "AIR REG"]),
            eq(col(13), expr::lits("DELIVER IN PERSON")),
        )),
        vec![
            ("l_partkey", col(1)),
            ("l_quantity", col(4)),
            ("rev", discounted(col(5), col(6))),
        ],
    )
    .join(
        parts,
        &["l_partkey"],
        &["p_partkey"],
        &["p_brand", "p_container", "p_size"],
    )
    .filter(or(
        or(
            bracket(
                "Brand#12",
                &["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
                1,
                11,
                5,
            ),
            bracket(
                "Brand#23",
                &["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
                10,
                20,
                10,
            ),
        ),
        bracket(
            "Brand#34",
            &["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
            20,
            30,
            15,
        ),
    ))
    .agg(&[], vec![("revenue", AggFn::SumI64(2))])
}

/// Q20: potential part promotion (forest%, CANADA, excess stock).
pub fn q20(db: &TpchDb) -> Plan {
    let forest_parts = Plan::scan(
        db.part.clone(),
        Some(prefix(col(1), "forest")),
        &["p_partkey"],
    );
    let shipped = Plan::scan_project(
        db.lineitem.clone(),
        Some(between(col(10), d(1994, 1, 1), d(1995, 1, 1) - 1)),
        vec![
            ("l_partkey", col(1)),
            ("l_suppkey", col(2)),
            ("l_quantity", col(4)),
        ],
    )
    .agg(
        &["l_partkey", "l_suppkey"],
        vec![("sum_qty", AggFn::SumI64(2))],
    );

    let qualified_ps = Plan::scan(
        db.partsupp.clone(),
        None,
        &["ps_partkey", "ps_suppkey", "ps_availqty"],
    )
    .join_kind(
        forest_parts,
        &["ps_partkey"],
        &["p_partkey"],
        &[],
        JoinKind::Semi,
    )
    .join(
        shipped,
        &["ps_partkey", "ps_suppkey"],
        &["l_partkey", "l_suppkey"],
        &["sum_qty"],
    )
    .filter(gt(mul(col(2), lit(2)), col(3))) // availqty > 0.5 * sum_qty
    .map(vec![("q_suppkey", col(1))]);

    let canada = Plan::scan(
        db.nation.clone(),
        Some(eq(col(1), expr::lits("CANADA"))),
        &["n_nationkey"],
    );
    Plan::scan(
        db.supplier.clone(),
        None,
        &["s_suppkey", "s_name", "s_address", "s_nationkey"],
    )
    .join_kind(
        qualified_ps,
        &["s_suppkey"],
        &["q_suppkey"],
        &[],
        JoinKind::Semi,
    )
    .join_kind(
        canada,
        &["s_nationkey"],
        &["n_nationkey"],
        &[],
        JoinKind::Semi,
    )
    .sort_by(vec![SortKey::asc(1)], None)
}

/// Q21: suppliers who kept orders waiting (SAUDI ARABIA).
pub fn q21(db: &TpchDb) -> Plan {
    // Orders with >= 2 distinct suppliers overall.
    let multi_supp = Plan::scan_project(
        db.lineitem.clone(),
        None,
        vec![("l_orderkey", col(0)), ("l_suppkey", col(2))],
    )
    .agg(
        &["l_orderkey"],
        vec![("n_supp", AggFn::CountDistinctI64(1))],
    )
    .filter(ge(col(1), lit(2)))
    .map(vec![("m_orderkey", col(0))]);

    // Orders whose late lines all come from a single supplier.
    let single_late = Plan::scan_project(
        db.lineitem.clone(),
        Some(gt(col(12), col(11))), // receipt > commit
        vec![("l_orderkey", col(0)), ("l_suppkey", col(2))],
    )
    .agg(
        &["l_orderkey"],
        vec![("n_late_supp", AggFn::CountDistinctI64(1))],
    )
    .filter(eq(col(1), lit(1)))
    .map(vec![("s_orderkey", col(0))]);

    let f_orders = Plan::scan_project(
        db.orders.clone(),
        Some(eq(col(2), expr::lits("F"))),
        vec![("fo_orderkey", col(0))],
    );
    let saudi_supp = Plan::scan(
        db.supplier.clone(),
        None,
        &["s_suppkey", "s_name", "s_nationkey"],
    )
    .join(
        Plan::scan(
            db.nation.clone(),
            Some(eq(col(1), expr::lits("SAUDI ARABIA"))),
            &["n_nationkey"],
        ),
        &["s_nationkey"],
        &["n_nationkey"],
        &[],
    );

    Plan::scan_project(
        db.lineitem.clone(),
        Some(gt(col(12), col(11))),
        vec![("l_orderkey", col(0)), ("l_suppkey", col(2))],
    )
    .join_kind(
        multi_supp,
        &["l_orderkey"],
        &["m_orderkey"],
        &[],
        JoinKind::Semi,
    )
    .join_kind(
        single_late,
        &["l_orderkey"],
        &["s_orderkey"],
        &[],
        JoinKind::Semi,
    )
    .join_kind(
        f_orders,
        &["l_orderkey"],
        &["fo_orderkey"],
        &[],
        JoinKind::Semi,
    )
    .join(saudi_supp, &["l_suppkey"], &["s_suppkey"], &["s_name"])
    .agg(&["s_name"], vec![("numwait", AggFn::Count)])
    .sort_by(vec![SortKey::desc(1), SortKey::asc(0)], Some(100))
}

/// Q22: global sales opportunity (country codes, no orders, above-average
/// balance).
pub fn q22(db: &TpchDb) -> Plan {
    const CODES: [&str; 7] = ["13", "31", "23", "29", "30", "18", "17"];
    let code_filter = |phone_col: usize| in_str(substr(col(phone_col), 1, 2), &CODES);
    let avg_bal = Plan::scan(
        db.customer.clone(),
        None,
        &["c_custkey", "c_phone", "c_acctbal"],
    )
    .filter(and(code_filter(1), gt(col(2), lit(0))))
    .agg(&[], vec![("avg_bal", AggFn::AvgI64(2))])
    .map(vec![("k", lit(0)), ("avg_bal", col(0))]);

    let orders = Plan::scan(db.orders.clone(), None, &["o_custkey"]);
    let candidates = Plan::scan(
        db.customer.clone(),
        None,
        &["c_custkey", "c_phone", "c_acctbal"],
    )
    .filter(code_filter(1))
    .join_kind(orders, &["c_custkey"], &["o_custkey"], &[], JoinKind::Anti);

    append(candidates, "k", lit(0))
        .join(avg_bal, &["k"], &["k"], &["avg_bal"])
        .filter(gt(to_f64(col(2)), col(4)))
        .map(vec![
            ("cntrycode", substr(col(1), 1, 2)),
            ("c_acctbal", col(2)),
        ])
        .agg(
            &["cntrycode"],
            vec![("numcust", AggFn::Count), ("totacctbal", AggFn::SumI64(1))],
        )
        .sort_by(vec![SortKey::asc(0)], None)
}

/// All 22 queries by number.
pub fn query(db: &TpchDb, number: usize) -> Plan {
    match number {
        1 => q1(db),
        2 => q2(db),
        3 => q3(db),
        4 => q4(db),
        5 => q5(db),
        6 => q6(db),
        7 => q7(db),
        8 => q8(db),
        9 => q9(db),
        10 => q10(db),
        11 => q11(db),
        12 => q12(db),
        13 => q13(db),
        14 => q14(db),
        15 => q15(db),
        16 => q16(db),
        17 => q17(db),
        18 => q18(db),
        19 => q19(db),
        20 => q20(db),
        21 => q21(db),
        22 => q22(db),
        other => panic!("TPC-H has queries 1..=22, not {other}"),
    }
}

/// All queries as (name, plan) pairs.
pub fn all(db: &TpchDb) -> Vec<(String, Plan)> {
    (1..=22)
        .map(|q| (format!("TPC-H Q{q}"), query(db, q)))
        .collect()
}
