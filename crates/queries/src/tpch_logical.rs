//! A representative slice of TPC-H expressed as [`LogicalPlan`]s.
//!
//! These are declarative re-statements of the hand-authored plans in
//! [`crate::tpch_queries`]: scans with the same filters, joins keyed by
//! column names with **no** fixed order or build/probe choice, and named
//! aggregates. The cost-based planner decides the physical shape; the
//! hand plans remain the oracle the planner is tested against.
//!
//! The slice covers every plan shape the planner handles — scan+aggregate
//! (Q1/Q6), selective joins (Q3/Q10), semi joins (Q4), deep inner-join
//! blocks with 6–8 relations (Q5/Q8/Q9), count joins (Q13), and
//! aggregate-below-join subplans (Q18). Queries built around broadcast
//! tricks (Q11/Q15/Q17/Q22 re-join a scalar via a constant key) stay
//! hand-authored.

use morsel_datagen::TpchDb;
use morsel_exec::expr::{
    self, and, between, case, col, div, eq, gt, in_str, like, lit, litf, lt, mul, not, sub, to_f64,
    year_of,
};
use morsel_exec::join::JoinKind;
use morsel_planner::{AggSpec, LogicalPlan, OrderBy};

use crate::util::{charged, d, disc_product, discounted};

/// Q1: pricing summary report (scan + wide aggregate).
pub fn q1(db: &TpchDb) -> LogicalPlan {
    LogicalPlan::scan_project(
        "lineitem",
        db.lineitem.clone(),
        Some(expr::le(col(10), lit(d(1998, 9, 2)))),
        vec![
            ("l_returnflag", col(8)),
            ("l_linestatus", col(9)),
            ("l_quantity", col(4)),
            ("l_extendedprice", col(5)),
            ("disc_price", discounted(col(5), col(6))),
            ("charge", charged(col(5), col(6), col(7))),
            ("l_discount", col(6)),
        ],
    )
    .aggregate(
        &["l_returnflag", "l_linestatus"],
        vec![
            ("sum_qty", AggSpec::sum("l_quantity")),
            ("sum_base_price", AggSpec::sum("l_extendedprice")),
            ("sum_disc_price", AggSpec::sum("disc_price")),
            ("sum_charge", AggSpec::sum("charge")),
            ("avg_qty", AggSpec::avg("l_quantity")),
            ("avg_price", AggSpec::avg("l_extendedprice")),
            ("avg_disc", AggSpec::avg("l_discount")),
            ("count_order", AggSpec::Count),
        ],
    )
    .sort(
        vec![OrderBy::asc("l_returnflag"), OrderBy::asc("l_linestatus")],
        None,
    )
}

/// Q3: shipping priority (two joins, top 10).
pub fn q3(db: &TpchDb) -> LogicalPlan {
    let cust = LogicalPlan::scan(
        "customer",
        db.customer.clone(),
        Some(eq(col(6), expr::lits("BUILDING"))),
        &["c_custkey"],
    );
    let orders = LogicalPlan::scan(
        "orders",
        db.orders.clone(),
        Some(lt(col(4), lit(d(1995, 3, 15)))),
        &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
    )
    .join(cust, &["o_custkey"], &["c_custkey"]);
    LogicalPlan::scan_project(
        "lineitem",
        db.lineitem.clone(),
        Some(gt(col(10), lit(d(1995, 3, 15)))),
        vec![
            ("l_orderkey", col(0)),
            ("revenue", discounted(col(5), col(6))),
        ],
    )
    .join(orders, &["l_orderkey"], &["o_orderkey"])
    .aggregate(
        &["l_orderkey", "o_orderdate", "o_shippriority"],
        vec![("revenue", AggSpec::sum("revenue"))],
    )
    .sort(
        vec![OrderBy::desc("revenue"), OrderBy::asc("o_orderdate")],
        Some(10),
    )
}

/// Q4: order priority checking (semi join).
pub fn q4(db: &TpchDb) -> LogicalPlan {
    let late_lines = LogicalPlan::scan_project(
        "lineitem",
        db.lineitem.clone(),
        Some(lt(col(11), col(12))),
        vec![("l_orderkey", col(0))],
    );
    LogicalPlan::scan(
        "orders",
        db.orders.clone(),
        Some(between(col(4), d(1993, 7, 1), d(1993, 10, 1) - 1)),
        &["o_orderkey", "o_orderpriority"],
    )
    .join_kind(late_lines, &["o_orderkey"], &["l_orderkey"], JoinKind::Semi)
    .aggregate(&["o_orderpriority"], vec![("order_count", AggSpec::Count)])
    .sort(vec![OrderBy::asc("o_orderpriority")], None)
}

/// Q5: local supplier volume — a six-relation inner-join block. The
/// `c_nationkey = s_nationkey` restriction becomes a second key pair on
/// the supplier edge instead of a post-join filter, closing the cycle
/// lineitem–orders–customer–supplier the query really describes.
pub fn q5(db: &TpchDb) -> LogicalPlan {
    let asia_nations = LogicalPlan::scan(
        "nation",
        db.nation.clone(),
        None,
        &["n_nationkey", "n_name", "n_regionkey"],
    )
    .join(
        LogicalPlan::scan(
            "region",
            db.region.clone(),
            Some(eq(col(1), expr::lits("ASIA"))),
            &["r_regionkey"],
        ),
        &["n_regionkey"],
        &["r_regionkey"],
    );
    let supp = LogicalPlan::scan(
        "supplier",
        db.supplier.clone(),
        None,
        &["s_suppkey", "s_nationkey"],
    )
    .join(asia_nations, &["s_nationkey"], &["n_nationkey"]);
    let cust = LogicalPlan::scan(
        "customer",
        db.customer.clone(),
        None,
        &["c_custkey", "c_nationkey"],
    );
    let orders = LogicalPlan::scan(
        "orders",
        db.orders.clone(),
        Some(between(col(4), d(1994, 1, 1), d(1995, 1, 1) - 1)),
        &["o_orderkey", "o_custkey"],
    )
    .join(cust, &["o_custkey"], &["c_custkey"]);
    LogicalPlan::scan_project(
        "lineitem",
        db.lineitem.clone(),
        None,
        vec![
            ("l_orderkey", col(0)),
            ("l_suppkey", col(2)),
            ("revenue", discounted(col(5), col(6))),
        ],
    )
    .join(orders, &["l_orderkey"], &["o_orderkey"])
    .join(
        supp,
        &["l_suppkey", "c_nationkey"],
        &["s_suppkey", "s_nationkey"],
    )
    .aggregate(&["n_name"], vec![("revenue", AggSpec::sum("revenue"))])
    .sort(vec![OrderBy::desc("revenue")], None)
}

/// Q6: forecasting revenue change (scan only).
pub fn q6(db: &TpchDb) -> LogicalPlan {
    LogicalPlan::scan_project(
        "lineitem",
        db.lineitem.clone(),
        Some(and(
            and(
                between(col(10), d(1994, 1, 1), d(1995, 1, 1) - 1),
                between(col(6), 5, 7),
            ),
            lt(col(4), lit(24)),
        )),
        vec![("rev", disc_product(col(5), col(6)))],
    )
    .aggregate(&[], vec![("revenue", AggSpec::sum("rev"))])
}

/// Q8: national market share — an eight-relation block.
pub fn q8(db: &TpchDb) -> LogicalPlan {
    let parts = LogicalPlan::scan(
        "part",
        db.part.clone(),
        Some(eq(col(4), expr::lits("ECONOMY ANODIZED STEEL"))),
        &["p_partkey"],
    );
    let supp = LogicalPlan::scan(
        "supplier",
        db.supplier.clone(),
        None,
        &["s_suppkey", "s_nationkey"],
    )
    .join(
        LogicalPlan::scan_project(
            "nation",
            db.nation.clone(),
            None,
            vec![("nkey", col(0)), ("supp_nation", col(1))],
        ),
        &["s_nationkey"],
        &["nkey"],
    );
    let america_cust = LogicalPlan::scan(
        "customer",
        db.customer.clone(),
        None,
        &["c_custkey", "c_nationkey"],
    )
    .join(
        LogicalPlan::scan(
            "nation2",
            db.nation.clone(),
            None,
            &["n_nationkey", "n_regionkey"],
        )
        .join(
            LogicalPlan::scan(
                "region",
                db.region.clone(),
                Some(eq(col(1), expr::lits("AMERICA"))),
                &["r_regionkey"],
            ),
            &["n_regionkey"],
            &["r_regionkey"],
        ),
        &["c_nationkey"],
        &["n_nationkey"],
    );
    let orders = LogicalPlan::scan(
        "orders",
        db.orders.clone(),
        Some(between(col(4), d(1995, 1, 1), d(1996, 12, 31))),
        &["o_orderkey", "o_custkey", "o_orderdate"],
    )
    .join(america_cust, &["o_custkey"], &["c_custkey"]);

    let joined = LogicalPlan::scan_project(
        "lineitem",
        db.lineitem.clone(),
        None,
        vec![
            ("l_orderkey", col(0)),
            ("l_partkey", col(1)),
            ("l_suppkey", col(2)),
            ("volume", discounted(col(5), col(6))),
        ],
    )
    .join(parts, &["l_partkey"], &["p_partkey"])
    .join(supp, &["l_suppkey"], &["s_suppkey"])
    .join(orders, &["l_orderkey"], &["o_orderkey"]);

    let o_year = year_of(joined.cref("o_orderdate"));
    let volume = joined.cref("volume");
    let brazil = case(
        eq(joined.cref("supp_nation"), expr::lits("BRAZIL")),
        joined.cref("volume"),
        lit(0),
    );
    joined
        .project(vec![
            ("o_year", o_year),
            ("volume", volume),
            ("brazil_volume", brazil),
        ])
        .aggregate(
            &["o_year"],
            vec![
                ("brazil", AggSpec::sum("brazil_volume")),
                ("total", AggSpec::sum("volume")),
            ],
        )
        .project(vec![
            ("o_year", col(0)),
            (
                "mkt_share",
                div(mul(to_f64(col(1)), litf(1.0)), to_f64(col(2))),
            ),
        ])
        .sort(vec![OrderBy::asc("o_year")], None)
}

/// Q9: product type profit (five-way block with a composite-key edge).
pub fn q9(db: &TpchDb) -> LogicalPlan {
    let parts = LogicalPlan::scan(
        "part",
        db.part.clone(),
        Some(like(col(1), "%green%")),
        &["p_partkey"],
    );
    let supp = LogicalPlan::scan(
        "supplier",
        db.supplier.clone(),
        None,
        &["s_suppkey", "s_nationkey"],
    )
    .join(
        LogicalPlan::scan_project(
            "nation",
            db.nation.clone(),
            None,
            vec![("nkey", col(0)), ("nation", col(1))],
        ),
        &["s_nationkey"],
        &["nkey"],
    );
    let ps = LogicalPlan::scan(
        "partsupp",
        db.partsupp.clone(),
        None,
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
    );
    let orders = LogicalPlan::scan(
        "orders",
        db.orders.clone(),
        None,
        &["o_orderkey", "o_orderdate"],
    );

    let joined = LogicalPlan::scan_project(
        "lineitem",
        db.lineitem.clone(),
        None,
        vec![
            ("l_orderkey", col(0)),
            ("l_partkey", col(1)),
            ("l_suppkey", col(2)),
            ("l_quantity", col(4)),
            ("disc_rev", discounted(col(5), col(6))),
        ],
    )
    .join(parts, &["l_partkey"], &["p_partkey"])
    .join(
        ps,
        &["l_partkey", "l_suppkey"],
        &["ps_partkey", "ps_suppkey"],
    )
    .join(supp, &["l_suppkey"], &["s_suppkey"])
    .join(orders, &["l_orderkey"], &["o_orderkey"]);

    let nation = joined.cref("nation");
    let o_year = year_of(joined.cref("o_orderdate"));
    let amount = sub(
        joined.cref("disc_rev"),
        mul(joined.cref("ps_supplycost"), joined.cref("l_quantity")),
    );
    joined
        .project(vec![
            ("nation", nation),
            ("o_year", o_year),
            ("amount", amount),
        ])
        .aggregate(
            &["nation", "o_year"],
            vec![("sum_profit", AggSpec::sum("amount"))],
        )
        .sort(vec![OrderBy::asc("nation"), OrderBy::desc("o_year")], None)
}

/// Q10: returned item reporting (top 20 customers).
pub fn q10(db: &TpchDb) -> LogicalPlan {
    let nations = LogicalPlan::scan_project(
        "nation",
        db.nation.clone(),
        None,
        vec![("nkey", col(0)), ("n_name", col(1))],
    );
    let cust = LogicalPlan::scan(
        "customer",
        db.customer.clone(),
        None,
        &[
            "c_custkey",
            "c_name",
            "c_acctbal",
            "c_phone",
            "c_address",
            "c_comment",
            "c_nationkey",
        ],
    )
    .join(nations, &["c_nationkey"], &["nkey"]);
    let orders = LogicalPlan::scan(
        "orders",
        db.orders.clone(),
        Some(between(col(4), d(1993, 10, 1), d(1994, 1, 1) - 1)),
        &["o_orderkey", "o_custkey"],
    )
    .join(cust, &["o_custkey"], &["c_custkey"]);
    LogicalPlan::scan_project(
        "lineitem",
        db.lineitem.clone(),
        Some(eq(col(8), expr::lits("R"))),
        vec![
            ("l_orderkey", col(0)),
            ("revenue", discounted(col(5), col(6))),
        ],
    )
    .join(orders, &["l_orderkey"], &["o_orderkey"])
    .aggregate(
        &[
            "o_custkey",
            "c_name",
            "c_acctbal",
            "c_phone",
            "n_name",
            "c_address",
            "c_comment",
        ],
        vec![("revenue", AggSpec::sum("revenue"))],
    )
    .sort(vec![OrderBy::desc("revenue")], Some(20))
}

/// Q12: shipping modes and order priority.
pub fn q12(db: &TpchDb) -> LogicalPlan {
    let lines = LogicalPlan::scan_project(
        "lineitem",
        db.lineitem.clone(),
        Some(and(
            and(
                in_str(col(14), &["MAIL", "SHIP"]),
                and(lt(col(11), col(12)), lt(col(10), col(11))),
            ),
            between(col(12), d(1994, 1, 1), d(1995, 1, 1) - 1),
        )),
        vec![("l_orderkey", col(0)), ("l_shipmode", col(14))],
    );
    let joined = LogicalPlan::scan(
        "orders",
        db.orders.clone(),
        None,
        &["o_orderkey", "o_orderpriority"],
    )
    .join(lines, &["o_orderkey"], &["l_orderkey"]);
    let urgent = in_str(joined.cref("o_orderpriority"), &["1-URGENT", "2-HIGH"]);
    let shipmode = joined.cref("l_shipmode");
    let high = case(urgent.clone(), lit(1), lit(0));
    let low = case(urgent, lit(0), lit(1));
    joined
        .project(vec![("l_shipmode", shipmode), ("high", high), ("low", low)])
        .aggregate(
            &["l_shipmode"],
            vec![
                ("high_line_count", AggSpec::sum("high")),
                ("low_line_count", AggSpec::sum("low")),
            ],
        )
        .sort(vec![OrderBy::asc("l_shipmode")], None)
}

/// Q13: customer distribution (fused count join).
pub fn q13(db: &TpchDb) -> LogicalPlan {
    let orders = LogicalPlan::scan_project(
        "orders",
        db.orders.clone(),
        Some(not(like(col(8), "%special%requests%"))),
        vec![("o_custkey", col(1))],
    );
    LogicalPlan::scan("customer", db.customer.clone(), None, &["c_custkey"])
        .join_kind(orders, &["c_custkey"], &["o_custkey"], JoinKind::Count)
        .aggregate(&["match_count"], vec![("custdist", AggSpec::Count)])
        .sort(
            vec![OrderBy::desc("custdist"), OrderBy::desc("match_count")],
            None,
        )
}

/// Q14: promotion effect.
pub fn q14(db: &TpchDb) -> LogicalPlan {
    let parts = LogicalPlan::scan_project(
        "part",
        db.part.clone(),
        None,
        vec![("p_partkey", col(0)), ("p_type", col(4))],
    );
    let joined = LogicalPlan::scan_project(
        "lineitem",
        db.lineitem.clone(),
        Some(between(col(10), d(1995, 9, 1), d(1995, 10, 1) - 1)),
        vec![("l_partkey", col(1)), ("rev", discounted(col(5), col(6)))],
    )
    .join(parts, &["l_partkey"], &["p_partkey"]);
    let rev = joined.cref("rev");
    let promo = case(
        expr::prefix(joined.cref("p_type"), "PROMO"),
        joined.cref("rev"),
        lit(0),
    );
    joined
        .project(vec![("rev", rev), ("promo_rev", promo)])
        .aggregate(
            &[],
            vec![
                ("promo", AggSpec::sum("promo_rev")),
                ("total", AggSpec::sum("rev")),
            ],
        )
        .project(vec![(
            "promo_revenue",
            div(mul(litf(100.0), to_f64(col(0))), to_f64(col(1))),
        )])
}

/// Q18: large volume customers (aggregate feeding a join, top 100).
pub fn q18(db: &TpchDb) -> LogicalPlan {
    let big_orders = LogicalPlan::scan_project(
        "lineitem",
        db.lineitem.clone(),
        None,
        vec![("l_orderkey", col(0)), ("l_quantity", col(4))],
    )
    .aggregate(
        &["l_orderkey"],
        vec![("sum_qty", AggSpec::sum("l_quantity"))],
    )
    .filter(gt(col(1), lit(300)));
    let cust = LogicalPlan::scan(
        "customer",
        db.customer.clone(),
        None,
        &["c_custkey", "c_name"],
    );
    let joined = LogicalPlan::scan(
        "orders",
        db.orders.clone(),
        None,
        &["o_orderkey", "o_custkey", "o_totalprice", "o_orderdate"],
    )
    .join(big_orders, &["o_orderkey"], &["l_orderkey"])
    .join(cust, &["o_custkey"], &["c_custkey"]);
    // Pin the output layout to the oracle plan's column order.
    let out = [
        "o_orderkey",
        "o_custkey",
        "o_totalprice",
        "o_orderdate",
        "sum_qty",
        "c_name",
    ];
    let projected: Vec<(&str, morsel_exec::expr::Expr)> =
        out.iter().map(|&n| (n, joined.cref(n))).collect();
    joined.project(projected).sort(
        vec![OrderBy::desc("o_totalprice"), OrderBy::asc("o_orderdate")],
        Some(100),
    )
}

/// Query numbers covered by the logical slice.
pub const IDS: [usize; 12] = [1, 3, 4, 5, 6, 8, 9, 10, 12, 13, 14, 18];

/// The logical form of query `number`, if it is part of the slice.
pub fn query(db: &TpchDb, number: usize) -> Option<LogicalPlan> {
    Some(match number {
        1 => q1(db),
        3 => q3(db),
        4 => q4(db),
        5 => q5(db),
        6 => q6(db),
        8 => q8(db),
        9 => q9(db),
        10 => q10(db),
        12 => q12(db),
        13 => q13(db),
        14 => q14(db),
        18 => q18(db),
        _ => return None,
    })
}

/// All expressed queries as (name, plan) pairs.
pub fn all(db: &TpchDb) -> Vec<(String, LogicalPlan)> {
    IDS.iter()
        .map(|&q| (format!("TPC-H Q{q}"), query(db, q).unwrap()))
        .collect()
}
