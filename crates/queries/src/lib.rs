//! # morsel-queries
//!
//! The evaluation workloads in three forms: hand-authored physical
//! plans for all 22 TPC-H queries ([`tpch_queries`]) and the 13 Star
//! Schema Benchmark queries ([`ssb_queries`]) — the oracle plans the
//! paper's experiments run — declarative
//! [`morsel_planner::LogicalPlan`] versions of a representative TPC-H
//! slice ([`tpch_logical`]) and all SSB queries ([`ssb_logical`]) for
//! the cost-based planner, and SQL text fixtures ([`tpch_sql`],
//! [`ssb_sql`]) for the `morsel-sql` front end. [`runner`] executes a
//! plan under any system variant on either executor; shared builder
//! helpers live in [`util`].

pub mod runner;
pub mod ssb_logical;
pub mod ssb_queries;
pub mod ssb_sql;
pub mod tpch_logical;
pub mod tpch_queries;
pub mod tpch_sql;
pub mod util;

pub use runner::{format_rows, run_sim, run_sim_n, run_threaded, run_threaded_n, RunOutcome};
