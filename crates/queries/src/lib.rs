//! # morsel-queries
//!
//! Hand-authored physical plans for the paper's evaluation workloads: all
//! 22 TPC-H queries ([`tpch_queries`]) and the 13 Star Schema Benchmark
//! queries ([`ssb_queries`]), plus [`runner`] helpers that execute a plan
//! under any system variant on either executor.

pub mod runner;
pub mod ssb_queries;
pub mod tpch_queries;

pub use runner::{format_rows, run_sim, run_threaded, RunOutcome};
