//! All 13 Star Schema Benchmark queries as [`LogicalPlan`]s.
//!
//! Same queries as [`crate::ssb_queries`], declaratively: the planner
//! gets to discover for itself that the fact table should stream through
//! dimension hash tables — the shape the paper fixes by hand in Table 3.

use morsel_datagen::SsbDb;
use morsel_exec::expr::{self, and, between, col, eq, ge, in_str, le, lit, sub, Expr};
use morsel_exec::join::JoinKind;
use morsel_planner::{AggSpec, LogicalPlan, OrderBy};

use crate::util::disc_product;

fn dates(db: &SsbDb, filter: Option<Expr>, cols: &[&str]) -> LogicalPlan {
    LogicalPlan::scan("date", db.date_dim.clone(), filter, cols)
}

/// Q1.x: revenue from discount brackets in a date window.
fn q1_template(db: &SsbDb, date_filter: Expr, disc: (i64, i64), qty: Expr) -> LogicalPlan {
    let dim = dates(db, Some(date_filter), &["d_datekey"]);
    LogicalPlan::scan_project(
        "lineorder",
        db.lineorder.clone(),
        Some(and(between(col(7), disc.0, disc.1), qty)),
        vec![
            ("lo_orderdate", col(4)),
            ("rev", disc_product(col(6), col(7))),
        ],
    )
    .join_kind(dim, &["lo_orderdate"], &["d_datekey"], JoinKind::Semi)
    .aggregate(&[], vec![("revenue", AggSpec::sum("rev"))])
}

pub fn q1_1(db: &SsbDb) -> LogicalPlan {
    q1_template(db, eq(col(1), lit(1993)), (1, 3), expr::lt(col(5), lit(25)))
}

pub fn q1_2(db: &SsbDb) -> LogicalPlan {
    q1_template(db, eq(col(2), lit(199401)), (4, 6), between(col(5), 26, 35))
}

pub fn q1_3(db: &SsbDb) -> LogicalPlan {
    q1_template(
        db,
        and(eq(col(4), lit(6)), eq(col(1), lit(1994))),
        (5, 7),
        between(col(5), 26, 35),
    )
}

/// Q2.x: revenue by year and brand for a part subset and supplier region.
fn q2_template(db: &SsbDb, part_filter: Expr, region: &str) -> LogicalPlan {
    let parts = LogicalPlan::scan(
        "part",
        db.part.clone(),
        Some(part_filter),
        &["p_partkey", "p_brand1"],
    );
    let supp = LogicalPlan::scan(
        "supplier",
        db.supplier.clone(),
        Some(eq(col(4), expr::lits(region))),
        &["s_suppkey"],
    );
    let dim = dates(db, None, &["d_datekey", "d_year"]);
    LogicalPlan::scan(
        "lineorder",
        db.lineorder.clone(),
        None,
        &["lo_partkey", "lo_suppkey", "lo_orderdate", "lo_revenue"],
    )
    .join(parts, &["lo_partkey"], &["p_partkey"])
    .join_kind(supp, &["lo_suppkey"], &["s_suppkey"], JoinKind::Semi)
    .join(dim, &["lo_orderdate"], &["d_datekey"])
    .aggregate(
        &["d_year", "p_brand1"],
        vec![("revenue", AggSpec::sum("lo_revenue"))],
    )
    .sort(vec![OrderBy::asc("d_year"), OrderBy::asc("p_brand1")], None)
}

pub fn q2_1(db: &SsbDb) -> LogicalPlan {
    q2_template(db, eq(col(3), expr::lits("MFGR#12")), "AMERICA")
}

pub fn q2_2(db: &SsbDb) -> LogicalPlan {
    q2_template(
        db,
        and(
            ge(col(4), expr::lits("MFGR#2221")),
            le(col(4), expr::lits("MFGR#2228")),
        ),
        "ASIA",
    )
}

pub fn q2_3(db: &SsbDb) -> LogicalPlan {
    q2_template(db, eq(col(4), expr::lits("MFGR#2239")), "EUROPE")
}

/// Q3.x: revenue by customer/supplier geography and year.
fn q3_template(
    db: &SsbDb,
    cust_filter: Expr,
    supp_filter: Expr,
    cust_group: &str,
    supp_group: &str,
    date_filter: Option<Expr>,
) -> LogicalPlan {
    let cust = LogicalPlan::scan_project(
        "customer",
        db.customer.clone(),
        Some(cust_filter),
        vec![("c_custkey", col(0)), ("c_group", col_by_name(cust_group))],
    );
    let supp = LogicalPlan::scan_project(
        "supplier",
        db.supplier.clone(),
        Some(supp_filter),
        vec![("s_suppkey", col(0)), ("s_group", col_by_name(supp_group))],
    );
    let dim = dates(db, date_filter, &["d_datekey", "d_year"]);
    LogicalPlan::scan(
        "lineorder",
        db.lineorder.clone(),
        None,
        &["lo_custkey", "lo_suppkey", "lo_orderdate", "lo_revenue"],
    )
    .join(cust, &["lo_custkey"], &["c_custkey"])
    .join(supp, &["lo_suppkey"], &["s_suppkey"])
    .join(dim, &["lo_orderdate"], &["d_datekey"])
    .aggregate(
        &["c_group", "s_group", "d_year"],
        vec![("revenue", AggSpec::sum("lo_revenue"))],
    )
    .sort(vec![OrderBy::asc("d_year"), OrderBy::desc("revenue")], None)
}

// Customer/supplier columns: 0 key, 1 name, 2 city, 3 nation, 4 region
// (the two dimension schemas share this layout).
fn col_by_name(name: &str) -> Expr {
    match name {
        "city" => col(2),
        "nation" => col(3),
        "region" => col(4),
        other => panic!("unknown dimension group column {other}"),
    }
}

pub fn q3_1(db: &SsbDb) -> LogicalPlan {
    q3_template(
        db,
        eq(col(4), expr::lits("ASIA")),
        eq(col(4), expr::lits("ASIA")),
        "nation",
        "nation",
        Some(between(col(1), 1992, 1997)),
    )
}

pub fn q3_2(db: &SsbDb) -> LogicalPlan {
    q3_template(
        db,
        eq(col(3), expr::lits("UNITED STATES")),
        eq(col(3), expr::lits("UNITED STATES")),
        "city",
        "city",
        Some(between(col(1), 1992, 1997)),
    )
}

pub fn q3_3(db: &SsbDb) -> LogicalPlan {
    let cities: [&str; 2] = ["UNITED KI1", "UNITED KI5"];
    q3_template(
        db,
        in_str(col(2), &cities),
        in_str(col(2), &cities),
        "city",
        "city",
        Some(between(col(1), 1992, 1997)),
    )
}

pub fn q3_4(db: &SsbDb) -> LogicalPlan {
    let cities: [&str; 2] = ["UNITED KI1", "UNITED KI5"];
    q3_template(
        db,
        in_str(col(2), &cities),
        in_str(col(2), &cities),
        "city",
        "city",
        Some(eq(col(3), expr::lits("Dec1997"))),
    )
}

/// Q4.x: profit (revenue - supplycost) drill-down.
pub fn q4_1(db: &SsbDb) -> LogicalPlan {
    let cust = LogicalPlan::scan(
        "customer",
        db.customer.clone(),
        Some(eq(col(4), expr::lits("AMERICA"))),
        &["c_custkey", "c_nation"],
    );
    let supp = LogicalPlan::scan(
        "supplier",
        db.supplier.clone(),
        Some(eq(col(4), expr::lits("AMERICA"))),
        &["s_suppkey"],
    );
    let parts = LogicalPlan::scan(
        "part",
        db.part.clone(),
        Some(in_str(col(2), &["MFGR#1", "MFGR#2"])),
        &["p_partkey"],
    );
    let dim = dates(db, None, &["d_datekey", "d_year"]);
    LogicalPlan::scan_project(
        "lineorder",
        db.lineorder.clone(),
        None,
        vec![
            ("lo_custkey", col(1)),
            ("lo_partkey", col(2)),
            ("lo_suppkey", col(3)),
            ("lo_orderdate", col(4)),
            ("profit", sub(col(8), col(9))),
        ],
    )
    .join_kind(supp, &["lo_suppkey"], &["s_suppkey"], JoinKind::Semi)
    .join_kind(parts, &["lo_partkey"], &["p_partkey"], JoinKind::Semi)
    .join(cust, &["lo_custkey"], &["c_custkey"])
    .join(dim, &["lo_orderdate"], &["d_datekey"])
    .aggregate(
        &["d_year", "c_nation"],
        vec![("profit", AggSpec::sum("profit"))],
    )
    .sort(vec![OrderBy::asc("d_year"), OrderBy::asc("c_nation")], None)
}

pub fn q4_2(db: &SsbDb) -> LogicalPlan {
    let cust = LogicalPlan::scan(
        "customer",
        db.customer.clone(),
        Some(eq(col(4), expr::lits("AMERICA"))),
        &["c_custkey"],
    );
    let supp = LogicalPlan::scan(
        "supplier",
        db.supplier.clone(),
        Some(eq(col(4), expr::lits("AMERICA"))),
        &["s_suppkey", "s_nation"],
    );
    let parts = LogicalPlan::scan(
        "part",
        db.part.clone(),
        Some(in_str(col(2), &["MFGR#1", "MFGR#2"])),
        &["p_partkey", "p_category"],
    );
    let dim = dates(db, Some(years_1997_1998()), &["d_datekey", "d_year"]);
    LogicalPlan::scan_project(
        "lineorder",
        db.lineorder.clone(),
        None,
        vec![
            ("lo_custkey", col(1)),
            ("lo_partkey", col(2)),
            ("lo_suppkey", col(3)),
            ("lo_orderdate", col(4)),
            ("profit", sub(col(8), col(9))),
        ],
    )
    .join_kind(cust, &["lo_custkey"], &["c_custkey"], JoinKind::Semi)
    .join(supp, &["lo_suppkey"], &["s_suppkey"])
    .join(parts, &["lo_partkey"], &["p_partkey"])
    .join(dim, &["lo_orderdate"], &["d_datekey"])
    .aggregate(
        &["d_year", "s_nation", "p_category"],
        vec![("profit", AggSpec::sum("profit"))],
    )
    .sort(
        vec![
            OrderBy::asc("d_year"),
            OrderBy::asc("s_nation"),
            OrderBy::asc("p_category"),
        ],
        None,
    )
}

fn years_1997_1998() -> Expr {
    expr::in_i64(col(1), vec![1997, 1998])
}

pub fn q4_3(db: &SsbDb) -> LogicalPlan {
    let supp = LogicalPlan::scan(
        "supplier",
        db.supplier.clone(),
        Some(eq(col(3), expr::lits("UNITED STATES"))),
        &["s_suppkey", "s_city"],
    );
    let parts = LogicalPlan::scan(
        "part",
        db.part.clone(),
        Some(eq(col(3), expr::lits("MFGR#14"))),
        &["p_partkey", "p_brand1"],
    );
    let dim = dates(db, Some(years_1997_1998()), &["d_datekey", "d_year"]);
    LogicalPlan::scan_project(
        "lineorder",
        db.lineorder.clone(),
        None,
        vec![
            ("lo_partkey", col(2)),
            ("lo_suppkey", col(3)),
            ("lo_orderdate", col(4)),
            ("profit", sub(col(8), col(9))),
        ],
    )
    .join(supp, &["lo_suppkey"], &["s_suppkey"])
    .join(parts, &["lo_partkey"], &["p_partkey"])
    .join(dim, &["lo_orderdate"], &["d_datekey"])
    .aggregate(
        &["d_year", "s_city", "p_brand1"],
        vec![("profit", AggSpec::sum("profit"))],
    )
    .sort(
        vec![
            OrderBy::asc("d_year"),
            OrderBy::asc("s_city"),
            OrderBy::asc("p_brand1"),
        ],
        None,
    )
}

pub use crate::ssb_queries::IDS;

pub fn query(db: &SsbDb, id: &str) -> LogicalPlan {
    match id {
        "1.1" => q1_1(db),
        "1.2" => q1_2(db),
        "1.3" => q1_3(db),
        "2.1" => q2_1(db),
        "2.2" => q2_2(db),
        "2.3" => q2_3(db),
        "3.1" => q3_1(db),
        "3.2" => q3_2(db),
        "3.3" => q3_3(db),
        "3.4" => q3_4(db),
        "4.1" => q4_1(db),
        "4.2" => q4_2(db),
        "4.3" => q4_3(db),
        other => panic!("unknown SSB query {other}"),
    }
}

pub fn all(db: &SsbDb) -> Vec<(String, LogicalPlan)> {
    IDS.iter()
        .map(|id| (format!("SSB Q{id}"), query(db, id)))
        .collect()
}
