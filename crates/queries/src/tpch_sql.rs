//! The TPC-H logical slice as SQL text fixtures.
//!
//! Every query in [`crate::tpch_logical`] is re-expressed as `SELECT`
//! text under `sql/tpch/`. The three-way oracle in
//! `tests/planner_equivalence.rs` holds each fixture to the same bar as
//! the logical plans: parse → bind → plan → execute must return exactly
//! what the hand-authored physical plan returns.
//!
//! The texts use this engine's fixed-point dialect: decimals are cents
//! (`l_extendedprice * (100 - l_discount) / 100`), discounts are whole
//! percents (`l_discount BETWEEN 5 AND 7`), and dates are
//! `DATE 'yyyy-mm-dd'` literals over day-number columns.

pub use crate::tpch_logical::IDS;

/// SQL text of TPC-H query `number`, if it is part of the slice.
pub fn text(number: usize) -> Option<&'static str> {
    Some(match number {
        1 => include_str!("../sql/tpch/q1.sql"),
        3 => include_str!("../sql/tpch/q3.sql"),
        4 => include_str!("../sql/tpch/q4.sql"),
        5 => include_str!("../sql/tpch/q5.sql"),
        6 => include_str!("../sql/tpch/q6.sql"),
        8 => include_str!("../sql/tpch/q8.sql"),
        9 => include_str!("../sql/tpch/q9.sql"),
        10 => include_str!("../sql/tpch/q10.sql"),
        12 => include_str!("../sql/tpch/q12.sql"),
        13 => include_str!("../sql/tpch/q13.sql"),
        14 => include_str!("../sql/tpch/q14.sql"),
        18 => include_str!("../sql/tpch/q18.sql"),
        _ => return None,
    })
}

/// All fixtures as `(query number, text)` pairs.
pub fn all() -> Vec<(usize, &'static str)> {
    IDS.iter().map(|&q| (q, text(q).unwrap())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_logical_query_has_a_sql_fixture() {
        for &q in &IDS {
            let sql = text(q).unwrap_or_else(|| panic!("Q{q} fixture missing"));
            assert!(
                sql.to_ascii_lowercase().contains("select"),
                "Q{q} fixture looks empty"
            );
        }
        assert!(text(2).is_none(), "Q2 is not part of the slice");
        assert_eq!(all().len(), IDS.len());
    }
}
