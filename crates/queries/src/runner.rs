//! Convenience runners used by tests, examples, and the bench harness.

use morsel_core::{
    DispatchConfig, ExecEnv, QueryOutcome, QueryProfile, QueryStats, SimExecutor, ThreadedExecutor,
};
use morsel_exec::plan::{compile_query, Plan};
use morsel_exec::SystemVariant;
use morsel_numa::TrafficSnapshot;
use morsel_storage::Batch;

/// Outcome of one query run.
pub struct RunOutcome {
    pub name: String,
    /// Terminal state. Anything but `Completed` (a fault-injected panic,
    /// a blown memory cap, a deadline) means `result` is empty, not the
    /// query's answer; the runners also warn on stderr so a governed
    /// failure is never mistaken for an empty result set.
    pub outcome: QueryOutcome,
    pub result: Batch,
    pub stats: QueryStats,
    pub traffic: TrafficSnapshot,
    /// Per-operator runtime profile, present when the variant compiled
    /// with profiling enabled (one entry per plan node, explain order).
    pub profile: Option<QueryProfile>,
}

impl RunOutcome {
    /// Virtual (sim) or wall (threaded) seconds.
    pub fn seconds(&self) -> f64 {
        self.stats.elapsed_secs()
    }
}

/// Run one plan in the deterministic simulator.
pub fn run_sim(
    env: &ExecEnv,
    name: &str,
    plan: Plan,
    variant: SystemVariant,
    workers: usize,
    morsel_size: usize,
) -> RunOutcome {
    run_sim_n(env, name, plan, variant, workers, morsel_size, 1)
        .pop()
        .expect("one repetition requested")
}

/// [`run_sim`], executed `repeat` times back to back on fresh executors
/// (the physical plan is cloned per run, mirroring what a plan-cache hit
/// replays). Returns one outcome per run, in order.
#[allow(clippy::too_many_arguments)]
pub fn run_sim_n(
    env: &ExecEnv,
    name: &str,
    plan: Plan,
    variant: SystemVariant,
    workers: usize,
    morsel_size: usize,
    repeat: usize,
) -> Vec<RunOutcome> {
    assert!(repeat > 0, "need at least one repetition");
    (0..repeat)
        .map(|_| {
            let config = DispatchConfig::new(workers)
                .with_mode(variant.mode(workers))
                .with_morsel_size(morsel_size);
            let (spec, result) = compile_query(name, plan.clone(), variant);
            let mut sim = SimExecutor::new(env.clone(), config);
            sim.submit(spec);
            let report = sim.run();
            let handle = report.handle(name);
            let outcome = handle
                .outcome()
                .expect("sim.run() leaves every query terminal");
            warn_if_not_completed(name, outcome);
            let rows = result.lock().take().unwrap_or_default();
            RunOutcome {
                name: name.to_owned(),
                outcome,
                result: rows,
                stats: handle.stats(),
                traffic: handle.traffic(),
                profile: handle.profile(),
            }
        })
        .collect()
}

/// Run one plan on real threads.
pub fn run_threaded(
    env: &ExecEnv,
    name: &str,
    plan: Plan,
    variant: SystemVariant,
    workers: usize,
    morsel_size: usize,
) -> RunOutcome {
    run_threaded_n(env, name, plan, variant, workers, morsel_size, 1)
        .pop()
        .expect("one repetition requested")
}

/// [`run_threaded`] with repetitions; see [`run_sim_n`].
#[allow(clippy::too_many_arguments)]
pub fn run_threaded_n(
    env: &ExecEnv,
    name: &str,
    plan: Plan,
    variant: SystemVariant,
    workers: usize,
    morsel_size: usize,
    repeat: usize,
) -> Vec<RunOutcome> {
    assert!(repeat > 0, "need at least one repetition");
    (0..repeat)
        .map(|_| {
            let config = DispatchConfig::new(workers)
                .with_mode(variant.mode(workers))
                .with_morsel_size(morsel_size);
            let (spec, result) = compile_query(name, plan.clone(), variant);
            let exec = ThreadedExecutor::new(env.clone(), config);
            let handles = exec.run(vec![spec]);
            let outcome = handles[0]
                .outcome()
                .expect("exec.run() joins every query to a terminal state");
            warn_if_not_completed(name, outcome);
            let rows = result.lock().take().unwrap_or_default();
            RunOutcome {
                name: name.to_owned(),
                outcome,
                result: rows,
                stats: handles[0].stats(),
                traffic: handles[0].traffic(),
                profile: handles[0].profile(),
            }
        })
        .collect()
}

fn warn_if_not_completed(name: &str, outcome: QueryOutcome) {
    if outcome != QueryOutcome::Completed {
        eprintln!("warning: query '{name}' did not complete: {outcome:?}");
    }
}

/// Render a batch as rows of strings (tests, examples, harness output).
pub fn format_rows(batch: &Batch, limit: usize) -> Vec<String> {
    (0..batch.rows().min(limit))
        .map(|i| {
            batch
                .row(i)
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" | ")
        })
        .collect()
}
