//! Smoke tests: every TPC-H and SSB query compiles, runs to completion on
//! both executors, and agrees between the simulator and the real-thread
//! executor (the result-identity claim of DESIGN.md §5).

use morsel_core::ExecEnv;
use morsel_datagen::{generate_ssb, generate_tpch, SsbConfig, TpchConfig};
use morsel_exec::sort::{cmp_rows, SortKey};
use morsel_exec::SystemVariant;
use morsel_numa::Topology;
use morsel_queries::{run_sim, run_threaded, ssb_queries, tpch_queries};
use morsel_storage::Batch;

/// Canonical form: rows sorted by every column ascending.
fn canonical(b: &Batch) -> Batch {
    let keys: Vec<SortKey> = (0..b.width()).map(SortKey::asc).collect();
    let mut perm: Vec<u32> = (0..b.rows() as u32).collect();
    perm.sort_by(|&x, &y| cmp_rows(b, x as usize, b, y as usize, &keys));
    b.reordered(&perm)
}

fn batches_close(a: &Batch, b: &Batch) -> bool {
    if a.rows() != b.rows() || a.width() != b.width() {
        return false;
    }
    for c in 0..a.width() {
        match (a.column(c), b.column(c)) {
            (morsel_storage::Column::F64(x), morsel_storage::Column::F64(y)) => {
                if !x
                    .iter()
                    .zip(y)
                    .all(|(p, q)| (p - q).abs() < 1e-6 * (1.0 + p.abs()))
                {
                    return false;
                }
            }
            (x, y) => {
                if x != y {
                    return false;
                }
            }
        }
    }
    true
}

#[test]
fn all_tpch_queries_run_and_executors_agree() {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let db = generate_tpch(
        TpchConfig {
            scale: 0.002,
            ..Default::default()
        },
        &topo,
    );
    for q in 1..=22 {
        let sim = run_sim(
            &env,
            &format!("q{q}"),
            tpch_queries::query(&db, q),
            SystemVariant::full(),
            16,
            1024,
        );
        let thr = run_threaded(
            &env,
            &format!("q{q}"),
            tpch_queries::query(&db, q),
            SystemVariant::full(),
            4,
            1024,
        );
        assert!(
            batches_close(&canonical(&sim.result), &canonical(&thr.result)),
            "Q{q}: sim and threaded results differ ({} vs {} rows)",
            sim.result.rows(),
            thr.result.rows()
        );
        assert!(sim.stats.elapsed_ns() > 0, "Q{q}: no virtual time elapsed");
        assert!(sim.traffic.total_read() > 0, "Q{q}: no traffic recorded");
    }
}

#[test]
fn all_ssb_queries_run_and_executors_agree() {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let db = generate_ssb(
        SsbConfig {
            scale: 0.002,
            ..Default::default()
        },
        &topo,
    );
    for id in ssb_queries::IDS {
        let sim = run_sim(
            &env,
            &format!("ssb{id}"),
            ssb_queries::query(&db, id),
            SystemVariant::full(),
            16,
            1024,
        );
        let thr = run_threaded(
            &env,
            &format!("ssb{id}"),
            ssb_queries::query(&db, id),
            SystemVariant::full(),
            4,
            1024,
        );
        assert!(
            batches_close(&canonical(&sim.result), &canonical(&thr.result)),
            "SSB {id}: executors disagree"
        );
    }
}

#[test]
fn tpch_variants_agree_on_results() {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let db = generate_tpch(
        TpchConfig {
            scale: 0.002,
            ..Default::default()
        },
        &topo,
    );
    // A representative subset across operator shapes.
    for q in [1, 3, 6, 13, 18] {
        let reference = canonical(
            &run_sim(
                &env,
                "ref",
                tpch_queries::query(&db, q),
                SystemVariant::full(),
                16,
                1024,
            )
            .result,
        );
        for variant in SystemVariant::all() {
            let got = canonical(
                &run_sim(&env, "v", tpch_queries::query(&db, q), variant, 16, 1024).result,
            );
            assert!(
                batches_close(&reference, &got),
                "Q{q}: variant {} diverges",
                variant.name
            );
        }
    }
}
