//! Correctness of the TPC-H plans against independent brute-force
//! reference implementations computed straight from the generated tables.

use std::collections::HashMap;

use morsel_core::ExecEnv;
use morsel_datagen::{generate_tpch, TpchConfig, TpchDb};
use morsel_exec::SystemVariant;
use morsel_numa::Topology;
use morsel_queries::{run_sim, tpch_queries};
use morsel_storage::{date, Batch};

fn db() -> (TpchDb, ExecEnv) {
    let topo = Topology::nehalem_ex();
    let db = generate_tpch(
        TpchConfig {
            scale: 0.003,
            ..Default::default()
        },
        &topo,
    );
    (db, ExecEnv::new(topo))
}

fn run(db: &TpchDb, env: &ExecEnv, q: usize) -> Batch {
    run_sim(
        env,
        &format!("q{q}"),
        tpch_queries::query(db, q),
        SystemVariant::full(),
        16,
        2048,
    )
    .result
}

struct Lineitem {
    orderkey: Vec<i64>,
    quantity: Vec<i64>,
    extprice: Vec<i64>,
    discount: Vec<i64>,
    tax: Vec<i64>,
    returnflag: Vec<String>,
    linestatus: Vec<String>,
    shipdate: Vec<i32>,
    commitdate: Vec<i32>,
    receiptdate: Vec<i32>,
    shipmode: Vec<String>,
}

fn lineitem(db: &TpchDb) -> Lineitem {
    let l = db.lineitem.gather();
    Lineitem {
        orderkey: l.column(0).as_i64().to_vec(),
        quantity: l.column(4).as_i64().to_vec(),
        extprice: l.column(5).as_i64().to_vec(),
        discount: l.column(6).as_i64().to_vec(),
        tax: l.column(7).as_i64().to_vec(),
        returnflag: l.column(8).as_str().to_vec(),
        linestatus: l.column(9).as_str().to_vec(),
        shipdate: l.column(10).as_i32().to_vec(),
        commitdate: l.column(11).as_i32().to_vec(),
        receiptdate: l.column(12).as_i32().to_vec(),
        shipmode: l.column(14).as_str().to_vec(),
    }
}

#[test]
fn q1_matches_reference() {
    let (db, env) = db();
    let out = run(&db, &env, 1);
    let l = lineitem(&db);

    let cutoff = date(1998, 9, 2);
    type Q1Acc = (i64, i64, i64, i64, i64);
    let mut groups: HashMap<(String, String), Q1Acc> = HashMap::new();
    for i in 0..l.orderkey.len() {
        if l.shipdate[i] > cutoff {
            continue;
        }
        let key = (l.returnflag[i].clone(), l.linestatus[i].clone());
        let disc_price = l.extprice[i] * (100 - l.discount[i]) / 100;
        let charge = disc_price * (100 + l.tax[i]) / 100;
        let e = groups.entry(key).or_default();
        e.0 += l.quantity[i];
        e.1 += l.extprice[i];
        e.2 += disc_price;
        e.3 += charge;
        e.4 += 1;
    }
    assert_eq!(out.rows(), groups.len());
    for i in 0..out.rows() {
        let key = (
            out.column(0).as_str()[i].clone(),
            out.column(1).as_str()[i].clone(),
        );
        let g = groups.get(&key).expect("unexpected group");
        assert_eq!(out.column(2).as_i64()[i], g.0, "sum_qty {key:?}");
        assert_eq!(out.column(3).as_i64()[i], g.1, "sum_base {key:?}");
        assert_eq!(out.column(4).as_i64()[i], g.2, "sum_disc_price {key:?}");
        assert_eq!(out.column(5).as_i64()[i], g.3, "sum_charge {key:?}");
        assert_eq!(out.column(9).as_i64()[i], g.4, "count {key:?}");
        let avg_qty = out.column(6).as_f64()[i];
        assert!((avg_qty - g.0 as f64 / g.4 as f64).abs() < 1e-9);
    }
    // Sorted by returnflag, linestatus.
    for i in 1..out.rows() {
        let a = (
            &out.column(0).as_str()[i - 1],
            &out.column(1).as_str()[i - 1],
        );
        let b = (&out.column(0).as_str()[i], &out.column(1).as_str()[i]);
        assert!(a <= b);
    }
}

#[test]
fn q4_matches_reference() {
    let (db, env) = db();
    let out = run(&db, &env, 4);
    let l = lineitem(&db);
    let o = db.orders.gather();

    let mut late_orders: std::collections::HashSet<i64> = Default::default();
    for i in 0..l.orderkey.len() {
        if l.commitdate[i] < l.receiptdate[i] {
            late_orders.insert(l.orderkey[i]);
        }
    }
    let lo = date(1993, 7, 1);
    let hi = date(1993, 10, 1) - 1;
    let mut counts: HashMap<String, i64> = HashMap::new();
    for i in 0..o.rows() {
        let od = o.column(4).as_i32()[i];
        if od >= lo && od <= hi && late_orders.contains(&o.column(0).as_i64()[i]) {
            *counts.entry(o.column(5).as_str()[i].clone()).or_default() += 1;
        }
    }
    assert_eq!(out.rows(), counts.len());
    for i in 0..out.rows() {
        let prio = &out.column(0).as_str()[i];
        assert_eq!(out.column(1).as_i64()[i], counts[prio], "priority {prio}");
    }
}

#[test]
fn q6_matches_reference() {
    let (db, env) = db();
    let out = run(&db, &env, 6);
    let l = lineitem(&db);
    let lo = date(1994, 1, 1);
    let hi = date(1995, 1, 1) - 1;
    let mut expect = 0i64;
    for i in 0..l.orderkey.len() {
        if l.shipdate[i] >= lo
            && l.shipdate[i] <= hi
            && (5..=7).contains(&l.discount[i])
            && l.quantity[i] < 24
        {
            expect += l.extprice[i] * l.discount[i] / 100;
        }
    }
    assert_eq!(out.rows(), 1);
    assert_eq!(out.column(0).as_i64(), &[expect]);
}

#[test]
fn q12_matches_reference() {
    let (db, env) = db();
    let out = run(&db, &env, 12);
    let l = lineitem(&db);
    let o = db.orders.gather();
    let mut prio_of: HashMap<i64, String> = HashMap::new();
    for i in 0..o.rows() {
        prio_of.insert(o.column(0).as_i64()[i], o.column(5).as_str()[i].clone());
    }
    let lo = date(1994, 1, 1);
    let hi = date(1995, 1, 1) - 1;
    let mut expect: HashMap<String, (i64, i64)> = HashMap::new();
    for i in 0..l.orderkey.len() {
        let sm = &l.shipmode[i];
        if (sm == "MAIL" || sm == "SHIP")
            && l.commitdate[i] < l.receiptdate[i]
            && l.shipdate[i] < l.commitdate[i]
            && l.receiptdate[i] >= lo
            && l.receiptdate[i] <= hi
        {
            let prio = &prio_of[&l.orderkey[i]];
            let e = expect.entry(sm.clone()).or_default();
            if prio == "1-URGENT" || prio == "2-HIGH" {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
    }
    assert_eq!(out.rows(), expect.len());
    for i in 0..out.rows() {
        let sm = &out.column(0).as_str()[i];
        assert_eq!(out.column(1).as_i64()[i], expect[sm].0);
        assert_eq!(out.column(2).as_i64()[i], expect[sm].1);
    }
}

#[test]
fn q13_matches_reference() {
    let (db, env) = db();
    let out = run(&db, &env, 13);
    let o = db.orders.gather();
    let c = db.customer.gather();
    let pattern = morsel_exec::expr::LikePattern::parse("%special%requests%");
    let mut orders_per_cust: HashMap<i64, i64> = HashMap::new();
    for i in 0..o.rows() {
        if !pattern.matches(&o.column(8).as_str()[i]) {
            *orders_per_cust.entry(o.column(1).as_i64()[i]).or_default() += 1;
        }
    }
    let mut dist: HashMap<i64, i64> = HashMap::new();
    for i in 0..c.rows() {
        let n = orders_per_cust
            .get(&c.column(0).as_i64()[i])
            .copied()
            .unwrap_or(0);
        *dist.entry(n).or_default() += 1;
    }
    assert_eq!(out.rows(), dist.len());
    // Zero-order customers must exist (the mod-3 rule).
    assert!(dist[&0] > 0);
    for i in 0..out.rows() {
        let c_count = out.column(0).as_i64()[i];
        assert_eq!(
            out.column(1).as_i64()[i],
            dist[&c_count],
            "c_count {c_count}"
        );
    }
    // Sorted by custdist desc, c_count desc.
    for i in 1..out.rows() {
        let a = (out.column(1).as_i64()[i - 1], out.column(0).as_i64()[i - 1]);
        let b = (out.column(1).as_i64()[i], out.column(0).as_i64()[i]);
        assert!(a >= b);
    }
}

#[test]
fn q19_matches_reference() {
    let (db, env) = db();
    let out = run(&db, &env, 19);
    let l = db.lineitem.gather();
    let p = db.part.gather();
    let mut brand: HashMap<i64, (String, String, i64)> = HashMap::new();
    for i in 0..p.rows() {
        brand.insert(
            p.column(0).as_i64()[i],
            (
                p.column(3).as_str()[i].clone(),
                p.column(6).as_str()[i].clone(),
                p.column(5).as_i64()[i],
            ),
        );
    }
    let mut expect = 0i64;
    for i in 0..l.rows() {
        let sm = &l.column(14).as_str()[i];
        if !(sm == "AIR" || sm == "AIR REG") {
            continue;
        }
        if l.column(13).as_str()[i] != "DELIVER IN PERSON" {
            continue;
        }
        let (b, cont, size) = &brand[&l.column(1).as_i64()[i]];
        let q = l.column(4).as_i64()[i];
        let ok = (b == "Brand#12"
            && ["SM CASE", "SM BOX", "SM PACK", "SM PKG"].contains(&cont.as_str())
            && (1..=11).contains(&q)
            && (1..=5).contains(size))
            || (b == "Brand#23"
                && ["MED BAG", "MED BOX", "MED PKG", "MED PACK"].contains(&cont.as_str())
                && (10..=20).contains(&q)
                && (1..=10).contains(size))
            || (b == "Brand#34"
                && ["LG CASE", "LG BOX", "LG PACK", "LG PKG"].contains(&cont.as_str())
                && (20..=30).contains(&q)
                && (1..=15).contains(size));
        if ok {
            expect += l.column(5).as_i64()[i] * (100 - l.column(6).as_i64()[i]) / 100;
        }
    }
    assert_eq!(out.rows(), 1);
    assert_eq!(out.column(0).as_i64(), &[expect]);
}

#[test]
fn q22_matches_reference() {
    let (db, env) = db();
    let out = run(&db, &env, 22);
    let c = db.customer.gather();
    let o = db.orders.gather();
    let codes = ["13", "31", "23", "29", "30", "18", "17"];
    let has_orders: std::collections::HashSet<i64> =
        (0..o.rows()).map(|i| o.column(1).as_i64()[i]).collect();

    let mut bal_sum = 0i64;
    let mut bal_n = 0i64;
    for i in 0..c.rows() {
        let code = &c.column(4).as_str()[i][..2];
        let bal = c.column(5).as_i64()[i];
        if codes.contains(&code) && bal > 0 {
            bal_sum += bal;
            bal_n += 1;
        }
    }
    let avg = bal_sum as f64 / bal_n as f64;

    let mut expect: HashMap<String, (i64, i64)> = HashMap::new();
    for i in 0..c.rows() {
        let code = &c.column(4).as_str()[i][..2];
        let bal = c.column(5).as_i64()[i];
        let key = c.column(0).as_i64()[i];
        if codes.contains(&code) && (bal as f64) > avg && !has_orders.contains(&key) {
            let e = expect.entry(code.to_owned()).or_default();
            e.0 += 1;
            e.1 += bal;
        }
    }
    assert_eq!(out.rows(), expect.len());
    for i in 0..out.rows() {
        let code = &out.column(0).as_str()[i];
        assert_eq!(out.column(1).as_i64()[i], expect[code].0, "numcust {code}");
        assert_eq!(
            out.column(2).as_i64()[i],
            expect[code].1,
            "totacctbal {code}"
        );
    }
}

#[test]
fn q18_matches_reference() {
    let (db, env) = db();
    let out = run(&db, &env, 18);
    let l = lineitem(&db);
    let mut qty: HashMap<i64, i64> = HashMap::new();
    for i in 0..l.orderkey.len() {
        *qty.entry(l.orderkey[i]).or_default() += l.quantity[i];
    }
    let expect: usize = qty.values().filter(|&&q| q > 300).count();
    assert_eq!(out.rows(), expect.min(100));
    // All reported orders really exceed 300.
    for i in 0..out.rows() {
        assert!(out.column(4).as_i64()[i] > 300);
    }
}
