-- SSB Q4.3: profit drill-down to supplier city and brand.
SELECT d_year, s_city, p_brand1, SUM(lo_revenue - lo_supplycost) AS profit
FROM lineorder
JOIN supplier ON lo_suppkey = s_suppkey
JOIN part ON lo_partkey = p_partkey
JOIN date ON lo_orderdate = d_datekey
WHERE s_nation = 'UNITED STATES'
  AND p_category = 'MFGR#14'
  AND d_year IN (1997, 1998)
GROUP BY d_year, s_city, p_brand1
ORDER BY d_year, s_city, p_brand1
