-- SSB Q1.2: discount-bracket revenue in a month.
SELECT SUM(lo_extendedprice * lo_discount / 100) AS revenue
FROM lineorder
SEMI JOIN (SELECT d_datekey FROM date WHERE d_yearmonthnum = 199401) AS d
  ON lo_orderdate = d_datekey
WHERE lo_discount BETWEEN 4 AND 6 AND lo_quantity BETWEEN 26 AND 35
