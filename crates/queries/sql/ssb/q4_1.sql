-- SSB Q4.1: profit by year and customer nation.
SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit
FROM lineorder
SEMI JOIN (SELECT s_suppkey FROM supplier WHERE s_region = 'AMERICA') AS s
  ON lo_suppkey = s_suppkey
SEMI JOIN (SELECT p_partkey FROM part WHERE p_mfgr IN ('MFGR#1', 'MFGR#2')) AS p
  ON lo_partkey = p_partkey
JOIN customer ON lo_custkey = c_custkey
JOIN date ON lo_orderdate = d_datekey
WHERE c_region = 'AMERICA'
GROUP BY d_year, c_nation
ORDER BY d_year, c_nation
