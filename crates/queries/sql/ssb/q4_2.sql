-- SSB Q4.2: profit drill-down to supplier nation and part category.
SELECT d_year, s_nation, p_category, SUM(lo_revenue - lo_supplycost) AS profit
FROM lineorder
SEMI JOIN (SELECT c_custkey FROM customer WHERE c_region = 'AMERICA') AS c
  ON lo_custkey = c_custkey
JOIN supplier ON lo_suppkey = s_suppkey
JOIN part ON lo_partkey = p_partkey
JOIN date ON lo_orderdate = d_datekey
WHERE s_region = 'AMERICA'
  AND p_mfgr IN ('MFGR#1', 'MFGR#2')
  AND d_year IN (1997, 1998)
GROUP BY d_year, s_nation, p_category
ORDER BY d_year, s_nation, p_category
