-- SSB Q3.1: revenue by customer/supplier nation in a region.
SELECT c_nation AS c_group, s_nation AS s_group, d_year, SUM(lo_revenue) AS revenue
FROM lineorder
JOIN customer ON lo_custkey = c_custkey
JOIN supplier ON lo_suppkey = s_suppkey
JOIN date ON lo_orderdate = d_datekey
WHERE c_region = 'ASIA' AND s_region = 'ASIA' AND d_year BETWEEN 1992 AND 1997
GROUP BY c_group, s_group, d_year
ORDER BY d_year, revenue DESC
