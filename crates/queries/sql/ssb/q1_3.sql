-- SSB Q1.3: discount-bracket revenue in a week.
SELECT SUM(lo_extendedprice * lo_discount / 100) AS revenue
FROM lineorder
SEMI JOIN (SELECT d_datekey FROM date
           WHERE d_weeknuminyear = 6 AND d_year = 1994) AS d
  ON lo_orderdate = d_datekey
WHERE lo_discount BETWEEN 5 AND 7 AND lo_quantity BETWEEN 26 AND 35
