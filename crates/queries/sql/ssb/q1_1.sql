-- SSB Q1.1: discount-bracket revenue in a year.
SELECT SUM(lo_extendedprice * lo_discount / 100) AS revenue
FROM lineorder
SEMI JOIN (SELECT d_datekey FROM date WHERE d_year = 1993) AS d
  ON lo_orderdate = d_datekey
WHERE lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25
