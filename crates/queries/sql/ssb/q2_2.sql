-- SSB Q2.2: revenue by year and brand, a brand range.
SELECT d_year, p_brand1, SUM(lo_revenue) AS revenue
FROM lineorder
JOIN part ON lo_partkey = p_partkey
SEMI JOIN (SELECT s_suppkey FROM supplier WHERE s_region = 'ASIA') AS s
  ON lo_suppkey = s_suppkey
JOIN date ON lo_orderdate = d_datekey
WHERE p_brand1 BETWEEN 'MFGR#2221' AND 'MFGR#2228'
GROUP BY d_year, p_brand1
ORDER BY d_year, p_brand1
