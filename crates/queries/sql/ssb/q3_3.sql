-- SSB Q3.3: revenue between two cities.
SELECT c_city AS c_group, s_city AS s_group, d_year, SUM(lo_revenue) AS revenue
FROM lineorder
JOIN customer ON lo_custkey = c_custkey
JOIN supplier ON lo_suppkey = s_suppkey
JOIN date ON lo_orderdate = d_datekey
WHERE c_city IN ('UNITED KI1', 'UNITED KI5')
  AND s_city IN ('UNITED KI1', 'UNITED KI5')
  AND d_year BETWEEN 1992 AND 1997
GROUP BY c_group, s_group, d_year
ORDER BY d_year, revenue DESC
