-- SSB Q2.1: revenue by year and brand, one part category.
SELECT d_year, p_brand1, SUM(lo_revenue) AS revenue
FROM lineorder
JOIN part ON lo_partkey = p_partkey
SEMI JOIN (SELECT s_suppkey FROM supplier WHERE s_region = 'AMERICA') AS s
  ON lo_suppkey = s_suppkey
JOIN date ON lo_orderdate = d_datekey
WHERE p_category = 'MFGR#12'
GROUP BY d_year, p_brand1
ORDER BY d_year, p_brand1
