-- TPC-H Q14: promotion effect (percentage over two conditional sums).
SELECT 100.0 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                        THEN l_extendedprice * (100 - l_discount) / 100
                        ELSE 0 END)
       / SUM(l_extendedprice * (100 - l_discount) / 100) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= DATE '1995-09-01' AND l_shipdate < DATE '1995-10-01'
