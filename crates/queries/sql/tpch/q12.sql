-- TPC-H Q12: shipping modes and order priority (conditional sums).
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') THEN 0 ELSE 1 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1995-01-01'
GROUP BY l_shipmode
ORDER BY l_shipmode
