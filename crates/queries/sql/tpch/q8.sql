-- TPC-H Q8: national market share (nation self-join via aliases).
SELECT EXTRACT(YEAR FROM o_orderdate) AS o_year,
       SUM(CASE WHEN n1.n_name = 'BRAZIL'
                THEN l_extendedprice * (100 - l_discount) / 100
                ELSE 0 END) * 1.0
         / SUM(l_extendedprice * (100 - l_discount) / 100) AS mkt_share
FROM part, supplier, lineitem, orders, customer, nation AS n1, nation AS n2, region
WHERE p_partkey = l_partkey
  AND s_suppkey = l_suppkey
  AND l_orderkey = o_orderkey
  AND o_custkey = c_custkey
  AND c_nationkey = n2.n_nationkey
  AND s_nationkey = n1.n_nationkey
  AND n2.n_regionkey = r_regionkey
  AND r_name = 'AMERICA'
  AND p_type = 'ECONOMY ANODIZED STEEL'
  AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
GROUP BY o_year
ORDER BY o_year
