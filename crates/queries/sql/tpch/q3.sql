-- TPC-H Q3: shipping priority (comma FROM, joins from WHERE).
SELECT l_orderkey, o_orderdate, o_shippriority,
       SUM(l_extendedprice * (100 - l_discount) / 100) AS revenue
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate ASC
LIMIT 10
