-- TPC-H Q4: order priority checking (SEMI JOIN spells EXISTS).
SELECT o_orderpriority, COUNT(*) AS order_count
FROM orders
SEMI JOIN (SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate) AS l
  ON o_orderkey = l_orderkey
WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-10-01'
GROUP BY o_orderpriority
ORDER BY o_orderpriority
