-- TPC-H Q1: pricing summary report (fixed-point cents dialect).
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (100 - l_discount) / 100) AS sum_disc_price,
       SUM(l_extendedprice * (100 - l_discount) / 100 * (100 + l_tax) / 100) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
