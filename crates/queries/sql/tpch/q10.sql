-- TPC-H Q10: returned item reporting (top 20 customers).
SELECT o_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment,
       SUM(l_extendedprice * (100 - l_discount) / 100) AS revenue
FROM lineitem, orders, customer, nation
WHERE l_orderkey = o_orderkey
  AND o_custkey = c_custkey
  AND c_nationkey = n_nationkey
  AND o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1994-01-01'
  AND l_returnflag = 'R'
GROUP BY o_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
ORDER BY revenue DESC
LIMIT 20
