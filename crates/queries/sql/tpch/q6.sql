-- TPC-H Q6: forecasting revenue change (scan + scalar aggregate).
SELECT SUM(l_extendedprice * l_discount / 100) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 5 AND 7
  AND l_quantity < 24
