-- TPC-H Q9: product type profit (composite partsupp key).
SELECT n_name AS nation,
       EXTRACT(YEAR FROM o_orderdate) AS o_year,
       SUM(l_extendedprice * (100 - l_discount) / 100 - ps_supplycost * l_quantity) AS sum_profit
FROM part, supplier, lineitem, partsupp, orders, nation
WHERE p_partkey = l_partkey
  AND s_suppkey = l_suppkey
  AND ps_partkey = l_partkey
  AND ps_suppkey = l_suppkey
  AND o_orderkey = l_orderkey
  AND s_nationkey = n_nationkey
  AND p_name LIKE '%green%'
GROUP BY nation, o_year
ORDER BY nation, o_year DESC
