-- TPC-H Q5: local supplier volume. The two supplier equalities form one
-- composite join key, closing the customer-supplier nation cycle.
SELECT n_name, SUM(l_extendedprice * (100 - l_discount) / 100) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01'
GROUP BY n_name
ORDER BY revenue DESC
