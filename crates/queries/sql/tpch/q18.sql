-- TPC-H Q18: large volume customers (aggregate feeding a join).
SELECT o_orderkey, o_custkey, o_totalprice, o_orderdate, sum_qty, c_name
FROM orders
JOIN (SELECT l_orderkey, SUM(l_quantity) AS sum_qty
      FROM lineitem GROUP BY l_orderkey
      HAVING SUM(l_quantity) > 300) AS big
  ON o_orderkey = l_orderkey
JOIN customer ON o_custkey = c_custkey
ORDER BY o_totalprice DESC, o_orderdate ASC
LIMIT 100
