-- TPC-H Q13: customer distribution (COUNT JOIN spells the fused
-- left-outer-join-then-count; it appends `match_count`).
SELECT match_count, COUNT(*) AS custdist
FROM customer
COUNT JOIN (SELECT o_custkey FROM orders
            WHERE o_comment NOT LIKE '%special%requests%') AS o
  ON c_custkey = o_custkey
GROUP BY match_count
ORDER BY custdist DESC, match_count DESC
