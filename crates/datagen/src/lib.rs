//! # morsel-datagen
//!
//! Deterministic, scale-factor-driven data generators standing in for the
//! TPC-H `dbgen` and SSB `dbgen` tools (DESIGN.md §2): schema-faithful
//! tables with the value distributions, correlations, and referential
//! integrity the benchmark queries' selectivities depend on, partitioned
//! NUMA-aware on the first primary-key attribute exactly as the paper's
//! Section 5.1 describes.

pub mod ssb;
pub mod text;
pub mod tpch;

pub use ssb::{generate as generate_ssb, SsbConfig, SsbDb};
pub use tpch::{generate as generate_tpch, TpchConfig, TpchDb};
