//! Word lists and text fragments mirroring the TPC-H dbgen distributions
//! that the benchmark queries depend on.

use rand::rngs::StdRng;
use rand::Rng;

/// The 25 TPC-H nations with their region assignment (spec table 4.2.3).
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

pub const SHIP_INSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Colors for `p_name` (subset of dbgen's 92; Q9 filters on "green").
pub const COLORS: [&str; 20] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "chartreuse",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "cyan",
    "green",
    "grey",
];

pub const TYPE_SYLL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
pub const TYPE_SYLL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
pub const TYPE_SYLL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

pub const CONTAINER_SYLL1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
pub const CONTAINER_SYLL2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Filler words for comments.
pub const COMMENT_WORDS: [&str; 24] = [
    "furiously",
    "slyly",
    "carefully",
    "blithely",
    "quickly",
    "fluffily",
    "final",
    "ironic",
    "pending",
    "regular",
    "express",
    "bold",
    "even",
    "silent",
    "unusual",
    "accounts",
    "deposits",
    "packages",
    "foxes",
    "ideas",
    "theodolites",
    "pinto",
    "beans",
    "instructions",
];

/// Random comment. With probability `special_ppm` parts-per-million the
/// comment embeds `injected` (used for Q13's "special ... requests" and
/// Q16's "Customer ... Complaints" correlations).
pub fn comment(
    rng: &mut StdRng,
    words: usize,
    injected: Option<(&str, &str)>,
    special_ppm: u32,
) -> String {
    let mut out = String::new();
    let inject = injected.is_some() && rng.gen_ratio(special_ppm, 1_000_000);
    let n = words.max(2);
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())]);
    }
    if inject {
        let (a, b) = injected.unwrap();
        let mid = COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())];
        out.push(' ');
        out.push_str(a);
        out.push(' ');
        out.push_str(mid);
        out.push(' ');
        out.push_str(b);
    }
    out
}

/// `p_name`: five space-separated colors (dbgen uses 5 of 92).
pub fn part_name(rng: &mut StdRng) -> String {
    let mut parts = Vec::with_capacity(5);
    for _ in 0..5 {
        parts.push(COLORS[rng.gen_range(0..COLORS.len())]);
    }
    parts.join(" ")
}

/// `p_type`: three syllables.
pub fn part_type(rng: &mut StdRng) -> String {
    format!(
        "{} {} {}",
        TYPE_SYLL1[rng.gen_range(0..TYPE_SYLL1.len())],
        TYPE_SYLL2[rng.gen_range(0..TYPE_SYLL2.len())],
        TYPE_SYLL3[rng.gen_range(0..TYPE_SYLL3.len())]
    )
}

pub fn container(rng: &mut StdRng) -> String {
    format!(
        "{} {}",
        CONTAINER_SYLL1[rng.gen_range(0..CONTAINER_SYLL1.len())],
        CONTAINER_SYLL2[rng.gen_range(0..CONTAINER_SYLL2.len())]
    )
}

/// Phone number whose first two digits encode the nation (Q22).
pub fn phone(rng: &mut StdRng, nationkey: i64) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        nationkey + 10,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nations_regions_consistent() {
        assert_eq!(NATIONS.len(), 25);
        assert!(NATIONS.iter().all(|&(_, r)| r < 5));
        // Spec anchors used by queries.
        assert_eq!(NATIONS[7].0, "GERMANY");
        assert_eq!(NATIONS[7].1, 3); // EUROPE
        assert_eq!(REGIONS[3], "EUROPE");
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(part_name(&mut a), part_name(&mut b));
        assert_eq!(part_type(&mut a), part_type(&mut b));
        assert_eq!(container(&mut a), container(&mut b));
        assert_eq!(phone(&mut a, 3), phone(&mut b, 3));
    }

    #[test]
    fn phone_encodes_nation() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = phone(&mut rng, 5);
        assert!(p.starts_with("15-"));
    }

    #[test]
    fn comment_injection() {
        let mut rng = StdRng::seed_from_u64(1);
        // With ppm = 1_000_000 every comment carries the pattern.
        let c = comment(&mut rng, 4, Some(("special", "requests")), 1_000_000);
        assert!(c.contains("special"));
        assert!(c.contains("requests"));
        let c2 = comment(&mut rng, 4, Some(("special", "requests")), 0);
        assert!(!c2.contains("special requests"));
    }
}
