//! Star Schema Benchmark data generation (O'Neil et al., 2007).
//!
//! One large denormalized fact table (`lineorder`) plus four small
//! dimensions (`date`, `customer`, `supplier`, `part`) — the workload of
//! the paper's Table 3, where "most of the data comes from the large fact
//! table, which can be read NUMA-locally" and all joins are selective
//! probes into small dimension tables.

use std::sync::Arc;

use morsel_numa::{Placement, Topology};
use morsel_storage::{date, date_parts, Batch, Column, DataType, PartitionBy, Relation, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::text;

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SsbConfig {
    /// SSB scale factor (1.0 = 6M lineorders).
    pub scale: f64,
    pub partitions: usize,
    pub placement: Placement,
    pub seed: u64,
}

impl Default for SsbConfig {
    fn default() -> Self {
        SsbConfig {
            scale: 0.01,
            partitions: 64,
            placement: Placement::FirstTouch,
            seed: 7,
        }
    }
}

impl SsbConfig {
    pub fn scaled(scale: f64) -> Self {
        SsbConfig {
            scale,
            ..Default::default()
        }
    }
}

/// The generated star schema.
pub struct SsbDb {
    pub lineorder: Arc<Relation>,
    pub date_dim: Arc<Relation>,
    pub customer: Arc<Relation>,
    pub supplier: Arc<Relation>,
    pub part: Arc<Relation>,
    pub config: SsbConfig,
}

impl SsbDb {
    /// Name → relation catalog for text front ends (SQL binding). The
    /// date dimension is registered as `date`, the name SSB queries use.
    pub fn catalog(&self) -> morsel_storage::Catalog {
        morsel_storage::Catalog::new()
            .with_table("lineorder", self.lineorder.clone())
            .with_table("date", self.date_dim.clone())
            .with_table("customer", self.customer.clone())
            .with_table("supplier", self.supplier.clone())
            .with_table("part", self.part.clone())
    }

    pub fn total_bytes(&self) -> u64 {
        [
            &self.lineorder,
            &self.date_dim,
            &self.customer,
            &self.supplier,
            &self.part,
        ]
        .iter()
        .map(|r| r.total_bytes())
        .sum()
    }
}

/// City name: nation prefix padded to 9 chars + digit (SSB spec format,
/// e.g. "UNITED KI1").
fn city(rng: &mut StdRng, nation: &str) -> String {
    let mut prefix: String = nation.chars().take(9).collect();
    while prefix.len() < 9 {
        prefix.push(' ');
    }
    format!("{prefix}{}", rng.gen_range(0..10))
}

pub fn generate(config: SsbConfig, topology: &Topology) -> SsbDb {
    let n_lineorder = ((6_000_000.0 * config.scale) as usize).max(1_000);
    let n_customer = ((30_000.0 * config.scale) as usize).max(100);
    let n_supplier = ((2_000.0 * config.scale) as usize).max(50);
    let n_part = ((200_000.0 * (1.0 + config.scale.log2().max(0.0))) as usize / 40).max(200);

    let date_dim = gen_date_dim();
    let customer = gen_customer(config, n_customer, topology);
    let supplier = gen_supplier(config, n_supplier, topology);
    let part = gen_part(config, n_part, topology);
    let lineorder = gen_lineorder(
        config,
        n_lineorder,
        n_customer,
        n_supplier,
        n_part,
        topology,
    );
    SsbDb {
        lineorder,
        date_dim,
        customer,
        supplier,
        part,
        config,
    }
}

/// The date dimension covers 1992-01-01 .. 1998-12-31 (2556 days).
fn gen_date_dim() -> Arc<Relation> {
    let start = date(1992, 1, 1);
    let end = date(1998, 12, 31);
    let n = (end - start + 1) as usize;
    let mut datekey = Vec::with_capacity(n);
    let mut year = Vec::with_capacity(n);
    let mut yearmonthnum = Vec::with_capacity(n);
    let mut yearmonth = Vec::with_capacity(n);
    let mut weeknuminyear = Vec::with_capacity(n);
    let mut month = Vec::with_capacity(n);
    for d in start..=end {
        let (y, m, _day) = date_parts(d);
        datekey.push(d);
        year.push(i64::from(y));
        yearmonthnum.push(i64::from(y) * 100 + i64::from(m));
        const MONTHS: [&str; 12] = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ];
        yearmonth.push(format!("{}{}", MONTHS[(m - 1) as usize], y));
        weeknuminyear.push(i64::from((d - date(y, 1, 1)) / 7 + 1));
        month.push(MONTHS[(m - 1) as usize].to_owned());
    }
    let schema = Schema::new(vec![
        ("d_datekey", DataType::I32),
        ("d_year", DataType::I64),
        ("d_yearmonthnum", DataType::I64),
        ("d_yearmonth", DataType::Str),
        ("d_weeknuminyear", DataType::I64),
        ("d_month", DataType::Str),
    ]);
    let data = Batch::from_columns(vec![
        Column::I32(datekey),
        Column::I64(year),
        Column::I64(yearmonthnum),
        Column::Str(yearmonth),
        Column::I64(weeknuminyear),
        Column::Str(month),
    ]);
    Arc::new(Relation::single(schema, data).dict_encoded())
}

fn gen_customer(config: SsbConfig, n: usize, topology: &Topology) -> Arc<Relation> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xcc);
    let mut key = Vec::with_capacity(n);
    let mut name = Vec::with_capacity(n);
    let mut cty = Vec::with_capacity(n);
    let mut nation = Vec::with_capacity(n);
    let mut region = Vec::with_capacity(n);
    let mut segment = Vec::with_capacity(n);
    for i in 0..n as i64 {
        let (nat, reg) = text::NATIONS[rng.gen_range(0..25usize)];
        key.push(i + 1);
        name.push(format!("Customer#{:09}", i + 1));
        cty.push(city(&mut rng, nat));
        nation.push(nat.to_owned());
        region.push(text::REGIONS[reg].to_owned());
        segment.push(text::SEGMENTS[rng.gen_range(0..text::SEGMENTS.len())].to_owned());
    }
    let schema = Schema::new(vec![
        ("c_custkey", DataType::I64),
        ("c_name", DataType::Str),
        ("c_city", DataType::Str),
        ("c_nation", DataType::Str),
        ("c_region", DataType::Str),
        ("c_mktsegment", DataType::Str),
    ]);
    let data = Batch::from_columns(vec![
        Column::I64(key),
        Column::Str(name),
        Column::Str(cty),
        Column::Str(nation),
        Column::Str(region),
        Column::Str(segment),
    ]);
    Arc::new(
        Relation::partitioned(
            schema,
            &data,
            PartitionBy::Hash { column: 0 },
            config.partitions,
            config.placement,
            topology,
        )
        .dict_encoded(),
    )
}

fn gen_supplier(config: SsbConfig, n: usize, topology: &Topology) -> Arc<Relation> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x55);
    let mut key = Vec::with_capacity(n);
    let mut name = Vec::with_capacity(n);
    let mut cty = Vec::with_capacity(n);
    let mut nation = Vec::with_capacity(n);
    let mut region = Vec::with_capacity(n);
    for i in 0..n as i64 {
        let (nat, reg) = text::NATIONS[rng.gen_range(0..25usize)];
        key.push(i + 1);
        name.push(format!("Supplier#{:09}", i + 1));
        cty.push(city(&mut rng, nat));
        nation.push(nat.to_owned());
        region.push(text::REGIONS[reg].to_owned());
    }
    let schema = Schema::new(vec![
        ("s_suppkey", DataType::I64),
        ("s_name", DataType::Str),
        ("s_city", DataType::Str),
        ("s_nation", DataType::Str),
        ("s_region", DataType::Str),
    ]);
    let data = Batch::from_columns(vec![
        Column::I64(key),
        Column::Str(name),
        Column::Str(cty),
        Column::Str(nation),
        Column::Str(region),
    ]);
    Arc::new(
        Relation::partitioned(
            schema,
            &data,
            PartitionBy::Hash { column: 0 },
            config.partitions,
            config.placement,
            topology,
        )
        .dict_encoded(),
    )
}

fn gen_part(config: SsbConfig, n: usize, topology: &Topology) -> Arc<Relation> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x99);
    let mut key = Vec::with_capacity(n);
    let mut name = Vec::with_capacity(n);
    let mut mfgr = Vec::with_capacity(n);
    let mut category = Vec::with_capacity(n);
    let mut brand1 = Vec::with_capacity(n);
    let mut color = Vec::with_capacity(n);
    for i in 0..n as i64 {
        let m = rng.gen_range(1..=5);
        let c = rng.gen_range(1..=5);
        let b = rng.gen_range(1..=40);
        key.push(i + 1);
        name.push(text::part_name(&mut rng));
        mfgr.push(format!("MFGR#{m}"));
        category.push(format!("MFGR#{m}{c}"));
        brand1.push(format!("MFGR#{m}{c}{b:02}"));
        color.push(text::COLORS[rng.gen_range(0..text::COLORS.len())].to_owned());
    }
    let schema = Schema::new(vec![
        ("p_partkey", DataType::I64),
        ("p_name", DataType::Str),
        ("p_mfgr", DataType::Str),
        ("p_category", DataType::Str),
        ("p_brand1", DataType::Str),
        ("p_color", DataType::Str),
    ]);
    let data = Batch::from_columns(vec![
        Column::I64(key),
        Column::Str(name),
        Column::Str(mfgr),
        Column::Str(category),
        Column::Str(brand1),
        Column::Str(color),
    ]);
    Arc::new(
        Relation::partitioned(
            schema,
            &data,
            PartitionBy::Hash { column: 0 },
            config.partitions,
            config.placement,
            topology,
        )
        .dict_encoded(),
    )
}

fn gen_lineorder(
    config: SsbConfig,
    n: usize,
    n_customer: usize,
    n_supplier: usize,
    n_part: usize,
    topology: &Topology,
) -> Arc<Relation> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x10);
    let start = date(1992, 1, 1);
    let end = date(1998, 8, 2);
    let mut orderkey = Vec::with_capacity(n);
    let mut custkey = Vec::with_capacity(n);
    let mut partkey = Vec::with_capacity(n);
    let mut suppkey = Vec::with_capacity(n);
    let mut orderdate = Vec::with_capacity(n);
    let mut quantity = Vec::with_capacity(n);
    let mut extendedprice = Vec::with_capacity(n);
    let mut discount = Vec::with_capacity(n);
    let mut revenue = Vec::with_capacity(n);
    let mut supplycost = Vec::with_capacity(n);
    for i in 0..n as i64 {
        let q = rng.gen_range(1..=50i64);
        let price = rng.gen_range(90_000..=200_000i64);
        let disc = rng.gen_range(0..=10i64);
        orderkey.push(i / 4 + 1);
        custkey.push(rng.gen_range(1..=n_customer as i64));
        partkey.push(rng.gen_range(1..=n_part as i64));
        suppkey.push(rng.gen_range(1..=n_supplier as i64));
        orderdate.push(rng.gen_range(start..=end));
        quantity.push(q);
        extendedprice.push(q * price / 100);
        discount.push(disc);
        revenue.push(q * price / 100 * (100 - disc) / 100);
        supplycost.push(rng.gen_range(50_000..=120_000i64) * q / 100);
    }
    let schema = Schema::new(vec![
        ("lo_orderkey", DataType::I64),
        ("lo_custkey", DataType::I64),
        ("lo_partkey", DataType::I64),
        ("lo_suppkey", DataType::I64),
        ("lo_orderdate", DataType::I32),
        ("lo_quantity", DataType::I64),
        ("lo_extendedprice", DataType::I64),
        ("lo_discount", DataType::I64),
        ("lo_revenue", DataType::I64),
        ("lo_supplycost", DataType::I64),
    ]);
    let data = Batch::from_columns(vec![
        Column::I64(orderkey),
        Column::I64(custkey),
        Column::I64(partkey),
        Column::I64(suppkey),
        Column::I32(orderdate),
        Column::I64(quantity),
        Column::I64(extendedprice),
        Column::I64(discount),
        Column::I64(revenue),
        Column::I64(supplycost),
    ]);
    Arc::new(
        Relation::partitioned(
            schema,
            &data,
            PartitionBy::Hash { column: 0 },
            config.partitions,
            config.placement,
            topology,
        )
        .dict_encoded(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> SsbDb {
        generate(
            SsbConfig {
                scale: 0.005,
                ..Default::default()
            },
            &Topology::nehalem_ex(),
        )
    }

    #[test]
    fn row_counts() {
        let d = db();
        assert_eq!(d.date_dim.total_rows(), 2557); // 1992..1998 incl. 2 leap years
        assert_eq!(d.lineorder.total_rows(), 30_000);
        assert!(d.customer.total_rows() >= 100);
        assert!(d.supplier.total_rows() >= 50);
        assert!(d.part.total_rows() >= 200);
    }

    #[test]
    fn foreign_keys_resolve() {
        let d = db();
        let lo = d.lineorder.gather();
        let nc = d.customer.total_rows() as i64;
        let ns = d.supplier.total_rows() as i64;
        let np = d.part.total_rows() as i64;
        for i in 0..lo.rows() {
            assert!(lo.column(1).as_i64()[i] >= 1 && lo.column(1).as_i64()[i] <= nc);
            assert!(lo.column(3).as_i64()[i] >= 1 && lo.column(3).as_i64()[i] <= ns);
            assert!(lo.column(2).as_i64()[i] >= 1 && lo.column(2).as_i64()[i] <= np);
        }
    }

    #[test]
    fn revenue_formula_holds() {
        let d = db();
        let lo = d.lineorder.gather();
        for i in 0..lo.rows().min(1000) {
            let ext = lo.column(6).as_i64()[i];
            let disc = lo.column(7).as_i64()[i];
            let rev = lo.column(8).as_i64()[i];
            assert_eq!(rev, ext * (100 - disc) / 100);
        }
    }

    #[test]
    fn date_dim_covers_lineorder_dates() {
        let d = db();
        let lo = d.lineorder.gather();
        let lo_dates = lo.column(4).as_i32();
        let dd = d.date_dim.gather();
        let min_d = *dd.column(0).as_i32().first().unwrap();
        let max_d = *dd.column(0).as_i32().last().unwrap();
        assert!(lo_dates.iter().all(|&x| x >= min_d && x <= max_d));
    }

    #[test]
    fn city_format() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = city(&mut rng, "UNITED KINGDOM");
        assert_eq!(c.len(), 10);
        assert!(c.starts_with("UNITED KI"));
    }

    #[test]
    fn brand_category_hierarchy() {
        let d = db();
        let p = d.part.gather();
        for i in 0..p.rows().min(500) {
            let mfgr = &p.column(2).as_str()[i];
            let cat = &p.column(3).as_str()[i];
            let brand = &p.column(4).as_str()[i];
            assert!(cat.starts_with(mfgr.as_str()));
            assert!(brand.starts_with(cat.as_str()));
        }
    }
}
