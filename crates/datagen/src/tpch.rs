//! TPC-H data generation at configurable scale.
//!
//! Schema-faithful substitute for dbgen (DESIGN.md §2): all 8 tables with
//! the value distributions the 22 queries' selectivities depend on —
//! uniform keys, the spec's date ranges and arithmetic, nation/region
//! mapping, the "customers with custkey ≡ 0 (mod 3) place no orders" rule
//! (Q13/Q22), injected comment correlations (Q13, Q16), and phone country
//! codes (Q22). Decimals are cents (`i64`), dates are day numbers (`i32`).

use std::sync::Arc;

use morsel_numa::{Placement, Topology};
use morsel_storage::{date, Batch, Column, DataType, PartitionBy, Relation, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::text;

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// TPC-H scale factor (1.0 = 6M lineitems). Laptop-scale defaults.
    pub scale: f64,
    /// Partitions per large relation (paper Section 5.1 uses 64).
    pub partitions: usize,
    /// NUMA placement of the partitions.
    pub placement: Placement,
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 0.01,
            partitions: 64,
            placement: Placement::FirstTouch,
            seed: 42,
        }
    }
}

impl TpchConfig {
    pub fn scaled(scale: f64) -> Self {
        TpchConfig {
            scale,
            ..Default::default()
        }
    }

    fn count(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(min)
    }
}

/// The generated database.
pub struct TpchDb {
    pub region: Arc<Relation>,
    pub nation: Arc<Relation>,
    pub supplier: Arc<Relation>,
    pub customer: Arc<Relation>,
    pub part: Arc<Relation>,
    pub partsupp: Arc<Relation>,
    pub orders: Arc<Relation>,
    pub lineitem: Arc<Relation>,
    pub config: TpchConfig,
}

impl TpchDb {
    /// Name → relation catalog for text front ends (SQL binding).
    pub fn catalog(&self) -> morsel_storage::Catalog {
        morsel_storage::Catalog::new()
            .with_table("region", self.region.clone())
            .with_table("nation", self.nation.clone())
            .with_table("supplier", self.supplier.clone())
            .with_table("customer", self.customer.clone())
            .with_table("part", self.part.clone())
            .with_table("partsupp", self.partsupp.clone())
            .with_table("orders", self.orders.clone())
            .with_table("lineitem", self.lineitem.clone())
    }

    /// Total bytes across all relations (approximate).
    pub fn total_bytes(&self) -> u64 {
        [
            &self.region,
            &self.nation,
            &self.supplier,
            &self.customer,
            &self.part,
            &self.partsupp,
            &self.orders,
            &self.lineitem,
        ]
        .iter()
        .map(|r| r.total_bytes())
        .sum()
    }

    /// Re-place all relations under a different policy (Section 5.3's
    /// placement comparison) without regenerating.
    pub fn with_placement(&self, placement: Placement, topology: &Topology) -> TpchDb {
        TpchDb {
            region: Arc::new(self.region.with_placement(placement, topology)),
            nation: Arc::new(self.nation.with_placement(placement, topology)),
            supplier: Arc::new(self.supplier.with_placement(placement, topology)),
            customer: Arc::new(self.customer.with_placement(placement, topology)),
            part: Arc::new(self.part.with_placement(placement, topology)),
            partsupp: Arc::new(self.partsupp.with_placement(placement, topology)),
            orders: Arc::new(self.orders.with_placement(placement, topology)),
            lineitem: Arc::new(self.lineitem.with_placement(placement, topology)),
            config: TpchConfig {
                placement,
                ..self.config
            },
        }
    }
}

/// Retail price formula (spec 4.2.3): deterministic in the part key.
pub fn retail_price_cents(partkey: i64) -> i64 {
    90_000 + (partkey % 20_001) + 100 * (partkey % 1_000)
}

/// Generate the full database.
pub fn generate(config: TpchConfig, topology: &Topology) -> TpchDb {
    let n_supplier = config.count(10_000, 10);
    let n_customer = config.count(150_000, 150);
    let n_part = config.count(200_000, 200);
    let n_orders = config.count(1_500_000, 1_500);

    let region = gen_region();
    let nation = gen_nation();
    let supplier = gen_supplier(config, n_supplier, topology);
    let customer = gen_customer(config, n_customer, topology);
    let part = gen_part(config, n_part, topology);
    let partsupp = gen_partsupp(config, n_part, n_supplier, topology);
    let (orders, lineitem) =
        gen_orders_lineitem(config, n_orders, n_customer, n_part, n_supplier, topology);

    TpchDb {
        region,
        nation,
        supplier,
        customer,
        part,
        partsupp,
        orders,
        lineitem,
        config,
    }
}

fn gen_region() -> Arc<Relation> {
    let schema = Schema::new(vec![
        ("r_regionkey", DataType::I64),
        ("r_name", DataType::Str),
        ("r_comment", DataType::Str),
    ]);
    let data = Batch::from_columns(vec![
        Column::I64((0..5).collect()),
        Column::Str(text::REGIONS.iter().map(|s| (*s).to_owned()).collect()),
        Column::Str((0..5).map(|i| format!("region comment {i}")).collect()),
    ]);
    Arc::new(Relation::single(schema, data).dict_encoded())
}

fn gen_nation() -> Arc<Relation> {
    let schema = Schema::new(vec![
        ("n_nationkey", DataType::I64),
        ("n_name", DataType::Str),
        ("n_regionkey", DataType::I64),
        ("n_comment", DataType::Str),
    ]);
    let data = Batch::from_columns(vec![
        Column::I64((0..25).collect()),
        Column::Str(text::NATIONS.iter().map(|&(n, _)| n.to_owned()).collect()),
        Column::I64(text::NATIONS.iter().map(|&(_, r)| r as i64).collect()),
        Column::Str((0..25).map(|i| format!("nation comment {i}")).collect()),
    ]);
    Arc::new(Relation::single(schema, data).dict_encoded())
}

fn gen_supplier(config: TpchConfig, n: usize, topology: &Topology) -> Arc<Relation> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x51);
    let mut suppkey = Vec::with_capacity(n);
    let mut name = Vec::with_capacity(n);
    let mut address = Vec::with_capacity(n);
    let mut nationkey = Vec::with_capacity(n);
    let mut phone = Vec::with_capacity(n);
    let mut acctbal = Vec::with_capacity(n);
    let mut comment = Vec::with_capacity(n);
    for i in 0..n as i64 {
        let nk = rng.gen_range(0..25i64);
        suppkey.push(i + 1);
        name.push(format!("Supplier#{:09}", i + 1));
        address.push(format!("addr {}", rng.gen_range(0..100000)));
        nationkey.push(nk);
        phone.push(text::phone(&mut rng, nk));
        acctbal.push(rng.gen_range(-99_999..=999_999i64));
        // Q16: ~0.05% of suppliers have complaint comments.
        comment.push(text::comment(
            &mut rng,
            5,
            Some(("Customer", "Complaints")),
            5_000,
        ));
    }
    let schema = Schema::new(vec![
        ("s_suppkey", DataType::I64),
        ("s_name", DataType::Str),
        ("s_address", DataType::Str),
        ("s_nationkey", DataType::I64),
        ("s_phone", DataType::Str),
        ("s_acctbal", DataType::I64),
        ("s_comment", DataType::Str),
    ]);
    let data = Batch::from_columns(vec![
        Column::I64(suppkey),
        Column::Str(name),
        Column::Str(address),
        Column::I64(nationkey),
        Column::Str(phone),
        Column::I64(acctbal),
        Column::Str(comment),
    ]);
    Arc::new(
        Relation::partitioned(
            schema,
            &data,
            PartitionBy::Hash { column: 0 },
            config.partitions.min(n.max(1)),
            config.placement,
            topology,
        )
        .dict_encoded(),
    )
}

fn gen_customer(config: TpchConfig, n: usize, topology: &Topology) -> Arc<Relation> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xc5);
    let mut custkey = Vec::with_capacity(n);
    let mut name = Vec::with_capacity(n);
    let mut address = Vec::with_capacity(n);
    let mut nationkey = Vec::with_capacity(n);
    let mut phone = Vec::with_capacity(n);
    let mut acctbal = Vec::with_capacity(n);
    let mut mktsegment = Vec::with_capacity(n);
    let mut comment = Vec::with_capacity(n);
    for i in 0..n as i64 {
        let nk = rng.gen_range(0..25i64);
        custkey.push(i + 1);
        name.push(format!("Customer#{:09}", i + 1));
        address.push(format!("addr {}", rng.gen_range(0..100000)));
        nationkey.push(nk);
        phone.push(text::phone(&mut rng, nk));
        acctbal.push(rng.gen_range(-99_999..=999_999i64));
        mktsegment.push(text::SEGMENTS[rng.gen_range(0..text::SEGMENTS.len())].to_owned());
        comment.push(text::comment(&mut rng, 4, None, 0));
    }
    let schema = Schema::new(vec![
        ("c_custkey", DataType::I64),
        ("c_name", DataType::Str),
        ("c_address", DataType::Str),
        ("c_nationkey", DataType::I64),
        ("c_phone", DataType::Str),
        ("c_acctbal", DataType::I64),
        ("c_mktsegment", DataType::Str),
        ("c_comment", DataType::Str),
    ]);
    let data = Batch::from_columns(vec![
        Column::I64(custkey),
        Column::Str(name),
        Column::Str(address),
        Column::I64(nationkey),
        Column::Str(phone),
        Column::I64(acctbal),
        Column::Str(mktsegment),
        Column::Str(comment),
    ]);
    Arc::new(
        Relation::partitioned(
            schema,
            &data,
            PartitionBy::Hash { column: 0 },
            config.partitions,
            config.placement,
            topology,
        )
        .dict_encoded(),
    )
}

fn gen_part(config: TpchConfig, n: usize, topology: &Topology) -> Arc<Relation> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x97);
    let mut partkey = Vec::with_capacity(n);
    let mut name = Vec::with_capacity(n);
    let mut mfgr = Vec::with_capacity(n);
    let mut brand = Vec::with_capacity(n);
    let mut ptype = Vec::with_capacity(n);
    let mut size = Vec::with_capacity(n);
    let mut container = Vec::with_capacity(n);
    let mut retailprice = Vec::with_capacity(n);
    let mut comment = Vec::with_capacity(n);
    for i in 0..n as i64 {
        let m = rng.gen_range(1..=5);
        partkey.push(i + 1);
        name.push(text::part_name(&mut rng));
        mfgr.push(format!("Manufacturer#{m}"));
        brand.push(format!("Brand#{}{}", m, rng.gen_range(1..=5)));
        ptype.push(text::part_type(&mut rng));
        size.push(rng.gen_range(1..=50i64));
        container.push(text::container(&mut rng));
        retailprice.push(retail_price_cents(i + 1));
        comment.push(text::comment(&mut rng, 3, None, 0));
    }
    let schema = Schema::new(vec![
        ("p_partkey", DataType::I64),
        ("p_name", DataType::Str),
        ("p_mfgr", DataType::Str),
        ("p_brand", DataType::Str),
        ("p_type", DataType::Str),
        ("p_size", DataType::I64),
        ("p_container", DataType::Str),
        ("p_retailprice", DataType::I64),
        ("p_comment", DataType::Str),
    ]);
    let data = Batch::from_columns(vec![
        Column::I64(partkey),
        Column::Str(name),
        Column::Str(mfgr),
        Column::Str(brand),
        Column::Str(ptype),
        Column::I64(size),
        Column::Str(container),
        Column::I64(retailprice),
        Column::Str(comment),
    ]);
    Arc::new(
        Relation::partitioned(
            schema,
            &data,
            PartitionBy::Hash { column: 0 },
            config.partitions,
            config.placement,
            topology,
        )
        .dict_encoded(),
    )
}

fn gen_partsupp(
    config: TpchConfig,
    n_part: usize,
    n_supplier: usize,
    topology: &Topology,
) -> Arc<Relation> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xb5);
    let n = n_part * 4;
    let mut partkey = Vec::with_capacity(n);
    let mut suppkey = Vec::with_capacity(n);
    let mut availqty = Vec::with_capacity(n);
    let mut supplycost = Vec::with_capacity(n);
    let mut comment = Vec::with_capacity(n);
    for p in 0..n_part as i64 {
        for s in 0..4i64 {
            // Spec formula spreads the 4 suppliers of a part across the
            // supplier space.
            let sk = (p + s * ((n_supplier as i64 / 4).max(1) + (p / n_supplier as i64)))
                % n_supplier as i64
                + 1;
            partkey.push(p + 1);
            suppkey.push(sk);
            availqty.push(rng.gen_range(1..=9999i64));
            supplycost.push(rng.gen_range(100..=100_000i64));
            comment.push(text::comment(&mut rng, 2, None, 0));
        }
    }
    let schema = Schema::new(vec![
        ("ps_partkey", DataType::I64),
        ("ps_suppkey", DataType::I64),
        ("ps_availqty", DataType::I64),
        ("ps_supplycost", DataType::I64),
        ("ps_comment", DataType::Str),
    ]);
    let data = Batch::from_columns(vec![
        Column::I64(partkey),
        Column::I64(suppkey),
        Column::I64(availqty),
        Column::I64(supplycost),
        Column::Str(comment),
    ]);
    Arc::new(
        Relation::partitioned(
            schema,
            &data,
            PartitionBy::Hash { column: 0 },
            config.partitions,
            config.placement,
            topology,
        )
        .dict_encoded(),
    )
}

#[allow(clippy::too_many_arguments)]
fn gen_orders_lineitem(
    config: TpchConfig,
    n_orders: usize,
    n_customer: usize,
    n_part: usize,
    n_supplier: usize,
    topology: &Topology,
) -> (Arc<Relation>, Arc<Relation>) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0d);
    let start = date(1992, 1, 1);
    let last_order = date(1998, 8, 2);
    let cutoff = date(1995, 6, 17);

    // Orders columns.
    let mut o_orderkey = Vec::with_capacity(n_orders);
    let mut o_custkey = Vec::with_capacity(n_orders);
    let mut o_orderstatus = Vec::with_capacity(n_orders);
    let mut o_totalprice = Vec::with_capacity(n_orders);
    let mut o_orderdate = Vec::with_capacity(n_orders);
    let mut o_orderpriority = Vec::with_capacity(n_orders);
    let mut o_clerk = Vec::with_capacity(n_orders);
    let mut o_shippriority = Vec::with_capacity(n_orders);
    let mut o_comment = Vec::with_capacity(n_orders);

    // Lineitem columns (~4x orders).
    let cap = n_orders * 4;
    let mut l_orderkey = Vec::with_capacity(cap);
    let mut l_partkey = Vec::with_capacity(cap);
    let mut l_suppkey = Vec::with_capacity(cap);
    let mut l_linenumber = Vec::with_capacity(cap);
    let mut l_quantity = Vec::with_capacity(cap);
    let mut l_extendedprice = Vec::with_capacity(cap);
    let mut l_discount = Vec::with_capacity(cap);
    let mut l_tax = Vec::with_capacity(cap);
    let mut l_returnflag: Vec<String> = Vec::with_capacity(cap);
    let mut l_linestatus: Vec<String> = Vec::with_capacity(cap);
    let mut l_shipdate = Vec::with_capacity(cap);
    let mut l_commitdate = Vec::with_capacity(cap);
    let mut l_receiptdate = Vec::with_capacity(cap);
    let mut l_shipinstruct: Vec<String> = Vec::with_capacity(cap);
    let mut l_shipmode: Vec<String> = Vec::with_capacity(cap);
    let mut l_comment: Vec<String> = Vec::with_capacity(cap);

    for o in 0..n_orders as i64 {
        let orderkey = o + 1;
        // Customers divisible by 3 never order (spec; Q13/Q22 rely on it).
        let custkey = loop {
            let c = rng.gen_range(1..=n_customer as i64);
            if c % 3 != 0 {
                break c;
            }
        };
        let orderdate = rng.gen_range(start..=last_order);
        let lines = rng.gen_range(1..=7usize);
        let mut total = 0i64;
        let mut all_f = true;
        let mut all_o = true;
        for ln in 0..lines as i64 {
            let partkey = rng.gen_range(1..=n_part as i64);
            // One of the part's four suppliers.
            let s = rng.gen_range(0..4i64);
            let suppkey = (partkey - 1
                + s * ((n_supplier as i64 / 4).max(1) + ((partkey - 1) / n_supplier as i64)))
                % n_supplier as i64
                + 1;
            let quantity = rng.gen_range(1..=50i64);
            let extprice = quantity * retail_price_cents(partkey) / 100;
            let discount = rng.gen_range(0..=10i64); // hundredths
            let tax = rng.gen_range(0..=8i64);
            let shipdate = orderdate + rng.gen_range(1..=121);
            let commitdate = orderdate + rng.gen_range(30..=90);
            let receiptdate = shipdate + rng.gen_range(1..=30);
            let returnflag = if receiptdate <= cutoff {
                if rng.gen_bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let linestatus = if shipdate > cutoff { "O" } else { "F" };
            all_f &= linestatus == "F";
            all_o &= linestatus == "O";
            total += extprice * (100 - discount) / 100 * (100 + tax) / 100;

            l_orderkey.push(orderkey);
            l_partkey.push(partkey);
            l_suppkey.push(suppkey);
            l_linenumber.push(ln + 1);
            l_quantity.push(quantity);
            l_extendedprice.push(extprice);
            l_discount.push(discount);
            l_tax.push(tax);
            l_returnflag.push(returnflag.to_owned());
            l_linestatus.push(linestatus.to_owned());
            l_shipdate.push(shipdate);
            l_commitdate.push(commitdate);
            l_receiptdate.push(receiptdate);
            l_shipinstruct
                .push(text::SHIP_INSTRUCT[rng.gen_range(0..text::SHIP_INSTRUCT.len())].to_owned());
            l_shipmode.push(text::SHIP_MODES[rng.gen_range(0..text::SHIP_MODES.len())].to_owned());
            l_comment.push(text::comment(&mut rng, 2, None, 0));
        }
        o_orderkey.push(orderkey);
        o_custkey.push(custkey);
        o_orderstatus.push(
            if all_f {
                "F"
            } else if all_o {
                "O"
            } else {
                "P"
            }
            .to_owned(),
        );
        o_totalprice.push(total);
        o_orderdate.push(orderdate);
        o_orderpriority.push(text::PRIORITIES[rng.gen_range(0..text::PRIORITIES.len())].to_owned());
        o_clerk.push(format!("Clerk#{:09}", rng.gen_range(1..=1000)));
        o_shippriority.push(0i64);
        // Q13: ~1% of orders carry "special ... requests" comments.
        o_comment.push(text::comment(
            &mut rng,
            4,
            Some(("special", "requests")),
            10_000,
        ));
    }

    let orders_schema = Schema::new(vec![
        ("o_orderkey", DataType::I64),
        ("o_custkey", DataType::I64),
        ("o_orderstatus", DataType::Str),
        ("o_totalprice", DataType::I64),
        ("o_orderdate", DataType::I32),
        ("o_orderpriority", DataType::Str),
        ("o_clerk", DataType::Str),
        ("o_shippriority", DataType::I64),
        ("o_comment", DataType::Str),
    ]);
    let orders_data = Batch::from_columns(vec![
        Column::I64(o_orderkey),
        Column::I64(o_custkey),
        Column::Str(o_orderstatus),
        Column::I64(o_totalprice),
        Column::I32(o_orderdate),
        Column::Str(o_orderpriority),
        Column::Str(o_clerk),
        Column::I64(o_shippriority),
        Column::Str(o_comment),
    ]);
    let orders = Arc::new(
        Relation::partitioned(
            orders_schema,
            &orders_data,
            PartitionBy::Hash { column: 0 },
            config.partitions,
            config.placement,
            topology,
        )
        .dict_encoded(),
    );

    let lineitem_schema = Schema::new(vec![
        ("l_orderkey", DataType::I64),
        ("l_partkey", DataType::I64),
        ("l_suppkey", DataType::I64),
        ("l_linenumber", DataType::I64),
        ("l_quantity", DataType::I64),
        ("l_extendedprice", DataType::I64),
        ("l_discount", DataType::I64),
        ("l_tax", DataType::I64),
        ("l_returnflag", DataType::Str),
        ("l_linestatus", DataType::Str),
        ("l_shipdate", DataType::I32),
        ("l_commitdate", DataType::I32),
        ("l_receiptdate", DataType::I32),
        ("l_shipinstruct", DataType::Str),
        ("l_shipmode", DataType::Str),
        ("l_comment", DataType::Str),
    ]);
    let lineitem_data = Batch::from_columns(vec![
        Column::I64(l_orderkey),
        Column::I64(l_partkey),
        Column::I64(l_suppkey),
        Column::I64(l_linenumber),
        Column::I64(l_quantity),
        Column::I64(l_extendedprice),
        Column::I64(l_discount),
        Column::I64(l_tax),
        Column::Str(l_returnflag),
        Column::Str(l_linestatus),
        Column::I32(l_shipdate),
        Column::I32(l_commitdate),
        Column::I32(l_receiptdate),
        Column::Str(l_shipinstruct),
        Column::Str(l_shipmode),
        Column::Str(l_comment),
    ]);
    // Co-partitioned with orders on the orderkey (Section 4.3's example).
    let lineitem = Arc::new(
        Relation::partitioned(
            lineitem_schema,
            &lineitem_data,
            PartitionBy::Hash { column: 0 },
            config.partitions,
            config.placement,
            topology,
        )
        .dict_encoded(),
    );
    (orders, lineitem)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_db() -> TpchDb {
        generate(
            TpchConfig {
                scale: 0.002,
                ..Default::default()
            },
            &Topology::nehalem_ex(),
        )
    }

    #[test]
    fn row_counts_scale() {
        let db = small_db();
        assert_eq!(db.region.total_rows(), 5);
        assert_eq!(db.nation.total_rows(), 25);
        assert_eq!(db.supplier.total_rows(), 20);
        assert_eq!(db.customer.total_rows(), 300);
        assert_eq!(db.part.total_rows(), 400);
        assert_eq!(db.partsupp.total_rows(), 1600);
        assert_eq!(db.orders.total_rows(), 3000);
        let l = db.lineitem.total_rows();
        assert!(l > 3000 * 2 && l < 3000 * 8, "lineitem rows {l}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_db();
        let b = small_db();
        assert_eq!(a.lineitem.total_rows(), b.lineitem.total_rows());
        assert_eq!(a.orders.gather(), b.orders.gather());
    }

    #[test]
    fn custkey_mod3_rule() {
        let db = small_db();
        let orders = db.orders.gather();
        let custkeys = orders.column(1).as_i64();
        assert!(custkeys.iter().all(|&c| c % 3 != 0));
        assert!(custkeys.iter().all(|c| (1..=300).contains(c)));
    }

    #[test]
    fn dates_are_consistent() {
        let db = small_db();
        let l = db.lineitem.gather();
        let ship = l.column(10).as_i32();
        let commit = l.column(11).as_i32();
        let receipt = l.column(12).as_i32();
        for i in 0..l.rows() {
            assert!(receipt[i] > ship[i]);
            assert!(commit[i] >= ship[i] - 121 + 30 - 121); // sane window
            assert!(ship[i] >= date(1992, 1, 2));
            assert!(receipt[i] <= date(1998, 8, 2) + 151);
        }
    }

    #[test]
    fn returnflag_linestatus_follow_cutoff() {
        let db = small_db();
        let l = db.lineitem.gather();
        let ship = l.column(10).as_i32();
        let receipt = l.column(12).as_i32();
        let rf = l.column(8).as_str();
        let ls = l.column(9).as_str();
        let cutoff = date(1995, 6, 17);
        for i in 0..l.rows() {
            if receipt[i] <= cutoff {
                assert!(rf[i] == "R" || rf[i] == "A");
            } else {
                assert_eq!(rf[i], "N");
            }
            assert_eq!(ls[i] == "O", ship[i] > cutoff);
        }
    }

    #[test]
    fn lineitem_keys_reference_orders_and_parts() {
        let db = small_db();
        let l = db.lineitem.gather();
        let n_orders = db.orders.total_rows() as i64;
        let n_parts = db.part.total_rows() as i64;
        let n_supp = db.supplier.total_rows() as i64;
        for i in 0..l.rows() {
            let ok = l.column(0).as_i64()[i];
            assert!(ok >= 1 && ok <= n_orders);
            let pk = l.column(1).as_i64()[i];
            assert!(pk >= 1 && pk <= n_parts);
            let sk = l.column(2).as_i64()[i];
            assert!(sk >= 1 && sk <= n_supp, "suppkey {sk}");
        }
    }

    #[test]
    fn lineitem_suppkey_is_one_of_partsupp_suppliers() {
        let db = small_db();
        let ps = db.partsupp.gather();
        let mut pairs = std::collections::HashSet::new();
        for i in 0..ps.rows() {
            pairs.insert((ps.column(0).as_i64()[i], ps.column(1).as_i64()[i]));
        }
        let l = db.lineitem.gather();
        for i in 0..l.rows() {
            let pk = l.column(1).as_i64()[i];
            let sk = l.column(2).as_i64()[i];
            assert!(pairs.contains(&(pk, sk)), "({pk},{sk}) not in partsupp");
        }
    }

    #[test]
    fn partitions_spread_over_nodes() {
        let db = small_db();
        let nodes: std::collections::HashSet<u16> =
            db.lineitem.partitions().iter().map(|p| p.node.0).collect();
        assert_eq!(nodes.len(), 4);
    }

    #[test]
    fn placement_override() {
        let t = Topology::nehalem_ex();
        let db = small_db().with_placement(Placement::OsDefault, &t);
        assert!(db.lineitem.partitions().iter().all(|p| p.node.0 == 0));
        assert!(db.total_bytes() > 0);
    }
}
