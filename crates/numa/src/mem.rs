//! Simulated NUMA memory placement.
//!
//! On the paper's hardware, placement is physical: a page lives on the node
//! that first touched it (or wherever `numactl`/mmap policy put it). Our
//! substrate keeps all data in host RAM but *tags* every allocation with the
//! node it notionally lives on. The execution layer consults the tag to
//! classify each access as local or remote and to charge the cost model.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::topology::{SocketId, Topology};

/// Placement policy for relation partitions, storage areas and hash tables.
///
/// Mirrors the alternatives compared in Section 5.3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// NUMA-aware: data lives on the node the owning thread is pinned to
    /// (the paper's first-touch behaviour with pinned threads).
    FirstTouch,
    /// Round-robin page interleaving across all nodes (the paper's
    /// "interleaved" alternative, and its choice for global hash tables).
    Interleaved,
    /// Everything on one node — the paper's "OS default", footnote 6: "the
    /// database itself is located on a single NUMA node, because the data
    /// is read from disk by a single thread".
    OsDefault,
    /// Explicitly on a given node.
    OnNode(SocketId),
}

impl Placement {
    /// Resolve the node for chunk `index` of an allocation made by a thread
    /// on `toucher` given `sockets` nodes.
    pub fn node_for(self, index: usize, toucher: SocketId, sockets: u16) -> SocketId {
        match self {
            Placement::FirstTouch => toucher,
            Placement::Interleaved => SocketId((index % sockets as usize) as u16),
            Placement::OsDefault => SocketId(0),
            Placement::OnNode(n) => n,
        }
    }
}

/// The node tag of one logically contiguous allocation.
///
/// An interleaved allocation is modelled as alternating fixed-size stripes
/// (the paper uses 2MB pages; we default to 2MB worth of bytes).
#[derive(Debug, Clone)]
pub enum Residency {
    /// Entire allocation on one node.
    Node(SocketId),
    /// Striped round-robin over all nodes with the given stripe size.
    Interleaved { sockets: u16, stripe: usize },
}

/// Default stripe size for interleaved allocations: one 2MB huge page.
pub const DEFAULT_STRIPE: usize = 2 << 20;

impl Residency {
    /// Node holding byte offset `off` of the allocation.
    pub fn node_at(&self, off: usize) -> SocketId {
        match *self {
            Residency::Node(n) => n,
            Residency::Interleaved { sockets, stripe } => {
                SocketId(((off / stripe) % sockets as usize) as u16)
            }
        }
    }

    /// Split `bytes` bytes starting at `off` into per-node byte counts.
    /// Returns a vector indexed by socket id.
    pub fn split_bytes(&self, off: usize, bytes: usize, sockets: u16) -> Vec<u64> {
        let mut out = vec![0u64; sockets as usize];
        match *self {
            Residency::Node(n) => out[n.0 as usize] += bytes as u64,
            Residency::Interleaved { sockets: s, stripe } => {
                debug_assert_eq!(s, sockets);
                let mut pos = off;
                let end = off + bytes;
                while pos < end {
                    let stripe_end = (pos / stripe + 1) * stripe;
                    let take = stripe_end.min(end) - pos;
                    let node = (pos / stripe) % s as usize;
                    out[node] += take as u64;
                    pos += take;
                }
            }
        }
        out
    }
}

/// Byte-accurate memory traffic accounting, the substrate behind the
/// paper's Table 1 "rd. / wr. / remote / QPI" columns.
///
/// All counters are plain relaxed atomics: they are statistics, not
/// synchronization.
#[derive(Debug)]
pub struct AccessCounters {
    sockets: u16,
    read_local: AtomicU64,
    read_remote: AtomicU64,
    write_local: AtomicU64,
    write_remote: AtomicU64,
    /// Traffic per directed socket pair (row-major `from * sockets + to`),
    /// in bytes. Only remote traffic is recorded here (the QPI links).
    link_bytes: Vec<AtomicU64>,
}

/// A snapshot of [`AccessCounters`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficSnapshot {
    pub sockets: u16,
    pub read_local: u64,
    pub read_remote: u64,
    pub write_local: u64,
    pub write_remote: u64,
    pub link_bytes: Vec<u64>,
}

impl AccessCounters {
    pub fn new(topology: &Topology) -> Self {
        let sockets = topology.sockets();
        AccessCounters {
            sockets,
            read_local: AtomicU64::new(0),
            read_remote: AtomicU64::new(0),
            write_local: AtomicU64::new(0),
            write_remote: AtomicU64::new(0),
            link_bytes: (0..u32::from(sockets) * u32::from(sockets))
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Record `bytes` read by a thread on `at` from memory on `from`.
    pub fn record_read(&self, at: SocketId, from: SocketId, bytes: u64) {
        if at == from {
            self.read_local.fetch_add(bytes, Ordering::Relaxed);
        } else {
            self.read_remote.fetch_add(bytes, Ordering::Relaxed);
            self.link(from, at).fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Record `bytes` written by a thread on `at` to memory on `to`.
    pub fn record_write(&self, at: SocketId, to: SocketId, bytes: u64) {
        if at == to {
            self.write_local.fetch_add(bytes, Ordering::Relaxed);
        } else {
            self.write_remote.fetch_add(bytes, Ordering::Relaxed);
            self.link(at, to).fetch_add(bytes, Ordering::Relaxed);
        }
    }

    fn link(&self, from: SocketId, to: SocketId) -> &AtomicU64 {
        &self.link_bytes[from.0 as usize * self.sockets as usize + to.0 as usize]
    }

    /// Fraction of all accessed bytes that were remote, in `[0, 1]`.
    pub fn remote_fraction(&self) -> f64 {
        let s = self.snapshot();
        let remote = s.read_remote + s.write_remote;
        let total = remote + s.read_local + s.write_local;
        if total == 0 {
            0.0
        } else {
            remote as f64 / total as f64
        }
    }

    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            sockets: self.sockets,
            read_local: self.read_local.load(Ordering::Relaxed),
            read_remote: self.read_remote.load(Ordering::Relaxed),
            write_local: self.write_local.load(Ordering::Relaxed),
            write_remote: self.write_remote.load(Ordering::Relaxed),
            link_bytes: self
                .link_bytes
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
        }
    }

    pub fn reset(&self) {
        self.read_local.store(0, Ordering::Relaxed);
        self.read_remote.store(0, Ordering::Relaxed);
        self.write_local.store(0, Ordering::Relaxed);
        self.write_remote.store(0, Ordering::Relaxed);
        for l in &self.link_bytes {
            l.store(0, Ordering::Relaxed);
        }
    }
}

impl TrafficSnapshot {
    pub fn total_read(&self) -> u64 {
        self.read_local + self.read_remote
    }

    pub fn total_write(&self) -> u64 {
        self.write_local + self.write_remote
    }

    /// Bytes moved over the busiest directed link.
    pub fn max_link_bytes(&self) -> u64 {
        self.link_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Difference `self - earlier`, for measuring one query's traffic.
    pub fn delta_since(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            sockets: self.sockets,
            read_local: self.read_local - earlier.read_local,
            read_remote: self.read_remote - earlier.read_remote,
            write_local: self.write_local - earlier.write_local,
            write_remote: self.write_remote - earlier.write_remote,
            link_bytes: self
                .link_bytes
                .iter()
                .zip(&earlier.link_bytes)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    pub fn remote_fraction(&self) -> f64 {
        let remote = self.read_remote + self.write_remote;
        let total = remote + self.read_local + self.write_local;
        if total == 0 {
            0.0
        } else {
            remote as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_resolution() {
        let s0 = SocketId(0);
        let s2 = SocketId(2);
        assert_eq!(Placement::FirstTouch.node_for(7, s2, 4), s2);
        assert_eq!(Placement::Interleaved.node_for(6, s0, 4), SocketId(2));
        assert_eq!(Placement::OsDefault.node_for(3, s2, 4), SocketId(0));
        assert_eq!(
            Placement::OnNode(SocketId(3)).node_for(9, s0, 4),
            SocketId(3)
        );
    }

    #[test]
    fn interleaved_residency_stripes() {
        let r = Residency::Interleaved {
            sockets: 4,
            stripe: 100,
        };
        assert_eq!(r.node_at(0), SocketId(0));
        assert_eq!(r.node_at(99), SocketId(0));
        assert_eq!(r.node_at(100), SocketId(1));
        assert_eq!(r.node_at(399), SocketId(3));
        assert_eq!(r.node_at(400), SocketId(0));
    }

    #[test]
    fn split_bytes_covers_all_bytes() {
        let r = Residency::Interleaved {
            sockets: 4,
            stripe: 100,
        };
        let split = r.split_bytes(50, 400, 4);
        assert_eq!(split.iter().sum::<u64>(), 400);
        // 50 bytes on node 0, 100 on node 1, 100 on node 2, 100 on node 3,
        // 50 back on node 0.
        assert_eq!(split, vec![100, 100, 100, 100]);
    }

    #[test]
    fn split_bytes_single_node() {
        let r = Residency::Node(SocketId(2));
        assert_eq!(r.split_bytes(123, 77, 4), vec![0, 0, 77, 0]);
    }

    #[test]
    fn counters_classify_local_and_remote() {
        let t = Topology::nehalem_ex();
        let c = AccessCounters::new(&t);
        c.record_read(SocketId(0), SocketId(0), 100);
        c.record_read(SocketId(0), SocketId(1), 50);
        c.record_write(SocketId(2), SocketId(2), 10);
        c.record_write(SocketId(2), SocketId(3), 40);
        let s = c.snapshot();
        assert_eq!(s.read_local, 100);
        assert_eq!(s.read_remote, 50);
        assert_eq!(s.write_local, 10);
        assert_eq!(s.write_remote, 40);
        assert!((c.remote_fraction() - 90.0 / 200.0).abs() < 1e-12);
        assert_eq!(s.max_link_bytes(), 50);
    }

    #[test]
    fn snapshot_delta() {
        let t = Topology::laptop();
        let c = AccessCounters::new(&t);
        c.record_read(SocketId(0), SocketId(0), 100);
        let before = c.snapshot();
        c.record_read(SocketId(0), SocketId(0), 11);
        let after = c.snapshot();
        assert_eq!(after.delta_since(&before).read_local, 11);
    }

    #[test]
    fn reset_zeroes_everything() {
        let t = Topology::nehalem_ex();
        let c = AccessCounters::new(&t);
        c.record_read(SocketId(0), SocketId(1), 50);
        c.reset();
        let s = c.snapshot();
        assert_eq!(s.total_read() + s.total_write(), 0);
        assert_eq!(s.max_link_bytes(), 0);
    }
}
