//! Machine topology descriptions.
//!
//! The paper evaluates on two 4-socket machines with very different NUMA
//! interconnects (its Figure 10): a fully-connected Nehalem EX and a
//! partially-connected Sandy Bridge EP where some socket pairs are two QPI
//! hops apart. We model a topology as a set of sockets, each with a number
//! of physical cores and an SMT factor, plus a hop-count matrix between
//! sockets.

/// Identifier of a NUMA socket (equivalently, a memory node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketId(pub u16);

/// Identifier of a hardware thread (a "core" in the paper's loose sense —
/// with SMT, two hardware threads share one physical core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u32);

/// A machine topology: sockets, cores, SMT, and the socket interconnect.
#[derive(Debug, Clone)]
pub struct Topology {
    name: &'static str,
    sockets: u16,
    cores_per_socket: u16,
    /// Hardware threads per physical core (2 = HyperThreading).
    smt: u16,
    /// `hops[a][b]` = number of interconnect hops from socket `a` to `b`
    /// (0 on the diagonal).
    hops: Vec<Vec<u8>>,
}

impl Topology {
    /// Build a topology with an explicit hop matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square of dimension `sockets`, if the
    /// diagonal is non-zero, or if any parameter is zero.
    pub fn new(
        name: &'static str,
        sockets: u16,
        cores_per_socket: u16,
        smt: u16,
        hops: Vec<Vec<u8>>,
    ) -> Self {
        assert!(sockets > 0 && cores_per_socket > 0 && smt > 0);
        assert_eq!(hops.len(), sockets as usize, "hop matrix must be square");
        for (i, row) in hops.iter().enumerate() {
            assert_eq!(row.len(), sockets as usize, "hop matrix must be square");
            assert_eq!(row[i], 0, "diagonal of hop matrix must be zero");
        }
        Topology {
            name,
            sockets,
            cores_per_socket,
            smt,
            hops,
        }
    }

    /// Fully-connected topology where every remote socket is one hop away.
    pub fn fully_connected(
        name: &'static str,
        sockets: u16,
        cores_per_socket: u16,
        smt: u16,
    ) -> Self {
        let n = sockets as usize;
        let hops = (0..n)
            .map(|i| (0..n).map(|j| u8::from(i != j)).collect())
            .collect();
        Self::new(name, sockets, cores_per_socket, smt, hops)
    }

    /// The paper's Nehalem EX box: 4 sockets fully connected by QPI,
    /// 8 cores per socket, 2-way SMT (64 hardware threads total).
    pub fn nehalem_ex() -> Self {
        Self::fully_connected("Nehalem EX", 4, 8, 2)
    }

    /// The paper's Sandy Bridge EP box: 4 sockets in a ring, so opposite
    /// sockets (0<->2 and 1<->3) are two hops apart; 8 cores per socket,
    /// 2-way SMT.
    pub fn sandy_bridge_ep() -> Self {
        let hops = vec![
            vec![0, 1, 2, 1],
            vec![1, 0, 1, 2],
            vec![2, 1, 0, 1],
            vec![1, 2, 1, 0],
        ];
        Self::new("Sandy Bridge EP", 4, 8, 2, hops)
    }

    /// A single-socket "laptop" topology, useful for tests and for running
    /// the engine with real threads on commodity hardware.
    pub fn laptop() -> Self {
        Self::fully_connected("laptop", 1, 4, 1)
    }

    /// Human-readable topology name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of sockets (= NUMA memory nodes).
    pub fn sockets(&self) -> u16 {
        self.sockets
    }

    /// Physical cores per socket.
    pub fn cores_per_socket(&self) -> u16 {
        self.cores_per_socket
    }

    /// Hardware threads per physical core.
    pub fn smt(&self) -> u16 {
        self.smt
    }

    /// Total physical cores.
    pub fn physical_cores(&self) -> u32 {
        u32::from(self.sockets) * u32::from(self.cores_per_socket)
    }

    /// Total hardware threads (what the paper calls "threads 1..64").
    pub fn hardware_threads(&self) -> u32 {
        self.physical_cores() * u32::from(self.smt)
    }

    /// Socket that a given hardware thread is pinned to.
    ///
    /// Hardware threads are numbered the way the paper plots them:
    /// threads `0..physical_cores` are the first SMT context of each
    /// core, spread round-robin across the sockets (so that a 8-thread
    /// run on a 4-socket box uses all memory controllers, as `numactl`
    /// spreading does); threads `physical_cores..` are the second SMT
    /// contexts in the same order.
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        let phys = core.0 % self.physical_cores();
        SocketId((phys % u32::from(self.sockets)) as u16)
    }

    /// Whether a hardware thread id is an SMT sibling (a "virtual" core in
    /// Figure 11's terminology, i.e. threads 33..64 on the paper's boxes).
    pub fn is_smt_sibling(&self, core: CoreId) -> bool {
        core.0 >= self.physical_cores()
    }

    /// Interconnect hops between two sockets (0 if equal).
    pub fn hops(&self, a: SocketId, b: SocketId) -> u8 {
        self.hops[a.0 as usize][b.0 as usize]
    }

    /// All sockets ordered by distance from `from` (closest first, `from`
    /// itself excluded). Used for the "steal from closer sockets first"
    /// policy of Section 3.2.
    pub fn steal_order(&self, from: SocketId) -> Vec<SocketId> {
        let mut order: Vec<SocketId> = (0..self.sockets)
            .filter(|&s| s != from.0)
            .map(SocketId)
            .collect();
        order.sort_by_key(|&s| (self.hops(from, s), s.0));
        order
    }

    /// Iterate over all socket ids.
    pub fn socket_ids(&self) -> impl Iterator<Item = SocketId> {
        (0..self.sockets).map(SocketId)
    }

    /// Enumerate the hardware-thread ids pinned to `socket`.
    pub fn cores_of(&self, socket: SocketId) -> Vec<CoreId> {
        (0..self.hardware_threads())
            .map(CoreId)
            .filter(|&c| self.socket_of(c) == socket)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nehalem_counts() {
        let t = Topology::nehalem_ex();
        assert_eq!(t.sockets(), 4);
        assert_eq!(t.physical_cores(), 32);
        assert_eq!(t.hardware_threads(), 64);
    }

    #[test]
    fn socket_assignment_is_round_robin() {
        let t = Topology::nehalem_ex();
        assert_eq!(t.socket_of(CoreId(0)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(1)), SocketId(1));
        assert_eq!(t.socket_of(CoreId(3)), SocketId(3));
        assert_eq!(t.socket_of(CoreId(4)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(31)), SocketId(3));
        // SMT siblings map back onto the same sockets.
        assert_eq!(t.socket_of(CoreId(32)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(33)), SocketId(1));
        assert_eq!(t.socket_of(CoreId(63)), SocketId(3));
    }

    #[test]
    fn smt_sibling_detection() {
        let t = Topology::nehalem_ex();
        assert!(!t.is_smt_sibling(CoreId(31)));
        assert!(t.is_smt_sibling(CoreId(32)));
    }

    #[test]
    fn sandy_bridge_has_two_hop_pairs() {
        let t = Topology::sandy_bridge_ep();
        assert_eq!(t.hops(SocketId(0), SocketId(2)), 2);
        assert_eq!(t.hops(SocketId(1), SocketId(3)), 2);
        assert_eq!(t.hops(SocketId(0), SocketId(1)), 1);
        assert_eq!(t.hops(SocketId(0), SocketId(0)), 0);
    }

    #[test]
    fn nehalem_is_fully_connected() {
        let t = Topology::nehalem_ex();
        for a in t.socket_ids() {
            for b in t.socket_ids() {
                assert_eq!(t.hops(a, b), u8::from(a != b));
            }
        }
    }

    #[test]
    fn steal_order_prefers_closer_sockets() {
        let t = Topology::sandy_bridge_ep();
        let order = t.steal_order(SocketId(0));
        assert_eq!(order, vec![SocketId(1), SocketId(3), SocketId(2)]);
    }

    #[test]
    fn steal_order_excludes_self() {
        let t = Topology::nehalem_ex();
        for s in t.socket_ids() {
            assert!(!t.steal_order(s).contains(&s));
            assert_eq!(t.steal_order(s).len(), 3);
        }
    }

    #[test]
    fn cores_of_partitions_all_threads() {
        let t = Topology::sandy_bridge_ep();
        let mut seen = vec![false; t.hardware_threads() as usize];
        for s in t.socket_ids() {
            for c in t.cores_of(s) {
                assert!(!seen[c.0 as usize]);
                seen[c.0 as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn bad_matrix_rejected() {
        Topology::new("bad", 2, 1, 1, vec![vec![0]]);
    }
}
