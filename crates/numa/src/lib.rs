//! # morsel-numa
//!
//! Simulated NUMA substrate for the morsel-driven query engine: machine
//! [`topology::Topology`] descriptions (including the paper's Nehalem EX
//! and Sandy Bridge EP boxes), memory [`mem::Placement`] policies and
//! [`mem::Residency`] tags, byte-accurate traffic [`mem::AccessCounters`],
//! and the calibrated [`cost::CostModel`] that converts access profiles to
//! virtual time.
//!
//! The paper ran on real 4-socket hardware; this crate substitutes an
//! explicit model so that every NUMA experiment of the paper (Tables 1-3,
//! the placement-policy comparison, and the bandwidth/latency
//! micro-benchmark of Section 5.3) can be regenerated deterministically on
//! any host. See DESIGN.md §2 for the substitution argument.

pub mod cost;
pub mod mem;
pub mod topology;

pub use cost::CostModel;
pub use mem::{AccessCounters, Placement, Residency, TrafficSnapshot, DEFAULT_STRIPE};
pub use topology::{CoreId, SocketId, Topology};
