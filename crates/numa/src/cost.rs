//! Calibrated NUMA cost model.
//!
//! The paper's evaluation hardware is characterised by its Figure 10
//! (per-node bandwidth, interconnect bandwidth) and by the micro-benchmark
//! in Section 5.3 (local vs. 25/75 mixed bandwidth and latency). The cost
//! model converts a morsel's memory access profile into virtual
//! nanoseconds, and is the time base of the discrete-event executor in
//! `morsel-core::sim`.
//!
//! Units: bandwidths are bytes per nanosecond (numerically equal to GB/s),
//! latencies are nanoseconds.

use crate::topology::Topology;

/// Per-machine cost parameters.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Peak streaming bandwidth a single core can sustain by itself.
    pub per_core_bw: f64,
    /// Effective streaming bandwidth of one memory node (all its channels).
    pub node_bw: f64,
    /// Effective bandwidth of one directed interconnect (QPI) link.
    pub link_bw: f64,
    /// Random access (cache miss) latency by hop count: `[local, 1hop, 2hop]`.
    pub latency_ns: [f64; 3],
    /// Combined throughput of two SMT threads sharing a physical core,
    /// relative to one thread running alone (e.g. 1.3 = +30%).
    pub smt_throughput: f64,
    /// Fraction of random-access latency that cannot be hidden by
    /// out-of-order execution / prefetching.
    pub stall_fraction: f64,
    /// Fixed scheduling cost per dispatched morsel: the work-request,
    /// queue CAS, and task setup. This is what makes very small morsels
    /// expensive (the paper's Figure 6).
    pub dispatch_ns: f64,
    /// Fraction of a node's streaming bandwidth a *remote* requester can
    /// extract (coherence/QPI protocol overhead). Calibrated so that the
    /// 25/75 local/remote mix reproduces the paper's Section 5.3
    /// micro-benchmark (Nehalem: 93 -> 60 GB/s; Sandy Bridge: 121 -> 41).
    pub remote_node_efficiency: f64,
}

impl CostModel {
    /// Nehalem EX calibration. Figure 10: 25.6 GB/s per node, 12.8 GB/s
    /// QPI. Section 5.3 micro-benchmark: 93 GB/s aggregate local (3.6%
    /// below 4x25.6 theoretical), 161 ns local / 186 ns mixed latency.
    pub fn nehalem_ex() -> Self {
        CostModel {
            per_core_bw: 8.0,
            node_bw: 23.25, // 93 GB/s measured aggregate / 4 nodes
            link_bw: 12.8,
            latency_ns: [161.0, 194.0, 194.0],
            smt_throughput: 1.3,
            stall_fraction: 0.5,
            dispatch_ns: 150.0,
            remote_node_efficiency: 0.55,
        }
    }

    /// Sandy Bridge EP calibration. Figure 10: 51.2 GB/s per node, 16 GB/s
    /// QPI but only a ring (2-hop pairs). Micro-benchmark: 121 GB/s local
    /// aggregate, 41 GB/s mixed, 101 ns local / 257 ns mixed latency.
    pub fn sandy_bridge_ep() -> Self {
        CostModel {
            per_core_bw: 10.0,
            node_bw: 30.25, // 121 GB/s measured aggregate / 4 nodes
            link_bw: 8.0,   // effective per-direction under cross traffic
            latency_ns: [101.0, 280.0, 420.0],
            smt_throughput: 1.3,
            stall_fraction: 0.5,
            dispatch_ns: 150.0,
            remote_node_efficiency: 0.13,
        }
    }

    /// A uniform-memory model for the laptop topology (no NUMA effects).
    pub fn uniform() -> Self {
        CostModel {
            per_core_bw: 10.0,
            node_bw: 40.0,
            link_bw: f64::INFINITY,
            latency_ns: [90.0, 90.0, 90.0],
            smt_throughput: 1.3,
            stall_fraction: 0.5,
            dispatch_ns: 150.0,
            remote_node_efficiency: 1.0,
        }
    }

    /// Pick the calibration matching a topology preset by name.
    pub fn for_topology(topology: &Topology) -> Self {
        match topology.name() {
            "Nehalem EX" => Self::nehalem_ex(),
            "Sandy Bridge EP" => Self::sandy_bridge_ep(),
            _ => Self::uniform(),
        }
    }

    /// Effective streaming rate (bytes/ns) for one core reading from a node
    /// `hops` away, with `node_streams` concurrent streams on that memory
    /// node and `link_streams` concurrent streams on the bottleneck link.
    pub fn stream_rate(&self, hops: u8, node_streams: u32, link_streams: u32) -> f64 {
        let efficiency = if hops > 0 {
            self.remote_node_efficiency
        } else {
            1.0
        };
        let node_share = self.node_bw * efficiency / node_streams.max(1) as f64;
        let mut rate = self.per_core_bw.min(node_share);
        if hops > 0 {
            let link_share = self.link_bw / link_streams.max(1) as f64;
            // A 2-hop path is limited by each of its two links; model as a
            // single link of half the effective bandwidth.
            let path = if hops >= 2 {
                link_share / 2.0
            } else {
                link_share
            };
            rate = rate.min(path);
        }
        rate
    }

    /// Virtual nanoseconds to stream `bytes` from a node `hops` away under
    /// the given contention.
    pub fn stream_ns(&self, bytes: u64, hops: u8, node_streams: u32, link_streams: u32) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.stream_rate(hops, node_streams, link_streams)
    }

    /// Unhidden stall time for `misses` dependent random accesses to memory
    /// `hops` away.
    pub fn random_ns(&self, misses: u64, hops: u8) -> f64 {
        let lat = self.latency_ns[usize::from(hops.min(2))];
        misses as f64 * lat * self.stall_fraction
    }

    /// Latency (ns) of a single access `hops` away — used by the
    /// micro-benchmark reproduction.
    pub fn latency(&self, hops: u8) -> f64 {
        self.latency_ns[usize::from(hops.min(2))]
    }

    /// Combine compute and memory time for one morsel. Streaming overlaps
    /// with computation on an out-of-order core; stalls do not.
    pub fn combine(&self, cpu_ns: f64, stream_ns: f64, stall_ns: f64) -> f64 {
        cpu_ns.max(stream_ns) + stall_ns
    }

    /// CPU slowdown factor for a thread when `threads_on_core` SMT siblings
    /// share its physical core (>= 1.0).
    pub fn smt_penalty(&self, threads_on_core: u32) -> f64 {
        if threads_on_core <= 1 {
            1.0
        } else {
            threads_on_core as f64 / self.smt_throughput
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_is_core_limited() {
        let m = CostModel::nehalem_ex();
        assert!((m.stream_rate(0, 1, 0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn many_streams_are_node_limited() {
        let m = CostModel::nehalem_ex();
        // 8 cores streaming from one node share its 23.25 GB/s.
        let r = m.stream_rate(0, 8, 0);
        assert!((r - 23.25 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn remote_streams_are_link_limited() {
        let m = CostModel::nehalem_ex();
        // 4 remote streams over one 12.8 GB/s link -> 3.2 each.
        let r = m.stream_rate(1, 1, 4);
        assert!((r - 3.2).abs() < 1e-9);
    }

    #[test]
    fn two_hop_is_no_faster_than_one_hop() {
        let m = CostModel::sandy_bridge_ep();
        let one = m.stream_rate(1, 1, 1);
        let two = m.stream_rate(2, 1, 1);
        assert!(two <= one);
        // Both are bounded by the remote-efficiency-scaled node bandwidth
        // and the (possibly halved) link bandwidth.
        assert!(two <= m.link_bw / 2.0 + 1e-9);
    }

    #[test]
    fn remote_streaming_is_slower_than_local() {
        let m = CostModel::nehalem_ex();
        assert!(m.stream_rate(1, 4, 1) < m.stream_rate(0, 4, 0));
    }

    #[test]
    fn mix_bandwidth_matches_paper_micro_benchmark() {
        // 32 streams, 25% local / 75% remote, fully connected: aggregate
        // should land near the measured 60 GB/s (Nehalem) and 41 GB/s
        // (Sandy Bridge, with 1/3 of remote traffic two-hop).
        let neh = CostModel::nehalem_ex();
        let local = 8.0 * neh.stream_rate(0, 8, 0);
        let remote = 24.0 * neh.stream_rate(1, 8, 2);
        let mix = local + remote;
        assert!(mix > 50.0 && mix < 75.0, "nehalem mix {mix}");

        let sb = CostModel::sandy_bridge_ep();
        let local = 8.0 * sb.stream_rate(0, 8, 0);
        let one_hop = 16.0 * sb.stream_rate(1, 8, 2);
        let two_hop = 8.0 * sb.stream_rate(2, 8, 2);
        let mix = local + one_hop + two_hop;
        assert!(mix > 30.0 && mix < 55.0, "sandy bridge mix {mix}");
    }

    #[test]
    fn stream_ns_scales_linearly() {
        let m = CostModel::nehalem_ex();
        let t1 = m.stream_ns(1_000, 0, 1, 0);
        let t2 = m.stream_ns(2_000, 0, 1, 0);
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
        assert_eq!(m.stream_ns(0, 0, 1, 0), 0.0);
    }

    #[test]
    fn random_latency_grows_with_hops() {
        let m = CostModel::sandy_bridge_ep();
        assert!(m.random_ns(100, 2) > m.random_ns(100, 1));
        assert!(m.random_ns(100, 1) > m.random_ns(100, 0));
    }

    #[test]
    fn combine_overlaps_streaming_only() {
        let m = CostModel::nehalem_ex();
        assert_eq!(m.combine(100.0, 60.0, 10.0), 110.0);
        assert_eq!(m.combine(50.0, 60.0, 10.0), 70.0);
    }

    #[test]
    fn smt_penalty() {
        let m = CostModel::nehalem_ex();
        assert_eq!(m.smt_penalty(1), 1.0);
        let p = m.smt_penalty(2);
        assert!((p - 2.0 / 1.3).abs() < 1e-9);
    }

    #[test]
    fn micro_benchmark_shape_nehalem() {
        // Reproduces the *shape* of the Section 5.3 micro-benchmark:
        // aggregate local bandwidth with 32 streams spread over 4 nodes
        // should be near the measured 93 GB/s, and mixed traffic slower.
        let m = CostModel::nehalem_ex();
        let local_aggregate = 4.0 * 8.0 * m.stream_rate(0, 8, 0); // 8 streams/node
        assert!(local_aggregate > 85.0 && local_aggregate < 100.0);
        // Mixed: 24 of 32 streams cross links (75% remote).
        let remote_rate = m.stream_rate(1, 32, 8);
        assert!(remote_rate < m.stream_rate(0, 8, 0));
    }

    #[test]
    fn topology_dispatch() {
        assert_eq!(
            CostModel::for_topology(&Topology::nehalem_ex()).node_bw,
            23.25
        );
        assert_eq!(CostModel::for_topology(&Topology::laptop()).node_bw, 40.0);
    }
}
