//! The transactional database: MVCC begin/commit over delta stores,
//! group-commit WAL durability, and crash recovery.
//!
//! One [`TxnDb`] owns a fixed set of tables, each an immutable base
//! [`Relation`] plus a committed [`DeltaStore`]. Transactions buffer
//! their writes privately and apply them — in one deterministic
//! sequence, mirrored record-for-record in the WAL — at commit, under
//! a single commit lock that also serializes timestamp assignment, so
//! the applied state is always a timestamp-prefix and the log replays
//! to exactly the in-memory delta stores (`==`, field for field).
//!
//! **Commit protocol** (early lock release, standard group commit):
//! validate conflicts → assign timestamp → append WAL frames → apply
//! to delta stores → *release the commit lock* → wait for group
//! durability → acknowledge. Concurrent committers pile into the next
//! fsync group while the leader flushes; a commit is acknowledged only
//! after its group is durable, so nothing a client was told succeeded
//! can be lost. Readers may observe applied-but-not-yet-durable
//! commits; if the process dies before the fsync those commits vanish
//! on recovery — exactly the commits that were never acknowledged.
//!
//! **Conflict rule** (first committer wins): a transaction that
//! updates or deletes a row records the row id it saw at its begin
//! snapshot; at commit, a tombstone on any such row — necessarily from
//! a transaction that committed after our begin — aborts us. Epoch
//! mismatches (a merge renumbered rows mid-flight) abort the same way.
//! Inserts never conflict.
//!
//! **Memory accounting**: committed delta bytes are reserved against a
//! [`MemBudget`] (optionally pool-backed) as they apply and released
//! when a merge folds them into base partitions — the crash sweep
//! asserts the pool drains to zero.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use morsel_core::{EngineError, MemBudget, MemPool};
use morsel_exec::Expr;
use morsel_storage::{
    delta_row_id, recovery, row_bytes, Batch, Catalog, DeltaStore, Relation, Schema, Value, Wal,
    WalError, WalFaults, WalOp, WalStats,
};

use crate::manager::{SiMode, TxnManager};

/// Marks a row id that exists only in a transaction's private buffer
/// (bit 62; bit 63 is [`morsel_storage::DELTA_ROW_BIT`]).
const PENDING_BIT: u64 = 1 << 62;

/// Why a transactional operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnError {
    /// First-committer-wins: someone else committed a write to a row
    /// this transaction also wrote (or a merge renumbered it).
    Conflict(String),
    /// The WAL is poisoned (injected fault or real I/O failure); the
    /// engine must restart and recover.
    Wal(WalError),
    /// The database was poisoned by an earlier WAL failure.
    Poisoned,
    UnknownTable(String),
    /// Row arity/type does not match the table schema.
    Schema(String),
    /// The delta memory budget rejected the reservation.
    Memory(String),
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Conflict(m) => write!(f, "write-write conflict: {m}"),
            TxnError::Wal(e) => write!(f, "{e}"),
            TxnError::Poisoned => f.write_str("database poisoned by an earlier WAL failure"),
            TxnError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            TxnError::Schema(m) => write!(f, "schema mismatch: {m}"),
            TxnError::Memory(m) => write!(f, "delta budget: {m}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl From<WalError> for TxnError {
    fn from(e: WalError) -> Self {
        TxnError::Wal(e)
    }
}

/// One buffered (uncommitted) write.
#[derive(Debug, Clone)]
enum BufOp {
    /// Insert of `pending[idx]`.
    Insert { table: u32, idx: usize },
    /// Delete of a row that exists in the committed snapshot.
    DeleteSnapshot { table: u32, row_id: u64 },
    /// Delete of this transaction's own pending insert `pending[idx]`.
    DeletePending { table: u32, idx: usize },
}

/// An open transaction: snapshot timestamp plus private write buffer.
/// Obtained from [`TxnDb::begin`]; consumed by [`TxnDb::commit`] /
/// [`TxnDb::abort`].
pub struct Txn {
    pub id: u64,
    begin_ts: u64,
    /// Table epochs at begin — a merge in between is a conflict.
    epochs: Vec<u64>,
    ops: Vec<BufOp>,
    /// Rows this transaction inserted, in buffer order.
    pending: Vec<(u32, Vec<Value>)>,
    /// Pending indices deleted again by this same transaction.
    pending_dead: std::collections::HashSet<usize>,
    /// Committed-snapshot rows this transaction deleted: the write set
    /// for conflict validation.
    snapshot_deletes: Vec<(u32, u64)>,
}

impl Txn {
    /// The MVCC snapshot this transaction reads at.
    pub fn snapshot_ts(&self) -> u64 {
        self.begin_ts
    }

    pub fn is_read_only(&self) -> bool {
        self.ops.is_empty()
    }
}

struct TableState {
    name: String,
    base: Arc<Relation>,
    delta: DeltaStore,
    /// Delta bytes currently reserved against the budget.
    reserved: u64,
}

struct Inner {
    tables: Vec<TableState>,
    by_name: HashMap<String, u32>,
    /// Highest commit timestamp applied to the delta stores.
    last_applied_ts: u64,
    /// Monotonic change counter (last mutating WAL LSN): stamps
    /// snapshot catalogs so plan/result caches invalidate on commit
    /// and merge.
    version: u64,
    poisoned: bool,
}

/// Construction knobs for [`TxnDb`].
#[derive(Default)]
pub struct TxnDbConfig {
    /// Shared memory pool for delta accounting (tests assert it drains
    /// to zero).
    pub pool: Option<Arc<MemPool>>,
    /// Deterministic WAL fault schedule (chaos tests).
    pub faults: WalFaults,
    /// Isolation-breaking knob for the checker's teeth test.
    pub mode: SiMode,
}

/// A transactional database over immutable column partitions.
pub struct TxnDb {
    dir: PathBuf,
    wal: Wal,
    mgr: TxnManager,
    inner: parking_lot::Mutex<Inner>,
    budget: MemBudget,
}

impl TxnDb {
    /// Create a fresh database (truncating any WAL at `dir`).
    pub fn create(dir: &Path, tables: Vec<(&str, Arc<Relation>)>) -> Result<TxnDb, TxnError> {
        TxnDb::create_with(dir, tables, TxnDbConfig::default())
    }

    pub fn create_with(
        dir: &Path,
        tables: Vec<(&str, Arc<Relation>)>,
        cfg: TxnDbConfig,
    ) -> Result<TxnDb, TxnError> {
        let wal = Wal::create(dir)?.with_faults(cfg.faults);
        Ok(TxnDb::assemble(
            dir,
            wal,
            tables_to_state(tables),
            0,
            1,
            0,
            0,
            cfg.pool,
            cfg.mode,
        ))
    }

    /// Open an existing database: scan the WAL, truncate the torn
    /// tail, redo the committed prefix, and continue the log where the
    /// valid records end. `tables` must be the same load-time base
    /// relations, in the same registration order, as when the log was
    /// written.
    pub fn open(dir: &Path, tables: Vec<(&str, Arc<Relation>)>) -> Result<TxnDb, TxnError> {
        TxnDb::open_with(dir, tables, TxnDbConfig::default())
    }

    pub fn open_with(
        dir: &Path,
        tables: Vec<(&str, Arc<Relation>)>,
        cfg: TxnDbConfig,
    ) -> Result<TxnDb, TxnError> {
        let scan = recovery::scan_wal(dir)?;
        let bases: Vec<Arc<Relation>> = tables.iter().map(|(_, r)| Arc::clone(r)).collect();
        let st = recovery::replay(&scan.records, &bases, 0);
        let wal = Wal::reopen(dir, scan.valid_bytes, st.applied_lsn + 1)?.with_faults(cfg.faults);
        let mut state = tables_to_state(tables);
        for (i, t) in state.iter_mut().enumerate() {
            t.base = Arc::clone(&st.bases[i]);
            t.delta = st.deltas[i].clone();
        }
        Ok(TxnDb::assemble(
            dir,
            wal,
            state,
            st.last_commit_ts,
            st.next_txn,
            st.applied_lsn,
            st.applied_lsn,
            cfg.pool,
            cfg.mode,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        dir: &Path,
        wal: Wal,
        mut tables: Vec<TableState>,
        last_ts: u64,
        next_txn: u64,
        version: u64,
        _applied_lsn: u64,
        pool: Option<Arc<MemPool>>,
        mode: SiMode,
    ) -> TxnDb {
        let budget = MemBudget::new(None, pool);
        for t in &mut tables {
            let bytes = t.delta.approx_bytes();
            if bytes > 0 {
                // Recovered deltas re-reserve their footprint; the pool
                // is sized by tests, so failure here is a test bug.
                budget
                    .try_reserve(bytes)
                    .expect("recovered delta exceeds the configured pool");
                t.reserved = bytes;
            }
        }
        let by_name = tables
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.clone(), i as u32))
            .collect();
        let mgr = TxnManager::new(mode);
        mgr.restore(next_txn, last_ts);
        TxnDb {
            dir: dir.to_path_buf(),
            wal,
            mgr,
            inner: parking_lot::Mutex::new(Inner {
                tables,
                by_name,
                last_applied_ts: last_ts,
                version,
                poisoned: false,
            }),
            budget,
        }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn mode(&self) -> SiMode {
        self.mgr.mode()
    }

    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().poisoned || self.wal.is_poisoned()
    }

    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Current change counter (see `Inner::version`); strictly advances
    /// on every commit and merge.
    pub fn version(&self) -> u64 {
        self.inner.lock().version
    }

    /// Delta bytes currently reserved against the budget/pool.
    pub fn reserved_bytes(&self) -> u64 {
        self.budget.reserved()
    }

    fn table_index(&self, inner: &Inner, table: &str) -> Result<u32, TxnError> {
        inner
            .by_name
            .get(table)
            .copied()
            .ok_or_else(|| TxnError::UnknownTable(table.to_owned()))
    }

    // ---- transaction lifecycle ----------------------------------------

    /// Begin a transaction reading at the latest applied commit
    /// timestamp.
    pub fn begin(&self) -> Result<Txn, TxnError> {
        let inner = self.inner.lock();
        if inner.poisoned {
            return Err(TxnError::Poisoned);
        }
        Ok(Txn {
            id: self.mgr.next_txn_id(),
            begin_ts: inner.last_applied_ts,
            epochs: inner.tables.iter().map(|t| t.delta.epoch()).collect(),
            ops: Vec::new(),
            pending: Vec::new(),
            pending_dead: std::collections::HashSet::new(),
            snapshot_deletes: Vec::new(),
        })
    }

    /// The timestamp this transaction's reads resolve at (the begin
    /// snapshot — or, under the broken [`SiMode::ReadLatest`], whatever
    /// is committed right now).
    fn read_ts(&self, inner: &Inner, txn: &Txn) -> u64 {
        if self.mgr.reads_pin_snapshot() {
            txn.begin_ts
        } else {
            inner.last_applied_ts
        }
    }

    /// Buffer an insert. Validates arity and value types against the
    /// table schema.
    pub fn insert(&self, txn: &mut Txn, table: &str, row: Vec<Value>) -> Result<(), TxnError> {
        let inner = self.inner.lock();
        if inner.poisoned {
            return Err(TxnError::Poisoned);
        }
        let t = self.table_index(&inner, table)?;
        let schema = inner.tables[t as usize].base.schema();
        check_row(schema, &row)?;
        drop(inner);
        let idx = txn.pending.len();
        txn.pending.push((t, row));
        txn.ops.push(BufOp::Insert { table: t, idx });
        Ok(())
    }

    /// Rows of `table` visible to `txn` (committed snapshot plus the
    /// transaction's own buffered writes), decoded, with their row ids.
    fn visible_with_overlay(
        &self,
        txn: &Txn,
        table: &str,
    ) -> Result<(Batch, Vec<u64>, u32), TxnError> {
        let inner = self.inner.lock();
        if inner.poisoned {
            return Err(TxnError::Poisoned);
        }
        let t = self.table_index(&inner, table)?;
        let ts = self.read_ts(&inner, txn);
        let state = &inner.tables[t as usize];
        let (mut rows, mut ids) = state.delta.visible_rows(&state.base, ts);
        drop(inner);
        // Filter out rows this transaction deleted …
        let dead: std::collections::HashSet<u64> = txn
            .snapshot_deletes
            .iter()
            .filter(|&&(dt, _)| dt == t)
            .map(|&(_, id)| id)
            .collect();
        if !dead.is_empty() {
            let sel: Vec<u32> = ids
                .iter()
                .enumerate()
                .filter(|(_, id)| !dead.contains(id))
                .map(|(i, _)| i as u32)
                .collect();
            rows = rows.gather(&sel);
            ids = sel.iter().map(|&i| ids[i as usize]).collect();
        }
        // … and overlay its own pending inserts.
        for (idx, (pt, row)) in txn.pending.iter().enumerate() {
            if *pt == t && !txn.pending_dead.contains(&idx) {
                rows.push_row(row.clone());
                ids.push(PENDING_BIT | idx as u64);
            }
        }
        Ok((rows, ids, t))
    }

    /// All rows of `table` visible to `txn`, decoded (reads inside a
    /// transaction; includes its own uncommitted writes).
    pub fn read(&self, txn: &Txn, table: &str) -> Result<Batch, TxnError> {
        self.visible_with_overlay(txn, table).map(|(b, _, _)| b)
    }

    /// Buffer deletes for every visible row matching `pred`; returns
    /// the match count.
    pub fn delete_where(&self, txn: &mut Txn, table: &str, pred: &Expr) -> Result<usize, TxnError> {
        let (rows, ids, t) = self.visible_with_overlay(txn, table)?;
        let matched = pred.eval_filter(&rows, 0..rows.rows());
        for &m in &matched {
            self.buffer_delete(txn, t, ids[m as usize]);
        }
        Ok(matched.len())
    }

    /// Buffer updates (delete + re-insert with `set` applied) for every
    /// visible row matching `pred`; returns the match count.
    pub fn update_where(
        &self,
        txn: &mut Txn,
        table: &str,
        pred: &Expr,
        set: &[(usize, Value)],
    ) -> Result<usize, TxnError> {
        let (rows, ids, t) = self.visible_with_overlay(txn, table)?;
        {
            let inner = self.inner.lock();
            let schema = inner.tables[t as usize].base.schema();
            for (c, v) in set {
                if *c >= schema.len() {
                    return Err(TxnError::Schema(format!("no column {c} in {table:?}")));
                }
                check_value(schema, *c, v)?;
            }
        }
        let matched = pred.eval_filter(&rows, 0..rows.rows());
        for &m in &matched {
            self.buffer_delete(txn, t, ids[m as usize]);
            let mut row = rows.row(m as usize);
            for (c, v) in set {
                row[*c] = v.clone();
            }
            let idx = txn.pending.len();
            txn.pending.push((t, row));
            txn.ops.push(BufOp::Insert { table: t, idx });
        }
        Ok(matched.len())
    }

    fn buffer_delete(&self, txn: &mut Txn, table: u32, row_id: u64) {
        if row_id & PENDING_BIT != 0 {
            let idx = (row_id & !PENDING_BIT) as usize;
            txn.pending_dead.insert(idx);
            txn.ops.push(BufOp::DeletePending { table, idx });
        } else {
            txn.snapshot_deletes.push((table, row_id));
            txn.ops.push(BufOp::DeleteSnapshot { table, row_id });
        }
    }

    /// Discard the transaction's buffered writes. Nothing was logged or
    /// applied, so this is purely local.
    pub fn abort(&self, txn: Txn) {
        drop(txn);
    }

    /// Validate, log, apply, and — only after the commit's WAL group is
    /// durable — acknowledge by returning the commit timestamp.
    pub fn commit(&self, txn: Txn) -> Result<u64, TxnError> {
        if txn.ops.is_empty() {
            // Read-only: nothing to validate, log, or wait for.
            return Ok(txn.begin_ts);
        }
        let (lsn, commit_ts) = {
            let mut inner = self.inner.lock();
            if inner.poisoned {
                return Err(TxnError::Poisoned);
            }
            // First committer wins: any tombstone on a row we also
            // wrote means someone committed it after our begin.
            if self.mgr.detect_conflicts() {
                for (t, epoch) in txn.epochs.iter().enumerate() {
                    if inner.tables[t].delta.epoch() != *epoch
                        && txn.ops.iter().any(|op| op_table(op) == t as u32)
                    {
                        return Err(TxnError::Conflict(format!(
                            "table {:?} merged since begin",
                            inner.tables[t].name
                        )));
                    }
                }
                for &(t, row_id) in &txn.snapshot_deletes {
                    if inner.tables[t as usize].delta.tombstoned(row_id) {
                        return Err(TxnError::Conflict(format!(
                            "row {row_id:#x} of {:?} already deleted by a concurrent commit",
                            inner.tables[t as usize].name
                        )));
                    }
                }
            }
            let commit_ts = self.mgr.next_commit_ts();
            // Resolve pending-insert indices to the delta row ids they
            // will occupy — deterministic, so WAL replay reproduces
            // identical numbering.
            let mut next_row: Vec<u64> = inner
                .tables
                .iter()
                .map(|t| t.delta.delta_rows() as u64)
                .collect();
            let mut pending_ids: HashMap<usize, u64> = HashMap::new();
            let mut wal_ops = Vec::with_capacity(txn.ops.len() + 1);
            for op in &txn.ops {
                match op {
                    BufOp::Insert { table, idx } => {
                        let id = delta_row_id(next_row[*table as usize] as usize);
                        next_row[*table as usize] += 1;
                        pending_ids.insert(*idx, id);
                        wal_ops.push(WalOp::Insert {
                            txn: txn.id,
                            table: *table,
                            row: txn.pending[*idx].1.clone(),
                        });
                    }
                    BufOp::DeleteSnapshot { table, row_id } => {
                        wal_ops.push(WalOp::Delete {
                            txn: txn.id,
                            table: *table,
                            row_id: *row_id,
                        });
                    }
                    BufOp::DeletePending { table, idx } => {
                        wal_ops.push(WalOp::Delete {
                            txn: txn.id,
                            table: *table,
                            row_id: pending_ids[idx],
                        });
                    }
                }
            }
            wal_ops.push(WalOp::Commit {
                txn: txn.id,
                commit_ts,
            });
            // Reserve delta memory before logging: a budget rejection
            // must abort cleanly, before anything hits the log.
            let bytes: u64 = txn
                .pending
                .iter()
                .enumerate()
                .filter(|(i, _)| pending_ids.contains_key(i))
                .map(|(_, (_, row))| row_bytes(row))
                .sum::<u64>()
                + txn.snapshot_deletes.len() as u64 * 16
                + txn.pending_dead.len() as u64 * 16;
            self.budget.try_reserve(bytes).map_err(|e| match e {
                EngineError::ResourceExhausted { .. } => TxnError::Memory(e.to_string()),
                other => TxnError::Memory(other.to_string()),
            })?;
            let lsn = match self.wal.append(&wal_ops) {
                Ok(lsn) => lsn,
                Err(e) => {
                    self.budget.release(bytes);
                    inner.poisoned = true;
                    return Err(e.into());
                }
            };
            // Apply to the committed delta stores, same order as logged.
            let mut per_table = vec![0u64; inner.tables.len()];
            for op in &txn.ops {
                match op {
                    BufOp::Insert { table, idx } => {
                        let state = &mut inner.tables[*table as usize];
                        let id = state
                            .delta
                            .apply_insert(txn.pending[*idx].1.clone(), commit_ts);
                        debug_assert_eq!(id, pending_ids[idx]);
                        per_table[*table as usize] += row_bytes(&txn.pending[*idx].1);
                    }
                    BufOp::DeleteSnapshot { table, row_id } => {
                        inner.tables[*table as usize]
                            .delta
                            .apply_delete(*row_id, commit_ts);
                        per_table[*table as usize] += 16;
                    }
                    BufOp::DeletePending { table, idx } => {
                        inner.tables[*table as usize]
                            .delta
                            .apply_delete(pending_ids[idx], commit_ts);
                        per_table[*table as usize] += 16;
                    }
                }
            }
            for (t, b) in per_table.iter().enumerate() {
                inner.tables[t].reserved += b;
            }
            inner.last_applied_ts = inner.last_applied_ts.max(commit_ts);
            inner.version = lsn;
            (lsn, commit_ts)
        };
        // Group commit: block until this commit's group is durable.
        if let Err(e) = self.wal.commit_durable(lsn) {
            self.inner.lock().poisoned = true;
            return Err(e.into());
        }
        Ok(commit_ts)
    }

    // ---- reads ---------------------------------------------------------

    /// The relation `txn` should scan for `table`: the committed
    /// snapshot at the transaction's timestamp, overlaid with its own
    /// buffered writes. Tables the transaction has not written keep
    /// their partitioning and dictionary encoding; with an empty delta
    /// the load-time base `Arc` is returned unchanged (byte-identical
    /// read-only behavior).
    pub fn relation_for(&self, txn: &Txn, table: &str) -> Result<Arc<Relation>, TxnError> {
        let has_overlay = {
            let inner = self.inner.lock();
            let t = self.table_index(&inner, table)?;
            txn.ops.iter().any(|op| op_table(op) == t)
        };
        if has_overlay {
            let (rows, _, t) = self.visible_with_overlay(txn, table)?;
            let inner = self.inner.lock();
            let schema = inner.tables[t as usize].base.schema().clone();
            drop(inner);
            return Ok(Arc::new(Relation::single(schema, rows)));
        }
        let inner = self.inner.lock();
        let t = self.table_index(&inner, table)?;
        let ts = self.read_ts(&inner, txn);
        let state = &inner.tables[t as usize];
        if state.delta.snapshot_is_base(ts) {
            return Ok(Arc::clone(&state.base));
        }
        Ok(Arc::new(state.delta.snapshot(&state.base, ts)))
    }

    /// The latest committed relation for `table` (what a fresh
    /// transaction would read).
    pub fn latest_relation(&self, table: &str) -> Result<Arc<Relation>, TxnError> {
        let inner = self.inner.lock();
        let t = self.table_index(&inner, table)? as usize;
        let state = &inner.tables[t];
        let ts = inner.last_applied_ts;
        if state.delta.snapshot_is_base(ts) {
            return Ok(Arc::clone(&state.base));
        }
        Ok(Arc::new(state.delta.snapshot(&state.base, ts)))
    }

    /// A catalog of the latest committed snapshot of every table,
    /// stamped with a strictly advancing version (base table count +
    /// the commit/merge counter) so plan/result caches keyed on
    /// [`Catalog::version`] invalidate on every write. With empty
    /// deltas every entry is the load-time base `Arc` itself.
    pub fn snapshot_catalog(&self) -> Catalog {
        let inner = self.inner.lock();
        let ts = inner.last_applied_ts;
        let mut cat = Catalog::new();
        for state in &inner.tables {
            let rel = if state.delta.snapshot_is_base(ts) {
                Arc::clone(&state.base)
            } else {
                Arc::new(state.delta.snapshot(&state.base, ts))
            };
            cat.add(&state.name, rel);
        }
        let v = cat.version() + inner.version;
        cat.set_version(v);
        cat
    }

    /// The pair `(snapshot catalog, snapshot timestamp)` a service
    /// front end stamps onto compiled [`morsel_core::QuerySpec`]s.
    pub fn snapshot(&self) -> (Catalog, u64) {
        let ts = self.inner.lock().last_applied_ts;
        (self.snapshot_catalog(), ts)
    }

    // ---- merge ---------------------------------------------------------

    /// Fold `table`'s committed delta into fresh base partitions (new
    /// epoch, new row numbering), releasing its delta memory. Logged
    /// before it applies so replay re-folds at the identical point.
    pub fn merge(&self, table: &str) -> Result<(), TxnError> {
        let lsn = {
            let mut inner = self.inner.lock();
            if inner.poisoned {
                return Err(TxnError::Poisoned);
            }
            let t = self.table_index(&inner, table)? as usize;
            if inner.tables[t].delta.is_empty() {
                return Ok(());
            }
            let upto = inner.tables[t].delta.last_commit_ts();
            let lsn = match self.wal.append(&[WalOp::Merge {
                table: t as u32,
                upto_ts: upto,
            }]) {
                Ok(lsn) => lsn,
                Err(e) => {
                    inner.poisoned = true;
                    return Err(e.into());
                }
            };
            let state = &mut inner.tables[t];
            let (folded, next) = state.delta.merge(&state.base, upto);
            state.base = Arc::new(folded);
            state.delta = next;
            self.budget.release(state.reserved);
            state.reserved = 0;
            inner.version = lsn;
            lsn
        };
        if let Err(e) = self.wal.commit_durable(lsn) {
            self.inner.lock().poisoned = true;
            return Err(e.into());
        }
        Ok(())
    }

    /// [`TxnDb::merge`] over every table.
    pub fn merge_all(&self) -> Result<(), TxnError> {
        let names: Vec<String> = {
            let inner = self.inner.lock();
            inner.tables.iter().map(|t| t.name.clone()).collect()
        };
        for n in &names {
            self.merge(n)?;
        }
        Ok(())
    }

    // ---- inspection ----------------------------------------------------

    pub fn table_names(&self) -> Vec<String> {
        self.inner
            .lock()
            .tables
            .iter()
            .map(|t| t.name.clone())
            .collect()
    }

    /// `(delta rows, tombstones, epoch)` for a table.
    pub fn delta_stats(&self, table: &str) -> Result<(usize, usize, u64), TxnError> {
        let inner = self.inner.lock();
        let t = self.table_index(&inner, table)? as usize;
        let d = &inner.tables[t].delta;
        Ok((d.delta_rows(), d.tombstone_count(), d.epoch()))
    }

    /// Canonical committed logical state for oracle diffs: every
    /// table's visible rows at the latest commit, decoded, sorted by
    /// their full row rendering. Two databases that went through the
    /// same acknowledged commits compare equal here regardless of crash
    /// and recovery in between.
    pub fn logical_state(&self) -> Vec<(String, Batch)> {
        let inner = self.inner.lock();
        let ts = inner.last_applied_ts;
        inner
            .tables
            .iter()
            .map(|state| {
                let (rows, _) = state.delta.visible_rows(&state.base, ts);
                let mut order: Vec<u32> = (0..rows.rows() as u32).collect();
                order.sort_by_cached_key(|&i| {
                    rows.row(i as usize)
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("\u{1}")
                });
                (state.name.clone(), rows.reordered(&order))
            })
            .collect()
    }
}

impl Drop for TxnDb {
    fn drop(&mut self) {
        // Return every delta reservation to the shared pool: after the
        // database is gone, nothing holds delta memory.
        self.budget.release_all();
    }
}

fn op_table(op: &BufOp) -> u32 {
    match op {
        BufOp::Insert { table, .. }
        | BufOp::DeleteSnapshot { table, .. }
        | BufOp::DeletePending { table, .. } => *table,
    }
}

fn tables_to_state(tables: Vec<(&str, Arc<Relation>)>) -> Vec<TableState> {
    tables
        .into_iter()
        .map(|(name, base)| TableState {
            name: name.to_owned(),
            delta: DeltaStore::new(base.schema().clone()),
            base,
            reserved: 0,
        })
        .collect()
}

fn check_row(schema: &Schema, row: &[Value]) -> Result<(), TxnError> {
    if row.len() != schema.len() {
        return Err(TxnError::Schema(format!(
            "row has {} values, table has {} columns",
            row.len(),
            schema.len()
        )));
    }
    for (c, v) in row.iter().enumerate() {
        check_value(schema, c, v)?;
    }
    Ok(())
}

fn check_value(schema: &Schema, c: usize, v: &Value) -> Result<(), TxnError> {
    use morsel_storage::DataType;
    let expect = schema.dtype(c);
    let actual = match v {
        Value::I64(_) => DataType::I64,
        Value::I32(_) => DataType::I32,
        Value::F64(_) => DataType::F64,
        Value::Str(_) => DataType::Str,
    };
    if expect != actual {
        return Err(TxnError::Schema(format!(
            "column {c} expects {expect:?}, got {actual:?}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use morsel_core::MemPool;
    use morsel_exec::expr::{col, eq, lit};
    use morsel_storage::{Column, DataType, WalFaults};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "morsel-txndb-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn base_rel(n: i64) -> Arc<Relation> {
        let schema = Schema::new(vec![("id", DataType::I64), ("v", DataType::I64)]);
        let data = Batch::from_columns(vec![
            Column::I64((0..n).collect()),
            Column::I64(vec![0; n as usize]),
        ]);
        Arc::new(Relation::single(schema, data))
    }

    fn vals(db: &TxnDb) -> Vec<(i64, i64)> {
        let txn = db.begin().unwrap();
        let b = db.read(&txn, "t").unwrap();
        db.abort(txn);
        let mut out: Vec<(i64, i64)> = (0..b.rows())
            .map(|i| {
                let r = b.row(i);
                (r[0].as_i64(), r[1].as_i64())
            })
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn insert_commit_read_back() {
        let dir = tmpdir("insert");
        let db = TxnDb::create(&dir, vec![("t", base_rel(2))]).unwrap();
        let v0 = db.version();

        let mut txn = db.begin().unwrap();
        db.insert(&mut txn, "t", vec![Value::I64(7), Value::I64(70)])
            .unwrap();
        // Own uncommitted insert is visible to the writer …
        assert_eq!(db.read(&txn, "t").unwrap().rows(), 3);
        // … but not to anyone else.
        let other = db.begin().unwrap();
        assert_eq!(db.read(&other, "t").unwrap().rows(), 2);
        db.abort(other);

        let ts = db.commit(txn).unwrap();
        assert!(ts > 0);
        assert!(db.version() > v0, "commit advances the change counter");
        assert_eq!(vals(&db), vec![(0, 0), (1, 0), (7, 70)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_commit_is_free() {
        let dir = tmpdir("rocommit");
        let db = TxnDb::create(&dir, vec![("t", base_rel(1))]).unwrap();
        let fsyncs_before = db.wal_stats().fsyncs;
        let txn = db.begin().unwrap();
        assert!(txn.is_read_only());
        db.commit(txn).unwrap();
        assert_eq!(db.wal_stats().fsyncs, fsyncs_before, "no log, no fsync");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_pins_at_begin() {
        let dir = tmpdir("snapshot");
        let db = TxnDb::create(&dir, vec![("t", base_rel(2))]).unwrap();
        let reader = db.begin().unwrap();

        let mut w = db.begin().unwrap();
        db.update_where(&mut w, "t", &eq(col(0), lit(0)), &[(1, Value::I64(99))])
            .unwrap();
        db.commit(w).unwrap();

        // The pinned reader still sees the old value; a fresh one sees
        // the new.
        let b = db.read(&reader, "t").unwrap();
        let old: Vec<i64> = (0..b.rows()).map(|i| b.row(i)[1].as_i64()).collect();
        assert!(old.iter().all(|&v| v == 0), "{old:?}");
        db.abort(reader);
        assert_eq!(vals(&db), vec![(0, 99), (1, 0)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delete_and_update_including_own_pending() {
        let dir = tmpdir("dml");
        let db = TxnDb::create(&dir, vec![("t", base_rel(3))]).unwrap();
        let mut txn = db.begin().unwrap();
        db.insert(&mut txn, "t", vec![Value::I64(9), Value::I64(0)])
            .unwrap();
        // Delete hits both a snapshot row and the pending insert.
        let n = db.delete_where(&mut txn, "t", &eq(col(1), lit(0))).unwrap();
        assert_eq!(n, 4);
        db.commit(txn).unwrap();
        assert_eq!(vals(&db), vec![]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn first_committer_wins() {
        let dir = tmpdir("conflict");
        let db = TxnDb::create(&dir, vec![("t", base_rel(2))]).unwrap();
        let mut a = db.begin().unwrap();
        let mut b = db.begin().unwrap();
        db.update_where(&mut a, "t", &eq(col(0), lit(0)), &[(1, Value::I64(1))])
            .unwrap();
        db.update_where(&mut b, "t", &eq(col(0), lit(0)), &[(1, Value::I64(2))])
            .unwrap();
        db.commit(a).unwrap();
        match db.commit(b) {
            Err(TxnError::Conflict(_)) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(vals(&db), vec![(0, 1), (1, 0)]);
        // Disjoint rows do not conflict.
        let mut c = db.begin().unwrap();
        let mut d = db.begin().unwrap();
        db.update_where(&mut c, "t", &eq(col(0), lit(0)), &[(1, Value::I64(3))])
            .unwrap();
        db.update_where(&mut d, "t", &eq(col(0), lit(1)), &[(1, Value::I64(4))])
            .unwrap();
        db.commit(c).unwrap();
        db.commit(d).unwrap();
        assert_eq!(vals(&db), vec![(0, 3), (1, 4)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ww_blind_mode_loses_updates() {
        let dir = tmpdir("wwblind");
        let cfg = TxnDbConfig {
            mode: SiMode::WwBlind,
            ..TxnDbConfig::default()
        };
        let db = TxnDb::create_with(&dir, vec![("t", base_rel(1))], cfg).unwrap();
        let mut a = db.begin().unwrap();
        let mut b = db.begin().unwrap();
        db.update_where(&mut a, "t", &eq(col(0), lit(0)), &[(1, Value::I64(1))])
            .unwrap();
        db.update_where(&mut b, "t", &eq(col(0), lit(0)), &[(1, Value::I64(2))])
            .unwrap();
        db.commit(a).unwrap();
        db.commit(b).unwrap(); // the anomaly the checker must catch
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_folds_delta_and_aborts_stragglers() {
        let dir = tmpdir("merge");
        let pool = MemPool::new(1 << 20);
        let cfg = TxnDbConfig {
            pool: Some(Arc::clone(&pool)),
            ..TxnDbConfig::default()
        };
        let db = TxnDb::create_with(&dir, vec![("t", base_rel(2))], cfg).unwrap();
        let mut w = db.begin().unwrap();
        db.insert(&mut w, "t", vec![Value::I64(5), Value::I64(50)])
            .unwrap();
        db.commit(w).unwrap();
        assert!(pool.reserved() > 0, "committed delta holds memory");

        // A transaction that writes across the merge must abort …
        let mut straggler = db.begin().unwrap();
        db.update_where(
            &mut straggler,
            "t",
            &eq(col(0), lit(0)),
            &[(1, Value::I64(9))],
        )
        .unwrap();

        db.merge("t").unwrap();
        assert_eq!(pool.reserved(), 0, "merge releases delta memory");
        let (rows, tombs, epoch) = db.delta_stats("t").unwrap();
        assert_eq!((rows, tombs), (0, 0));
        assert_eq!(epoch, 1);
        match db.commit(straggler) {
            Err(TxnError::Conflict(m)) => assert!(m.contains("merged"), "{m}"),
            other => panic!("expected epoch conflict, got {other:?}"),
        }

        // … but the folded state is intact and still writable.
        assert_eq!(vals(&db), vec![(0, 0), (1, 0), (5, 50)]);
        let mut w2 = db.begin().unwrap();
        db.update_where(&mut w2, "t", &eq(col(0), lit(5)), &[(1, Value::I64(51))])
            .unwrap();
        db.commit(w2).unwrap();
        assert_eq!(vals(&db), vec![(0, 0), (1, 0), (5, 51)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_recovers_exactly_the_acked_commits() {
        let dir = tmpdir("crash");
        // Commit twice, then crash while logging the third.
        let oracle_dir = tmpdir("crash-oracle");
        let oracle = TxnDb::create(&oracle_dir, vec![("t", base_rel(2))]).unwrap();
        let crash_lsn;
        {
            let db = TxnDb::create(&dir, vec![("t", base_rel(2))]).unwrap();
            for k in 0..2 {
                for d in [&db, &oracle] {
                    let mut w = d.begin().unwrap();
                    d.update_where(&mut w, "t", &eq(col(0), lit(k)), &[(1, Value::I64(k + 10))])
                        .unwrap();
                    d.commit(w).unwrap();
                }
            }
            crash_lsn = db.wal_stats().next_lsn + 1;
        }
        let db = TxnDb::open_with(
            &dir,
            vec![("t", base_rel(2))],
            TxnDbConfig {
                faults: WalFaults {
                    crash_at_lsn: vec![crash_lsn],
                    ..WalFaults::none()
                },
                ..TxnDbConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            db.logical_state()[0].1.rows(),
            oracle.logical_state()[0].1.rows()
        );
        let mut w = db.begin().unwrap();
        db.insert(&mut w, "t", vec![Value::I64(7), Value::I64(7)])
            .unwrap();
        match db.commit(w) {
            Err(TxnError::Wal(WalError::Poisoned(_))) => {}
            other => panic!("expected poisoned WAL, got {other:?}"),
        }
        assert!(db.is_poisoned());
        assert!(matches!(db.begin(), Err(TxnError::Poisoned)));
        drop(db);

        // Reopen: the unacknowledged commit vanished; the acked ones
        // replayed to the oracle's exact logical state.
        let db = TxnDb::open(&dir, vec![("t", base_rel(2))]).unwrap();
        let (recovered, reference) = (db.logical_state(), oracle.logical_state());
        assert_eq!(recovered.len(), reference.len());
        for ((n1, b1), (n2, b2)) in recovered.iter().zip(&reference) {
            assert_eq!(n1, n2);
            assert_eq!(b1.rows(), b2.rows());
            for i in 0..b1.rows() {
                assert_eq!(b1.row(i), b2.row(i));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&oracle_dir);
    }

    #[test]
    fn recovery_survives_a_merge_in_the_log() {
        let dir = tmpdir("recover-merge");
        {
            let db = TxnDb::create(&dir, vec![("t", base_rel(2))]).unwrap();
            let mut w = db.begin().unwrap();
            db.insert(&mut w, "t", vec![Value::I64(3), Value::I64(30)])
                .unwrap();
            db.commit(w).unwrap();
            db.merge("t").unwrap();
            let mut w = db.begin().unwrap();
            db.delete_where(&mut w, "t", &eq(col(0), lit(0))).unwrap();
            db.commit(w).unwrap();
        }
        let db = TxnDb::open(&dir, vec![("t", base_rel(2))]).unwrap();
        assert_eq!(vals(&db), vec![(1, 0), (3, 30)]);
        let (_, _, epoch) = db.delta_stats("t").unwrap();
        assert_eq!(epoch, 1, "replay re-folds the merge");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_violations_abort_before_buffering() {
        let dir = tmpdir("schema");
        let db = TxnDb::create(&dir, vec![("t", base_rel(1))]).unwrap();
        let mut txn = db.begin().unwrap();
        assert!(matches!(
            db.insert(&mut txn, "t", vec![Value::I64(1)]),
            Err(TxnError::Schema(_))
        ));
        assert!(matches!(
            db.insert(&mut txn, "t", vec![Value::I64(1), Value::Str("x".into())]),
            Err(TxnError::Schema(_))
        ));
        assert!(matches!(
            db.insert(&mut txn, "missing", vec![]),
            Err(TxnError::UnknownTable(_))
        ));
        assert!(txn.is_read_only(), "failed inserts buffered nothing");
        db.abort(txn);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_catalog_version_strictly_advances() {
        let dir = tmpdir("catver");
        let db = TxnDb::create(&dir, vec![("t", base_rel(1))]).unwrap();
        let v1 = db.snapshot_catalog().version();
        let mut w = db.begin().unwrap();
        db.insert(&mut w, "t", vec![Value::I64(4), Value::I64(4)])
            .unwrap();
        db.commit(w).unwrap();
        let v2 = db.snapshot_catalog().version();
        assert!(v2 > v1, "commit must bump the catalog version");
        db.merge("t").unwrap();
        let v3 = db.snapshot_catalog().version();
        assert!(v3 > v2, "merge must bump the catalog version");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_delta_reads_reuse_the_base_arc() {
        let dir = tmpdir("basearc");
        let base = base_rel(4);
        let db = TxnDb::create(&dir, vec![("t", Arc::clone(&base))]).unwrap();
        let txn = db.begin().unwrap();
        let rel = db.relation_for(&txn, "t").unwrap();
        assert!(
            Arc::ptr_eq(&rel, &base),
            "read-only path must hand back the load-time relation itself"
        );
        db.abort(txn);
        let cat = db.snapshot_catalog();
        assert!(Arc::ptr_eq(cat.get("t").unwrap(), &base));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
