//! Transaction ids, timestamps, and the isolation-breaking knobs the
//! SI checker's teeth test flips.
//!
//! Timestamp discipline is the whole of snapshot isolation here: a
//! transaction reads at the commit timestamp that was current when it
//! began, and commit timestamps are handed out strictly monotonically
//! under the database's commit lock. [`SiMode`] deliberately breaks
//! one rule at a time so the black-box checker can prove it detects
//! the resulting anomalies — a checker that never fails on a broken
//! engine is not evidence of anything.

use parking_lot::Mutex;

/// Which isolation rule (if any) to break — test-only knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SiMode {
    /// Snapshot isolation as specified.
    #[default]
    Correct,
    /// Reads ignore the begin snapshot and see the latest committed
    /// state at each read — non-repeatable reads across a concurrent
    /// commit (breaks read consistency).
    ReadLatest,
    /// Skip write-write conflict detection — concurrent updates of the
    /// same row both commit (lost update).
    WwBlind,
    /// Every other commit reuses the previous commit timestamp instead
    /// of advancing — two distinct commits become indistinguishable to
    /// visibility, so a snapshot between them tears.
    ReuseCommitTs,
}

#[derive(Debug, Default)]
struct MgrState {
    next_txn: u64,
    last_ts: u64,
    /// ReuseCommitTs: alternates advance / reuse.
    reuse_flip: bool,
}

/// Allocates transaction ids and commit timestamps.
#[derive(Debug)]
pub struct TxnManager {
    mode: SiMode,
    state: Mutex<MgrState>,
}

impl TxnManager {
    pub fn new(mode: SiMode) -> Self {
        TxnManager {
            mode,
            state: Mutex::new(MgrState {
                next_txn: 1,
                last_ts: 0,
                reuse_flip: false,
            }),
        }
    }

    /// Restore counters after recovery so restarted ids and timestamps
    /// never collide with logged ones.
    pub fn restore(&self, next_txn: u64, last_commit_ts: u64) {
        let mut st = self.state.lock();
        st.next_txn = st.next_txn.max(next_txn);
        st.last_ts = st.last_ts.max(last_commit_ts);
    }

    pub fn mode(&self) -> SiMode {
        self.mode
    }

    /// A fresh transaction id.
    pub fn next_txn_id(&self) -> u64 {
        let mut st = self.state.lock();
        let id = st.next_txn;
        st.next_txn += 1;
        id
    }

    /// The next commit timestamp. Called under the database's commit
    /// lock, so monotonicity here is global monotonicity — except in
    /// [`SiMode::ReuseCommitTs`], which hands the previous timestamp
    /// out again on every second call.
    pub fn next_commit_ts(&self) -> u64 {
        let mut st = self.state.lock();
        let reuse = self.mode == SiMode::ReuseCommitTs && st.reuse_flip && st.last_ts > 0;
        st.reuse_flip = !st.reuse_flip;
        if !reuse {
            st.last_ts += 1;
        }
        st.last_ts
    }

    /// Whether write-write conflicts should abort the second committer.
    pub fn detect_conflicts(&self) -> bool {
        self.mode != SiMode::WwBlind
    }

    /// Whether reads pin to the begin snapshot (correct) or chase the
    /// latest committed state (broken).
    pub fn reads_pin_snapshot(&self) -> bool {
        self.mode != SiMode::ReadLatest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_timestamps_advance() {
        let m = TxnManager::new(SiMode::Correct);
        assert_eq!(m.next_txn_id(), 1);
        assert_eq!(m.next_txn_id(), 2);
        assert_eq!(m.next_commit_ts(), 1);
        assert_eq!(m.next_commit_ts(), 2);
        assert!(m.detect_conflicts());
        assert!(m.reads_pin_snapshot());
    }

    #[test]
    fn restore_never_moves_backwards() {
        let m = TxnManager::new(SiMode::Correct);
        m.restore(10, 5);
        assert_eq!(m.next_txn_id(), 10);
        assert_eq!(m.next_commit_ts(), 6);
        m.restore(3, 2); // stale restore is a no-op
        assert_eq!(m.next_txn_id(), 11);
        assert_eq!(m.next_commit_ts(), 7);
    }

    #[test]
    fn reuse_mode_repeats_every_other_timestamp() {
        let m = TxnManager::new(SiMode::ReuseCommitTs);
        assert_eq!(m.next_commit_ts(), 1);
        assert_eq!(m.next_commit_ts(), 1, "second commit reuses");
        assert_eq!(m.next_commit_ts(), 2);
        assert_eq!(m.next_commit_ts(), 2);
    }

    #[test]
    fn broken_modes_flip_the_right_knob() {
        assert!(!TxnManager::new(SiMode::WwBlind).detect_conflicts());
        assert!(!TxnManager::new(SiMode::ReadLatest).reads_pin_snapshot());
        let r = TxnManager::new(SiMode::ReadLatest);
        assert!(r.detect_conflicts(), "only one rule broken at a time");
    }
}
