//! Deterministic seeded write workloads, shared by the crash-recovery
//! sweep (`tests/recovery.rs`), the CI recovery smoke, and
//! `repro txn_bench`.
//!
//! The workload is a single client stream whose operations are drawn
//! from the replayable [`Lcg`], **independent of database state**: the
//! `i`-th transaction issues the same operations no matter what
//! succeeded before it. That prefix-determinism is what makes the
//! crash-sweep oracle trivial — a run that acknowledged `k` commits
//! before dying must recover to exactly the state of a fresh run of
//! the first `k` transactions.

use crate::checker::Lcg;
use crate::db::TxnDb;
use morsel_exec::expr::{col, eq, lit};
use morsel_storage::Value;

/// Shape of a seeded single-stream workload over the `kv` table (from
/// [`crate::checker::kv_relation`]).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    pub seed: u64,
    /// Transactions to attempt (each commits independently).
    pub txns: usize,
    /// Pre-seeded key range of the `kv` table.
    pub keys: i64,
}

impl WorkloadSpec {
    pub fn new(seed: u64, txns: usize, keys: i64) -> Self {
        WorkloadSpec { seed, txns, keys }
    }
}

/// One drawn operation of the stream. The draw for transaction `i`
/// depends only on the rng position and `i` — never on database state —
/// so a crashed run and its oracle see identical streams.
enum Op {
    Insert { key: i64, val: i64 },
    Delete { key: i64 },
    Update { key: i64, val: i64 },
}

/// Draw transaction `i`'s operations, advancing `rng` by exactly the
/// same number of pulls whether or not the caller applies them.
fn draw_txn(rng: &mut Lcg, spec: &WorkloadSpec, i: usize) -> Vec<Op> {
    let nops = 1 + rng.below(2) as usize;
    (0..nops)
        .map(|j| {
            let roll = rng.below(6);
            let key = rng.below(spec.keys as u64) as i64;
            match roll {
                // Fresh key derived from (i, op) — unique by
                // construction, never colliding with the pre-seeded
                // range.
                0 => Op::Insert {
                    key: spec.keys + (i as i64) * 4 + j as i64,
                    val: ((i as i64) << 8) | j as i64,
                },
                1 => Op::Delete { key },
                _ => Op::Update {
                    key,
                    val: ((i as i64) << 8) | 0x40 | j as i64,
                },
            }
        })
        .collect()
}

/// Advance `rng` past transaction `i`'s draws without touching any
/// database — positions a continuation stream after a recovered prefix.
pub fn skip_step(rng: &mut Lcg, spec: &WorkloadSpec, i: usize) {
    let _ = draw_txn(rng, spec, i);
}

/// Run transaction `i` of the stream against `db`, drawing from `rng`
/// (which must be positioned at transaction `i`). Returns `true` when
/// the commit was acknowledged, `false` when the engine refused
/// (poisoned WAL after an injected crash).
pub fn run_step(db: &TxnDb, spec: &WorkloadSpec, rng: &mut Lcg, i: usize) -> bool {
    let ops = draw_txn(rng, spec, i);
    let mut txn = match db.begin() {
        Ok(t) => t,
        Err(_) => return false,
    };
    for op in &ops {
        let result = match op {
            Op::Insert { key, val } => db
                .insert(&mut txn, "kv", vec![Value::I64(*key), Value::I64(*val)])
                .map(|()| 1),
            Op::Delete { key } => db.delete_where(&mut txn, "kv", &eq(col(0), lit(*key))),
            Op::Update { key, val } => db.update_where(
                &mut txn,
                "kv",
                &eq(col(0), lit(*key)),
                &[(1, Value::I64(*val))],
            ),
        };
        if result.is_err() {
            db.abort(txn);
            return false;
        }
    }
    db.commit(txn).is_ok()
}

/// Run the first `limit` transactions of the workload against `db`,
/// committing each. Returns the number of acknowledged commits; stops
/// early when the engine refuses (poisoned WAL after an injected
/// crash). Pass `limit = spec.txns` for the full workload.
///
/// Transaction `i` draws 1–2 operations: updates (most common),
/// deletes of a random pre-seeded key, and inserts of a fresh key
/// derived from `(i, op)` — unique by construction, never colliding
/// with the pre-seeded range.
pub fn run_seeded(db: &TxnDb, spec: &WorkloadSpec, limit: usize) -> usize {
    let mut rng = Lcg(spec.seed);
    let mut acked = 0usize;
    for i in 0..spec.txns.min(limit) {
        if !run_step(db, spec, &mut rng, i) {
            return acked;
        }
        acked += 1;
    }
    acked
}

/// Assert two databases have identical committed logical state, table
/// by table and row by row. Returns a description of the first
/// difference instead of panicking, so callers (CI smoke) can attach
/// artifacts before failing.
pub fn diff_logical_state(a: &TxnDb, b: &TxnDb) -> Option<String> {
    let (sa, sb) = (a.logical_state(), b.logical_state());
    if sa.len() != sb.len() {
        return Some(format!("table count {} vs {}", sa.len(), sb.len()));
    }
    for ((na, ba), (nb, bb)) in sa.iter().zip(&sb) {
        if na != nb {
            return Some(format!("table name {na:?} vs {nb:?}"));
        }
        if ba.rows() != bb.rows() {
            return Some(format!("{na}: {} rows vs {}", ba.rows(), bb.rows()));
        }
        for i in 0..ba.rows() {
            if ba.row(i) != bb.row(i) {
                return Some(format!("{na} row {i}: {:?} vs {:?}", ba.row(i), bb.row(i)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::kv_relation;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "morsel-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn workload_is_replayable_and_prefix_deterministic() {
        let spec = WorkloadSpec::new(7, 20, 8);
        let (d1, d2, d3) = (tmpdir("wk-a"), tmpdir("wk-b"), tmpdir("wk-c"));
        let a = TxnDb::create(&d1, vec![("kv", kv_relation(8))]).unwrap();
        let b = TxnDb::create(&d2, vec![("kv", kv_relation(8))]).unwrap();
        assert_eq!(run_seeded(&a, &spec, spec.txns), 20);
        assert_eq!(run_seeded(&b, &spec, spec.txns), 20);
        assert_eq!(diff_logical_state(&a, &b), None, "same seed, same state");

        // A prefix run matches the full run up to its commit count —
        // the property the crash sweep's oracle relies on.
        let c = TxnDb::create(&d3, vec![("kv", kv_relation(8))]).unwrap();
        assert_eq!(run_seeded(&c, &spec, 11), 11);
        assert!(
            diff_logical_state(&a, &c).is_some(),
            "prefix differs from the full run"
        );
        for d in [d1, d2, d3] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn diff_reports_the_first_divergence() {
        let (d1, d2) = (tmpdir("diff-a"), tmpdir("diff-b"));
        let a = TxnDb::create(&d1, vec![("kv", kv_relation(4))]).unwrap();
        let b = TxnDb::create(&d2, vec![("kv", kv_relation(4))]).unwrap();
        assert_eq!(diff_logical_state(&a, &b), None);
        let mut t = a.begin().unwrap();
        a.update_where(&mut t, "kv", &eq(col(0), lit(1)), &[(1, Value::I64(9))])
            .unwrap();
        a.commit(t).unwrap();
        let d = diff_logical_state(&a, &b).expect("states differ");
        assert!(d.contains("kv"), "{d}");
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d2);
    }
}
