//! Black-box snapshot-isolation checking over generated concurrent
//! histories (after "Efficient Black-box Checking of Snapshot
//! Isolation in Databases", arXiv 2301.07313).
//!
//! The checker sees only what a client sees: per transaction, the
//! interleaved sequence of reads (key, value observed) and writes
//! (key, unique value), the real-time order of begin/commit events (a
//! shared atomic counter stamped when `begin` returns and when the
//! commit acknowledgment arrives), and the commit timestamp the engine
//! returns — used purely to order committed transactions, never to
//! infer visibility. Every write value is unique across the history
//! (writer id ⊕ sequence number), so observing a value identifies its
//! writer — the standard trick that makes black-box checking
//! tractable.
//!
//! **The check.** Order committed transactions `C[0..n]` by commit
//! timestamp (acknowledgment order breaks ties). Snapshot isolation
//! holds for transaction `T` at position `i` iff there exists a
//! snapshot point `p ∈ [0, i]` — "the first `p` transactions of `C`
//! are visible" — such that
//!
//! 1. *read consistency*: each of `T`'s reads observed exactly the
//!    value the last visible writer of that key installed (an interval
//!    constraint on `p` per read),
//! 2. *real time*: every transaction acknowledged before `T` began is
//!    visible (`p` lower bound),
//! 3. *no lost update*: every committed transaction before `T` whose
//!    write set overlaps `T`'s is visible (`p` lower bound — first
//!    committer wins makes this constraint *monotone* in `p`, which is
//!    why intersecting intervals is a complete decision procedure, not
//!    a heuristic).
//!
//! The constraints intersect to `[lo, hi]`; `lo > hi` is an SI
//! violation and the offending transaction plus the binding
//! constraints are reported. Reads of values written by aborted or
//! never-committed transactions, and reads that miss the transaction's
//! own earlier writes, are reported directly.
//!
//! Histories are generated from a seeded LCG (replayable from the seed
//! alone) and executed by concurrent client threads against a real
//! [`TxnDb`]; each *read* runs a full scan query through either the
//! deterministic [`SimExecutor`](morsel_core::SimExecutor) or the
//! 4-worker [`ThreadedExecutor`](morsel_core::ThreadedExecutor), so
//! the check covers the whole read path, not a shortcut accessor.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use morsel_core::ExecEnv;
use morsel_exec::expr::{col, eq, lit};
use morsel_exec::{Plan, SystemVariant};
use morsel_numa::{Placement, Topology};
use morsel_queries::{run_sim, run_threaded};
use morsel_storage::{Batch, Column, PartitionBy, Relation, Schema, Value};

use crate::db::{TxnDb, TxnError};

/// Which executor serves the history's reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Deterministic simulator.
    Sim,
    /// Real threads, this many workers.
    Threaded(usize),
}

/// Shape of a generated history.
#[derive(Debug, Clone, Copy)]
pub struct HistorySpec {
    pub seed: u64,
    /// Concurrent client threads.
    pub clients: usize,
    /// Transactions per client.
    pub txns_per_client: usize,
    /// Keys in the `kv` table (pre-seeded with value 0).
    pub keys: i64,
    /// Operations per transaction.
    pub ops_per_txn: usize,
}

impl HistorySpec {
    pub fn small(seed: u64) -> Self {
        HistorySpec {
            seed,
            clients: 3,
            txns_per_client: 3,
            keys: 4,
            ops_per_txn: 3,
        }
    }
}

/// One client-observed operation, in program order.
#[derive(Debug, Clone, PartialEq)]
pub enum Ev {
    Read { key: i64, val: i64 },
    Write { key: i64, val: i64 },
}

/// One transaction as the client experienced it.
#[derive(Debug, Clone)]
pub struct TxnRec {
    pub id: u64,
    /// Event-counter stamp when `begin` returned.
    pub begin_ev: u64,
    /// Event-counter stamp when the commit was acknowledged (or the
    /// abort returned).
    pub end_ev: u64,
    /// Commit timestamp the engine acknowledged with, if committed.
    pub commit_ts: Option<u64>,
    pub committed: bool,
    pub events: Vec<Ev>,
}

/// A complete client-side history.
#[derive(Debug, Clone, Default)]
pub struct History {
    pub txns: Vec<TxnRec>,
}

/// Sentinel recorded when a read found no row for its key (itself an
/// invariant violation — keys are pre-seeded and never deleted).
pub const MISSING_ROW: i64 = i64::MIN;

/// Value initially installed for every key.
pub const INITIAL_VAL: i64 = 0;

/// Build the checker's `kv` table: `keys` rows of `(key, val=0)`,
/// hash-partitioned like any other base relation.
pub fn kv_relation(keys: i64) -> Arc<Relation> {
    let schema = Schema::new(vec![
        ("key", morsel_storage::DataType::I64),
        ("val", morsel_storage::DataType::I64),
    ]);
    let data = Batch::from_columns(vec![
        Column::I64((0..keys).collect()),
        Column::I64(vec![INITIAL_VAL; keys as usize]),
    ]);
    Arc::new(Relation::partitioned(
        schema,
        &data,
        PartitionBy::Hash { column: 0 },
        2,
        Placement::FirstTouch,
        &Topology::laptop(),
    ))
}

/// Minimal LCG (Knuth's MMIX constants): replayable randomness without
/// any external crate.
pub struct Lcg(pub u64);

impl Lcg {
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Unique write value: writer transaction id in the high bits, its
/// per-transaction sequence number in the low bits.
fn unique_val(txn_id: u64, seq: u32) -> i64 {
    ((txn_id << 16) | u64::from(seq)) as i64
}

/// Execute one scan of `key` through the chosen executor and return
/// the observed value.
fn read_key(env: &ExecEnv, db: &TxnDb, txn: &crate::db::Txn, key: i64, mode: ExecMode) -> i64 {
    let rel = db
        .relation_for(txn, "kv")
        .expect("kv table exists and db is healthy");
    let plan = Plan::scan(rel, Some(eq(col(0), lit(key))), &["val"]);
    let name = format!("si-read-t{}-k{key}", txn.id);
    let out = match mode {
        ExecMode::Sim => run_sim(env, &name, plan, SystemVariant::full(), 2, 256),
        ExecMode::Threaded(w) => run_threaded(env, &name, plan, SystemVariant::full(), w, 256),
    };
    if out.result.rows() == 0 {
        MISSING_ROW
    } else {
        out.result.column(0).as_i64()[0]
    }
}

/// Run a generated history against `db` with `spec.clients` concurrent
/// client threads. The database must contain the `kv` table from
/// [`kv_relation`] with at least `spec.keys` keys.
pub fn run_history(db: &TxnDb, spec: &HistorySpec, mode: ExecMode) -> History {
    let env = ExecEnv::new(Topology::laptop());
    let events = AtomicU64::new(0);
    let recs: Vec<TxnRec> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..spec.clients {
            let env = &env;
            let events = &events;
            handles.push(scope.spawn(move || {
                let mut rng =
                    Lcg(spec.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(client as u64 + 1)));
                let mut out = Vec::new();
                for _ in 0..spec.txns_per_client {
                    let mut txn = match db.begin() {
                        Ok(t) => t,
                        Err(_) => break,
                    };
                    let begin_ev = events.fetch_add(1, Ordering::SeqCst);
                    let id = txn.id;
                    let mut evs = Vec::new();
                    let mut seq = 0u32;
                    let mut failed = false;
                    for _ in 0..spec.ops_per_txn {
                        let key = rng.below(spec.keys as u64) as i64;
                        if rng.below(2) == 0 {
                            let val = read_key(env, db, &txn, key, mode);
                            evs.push(Ev::Read { key, val });
                        } else {
                            seq += 1;
                            let val = unique_val(id, seq);
                            match db.update_where(
                                &mut txn,
                                "kv",
                                &eq(col(0), lit(key)),
                                &[(1, Value::I64(val))],
                            ) {
                                Ok(n) if n > 0 => evs.push(Ev::Write { key, val }),
                                Ok(_) => {}
                                Err(_) => {
                                    failed = true;
                                    break;
                                }
                            }
                        }
                    }
                    // ~1 in 8 transactions aborts voluntarily; the rest
                    // try to commit (and may conflict-abort).
                    let deliberate_abort = rng.below(8) == 0;
                    let (committed, commit_ts) = if failed || deliberate_abort {
                        db.abort(txn);
                        (false, None)
                    } else {
                        match db.commit(txn) {
                            Ok(ts) => (true, Some(ts)),
                            Err(TxnError::Conflict(_)) => (false, None),
                            Err(_) => (false, None),
                        }
                    };
                    let end_ev = events.fetch_add(1, Ordering::SeqCst);
                    out.push(TxnRec {
                        id,
                        begin_ev,
                        end_ev,
                        commit_ts,
                        committed,
                        events: evs,
                    });
                }
                out
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    History { txns: recs }
}

/// Check a history for snapshot isolation. `Ok(())` when a valid
/// snapshot point exists for every committed transaction; otherwise
/// every violation found, one line each.
pub fn check_history(h: &History) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();

    let has_writes = |t: &TxnRec| t.events.iter().any(|e| matches!(e, Ev::Write { .. }));

    // Committed *writers* in commit order (timestamp, ack ties).
    // Read-only transactions are acknowledged with their begin
    // timestamp, which ties with the commit they read — so they get no
    // position of their own; only lower bounds constrain them.
    let mut order: Vec<usize> = (0..h.txns.len())
        .filter(|&i| h.txns[i].committed && has_writes(&h.txns[i]))
        .collect();
    order.sort_by_key(|&i| (h.txns[i].commit_ts.unwrap_or(0), h.txns[i].end_ev));
    let pos: std::collections::HashMap<u64, usize> = order
        .iter()
        .enumerate()
        .map(|(p, &i)| (h.txns[i].id, p))
        .collect();

    // value → writer transaction id (uniqueness is by construction).
    let mut writer_of: std::collections::HashMap<i64, u64> = std::collections::HashMap::new();
    let mut by_id: std::collections::HashMap<u64, &TxnRec> = std::collections::HashMap::new();
    for t in &h.txns {
        by_id.insert(t.id, t);
        for e in &t.events {
            if let Ev::Write { val, .. } = e {
                writer_of.insert(*val, t.id);
            }
        }
    }

    // Committed writer positions per key, ascending.
    let mut writers_of_key: std::collections::HashMap<i64, Vec<usize>> =
        std::collections::HashMap::new();
    for (p, &i) in order.iter().enumerate() {
        for e in &h.txns[i].events {
            if let Ev::Write { key, .. } = e {
                let v = writers_of_key.entry(*key).or_default();
                if v.last() != Some(&p) {
                    v.push(p);
                }
            }
        }
    }

    for t in h.txns.iter().filter(|t| t.committed) {
        // Writers may see at most the writers that committed before
        // them; read-only transactions have no position of their own
        // and may see everything.
        let my_pos = pos.get(&t.id).copied();
        let mut lo = 0usize; // p lower bound (inclusive)
        let mut hi = my_pos.unwrap_or(order.len()); // p upper bound (inclusive)
        let mut lo_why = String::from("history start");
        let mut hi_why = my_pos
            .map(|p| format!("own commit at position {p}"))
            .unwrap_or_else(|| String::from("read-only: all writers visible"));

        // Walk events in program order; own writes shadow later reads.
        let mut own: std::collections::HashMap<i64, i64> = std::collections::HashMap::new();
        for e in &t.events {
            match e {
                Ev::Write { key, val } => {
                    own.insert(*key, *val);
                }
                Ev::Read { key, val } => {
                    if *val == MISSING_ROW {
                        violations.push(format!("txn {}: read of key {key} found no row", t.id));
                        continue;
                    }
                    if let Some(own_val) = own.get(key) {
                        if val != own_val {
                            violations.push(format!(
                                "txn {}: read {val} of key {key} does not see its own write {own_val}",
                                t.id
                            ));
                        }
                        continue;
                    }
                    if *val == INITIAL_VAL {
                        // Initial value: no committed writer of this key
                        // may be visible.
                        if let Some(ws) = writers_of_key.get(key) {
                            if let Some(&first) = ws.first() {
                                if first < hi {
                                    hi = first;
                                    hi_why = format!(
                                        "read initial value of key {key} (first writer commits at {first})"
                                    );
                                }
                            }
                        }
                        continue;
                    }
                    let Some(&wid) = writer_of.get(val) else {
                        violations.push(format!(
                            "txn {}: read {val} of key {key} — value was never written",
                            t.id
                        ));
                        continue;
                    };
                    let w = by_id[&wid];
                    if !w.committed {
                        violations.push(format!(
                            "txn {}: read {val} of key {key} written by aborted txn {wid}",
                            t.id
                        ));
                        continue;
                    }
                    let wp = pos[&wid];
                    if wp + 1 > lo {
                        lo = wp + 1;
                        lo_why = format!("read key {key} from txn {wid} (commits at {wp})");
                    }
                    // No later writer of the key may be visible.
                    if let Some(ws) = writers_of_key.get(key) {
                        if let Some(&next) = ws.iter().find(|&&p| p > wp) {
                            if next < hi {
                                hi = next;
                                hi_why = format!(
                                    "read key {key} from position {wp}; next writer commits at {next}"
                                );
                            }
                        }
                    }
                }
            }
        }

        // Real time: every *writer* acknowledged before T began is
        // visible (a read-only predecessor's visibility is vacuous).
        for u in &h.txns {
            if u.committed && u.end_ev < t.begin_ev {
                let Some(&up) = pos.get(&u.id) else { continue };
                if up + 1 > lo {
                    lo = up + 1;
                    lo_why = format!("txn {} acknowledged before begin", u.id);
                }
            }
        }

        // No lost update: committed write-overlapping predecessors must
        // be visible (first committer wins ⇒ monotone in p).
        let t_writes: std::collections::HashSet<i64> = t
            .events
            .iter()
            .filter_map(|e| match e {
                Ev::Write { key, .. } => Some(*key),
                _ => None,
            })
            .collect();
        if let (false, Some(mp)) = (t_writes.is_empty(), my_pos) {
            for (p_u, &ui) in order.iter().enumerate().take(mp) {
                let u = &h.txns[ui];
                let overlaps = u.events.iter().any(|e| match e {
                    Ev::Write { key, .. } => t_writes.contains(key),
                    _ => false,
                });
                if overlaps && p_u + 1 > lo {
                    lo = p_u + 1;
                    lo_why = format!(
                        "txn {} wrote an overlapping key and committed at {p_u} (lost update otherwise)",
                        u.id
                    );
                }
            }
        }

        if lo > hi {
            violations.push(format!(
                "txn {}: no valid snapshot point — needs p >= {lo} ({lo_why}) but p <= {hi} ({hi_why})",
                t.id
            ));
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(id: u64, begin_ev: u64, end_ev: u64, commit_ts: Option<u64>, events: Vec<Ev>) -> TxnRec {
        TxnRec {
            id,
            begin_ev,
            end_ev,
            commit_ts,
            committed: commit_ts.is_some(),
            events,
        }
    }

    #[test]
    fn serial_history_passes() {
        let h = History {
            txns: vec![
                txn(
                    1,
                    0,
                    1,
                    Some(1),
                    vec![
                        Ev::Read {
                            key: 0,
                            val: INITIAL_VAL,
                        },
                        Ev::Write {
                            key: 0,
                            val: unique_val(1, 1),
                        },
                    ],
                ),
                txn(
                    2,
                    2,
                    3,
                    Some(2),
                    vec![Ev::Read {
                        key: 0,
                        val: unique_val(1, 1),
                    }],
                ),
            ],
        };
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn lost_update_is_caught() {
        // Both read initial, both write key 0, both commit: the second
        // committer must have aborted under first-committer-wins.
        let h = History {
            txns: vec![
                txn(
                    1,
                    0,
                    2,
                    Some(1),
                    vec![
                        Ev::Read {
                            key: 0,
                            val: INITIAL_VAL,
                        },
                        Ev::Write {
                            key: 0,
                            val: unique_val(1, 1),
                        },
                    ],
                ),
                txn(
                    2,
                    1,
                    3,
                    Some(2),
                    vec![
                        Ev::Read {
                            key: 0,
                            val: INITIAL_VAL,
                        },
                        Ev::Write {
                            key: 0,
                            val: unique_val(2, 1),
                        },
                    ],
                ),
            ],
        };
        let errs = check_history(&h).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("lost update")), "{errs:?}");
    }

    #[test]
    fn non_repeatable_read_is_caught() {
        // T1 reads key 0 old and key 1 new from the same writer T2:
        // no single snapshot point explains both.
        let h = History {
            txns: vec![
                txn(
                    2,
                    0,
                    1,
                    Some(1),
                    vec![
                        Ev::Write {
                            key: 0,
                            val: unique_val(2, 1),
                        },
                        Ev::Write {
                            key: 1,
                            val: unique_val(2, 2),
                        },
                    ],
                ),
                txn(
                    1,
                    0,
                    2,
                    Some(2),
                    vec![
                        Ev::Read {
                            key: 0,
                            val: INITIAL_VAL,
                        },
                        Ev::Read {
                            key: 1,
                            val: unique_val(2, 2),
                        },
                    ],
                ),
            ],
        };
        let errs = check_history(&h).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("no valid snapshot point")),
            "{errs:?}"
        );
    }

    #[test]
    fn aborted_read_is_caught() {
        let h = History {
            txns: vec![
                txn(
                    1,
                    0,
                    1,
                    None,
                    vec![Ev::Write {
                        key: 0,
                        val: unique_val(1, 1),
                    }],
                ),
                txn(
                    2,
                    2,
                    3,
                    Some(1),
                    vec![Ev::Read {
                        key: 0,
                        val: unique_val(1, 1),
                    }],
                ),
            ],
        };
        let errs = check_history(&h).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("aborted")), "{errs:?}");
    }

    #[test]
    fn own_writes_shadow_reads() {
        let h = History {
            txns: vec![txn(
                1,
                0,
                1,
                Some(1),
                vec![
                    Ev::Write {
                        key: 0,
                        val: unique_val(1, 1),
                    },
                    Ev::Read {
                        key: 0,
                        val: unique_val(1, 1),
                    },
                ],
            )],
        };
        assert!(check_history(&h).is_ok());
        // Failing to see the own write is flagged.
        let h2 = History {
            txns: vec![txn(
                1,
                0,
                1,
                Some(1),
                vec![
                    Ev::Write {
                        key: 0,
                        val: unique_val(1, 1),
                    },
                    Ev::Read {
                        key: 0,
                        val: INITIAL_VAL,
                    },
                ],
            )],
        };
        let errs = check_history(&h2).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("own write")), "{errs:?}");
    }

    #[test]
    fn generated_history_on_correct_engine_passes() {
        let dir = std::env::temp_dir().join(format!(
            "morsel-checker-e2e-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = HistorySpec::small(7);
        let db = crate::db::TxnDb::create(&dir, vec![("kv", kv_relation(spec.keys))]).unwrap();
        let h = run_history(&db, &spec, ExecMode::Sim);
        assert!(
            h.txns.iter().filter(|t| t.committed).count() >= 2,
            "history too trivial to mean anything"
        );
        if let Err(v) = check_history(&h) {
            panic!("correct engine flagged: {v:#?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lcg_is_replayable() {
        let mut a = Lcg(42);
        let mut b = Lcg(42);
        let xs: Vec<u64> = (0..8).map(|_| a.below(100)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.below(100)).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().any(|&x| x != xs[0]), "not constant");
    }
}
