//! Durable transactional write path over the morsel engine's immutable
//! column partitions.
//!
//! The read side of this engine (PRs 1–8) treats relations as
//! immutable: scans pin `Arc<Relation>` snapshots and never observe a
//! mutation. This crate keeps that invariant while adding writes:
//!
//! - [`db::TxnDb`] — MVCC snapshot isolation over per-table
//!   [`DeltaStore`](morsel_storage::DeltaStore)s. Transactions buffer
//!   their writes privately, commit under first-committer-wins
//!   conflict detection, and readers materialize `Relation` snapshots
//!   (base partitions + visible delta rows) that are immutable like
//!   any other relation.
//! - a group-commit WAL ([`morsel_storage::Wal`]) — commit
//!   acknowledgment means the commit record is fsync-durable, batched
//!   with concurrent committers into one fsync.
//! - crash recovery ([`morsel_storage::replay`]) — redo-only replay
//!   reconstructs the delta stores byte-identically from whatever
//!   prefix of the WAL survived, truncating torn tails.
//! - [`checker`] — a black-box snapshot-isolation checker (after
//!   arXiv 2301.07313) that validates client-observed histories of
//!   concurrent transactions, plus [`manager::SiMode`] knobs that
//!   deliberately break one isolation rule at a time to prove the
//!   checker has teeth.

pub mod checker;
pub mod db;
pub mod manager;
pub mod workload;

pub use checker::{
    check_history, kv_relation, run_history, Ev, ExecMode, History, HistorySpec, Lcg, TxnRec,
};
pub use db::{Txn, TxnDb, TxnDbConfig, TxnError};
pub use manager::{SiMode, TxnManager};
pub use workload::{diff_logical_state, run_seeded, run_step, skip_step, WorkloadSpec};
