//! Wall-clock behaviour of the two-phase aggregation (Section 4.4):
//! in-cache pre-aggregation with few groups vs. the spill path with many
//! distinct keys, and the vectorized (flat-table, columnar-key) phase-1
//! path against the row-at-a-time `GroupKey` reference path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use morsel_core::{ExecEnv, Morsel, PipelineJob, TaskContext};
use morsel_exec::agg::{agg_slot, AggFn, AggMergeJob, AggPartialSink, N_PARTITIONS};
use morsel_exec::pipeline::SelBatch;
use morsel_exec::sink::{area_slot, Sink};
use morsel_numa::Topology;
use morsel_storage::{Batch, Column, DataType, Schema};
use std::hint::black_box;

const ROWS: usize = 200_000;

fn run_agg(env: &ExecEnv, groups: i64, scalar: bool) -> usize {
    let batch = Batch::from_columns(vec![
        Column::I64((0..ROWS as i64).map(|x| x % groups).collect()),
        Column::I64((0..ROWS as i64).collect()),
    ]);
    let nodes = env.worker_sockets(1);
    let slot = agg_slot();
    let aggs = vec![AggFn::SumI64(1), AggFn::Count];
    let sink =
        AggPartialSink::new(vec![0], aggs.clone(), &nodes, slot.clone()).with_scalar_path(scalar);
    let mut ctx = TaskContext::new(env, 0);
    sink.consume(&mut ctx, SelBatch::dense(batch));
    sink.finish(&mut ctx);
    let parts = slot.lock().take().unwrap();
    let out = area_slot();
    let result = morsel_core::result_slot();
    let schema = Schema::new(vec![
        ("g", DataType::I64),
        ("sum", DataType::I64),
        ("cnt", DataType::I64),
    ]);
    let job = AggMergeJob::new(
        parts.clone(),
        aggs,
        schema,
        &nodes,
        out,
        Some(result.clone()),
    );
    for p in 0..N_PARTITIONS {
        let rows = parts.partition_rows(p);
        if rows > 0 {
            job.run_morsel(
                &mut ctx,
                Morsel {
                    chunk: p,
                    range: 0..rows,
                },
            );
        }
    }
    job.finish(&mut ctx);
    let batch = result.lock().take().unwrap();
    batch.rows()
}

fn bench_group_counts(c: &mut Criterion) {
    let env = ExecEnv::new(Topology::laptop());
    let mut g = c.benchmark_group("two_phase_aggregation");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.sample_size(20);
    // 16 groups: pure in-cache pre-aggregation. 100k groups: spill-heavy.
    for groups in [16i64, 1_000, 100_000] {
        g.bench_with_input(
            BenchmarkId::from_parameter(groups),
            &groups,
            |b, &groups| {
                b.iter(|| black_box(run_agg(&env, groups, false)));
            },
        );
        // Row-at-a-time reference path, same workload (the speedup of the
        // vectorized phase 1 is the gap between the two IDs).
        g.bench_with_input(BenchmarkId::new("scalar", groups), &groups, |b, &groups| {
            b.iter(|| black_box(run_agg(&env, groups, true)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_group_counts);
criterion_main!(benches);
