//! Wall-clock cost of query planning itself: statistics lookup,
//! cardinality estimation, DPsize enumeration, and lowering, measured on
//! the deepest TPC-H blocks and on synthetic graphs around the DP
//! budget. Planning a serving-system query must stay microseconds-cheap
//! next to executing it.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};
use morsel_datagen::{generate_tpch, TpchConfig};
use morsel_numa::Topology;
use morsel_planner::{
    enumerate, CostParams, GraphEdge, GraphNode, JoinGraph, Planner, DP_BUDGET_DEFAULT,
};
use morsel_queries::tpch_logical;
use std::hint::black_box;

fn bench_plan_search(c: &mut Criterion) {
    let topo = Topology::nehalem_ex();
    let db = generate_tpch(TpchConfig::scaled(0.002), &topo);
    let planner = Planner::new(&topo);
    // Warm the per-relation stats caches so the measurement isolates the
    // search itself (stats are computed once per relation lifetime).
    for &q in &[5usize, 8, 9] {
        let lp = tpch_logical::query(&db, q).unwrap();
        black_box(planner.plan(&lp));
    }

    let mut g = c.benchmark_group("plan_search");
    g.sample_size(20);
    for q in [5usize, 8, 9] {
        let lp = tpch_logical::query(&db, q).unwrap();
        g.bench_function(format!("tpch_q{q}"), |b| {
            b.iter(|| black_box(planner.plan(&lp)));
        });
    }

    // Pure enumeration on synthetic chains: DP at the budget edge vs the
    // greedy fallback just past it.
    let params = CostParams::for_topology(&topo);
    for n in [8usize, DP_BUDGET_DEFAULT, 20] {
        let nodes: Vec<GraphNode> = (0..n)
            .map(|i| GraphNode {
                label: format!("r{i}"),
                rows: 1_000.0 * (i + 1) as f64,
                width: 16.0,
                key_ndv: HashMap::from([
                    ("l".to_owned(), 500.0 * (i + 1) as f64),
                    ("r".to_owned(), 500.0 * (i + 1) as f64),
                ]),
            })
            .collect();
        let edges: Vec<GraphEdge> = (0..n - 1)
            .map(|i| GraphEdge {
                a: i,
                b: i + 1,
                a_keys: vec!["r".to_owned()],
                b_keys: vec!["l".to_owned()],
                sel_override: None,
            })
            .collect();
        let graph = JoinGraph { nodes, edges };
        let label = if n <= DP_BUDGET_DEFAULT {
            format!("dpsize_chain_{n}")
        } else {
            format!("greedy_chain_{n}")
        };
        g.bench_function(label, |b| {
            b.iter(|| black_box(enumerate(&graph, &params, DP_BUDGET_DEFAULT).cost));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_plan_search);
criterion_main!(benches);
