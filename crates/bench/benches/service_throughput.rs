//! Wall-clock service throughput: closed-loop clients pushing the
//! `service_load` query rotation through the admission-controlled query
//! service. One measurement = one full service lifetime (start, serve
//! `clients × QUERIES_PER_CLIENT` queries, drain, shutdown), so the
//! reported time includes admission, scheduling, and metric collection
//! overheads — the serving analogue of `tpch_wall`. The workload builder
//! (query mix and priority split) is shared with the `service_load`
//! experiment so bench and experiment measure the same traffic shape.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use morsel_bench::service_load::build_query;
use morsel_core::{AgingPolicy, ExecEnv};
use morsel_datagen::{generate_ssb, generate_tpch, SsbConfig, TpchConfig};
use morsel_numa::Topology;
use morsel_service::{run_closed_loop, QueryRequest, QueryService, ServiceConfig};
use std::hint::black_box;

const WORKERS: usize = 2;
const QUERIES_PER_CLIENT: usize = 6;

fn bench_service(c: &mut Criterion) {
    let topo = Topology::laptop();
    let env = ExecEnv::new(topo.clone());
    let tpch = Arc::new(generate_tpch(
        TpchConfig {
            scale: 0.002,
            ..Default::default()
        },
        &topo,
    ));
    let ssb = Arc::new(generate_ssb(
        SsbConfig {
            scale: 0.002,
            ..Default::default()
        },
        &topo,
    ));
    let mut g = c.benchmark_group("service_throughput");
    g.sample_size(10);
    for clients in [1usize, 2, 4] {
        g.throughput(Throughput::Elements((clients * QUERIES_PER_CLIENT) as u64));
        g.bench_with_input(
            BenchmarkId::new("clients", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    let service = QueryService::start(
                        env.clone(),
                        ServiceConfig::new(WORKERS)
                            .with_morsel_size(4_096)
                            .with_max_in_flight(WORKERS)
                            .with_max_queue(4 * clients)
                            .with_aging(AgingPolicy::every(
                                Duration::from_millis(5).as_nanos() as u64
                            )),
                    );
                    let tpch = Arc::clone(&tpch);
                    let ssb = Arc::clone(&ssb);
                    let run =
                        run_closed_loop(&service, clients, QUERIES_PER_CLIENT, move |cl, seq| {
                            QueryRequest::new(build_query(&tpch, &ssb, cl, seq))
                        });
                    let summary = service.shutdown();
                    assert_eq!(run.failed_clients, 0);
                    assert_eq!(summary.totals.total() as usize, run.len());
                    assert_eq!(summary.completed() as usize, run.len());
                    black_box(summary.completed())
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
