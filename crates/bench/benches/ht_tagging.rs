//! Wall-clock ablation of the lock-free tagged hash table (Section 4.2):
//! tag filtering should make selective (missing) probes much cheaper,
//! while costing nothing measurable on hits or inserts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morsel_exec::ht::TaggedHashTable;
use morsel_storage::hash64;
use std::hint::black_box;

const N: usize = 100_000;

fn build(tagging: bool) -> TaggedHashTable {
    let ht = TaggedHashTable::with_tagging(&[N], 4, tagging);
    for row in 0..N {
        ht.insert(row, hash64(row as u64));
    }
    ht
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("ht_insert");
    g.sample_size(20);
    for tagging in [true, false] {
        g.bench_with_input(
            BenchmarkId::new("insert_100k", if tagging { "tagged" } else { "plain" }),
            &tagging,
            |b, &tagging| {
                b.iter(|| {
                    let ht = build(tagging);
                    black_box(ht.len())
                });
            },
        );
    }
    g.finish();
}

fn bench_probe(c: &mut Criterion) {
    let tagged = build(true);
    let plain = build(false);
    let mut g = c.benchmark_group("ht_probe");
    g.sample_size(30);
    // Hits: every key present.
    g.bench_function("hit/tagged", |b| {
        b.iter(|| {
            let mut found = 0u64;
            for k in 0..N as u64 {
                tagged.probe(hash64(k), |_| found += 1);
            }
            black_box(found)
        });
    });
    g.bench_function("hit/plain", |b| {
        b.iter(|| {
            let mut found = 0u64;
            for k in 0..N as u64 {
                plain.probe(hash64(k), |_| found += 1);
            }
            black_box(found)
        });
    });
    // Misses: the selective-join case the tag filter accelerates.
    g.bench_function("miss/tagged", |b| {
        b.iter(|| {
            let mut traversed = 0u32;
            for k in N as u64..2 * N as u64 {
                traversed += tagged.probe(hash64(k), |_| {});
            }
            black_box(traversed)
        });
    });
    g.bench_function("miss/plain", |b| {
        b.iter(|| {
            let mut traversed = 0u32;
            for k in N as u64..2 * N as u64 {
                traversed += plain.probe(hash64(k), |_| {});
            }
            black_box(traversed)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_insert, bench_probe);
criterion_main!(benches);
