//! Wall-clock TPC-H query times on the real-thread executor at laptop
//! scale — ties the virtual-time results (repro table1/table2) back to
//! real execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morsel_core::ExecEnv;
use morsel_datagen::{generate_tpch, TpchConfig};
use morsel_exec::SystemVariant;
use morsel_numa::Topology;
use morsel_queries::{run_threaded, tpch_queries};
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let topo = Topology::laptop();
    let env = ExecEnv::new(topo.clone());
    let db = generate_tpch(
        TpchConfig {
            scale: 0.005,
            ..Default::default()
        },
        &topo,
    );
    let mut g = c.benchmark_group("tpch_wall");
    g.sample_size(10);
    // A scan query, join-heavy queries, an outer-join query, an
    // aggregation-heavy query, and the string-predicate-heavy slice
    // (Q10 returnflag filter, Q12 shipmode IN, Q14 promo prefix).
    for q in [1usize, 3, 6, 10, 12, 13, 14] {
        g.bench_with_input(BenchmarkId::new("q", q), &q, |b, &q| {
            b.iter(|| {
                let out = run_threaded(
                    &env,
                    &format!("q{q}"),
                    tpch_queries::query(&db, q),
                    SystemVariant::full(),
                    2,
                    8_192,
                );
                black_box(out.result.rows())
            });
        });
    }
    g.finish();
}

/// The profiling-overhead ablation: identical queries with per-operator
/// runtime profiling on (the default) and off. The acceptance bar is
/// profiling-on within 5% of off — the recording path is a handful of
/// relaxed `fetch_add`s per morsel/batch plus two `Instant::now` calls,
/// amortized over hundreds-to-thousands of tuples.
fn bench_profiling_overhead(c: &mut Criterion) {
    let topo = Topology::laptop();
    let env = ExecEnv::new(topo.clone());
    let db = generate_tpch(
        TpchConfig {
            scale: 0.005,
            ..Default::default()
        },
        &topo,
    );
    let profiling_off = SystemVariant {
        profiling: false,
        ..SystemVariant::full()
    };
    let mut g = c.benchmark_group("profiling_overhead");
    g.sample_size(10);
    // One scan-heavy, one join-heavy, one aggregation-heavy query.
    for q in [1usize, 3, 13] {
        for (label, variant) in [("on", SystemVariant::full()), ("off", profiling_off)] {
            g.bench_with_input(
                BenchmarkId::new(format!("q{q}"), label),
                &variant,
                |b, &variant| {
                    b.iter(|| {
                        let out = run_threaded(
                            &env,
                            &format!("q{q}"),
                            tpch_queries::query(&db, q),
                            variant,
                            2,
                            8_192,
                        );
                        black_box(out.result.rows())
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_queries, bench_profiling_overhead);
criterion_main!(benches);
