//! Wall-clock throughput of a fully pipelined probe (Section 4.1): scan +
//! filter + hash-join probe + materialize, per morsel, on real threads.
//! Each worker count runs twice: the default vectorized operators
//! (selection vectors + batched probe) and the row-at-a-time scalar
//! reference (`SystemVariant::scalar_ops`), so the kernel speedup is
//! visible directly in the criterion output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use morsel_core::{DispatchConfig, ExecEnv, ThreadedExecutor};
use morsel_exec::expr::{col, gt, lit};
use morsel_exec::plan::{compile_query, Plan};
use morsel_exec::SystemVariant;
use morsel_numa::{Placement, Topology};
use morsel_storage::{Batch, Column, DataType, PartitionBy, Relation, Schema};
use std::hint::black_box;
use std::sync::Arc;

const PROBE_ROWS: i64 = 500_000;
const BUILD_ROWS: i64 = 10_000;

fn relations(topo: &Topology) -> (Arc<Relation>, Arc<Relation>) {
    let probe = Batch::from_columns(vec![
        Column::I64((0..PROBE_ROWS).map(|x| x % (BUILD_ROWS * 2)).collect()),
        Column::I64((0..PROBE_ROWS).collect()),
    ]);
    let build = Batch::from_columns(vec![
        Column::I64((0..BUILD_ROWS).collect()),
        Column::I64((0..BUILD_ROWS).map(|x| x * 3).collect()),
    ]);
    (
        Arc::new(Relation::partitioned(
            Schema::new(vec![("fk", DataType::I64), ("v", DataType::I64)]),
            &probe,
            PartitionBy::Chunks,
            16,
            Placement::FirstTouch,
            topo,
        )),
        Arc::new(Relation::partitioned(
            Schema::new(vec![("pk", DataType::I64), ("payload", DataType::I64)]),
            &build,
            PartitionBy::Hash { column: 0 },
            16,
            Placement::FirstTouch,
            topo,
        )),
    )
}

fn bench_probe(c: &mut Criterion) {
    let topo = Topology::laptop();
    let env = ExecEnv::new(topo.clone());
    let (probe, build) = relations(&topo);
    let mut g = c.benchmark_group("probe_pipeline");
    g.throughput(Throughput::Elements(PROBE_ROWS as u64));
    g.sample_size(10);
    for workers in [1usize, 2, 4] {
        for (label, variant) in [
            ("vectorized", SystemVariant::full()),
            ("scalar", SystemVariant::scalar_ops()),
        ] {
            g.bench_with_input(BenchmarkId::new(label, workers), &workers, |b, &workers| {
                b.iter(|| {
                    let plan = Plan::scan(probe.clone(), Some(gt(col(1), lit(-1))), &["fk", "v"])
                        .join(
                            Plan::scan(build.clone(), None, &["pk", "payload"]),
                            &["fk"],
                            &["pk"],
                            &["payload"],
                        )
                        .agg(
                            &[],
                            vec![
                                ("sum", morsel_exec::AggFn::SumI64(2)),
                                ("cnt", morsel_exec::AggFn::Count),
                            ],
                        );
                    let (spec, result) = compile_query("probe", plan, variant);
                    let exec = ThreadedExecutor::new(
                        env.clone(),
                        DispatchConfig::new(workers).with_morsel_size(16_384),
                    );
                    exec.run(vec![spec]);
                    let batch = result.lock().take().unwrap();
                    black_box(batch.column(1).as_i64()[0])
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_probe);
criterion_main!(benches);
