//! Wall-clock behaviour of the parallel merge sort (Section 4.5, Figure
//! 9): local-sort + separator + merge machinery vs. a single monolithic
//! sort of the same data.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use morsel_core::ExecEnv;
use morsel_exec::sort::{sort_area_set, sort_batch, SortKey};
use morsel_numa::{SocketId, Topology};
use morsel_storage::{AreaSet, Batch, Column, DataType, Schema, StorageArea};
use std::hint::black_box;
use std::sync::Arc;

const ROWS: usize = 100_000;

fn pseudo_random(n: usize, seed: i64) -> Vec<i64> {
    (0..n as i64)
        .map(|x| (x.wrapping_mul(6364136223846793005) ^ seed) % 1_000_000)
        .collect()
}

fn area_set(runs: usize) -> Arc<AreaSet> {
    let schema = Schema::new(vec![("k", DataType::I64)]);
    let areas = (0..runs)
        .map(|i| {
            let mut a = StorageArea::new(SocketId((i % 4) as u16), &schema.data_types());
            a.data_mut()
                .extend_from(&Batch::from_columns(vec![Column::I64(pseudo_random(
                    ROWS / runs,
                    i as i64,
                ))]));
            a
        })
        .collect();
    Arc::new(AreaSet::new(schema, areas))
}

fn bench_sort(c: &mut Criterion) {
    let env = ExecEnv::new(Topology::nehalem_ex());
    let mut g = c.benchmark_group("parallel_sort");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.sample_size(15);
    g.bench_function("monolithic_sort", |b| {
        let batch = Batch::from_columns(vec![Column::I64(pseudo_random(ROWS, 7))]);
        b.iter(|| black_box(sort_batch(&batch, &[SortKey::asc(0)]).rows()));
    });
    for runs in [4usize, 16] {
        let input = area_set(runs);
        g.bench_function(format!("runs_merge_{runs}"), |b| {
            b.iter(|| {
                let out =
                    sort_area_set(Arc::clone(&input), vec![SortKey::asc(0)], runs, &env, None);
                black_box(out.rows())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sort);
criterion_main!(benches);
