//! Dictionary-encoding ablation on the string hot paths (DESIGN.md §9):
//! the same relation with its string column dictionary-encoded vs plain,
//! through a selective string-predicate scan and a string group-by. The
//! `plain` IDs re-measure the un-encoded path in every run, so the
//! encoding gap stays visible — the same ablation pattern as
//! `ht_tagging`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morsel_core::ExecEnv;
use morsel_exec::agg::AggFn;
use morsel_exec::expr::{and, col, eq, ge, in_str, lits, prefix};
use morsel_exec::plan::Plan;
use morsel_exec::SystemVariant;
use morsel_numa::{Placement, Topology};
use morsel_queries::run_threaded;
use morsel_storage::{Batch, Column, DataType, PartitionBy, Relation, Schema};
use std::hint::black_box;
use std::sync::Arc;

const ROWS: usize = 400_000;

/// A relation shaped like the TPC-H string-predicate targets: one
/// low-cardinality string attribute (25 nation-length values), one
/// medium-cardinality one (150 part-type-like values), one measure.
fn relation(encode: bool, topo: &Topology) -> Arc<Relation> {
    let nations: Vec<String> = (0..25).map(|i| format!("NATION-{i:02}")).collect();
    let types: Vec<String> = (0..150)
        .map(|i| {
            format!(
                "{} {} {}",
                ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"][i % 6],
                ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"][(i / 6) % 5],
                ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"][(i / 30) % 5]
            )
        })
        .collect();
    let tag: Vec<String> = (0..ROWS)
        .map(|i| nations[(i * 7 + i / 13) % nations.len()].clone())
        .collect();
    let ptype: Vec<String> = (0..ROWS)
        .map(|i| types[(i * 11 + i / 7) % types.len()].clone())
        .collect();
    let val: Vec<i64> = (0..ROWS).map(|i| (i as i64 % 991) - 200).collect();
    let schema = Schema::new(vec![
        ("tag", DataType::Str),
        ("ptype", DataType::Str),
        ("val", DataType::I64),
    ]);
    let data = Batch::from_columns(vec![Column::Str(tag), Column::Str(ptype), Column::I64(val)]);
    let rel = Relation::partitioned(
        schema,
        &data,
        PartitionBy::Chunks,
        16,
        Placement::FirstTouch,
        topo,
    );
    Arc::new(if encode { rel.dict_encoded() } else { rel })
}

/// Selective conjunctive string predicate (equality + prefix + IN),
/// aggregated to a scalar so the sink cost is negligible.
fn filter_plan(rel: &Arc<Relation>) -> Plan {
    Plan::scan(
        Arc::clone(rel),
        Some(and(
            eq(col(0), lits("NATION-07")),
            and(
                prefix(col(1), "PROMO"),
                in_str(
                    col(1),
                    &[
                        "PROMO ANODIZED TIN",
                        "PROMO BURNISHED NICKEL",
                        "PROMO PLATED BRASS",
                        "PROMO POLISHED STEEL",
                    ],
                ),
            ),
        )),
        &["val"],
    )
    .agg(&[], vec![("cnt", AggFn::Count), ("sum", AggFn::SumI64(0))])
}

/// String group-by over a range-filtered scan: the Q1-shaped path
/// (string keys through the flat-table aggregation when encoded).
fn group_by_plan(rel: &Arc<Relation>) -> Plan {
    Plan::scan(
        Arc::clone(rel),
        Some(ge(col(2), morsel_exec::expr::lit(0))),
        &["tag", "ptype", "val"],
    )
    .agg(
        &["tag", "ptype"],
        vec![
            ("cnt", AggFn::Count),
            ("sum", AggFn::SumI64(2)),
            ("min", AggFn::MinI64(2)),
        ],
    )
}

fn bench_string_paths(c: &mut Criterion) {
    let topo = Topology::laptop();
    let env = ExecEnv::new(topo.clone());
    let rels = [
        ("dict", relation(true, &topo)),
        ("plain", relation(false, &topo)),
    ];

    let mut g = c.benchmark_group("string_filter");
    g.sample_size(10);
    for (label, rel) in &rels {
        g.bench_with_input(BenchmarkId::new("filter", label), rel, |b, rel| {
            b.iter(|| {
                let out = run_threaded(
                    &env,
                    "string_filter",
                    filter_plan(rel),
                    SystemVariant::full(),
                    2,
                    16_384,
                );
                black_box(out.result.rows())
            });
        });
        g.bench_with_input(BenchmarkId::new("group_by", label), rel, |b, rel| {
            b.iter(|| {
                let out = run_threaded(
                    &env,
                    "string_group_by",
                    group_by_plan(rel),
                    SystemVariant::full(),
                    2,
                    16_384,
                );
                black_box(out.result.rows())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_string_paths);
criterion_main!(benches);
