//! Wall-clock cost of morsel cut-out (the work-stealing data structure of
//! Section 3.2) as a function of morsel size — the real-machine companion
//! of Figure 6: the per-morsel dispatch cost is constant, so smaller
//! morsels mean more dispatcher work per tuple.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use morsel_core::{ChunkMeta, MorselQueues, SchedulingMode};
use morsel_numa::{SocketId, Topology};
use std::hint::black_box;

const TOTAL_ROWS: usize = 4_000_000;

fn bench_cutout(c: &mut Criterion) {
    let topo = Topology::nehalem_ex();
    let chunks: Vec<ChunkMeta> = (0..64)
        .map(|i| ChunkMeta {
            node: SocketId((i % 4) as u16),
            rows: TOTAL_ROWS / 64,
        })
        .collect();
    let mut g = c.benchmark_group("morsel_cutout");
    g.throughput(Throughput::Elements(TOTAL_ROWS as u64));
    for size in [100usize, 1_000, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let q = MorselQueues::build(&chunks, SchedulingMode::NumaAware, size, 4, &topo);
                let mut rows = 0usize;
                while let Some((m, _)) = q.next_for(0) {
                    rows += m.rows();
                }
                black_box(rows)
            });
        });
    }
    g.finish();
}

fn bench_steal(c: &mut Criterion) {
    let topo = Topology::nehalem_ex();
    // All data on socket 3: worker 0 must steal everything.
    let chunks: Vec<ChunkMeta> = (0..16)
        .map(|_| ChunkMeta {
            node: SocketId(3),
            rows: 50_000,
        })
        .collect();
    c.bench_function("morsel_steal_remote", |b| {
        b.iter(|| {
            let q = MorselQueues::build(&chunks, SchedulingMode::NumaAware, 10_000, 8, &topo);
            let mut stolen = 0usize;
            while let Some((m, was_stolen)) = q.next_for(0) {
                stolen += usize::from(was_stolen);
                black_box(m.rows());
            }
            black_box(stolen)
        });
    });
}

criterion_group!(benches, bench_cutout, bench_steal);
criterion_main!(benches);
