//! Write-path experiments: `repro txn` (a guided demo of the durable
//! write path), `repro txn_bench` (RESULT lines for commit throughput,
//! group-commit batching, and recovery time vs WAL length), and
//! `repro recovery_smoke` (the CI crash-and-recover gate).
//!
//! All three run against throwaway databases under the system temp
//! directory; nothing touches the repository tree except the artifact
//! dump `recovery_smoke` leaves behind on failure (for CI upload).

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use morsel_core::{ExecEnv, Fault, FaultPlan};
use morsel_numa::Topology;
use morsel_service::{QueryService, ServiceConfig, Session};
use morsel_storage::Value;
use morsel_txn::{diff_logical_state, kv_relation, run_seeded, TxnDb, TxnDbConfig, WorkloadSpec};

use crate::experiments::ExpConfig;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("morsel-repro-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

// ---------------------------------------------------------------- demo

/// `repro txn`: a narrated pass over the write path — SQL DML through
/// the transactional session, cache-coherent reads, group commit, and
/// a crash-and-recover smoke at the end.
pub fn txn_demo(_cfg: &ExpConfig) -> String {
    let mut out = String::new();
    let dir = tmpdir("txn-demo");
    let topo = Topology::laptop();
    let db = Arc::new(TxnDb::create(&dir, vec![("kv", kv_relation(8))]).expect("create demo db"));
    let service = QueryService::start(ExecEnv::new(topo.clone()), ServiceConfig::new(2));
    let session = Session::builder()
        .database(Arc::clone(&db))
        .topology(&topo)
        .for_service(&service)
        .result_caching(true)
        .build();

    out.push_str("== transactional SQL (auto-commit) ==\n");
    for sql in [
        "INSERT INTO kv (key, val) VALUES (100, 10), (101, 20)",
        "UPDATE kv SET val = 42 WHERE key = 100",
        "DELETE FROM kv WHERE key = 101",
    ] {
        match session.execute(&service, "demo", sql) {
            Ok(exec) => {
                let ack = exec.dml().expect("DML statement");
                out.push_str(&format!("{sql}\n  -> {ack}\n"));
            }
            Err(e) => out.push_str(&format!("{sql}\n  -> ERROR {e}\n")),
        }
    }
    let q = "SELECT SUM(val) AS total FROM kv";
    for pass in ["cold", "warm"] {
        if let Ok(exec) = session.execute(&service, "demo-agg", q) {
            let qx = exec.query().expect("select");
            let total = qx.rows.as_ref().map(|b| b.column(0).as_i64()[0]);
            out.push_str(&format!(
                "{q} ({pass})\n  -> total={:?} result_cache={:?}\n",
                total, qx.result_cache
            ));
        }
    }
    let ws = db.wal_stats();
    out.push_str(&format!(
        "WAL: {} records durable, {} fsyncs, {} bytes, mean commit group {:.2}\n",
        ws.durable_lsn,
        ws.fsyncs,
        ws.written_bytes,
        ws.mean_group()
    ));
    service.shutdown();
    drop(session);

    out.push_str("\n== crash-and-recover smoke ==\n");
    let spec = WorkloadSpec::new(42, 30, 8);
    let oracle_dir = tmpdir("txn-demo-oracle");
    let oracle = TxnDb::create(&oracle_dir, vec![("kv", kv_relation(8))]).expect("oracle");
    run_seeded(&oracle, &spec, spec.txns);
    let crash_lsn = oracle.wal_stats().next_lsn / 2;
    let crash_dir = tmpdir("txn-demo-crash");
    let plan: FaultPlan = format!("crash@lsn#{crash_lsn}")
        .parse()
        .expect("fault grammar");
    let victim = TxnDb::create_with(
        &crash_dir,
        vec![("kv", kv_relation(8))],
        TxnDbConfig {
            faults: plan.wal_faults(),
            ..TxnDbConfig::default()
        },
    )
    .expect("victim");
    let acked = run_seeded(&victim, &spec, spec.txns);
    drop(victim);
    let recovered = TxnDb::open(&crash_dir, vec![("kv", kv_relation(8))]).expect("recover");
    let replayed_oracle_dir = tmpdir("txn-demo-prefix");
    let prefix = TxnDb::create(&replayed_oracle_dir, vec![("kv", kv_relation(8))]).expect("prefix");
    run_seeded(&prefix, &spec, acked);
    let verdict = match diff_logical_state(&recovered, &prefix) {
        None => "state identical to the uncrashed oracle".to_owned(),
        Some(d) => format!("MISMATCH: {d}"),
    };
    out.push_str(&format!(
        "killed at WAL record {crash_lsn} after {acked}/{} acknowledged commits; \
         recovery replayed the log: {verdict}\n",
        spec.txns
    ));
    for d in [dir, oracle_dir, crash_dir, replayed_oracle_dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
    out
}

// ---------------------------------------------------------------- bench

/// `repro txn_bench`: RESULT lines for (a) commit throughput and
/// group-commit batch size under 1–8 concurrent committers and (b)
/// recovery time as a function of WAL length. `--json` writes them to
/// `BENCH_txn.json`.
pub fn txn_bench(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    out.push_str("repro txn_bench — durable write path\n\n");
    out.push_str("commit throughput (disjoint keys, group-commit WAL):\n");
    let per_client = if cfg.quick { 40 } else { 200 };
    for clients in [1usize, 2, 4, 8] {
        let dir = tmpdir(&format!("txnb-c{clients}"));
        let keys = (clients * 64) as i64;
        let db = TxnDb::create(&dir, vec![("kv", kv_relation(keys))]).expect("create");
        let started = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..clients {
                let db = &db;
                scope.spawn(move || {
                    // Each committer updates its own key range: no
                    // conflicts, so every transaction commits and the
                    // measurement is pure write-path throughput.
                    for i in 0..per_client {
                        let mut txn = db.begin().expect("begin");
                        let key = (c * 64 + i % 64) as i64;
                        db.update_where(
                            &mut txn,
                            "kv",
                            &morsel_exec::expr::eq(
                                morsel_exec::expr::col(0),
                                morsel_exec::expr::lit(key),
                            ),
                            &[(1, Value::I64(i as i64))],
                        )
                        .expect("update");
                        db.commit(txn).expect("commit");
                    }
                });
            }
        });
        let elapsed = started.elapsed().as_secs_f64();
        let commits = (clients * per_client) as f64;
        let ws = db.wal_stats();
        out.push_str(&format!(
            "RESULT section=commit clients={clients} commits={} commits_per_s={:.0} \
             mean_group={:.2} fsyncs={} wal_bytes={}\n",
            commits as u64,
            commits / elapsed,
            ws.mean_group(),
            ws.fsyncs,
            ws.written_bytes
        ));
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    out.push_str("\nrecovery time vs WAL length (seeded single stream):\n");
    let sizes: &[usize] = if cfg.quick {
        &[50, 200]
    } else {
        &[100, 400, 1600]
    };
    for &txns in sizes {
        let dir = tmpdir(&format!("txnb-r{txns}"));
        let spec = WorkloadSpec::new(7, txns, 64);
        let (records, bytes) = {
            let db = TxnDb::create(&dir, vec![("kv", kv_relation(64))]).expect("create");
            let acked = run_seeded(&db, &spec, spec.txns);
            assert_eq!(acked, txns, "unfaulted workload commits everything");
            let ws = db.wal_stats();
            (ws.durable_lsn, ws.written_bytes)
        };
        let started = Instant::now();
        let db = TxnDb::open(&dir, vec![("kv", kv_relation(64))]).expect("recover");
        let recovery_ms = started.elapsed().as_secs_f64() * 1e3;
        out.push_str(&format!(
            "RESULT section=recovery txns={txns} wal_records={records} wal_bytes={bytes} \
             recovery_ms={recovery_ms:.2} version={}\n",
            db.version()
        ));
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    out
}

// ---------------------------------------------------------------- smoke

/// Where `recovery_smoke` dumps the WAL and fault plan when a diff
/// fails (CI uploads this directory as an artifact).
pub const SMOKE_ARTIFACT_DIR: &str = "recovery_artifacts";

/// `repro recovery_smoke`: seeded workload, crash via an injected
/// `crash@lsn` fault at three points in the log (25 %, 50 %, 75 %),
/// recover, and diff against an uncrashed oracle prefix. Returns `Err`
/// with a diagnostic — after writing the WAL and fault plan to
/// [`SMOKE_ARTIFACT_DIR`] — if any recovered state diverges.
pub fn recovery_smoke(cfg: &ExpConfig) -> Result<String, String> {
    let mut out = String::new();
    let txns = if cfg.quick { 60 } else { 120 };
    let spec = WorkloadSpec::new(2026, txns, 16);

    let oracle_dir = tmpdir("smoke-oracle");
    let oracle = TxnDb::create(&oracle_dir, vec![("kv", kv_relation(16))]).expect("oracle");
    let acked = run_seeded(&oracle, &spec, spec.txns);
    let total_records = oracle.wal_stats().next_lsn.saturating_sub(1);
    out.push_str(&format!(
        "oracle: {acked} commits, {total_records} WAL records\n"
    ));

    for quarter in [1u64, 2, 3] {
        let crash_lsn = (total_records * quarter / 4).max(1);
        let fault = Fault::CrashAtLsn { lsn: crash_lsn };
        let plan = FaultPlan::none().with(fault);
        // Round-trip the plan through the chaos grammar — the same
        // text form `MORSEL_FAULT_PLAN` accepts.
        let plan: FaultPlan = plan.to_string().parse().expect("fault grammar round-trip");

        let crash_dir = tmpdir(&format!("smoke-crash-{crash_lsn}"));
        let victim = TxnDb::create_with(
            &crash_dir,
            vec![("kv", kv_relation(16))],
            TxnDbConfig {
                faults: plan.wal_faults(),
                ..TxnDbConfig::default()
            },
        )
        .expect("victim");
        let victim_acked = run_seeded(&victim, &spec, spec.txns);
        let poisoned = victim.is_poisoned();
        drop(victim);

        let recovered =
            TxnDb::open(&crash_dir, vec![("kv", kv_relation(16))]).expect("recovery succeeds");
        let prefix_dir = tmpdir(&format!("smoke-prefix-{crash_lsn}"));
        let prefix = TxnDb::create(&prefix_dir, vec![("kv", kv_relation(16))]).expect("prefix");
        run_seeded(&prefix, &spec, victim_acked);

        let diff = diff_logical_state(&recovered, &prefix);
        match diff {
            None => {
                out.push_str(&format!(
                    "crash@lsn#{crash_lsn}: poisoned={poisoned} acked={victim_acked} \
                     -> recovered state matches the oracle prefix\n"
                ));
                let _ = std::fs::remove_dir_all(&crash_dir);
                let _ = std::fs::remove_dir_all(&prefix_dir);
            }
            Some(d) => {
                let saved = save_artifacts(&crash_dir, &plan);
                let _ = std::fs::remove_dir_all(&prefix_dir);
                return Err(format!(
                    "recovery_smoke FAILED at crash@lsn#{crash_lsn}: {d}\n\
                     artifacts (WAL + fault plan): {saved}"
                ));
            }
        }
    }
    let _ = std::fs::remove_dir_all(&oracle_dir);
    out.push_str("recovery_smoke PASS\n");
    Ok(out)
}

/// Copy the victim's WAL and the fault plan text into
/// [`SMOKE_ARTIFACT_DIR`] for CI to upload. Best-effort: returns the
/// directory path, or a note when copying itself failed.
fn save_artifacts(crash_dir: &Path, plan: &FaultPlan) -> String {
    let dest = Path::new(SMOKE_ARTIFACT_DIR);
    let ok = std::fs::create_dir_all(dest).is_ok()
        && std::fs::copy(crash_dir.join("wal.log"), dest.join("wal.log")).is_ok()
        && std::fs::write(dest.join("fault_plan.txt"), format!("{plan}\n")).is_ok();
    if ok {
        dest.display().to_string()
    } else {
        format!("(could not copy artifacts from {})", crash_dir.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_bench_emits_result_lines() {
        let cfg = ExpConfig {
            quick: true,
            ..ExpConfig::default()
        };
        let out = txn_bench(&cfg);
        assert!(out.contains("RESULT section=commit clients=1 "), "{out}");
        assert!(out.contains("RESULT section=commit clients=8 "), "{out}");
        assert!(out.contains("RESULT section=recovery txns=50 "), "{out}");
        for line in out.lines().filter(|l| l.starts_with("RESULT ")) {
            assert!(
                line.split_whitespace().skip(1).all(|kv| kv.contains('=')),
                "malformed RESULT line: {line}"
            );
        }
    }

    #[test]
    fn recovery_smoke_passes_on_the_correct_engine() {
        let cfg = ExpConfig {
            quick: true,
            ..ExpConfig::default()
        };
        let out = recovery_smoke(&cfg).expect("smoke passes");
        assert!(out.contains("recovery_smoke PASS"), "{out}");
        assert_eq!(out.matches("crash@lsn#").count(), 3, "{out}");
    }

    #[test]
    fn demo_narrates_the_write_path() {
        let cfg = ExpConfig::default();
        let out = txn_demo(&cfg);
        assert!(out.contains("INSERT kv: 2 row(s)"), "{out}");
        assert!(
            out.contains("state identical to the uncrashed oracle"),
            "{out}"
        );
    }
}
