//! `repro` — regenerate any table or figure from the paper.
//!
//! Usage:
//! ```text
//! repro [--scale SF] [--ssb-scale SF] [--workers N] [--morsel N] [--quick]
//!       [--db tpch|ssb] <experiment>...
//! experiments: fig6 fig11 table1 table2 table3 summary numa_placement
//!              numa_micro fig12 fig13 interference all
//! extras:      service_load  (wall-clock serving scenario; not part of "all")
//!              service_load_zipf  (skewed SQL replay through the plan/result
//!                             caches, one row per caching mode)
//!              plan_quality  (cost-based planner vs hand-authored plans)
//!              explain <q>   (planner join order + est/actual rows, e.g.
//!                             `explain q5` or `explain ssb2.1`)
//!              explain --sql "<text>"  (same, for a SQL query)
//!              sql "<text>"  (parse, bind, plan, and execute SQL text
//!                             against the generated DB; `--db` picks
//!                             TPC-H (default) or SSB; `--repeat N` re-runs
//!                             through the plan cache and reports each
//!                             run's hit/miss)
//! ```
//!
//! Observability commands:
//! ```text
//! repro sql --analyze "<text>"   est-vs-actual rows + per-operator runtime
//!                                profile from one profiled execution
//! repro explain --analyze <q>    same profile detail for a fixture query
//! repro metrics                  run a short service workload, print its
//!                                metrics in Prometheus text format
//!                                (self-validated; exits non-zero if bad)
//! repro trace <q> [--out FILE]   run <q> on the threaded executor and
//!                                export query/pipeline/morsel spans as
//!                                Chrome-trace JSON (default trace_<q>.json)
//! repro <experiment> --json      also write RESULT lines to
//!                                BENCH_observability.json
//! ```
//!
//! Write-path commands:
//! ```text
//! repro txn                      guided demo of the durable write path:
//!                                SQL DML auto-commit, cache-coherent
//!                                reads, and a crash-and-recover smoke
//! repro txn_bench [--json]       RESULT lines: commits/s and group-commit
//!                                batch size per client count, recovery
//!                                time vs WAL length; --json writes them
//!                                to BENCH_txn.json
//! repro recovery_smoke           seeded workload killed by crash@lsn at
//!                                three points, recovered, and diffed
//!                                against an uncrashed oracle; exits
//!                                non-zero (leaving recovery_artifacts/)
//!                                on any divergence — CI's recovery job
//! ```
//!
//! `sql` and `explain --sql` exit non-zero on any parse/bind error,
//! printing the caret diagnostic — CI's smoke step relies on that.

use morsel_bench::experiments::{self, ExpConfig};
use morsel_bench::SqlDb;

enum ExplainTarget {
    Query(String),
    Sql(String),
}

fn main() {
    let mut cfg = ExpConfig::default();
    let mut experiments_to_run: Vec<String> = Vec::new();
    let mut explain_targets: Vec<ExplainTarget> = Vec::new();
    let mut sql_texts: Vec<String> = Vec::new();
    let mut db = SqlDb::Tpch;
    let mut repeat = 1usize;
    let mut trace_queries: Vec<String> = Vec::new();
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "explain" => {
                let mut target = args.next().expect("explain needs a query, e.g. q5");
                if target == "--analyze" {
                    cfg.analyze = true;
                    target = args.next().expect("explain --analyze needs a query");
                }
                if target == "--sql" {
                    explain_targets.push(ExplainTarget::Sql(
                        args.next().expect("explain --sql needs a query string"),
                    ));
                } else {
                    explain_targets.push(ExplainTarget::Query(target));
                }
            }
            "trace" => {
                trace_queries.push(args.next().expect("trace needs a query, e.g. q6"));
            }
            "--out" => {
                trace_out = Some(args.next().expect("--out needs a file path"));
            }
            "--analyze" => cfg.analyze = true,
            "--json" => cfg.json = true,
            "sql" => {
                let mut text = args.next().expect("sql needs a query string");
                if text == "--analyze" {
                    cfg.analyze = true;
                    text = args.next().expect("sql --analyze needs a query string");
                }
                sql_texts.push(text);
            }
            "--db" => {
                db = match args.next().expect("--db needs tpch or ssb").as_str() {
                    "tpch" => SqlDb::Tpch,
                    "ssb" => SqlDb::Ssb,
                    other => {
                        eprintln!("--db must be tpch or ssb, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--scale" => {
                cfg.scale = args.next().expect("--scale needs a value").parse().unwrap();
            }
            "--ssb-scale" => {
                cfg.ssb_scale = args
                    .next()
                    .expect("--ssb-scale needs a value")
                    .parse()
                    .unwrap();
            }
            "--workers" => {
                cfg.workers = args
                    .next()
                    .expect("--workers needs a value")
                    .parse()
                    .unwrap();
            }
            "--repeat" => {
                repeat = args
                    .next()
                    .expect("--repeat needs a value")
                    .parse()
                    .expect("--repeat must be a positive integer");
                assert!(repeat > 0, "--repeat must be at least 1");
            }
            "--morsel" => {
                cfg.morsel_size = args
                    .next()
                    .expect("--morsel needs a value")
                    .parse()
                    .unwrap();
            }
            "--quick" => {
                let q = ExpConfig::quick();
                cfg.quick = true;
                cfg.scale = q.scale.min(cfg.scale);
                cfg.ssb_scale = q.ssb_scale.min(cfg.ssb_scale);
            }
            other => experiments_to_run.push(other.to_owned()),
        }
    }
    if experiments_to_run.is_empty()
        && explain_targets.is_empty()
        && sql_texts.is_empty()
        && trace_queries.is_empty()
    {
        eprintln!(
            "usage: repro [--scale SF] [--workers N] [--morsel N] [--quick] \
             [--db tpch|ssb] <experiment>...\n\
             experiments: fig6 fig11 table1 table2 table3 summary numa_placement\n\
             \x20            numa_micro fig12 fig13 interference all\n\
             extras: service_load (wall-clock serving scenario)\n\
             \x20       service_load_zipf (skewed replay through the caches)\n\
             \x20       plan_quality | explain [--analyze] <q> | explain --sql \"<text>\"\n\
             \x20       sql [--analyze] \"<text>\" [--repeat N] (full text -> plan -> execute)\n\
             \x20       metrics (Prometheus exposition of a short service run)\n\
             \x20       trace <q> [--out FILE] (Chrome-trace JSON span export)\n\
             \x20       txn (write-path demo) | txn_bench [--json -> BENCH_txn.json]\n\
             \x20       recovery_smoke (crash@lsn sweep vs oracle; CI gate)\n\
             \x20       adaptive (feedback replay; --json -> BENCH_adaptive.json)\n\
             \x20       --json (write RESULT lines to BENCH_observability.json)"
        );
        std::process::exit(2);
    }
    // Every SQL statement in one invocation shares `--db`; generate the
    // database once and bind them all against the same catalog.
    let needs_sql = !sql_texts.is_empty()
        || explain_targets
            .iter()
            .any(|t| matches!(t, ExplainTarget::Sql(_)));
    let sql_catalog = needs_sql.then(|| morsel_bench::sql_catalog(&cfg, db));
    let fail = |diag: String| -> ! {
        eprintln!("{diag}");
        std::process::exit(1);
    };
    for target in &explain_targets {
        match target {
            ExplainTarget::Query(q) => println!("{}", morsel_bench::explain_query(&cfg, q)),
            ExplainTarget::Sql(text) => {
                let (catalog, scale) = sql_catalog.as_ref().unwrap();
                match morsel_bench::explain_sql_in(&cfg, catalog, *scale, text) {
                    Ok(out) => println!("{out}"),
                    Err(diag) => fail(diag),
                }
            }
        }
    }
    for text in &sql_texts {
        let (catalog, scale) = sql_catalog.as_ref().unwrap();
        match morsel_bench::run_sql_in(&cfg, db, catalog, *scale, text, repeat) {
            Ok(out) => println!("{out}"),
            Err(diag) => fail(diag),
        }
    }
    for q in &trace_queries {
        let (summary, json) = morsel_bench::trace_query(&cfg, q);
        let path = trace_out
            .clone()
            .unwrap_or_else(|| format!("trace_{}.json", q.replace('.', "_")));
        if let Err(e) = std::fs::write(&path, &json) {
            fail(format!("trace: cannot write {path}: {e}"));
        }
        print!("{summary}");
        println!("chrome trace written to {path} ({} bytes)", json.len());
    }
    let all = [
        "fig6",
        "numa_micro",
        "summary",
        "table1",
        "table2",
        "table3",
        "numa_placement",
        "fig11",
        "fig12",
        "fig13",
        "interference",
    ];
    let list: Vec<&str> = if experiments_to_run.iter().any(|e| e == "all") {
        all.to_vec()
    } else {
        experiments_to_run.iter().map(String::as_str).collect()
    };
    let mut json_reports: Vec<(String, String)> = Vec::new();
    for exp in list {
        let started = std::time::Instant::now();
        let report = match exp {
            "fig6" => experiments::fig6(&cfg),
            "fig11" => experiments::fig11(&cfg),
            "table1" => experiments::table1(&cfg),
            "table2" => experiments::table2(&cfg),
            "table3" => experiments::table3(&cfg),
            "summary" => experiments::summary(&cfg),
            "numa_placement" => experiments::numa_placement(&cfg),
            "numa_micro" => experiments::numa_micro(),
            "fig12" => experiments::fig12(&cfg),
            "fig13" => experiments::fig13(&cfg),
            "interference" => experiments::interference(&cfg),
            "service_load" => morsel_bench::service_load(&cfg),
            "service_load_zipf" => morsel_bench::service_load_zipf(&cfg),
            "plan_quality" => morsel_bench::plan_quality(&cfg),
            "adaptive" => morsel_bench::adaptive(&cfg),
            "txn" => morsel_bench::txn_demo(&cfg),
            "txn_bench" => morsel_bench::txn_bench(&cfg),
            "recovery_smoke" => match morsel_bench::recovery_smoke(&cfg) {
                Ok(text) => text,
                Err(e) => fail(e),
            },
            "metrics" => match morsel_bench::metrics_snapshot(&cfg) {
                Ok(text) => text,
                Err(e) => fail(e),
            },
            other => {
                eprintln!("unknown experiment {other:?}");
                std::process::exit(2);
            }
        };
        println!("{report}");
        println!(
            "[{exp} regenerated in {:.1}s wall time]\n",
            started.elapsed().as_secs_f64()
        );
        if cfg.json {
            json_reports.push((exp.to_owned(), report));
        }
    }
    if cfg.json && !json_reports.is_empty() {
        // Write-path numbers go to their own document so reruns of the
        // observability experiments don't clobber them (and vice versa).
        let (txn_reports, rest): (Vec<_>, Vec<_>) = json_reports
            .into_iter()
            .partition(|(name, _)| name == "txn_bench");
        if !txn_reports.is_empty() {
            match morsel_bench::write_bench_json_to("BENCH_txn.json", &txn_reports) {
                Ok(()) => println!("machine-readable results written to BENCH_txn.json"),
                Err(e) => fail(format!("--json: cannot write BENCH_txn.json: {e}")),
            }
        }
        // Likewise the adaptive replay: its document is a CI artifact of
        // its own job, so it never clobbers the observability numbers.
        let (adaptive_reports, other_reports): (Vec<_>, Vec<_>) =
            rest.into_iter().partition(|(name, _)| name == "adaptive");
        if !adaptive_reports.is_empty() {
            match morsel_bench::write_bench_json_to("BENCH_adaptive.json", &adaptive_reports) {
                Ok(()) => println!("machine-readable results written to BENCH_adaptive.json"),
                Err(e) => fail(format!("--json: cannot write BENCH_adaptive.json: {e}")),
            }
        }
        if !other_reports.is_empty() {
            match morsel_bench::write_bench_json(&other_reports) {
                Ok(path) => println!("machine-readable results written to {path}"),
                Err(e) => fail(format!("--json: cannot write results: {e}")),
            }
        }
    }
}
