//! `repro` — regenerate any table or figure from the paper.
//!
//! Usage:
//! ```text
//! repro [--scale SF] [--ssb-scale SF] [--workers N] [--morsel N] [--quick] <experiment>...
//! experiments: fig6 fig11 table1 table2 table3 summary numa_placement
//!              numa_micro fig12 fig13 interference all
//! extras:      service_load  (wall-clock serving scenario; not part of "all")
//!              plan_quality  (cost-based planner vs hand-authored plans)
//!              explain <q>   (planner join order + est/actual rows, e.g.
//!                             `explain q5` or `explain ssb2.1`)
//! ```

use morsel_bench::experiments::{self, ExpConfig};

fn main() {
    let mut cfg = ExpConfig::default();
    let mut experiments_to_run: Vec<String> = Vec::new();
    let mut explain_targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "explain" => {
                explain_targets.push(args.next().expect("explain needs a query, e.g. q5"));
            }
            "--scale" => {
                cfg.scale = args.next().expect("--scale needs a value").parse().unwrap();
            }
            "--ssb-scale" => {
                cfg.ssb_scale = args
                    .next()
                    .expect("--ssb-scale needs a value")
                    .parse()
                    .unwrap();
            }
            "--workers" => {
                cfg.workers = args
                    .next()
                    .expect("--workers needs a value")
                    .parse()
                    .unwrap();
            }
            "--morsel" => {
                cfg.morsel_size = args
                    .next()
                    .expect("--morsel needs a value")
                    .parse()
                    .unwrap();
            }
            "--quick" => {
                let q = ExpConfig::quick();
                cfg.quick = true;
                cfg.scale = q.scale.min(cfg.scale);
                cfg.ssb_scale = q.ssb_scale.min(cfg.ssb_scale);
            }
            other => experiments_to_run.push(other.to_owned()),
        }
    }
    if experiments_to_run.is_empty() && explain_targets.is_empty() {
        eprintln!(
            "usage: repro [--scale SF] [--workers N] [--morsel N] [--quick] <experiment>...\n\
             experiments: fig6 fig11 table1 table2 table3 summary numa_placement\n\
             \x20            numa_micro fig12 fig13 interference all\n\
             extras: service_load (wall-clock serving scenario)\n\
             \x20       plan_quality | explain <q> (cost-based planner)"
        );
        std::process::exit(2);
    }
    for q in &explain_targets {
        println!("{}", morsel_bench::explain_query(&cfg, q));
    }
    let all = [
        "fig6",
        "numa_micro",
        "summary",
        "table1",
        "table2",
        "table3",
        "numa_placement",
        "fig11",
        "fig12",
        "fig13",
        "interference",
    ];
    let list: Vec<&str> = if experiments_to_run.iter().any(|e| e == "all") {
        all.to_vec()
    } else {
        experiments_to_run.iter().map(String::as_str).collect()
    };
    for exp in list {
        let started = std::time::Instant::now();
        let report = match exp {
            "fig6" => experiments::fig6(&cfg),
            "fig11" => experiments::fig11(&cfg),
            "table1" => experiments::table1(&cfg),
            "table2" => experiments::table2(&cfg),
            "table3" => experiments::table3(&cfg),
            "summary" => experiments::summary(&cfg),
            "numa_placement" => experiments::numa_placement(&cfg),
            "numa_micro" => experiments::numa_micro(),
            "fig12" => experiments::fig12(&cfg),
            "fig13" => experiments::fig13(&cfg),
            "interference" => experiments::interference(&cfg),
            "service_load" => morsel_bench::service_load(&cfg),
            "plan_quality" => morsel_bench::plan_quality(&cfg),
            other => {
                eprintln!("unknown experiment {other:?}");
                std::process::exit(2);
            }
        };
        println!("{report}");
        println!(
            "[{exp} regenerated in {:.1}s wall time]\n",
            started.elapsed().as_secs_f64()
        );
    }
}
