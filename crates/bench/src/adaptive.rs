//! The `repro adaptive` experiment: close the cardinality-feedback
//! loop over a replayed workload.
//!
//! Every SQL fixture (25 queries: the TPC-H slice plus all of SSB) is
//! run three times through a feedback-enabled [`Session`] and once
//! through an identically configured baseline session with feedback
//! off:
//!
//! - **run 1** executes the same plan as the baseline — the feedback
//!   cache is cold, so the estimates (and therefore the join order and
//!   the result bytes) are identical by construction; the run's
//!   per-operator actuals are then harvested into the cache.
//! - **runs 2–3** re-plan with learned scan selectivities and join-edge
//!   selectivities. A fixture counts as *improved* when the warm join
//!   order differs from the cold one AND simulated time strictly drops.
//!
//! One `RESULT` line per fixture plus a summary line make the outcome
//! machine-checkable (CI greps for converged improvements); `--json`
//! routes the report to `BENCH_adaptive.json`.
//!
//! The tail of the report demonstrates the mid-query half of the loop:
//! [`Session::stage_and_reoptimize`] materializes the top pipeline
//! breaker of a drifted fixture, re-costs the remaining join order via
//! DPsize over the true intermediate, and splices the cheaper plan —
//! asserting the staged plan still returns byte-identical rows.

use morsel_core::{ExecEnv, QueryProfile};
use morsel_exec::plan::Plan;
use morsel_exec::SystemVariant;
use morsel_numa::Topology;
use morsel_planner::PlanReport;
use morsel_queries::{run_sim, ssb_sql, tpch_sql};
use morsel_service::{Error, Session};
use morsel_storage::{Batch, Catalog};

use crate::experiments::ExpConfig;
use crate::report::Table;

fn widest_order(report: &PlanReport) -> String {
    report
        .blocks
        .iter()
        .max_by_key(|b| b.leaves.len())
        .map(|b| b.order.clone())
        .unwrap_or_else(|| "-".to_owned())
}

fn count_joins(plan: &Plan) -> usize {
    match plan {
        Plan::Scan { .. } => 0,
        Plan::Filter { input, .. }
        | Plan::Map { input, .. }
        | Plan::Agg { input, .. }
        | Plan::Sort { input, .. } => count_joins(input),
        Plan::Join { build, probe, .. } => 1 + count_joins(build) + count_joins(probe),
    }
}

struct FixtureRun {
    name: String,
    joins: usize,
    order: [String; 3],
    secs: [f64; 3],
    identical: bool,
    improved: bool,
}

/// Replay `fixtures` against `catalog`: one cold baseline run plus three
/// feedback-warm runs each, comparing join orders and simulated time.
fn replay(
    env: &ExecEnv,
    topo: &Topology,
    cfg: &ExpConfig,
    catalog: &Catalog,
    fixtures: &[(String, &str)],
) -> Vec<FixtureRun> {
    let baseline = Session::builder()
        .catalog(catalog.clone())
        .topology(topo)
        .build();
    let adaptive = Session::builder()
        .catalog(catalog.clone())
        .topology(topo)
        .feedback(true)
        .build();
    // Pass 0 is the cold replay; harvesting happens only at pass
    // boundaries, so every fixture's first run sees the same (empty)
    // cache as the baseline session and plans identically. Passes 1–2
    // replay the whole workload against the learned selectivities.
    let baselines: Vec<Batch> = fixtures
        .iter()
        .map(|(name, sql)| {
            let (handle, _) = baseline
                .resolve(sql)
                .unwrap_or_else(|e| panic!("{name}: {}", e.render(sql)));
            run_sim(
                env,
                &format!("{name}-base"),
                handle.plan.clone(),
                SystemVariant::full(),
                16,
                cfg.morsel_size,
            )
            .result
        })
        .collect();

    let mut runs: Vec<FixtureRun> = fixtures
        .iter()
        .map(|(name, _)| FixtureRun {
            name: name.clone(),
            joins: 0,
            order: Default::default(),
            secs: [0.0; 3],
            identical: true,
            improved: false,
        })
        .collect();
    for pass in 0..3 {
        let mut harvest: Vec<(Plan, QueryProfile)> = Vec::new();
        for (i, (name, sql)) in fixtures.iter().enumerate() {
            let (handle, _) = adaptive
                .resolve(sql)
                .unwrap_or_else(|e| panic!("{name}: {}", e.render(sql)));
            if pass == 0 {
                runs[i].joins = count_joins(&handle.plan);
            }
            runs[i].order[pass] = widest_order(&handle.report);
            let outcome = run_sim(
                env,
                &format!("{name}-pass{pass}"),
                handle.plan.clone(),
                SystemVariant::full(),
                16,
                cfg.morsel_size,
            );
            runs[i].secs[pass] = outcome.seconds();
            if pass == 0 {
                assert_eq!(
                    outcome.result, baselines[i],
                    "{name}: the cold replay must match the baseline byte-for-byte"
                );
            } else if outcome.result != baselines[i] {
                runs[i].identical = false;
            }
            harvest.push((
                handle.plan.clone(),
                outcome
                    .profile
                    .expect("SystemVariant::full() compiles with profiling on"),
            ));
        }
        for (plan, profile) in &harvest {
            adaptive.observe(plan, profile);
        }
    }
    for r in &mut runs {
        r.improved = r.joins >= 2 && r.order[1] != r.order[0] && r.secs[1] < r.secs[0];
    }
    runs
}

/// Demonstrate [`Session::stage_and_reoptimize`] on one warmed fixture:
/// execute the top breaker, observe the divergence, splice if cheaper,
/// and verify the staged plan's rows byte-for-byte.
fn staging_demo(
    env: &ExecEnv,
    topo: &Topology,
    cfg: &ExpConfig,
    catalog: &Catalog,
    fixtures: &[(String, &str)],
) -> Result<String, Error> {
    let session = Session::builder()
        .catalog(catalog.clone())
        .topology(topo)
        .feedback(true)
        .build();
    let mut out =
        String::from("mid-query staging (top breaker materialized, remainder re-costed):\n");
    let mut shown = 0usize;
    for (name, sql) in fixtures {
        let (handle, _) = session.resolve(sql)?;
        if count_joins(&handle.plan) < 2 {
            continue;
        }
        // Warm the cache with one observed execution first — staging
        // deliberately stays inert on a cold cache.
        let cold = run_sim(
            env,
            &format!("{name}-stage-warmup"),
            handle.plan.clone(),
            SystemVariant::full(),
            16,
            cfg.morsel_size,
        );
        session.observe(&handle.plan, cold.profile.as_ref().expect("profiling on"));
        let (handle, _) = session.resolve(sql)?;
        let staged = session.stage_and_reoptimize(&handle.plan, |build| {
            let r = run_sim(
                env,
                &format!("{name}-stage-build"),
                build.clone(),
                SystemVariant::full(),
                16,
                cfg.morsel_size,
            );
            let profile = r.profile.expect("profiling on");
            Ok((r.result, profile))
        })?;
        if !staged.staged {
            continue;
        }
        let replay = run_sim(
            env,
            &format!("{name}-staged"),
            staged.plan.clone(),
            SystemVariant::full(),
            16,
            cfg.morsel_size,
        );
        assert_eq!(
            replay.result, cold.result,
            "{name}: staging must not change results"
        );
        match &staged.resplice {
            Some(r) => out.push_str(&format!(
                "  {name}: drift {:.1}x tripped re-opt; {} -> {} \
                 (cost {:.2e} -> {:.2e}); staged rows identical\n",
                r.divergence, r.old_order, r.new_order, r.old_cost, r.new_cost
            )),
            None => out.push_str(&format!(
                "  {name}: breaker materialized, incumbent order kept; rows identical\n"
            )),
        }
        shown += 1;
        if shown >= 3 {
            break;
        }
    }
    if shown == 0 {
        out.push_str("  (no multi-join fixture staged at this scale)\n");
    }
    Ok(out)
}

/// The `adaptive` experiment (see the module docs).
pub fn adaptive(cfg: &ExpConfig) -> String {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let tpch = morsel_datagen::generate_tpch(morsel_datagen::TpchConfig::scaled(cfg.scale), &topo);
    let ssb = morsel_datagen::generate_ssb(morsel_datagen::SsbConfig::scaled(cfg.ssb_scale), &topo);
    let tpch_fixtures: Vec<(String, &str)> = tpch_sql::all()
        .into_iter()
        .map(|(q, sql)| (format!("Q{q}"), sql))
        .collect();
    let ssb_fixtures: Vec<(String, &str)> = ssb_sql::all()
        .into_iter()
        .map(|(id, sql)| (format!("SSB{id}"), sql))
        .collect();

    let mut runs = replay(&env, &topo, cfg, &tpch.catalog(), &tpch_fixtures);
    runs.extend(replay(&env, &topo, cfg, &ssb.catalog(), &ssb_fixtures));

    let mut out = format!(
        "adaptive: cardinality-feedback replay, TPC-H SF {} / SSB SF {}\n\
         (each fixture: 1 baseline run, then 3 runs with the feedback cache \
         learning scan and join-edge selectivities; times are simulated \
         virtual seconds, 16 workers)\n\n",
        cfg.scale, cfg.ssb_scale
    );
    let mut table = Table::new(&[
        "fixture",
        "joins",
        "t run1",
        "t run2",
        "t run3",
        "order changed",
        "improved",
    ]);
    let total = runs.len();
    let mut identical = 0usize;
    let mut multi = 0usize;
    let mut improved = 0usize;
    let mut result_lines = String::new();
    for r in &runs {
        if r.identical {
            identical += 1;
        }
        if r.joins >= 2 {
            multi += 1;
        }
        if r.improved {
            improved += 1;
        }
        table.row(vec![
            r.name.clone(),
            r.joins.to_string(),
            format!("{:.4}", r.secs[0]),
            format!("{:.4}", r.secs[1]),
            format!("{:.4}", r.secs[2]),
            (r.order[1] != r.order[0]).to_string(),
            r.improved.to_string(),
        ]);
        result_lines.push_str(&format!(
            "RESULT fixture={} joins={} t1={:.6} t2={:.6} t3={:.6} identical={} \
             order_changed={} improved={}\n",
            r.name,
            r.joins,
            r.secs[0],
            r.secs[1],
            r.secs[2],
            r.identical,
            r.order[1] != r.order[0],
            r.improved,
        ));
    }
    out.push_str(&table.render());
    out.push('\n');
    out.push_str("re-chosen join orders (run 1 -> run 2):\n");
    for r in runs.iter().filter(|r| r.order[1] != r.order[0]) {
        out.push_str(&format!(
            "  {:>7}: {}\n        -> {}{}\n",
            r.name,
            r.order[0],
            r.order[1],
            if r.improved { "  (cheaper)" } else { "" }
        ));
    }
    out.push('\n');
    out.push_str(&result_lines);
    out.push_str(&format!(
        "RESULT summary fixtures={total} identical={identical} multi_join={multi} \
         improved={improved}\n\n"
    ));
    assert_eq!(identical, total, "feedback must never change query results");

    match staging_demo(&env, &topo, cfg, &tpch.catalog(), &tpch_fixtures) {
        Ok(s) => out.push_str(&s),
        Err(e) => out.push_str(&format!("mid-query staging demo failed: {e}\n")),
    }
    out
}
