//! One function per table/figure of the paper's evaluation (Section 5).
//!
//! Every experiment runs the real engine over real generated data inside
//! the deterministic virtual-time executor, so the reported numbers are
//! reproducible bit-for-bit. Scale factors default to laptop scale; the
//! *shapes* (who wins, by what factor, where curves bend) are the
//! reproduction target, not the paper's absolute values (see
//! EXPERIMENTS.md).

use std::sync::Arc;

use morsel_core::{render_ascii, DispatchConfig, ExecEnv, SchedulingMode, SimExecutor};
use morsel_datagen::{generate_ssb, generate_tpch, SsbConfig, TpchConfig, TpchDb};
use morsel_exec::agg::AggFn;
use morsel_exec::plan::{compile_query, Plan};
use morsel_exec::SystemVariant;
use morsel_numa::{CostModel, Placement, Topology};
use morsel_queries::{run_sim, ssb_queries, tpch_queries};
use morsel_storage::{Batch, Column, DataType, PartitionBy, Relation, Schema};

use crate::report::{gbps, geo_mean, pct, ratio, secs, Table};

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// TPC-H scale factor.
    pub scale: f64,
    /// SSB scale factor.
    pub ssb_scale: f64,
    /// Maximum hardware threads (the paper's boxes have 64).
    pub workers: usize,
    pub morsel_size: usize,
    /// Reduced sweeps for CI / quick runs.
    pub quick: bool,
    /// `--analyze`: augment `explain`/`sql` output with the full
    /// per-operator runtime profile from the single profiled execution.
    pub analyze: bool,
    /// `--json`: write machine-readable `RESULT` lines to
    /// `BENCH_observability.json` after the run.
    pub json: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        // 512-tuple morsels: at laptop scale factors this preserves the
        // paper's morsels-per-worker ratio (the paper used 100k-tuple
        // morsels at SF 100); see DESIGN.md.
        ExpConfig {
            scale: 0.02,
            ssb_scale: 0.02,
            workers: 64,
            morsel_size: 512,
            quick: false,
            analyze: false,
            json: false,
        }
    }
}

impl ExpConfig {
    pub fn quick() -> Self {
        ExpConfig {
            scale: 0.002,
            ssb_scale: 0.002,
            quick: true,
            ..Default::default()
        }
    }

    fn thread_counts(&self) -> Vec<usize> {
        if self.quick {
            vec![1, 4, 16, 32, 64]
        } else {
            vec![1, 2, 4, 8, 16, 32, 48, 64]
        }
    }

    fn tpch_db(&self, topo: &Topology) -> TpchDb {
        generate_tpch(
            TpchConfig {
                scale: self.scale,
                ..Default::default()
            },
            topo,
        )
    }
}

fn run_query(
    env: &ExecEnv,
    db: &TpchDb,
    q: usize,
    variant: SystemVariant,
    workers: usize,
    morsel: usize,
) -> morsel_queries::RunOutcome {
    run_sim(
        env,
        &format!("Q{q}"),
        tpch_queries::query(db, q),
        variant,
        workers,
        morsel,
    )
}

// ---------------------------------------------------------------- fig 6

/// Figure 6: effect of morsel size on `select min(a) from R`, 64 threads.
pub fn fig6(cfg: &ExpConfig) -> String {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    // R: one integer column, spread over the sockets.
    let n = ((40_000_000.0 * cfg.scale) as usize).max(400_000);
    let data = Batch::from_columns(vec![Column::I64(
        (0..n as i64)
            .map(|x| x.wrapping_mul(2654435761) % 1_000_000)
            .collect(),
    )]);
    let r = Arc::new(Relation::partitioned(
        Schema::new(vec![("a", DataType::I64)]),
        &data,
        PartitionBy::Chunks,
        64,
        Placement::FirstTouch,
        &topo,
    ));
    let sizes: &[usize] = &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];
    let mut t = Table::new(&["morsel size", "time", "morsels"]);
    for &size in sizes {
        let plan = Plan::scan(r.clone(), None, &["a"]).agg(&[], vec![("min", AggFn::MinI64(0))]);
        let out = run_sim(&env, "min", plan, SystemVariant::full(), cfg.workers, size);
        t.row(vec![
            size.to_string(),
            secs(out.seconds()),
            out.stats.morsels.to_string(),
        ]);
    }
    format!(
        "Figure 6 — morsel size vs. execution time (select min(a) from R, |R|={n}, {} threads)\n{}",
        cfg.workers,
        t.render()
    )
}

// --------------------------------------------------------------- fig 11

/// Figure 11: TPC-H speedup over single-threaded HyPer, per query, for
/// the four compared systems.
pub fn fig11(cfg: &ExpConfig) -> String {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let db = cfg.tpch_db(&topo);
    let variants = SystemVariant::all();
    let threads = cfg.thread_counts();
    let queries: Vec<usize> = if cfg.quick {
        vec![1, 3, 6, 13, 18]
    } else {
        (1..=22).collect()
    };

    // Materialize each variant's placement once (cloning relations per
    // run would dominate the harness wall time).
    let variant_dbs: Vec<TpchDb> = variants
        .iter()
        .map(|v| db.with_placement(v.placement, &topo))
        .collect();

    let mut out = String::from("Figure 11 — TPC-H speedup over single-threaded execution\n");
    for &q in &queries {
        let base = run_query(&env, &db, q, SystemVariant::full(), 1, cfg.morsel_size).seconds();
        out.push_str(&format!("\nQ{q} (single-threaded: {})\n", secs(base)));
        let header: Vec<&str> = std::iter::once("threads")
            .chain(variants.iter().map(|v| v.name))
            .collect();
        let mut t = Table::new(&header);
        for &w in &threads {
            let mut row = vec![w.to_string()];
            for (v, vdb) in variants.iter().zip(&variant_dbs) {
                let s = run_query(&env, vdb, q, *v, w, cfg.morsel_size).seconds();
                row.push(format!("{:.1}", base / s));
            }
            t.row(row);
        }
        out.push_str(&t.render());
    }
    out
}

// -------------------------------------------------------- tables 1 and 2

/// Per-query statistics on one topology: the engine-side reproduction of
/// Intel PCM's counters.
fn tpch_stats_table(cfg: &ExpConfig, topo: Topology, with_baseline: bool) -> String {
    let env = ExecEnv::new(topo.clone());
    let db = cfg.tpch_db(&topo);
    let link_bw_gbps = env.cost().link_bw; // bytes/ns == GB/s
    let header: Vec<&str> = if with_baseline {
        vec![
            "#",
            "time",
            "scal.",
            "rd GB/s",
            "wr GB/s",
            "remote%",
            "QPI%",
            "| VW time",
            "VW scal.",
            "VW remote%",
        ]
    } else {
        vec![
            "#", "time", "scal.", "rd GB/s", "wr GB/s", "remote%", "QPI%",
        ]
    };
    let mut t = Table::new(&header);
    let mut hy_times = Vec::new();
    let mut hy_scals = Vec::new();
    let volcano = SystemVariant::volcano();
    let volcano_db = if with_baseline {
        Some(db.with_placement(volcano.placement, &topo))
    } else {
        None
    };
    for q in 1..=22 {
        let o64 = run_query(
            &env,
            &db,
            q,
            SystemVariant::full(),
            cfg.workers,
            cfg.morsel_size,
        );
        let o1 = run_query(&env, &db, q, SystemVariant::full(), 1, cfg.morsel_size);
        let time = o64.seconds();
        let scal = o1.seconds() / time;
        hy_times.push(time);
        hy_scals.push(scal);
        let qpi = o64.traffic.max_link_bytes() as f64 / time.max(1e-12) / 1e9 / link_bw_gbps;
        let mut row = vec![
            q.to_string(),
            secs(time),
            ratio(scal),
            gbps(o64.traffic.total_read(), time),
            gbps(o64.traffic.total_write(), time),
            pct(o64.traffic.remote_fraction()),
            pct(qpi.min(1.0)),
        ];
        if with_baseline {
            let vdb = volcano_db.as_ref().unwrap();
            let v64 = run_query(&env, vdb, q, volcano, cfg.workers, cfg.morsel_size);
            let v1 = run_query(&env, vdb, q, volcano, 1, cfg.morsel_size);
            row.push(secs(v64.seconds()));
            row.push(ratio(v1.seconds() / v64.seconds()));
            row.push(pct(v64.traffic.remote_fraction()));
        }
        t.row(row);
    }
    format!(
        "{} — TPC-H (SF {}) with {} threads\ngeo.mean time {}, avg scalability {:.1}x\n{}",
        topo.name(),
        cfg.scale,
        cfg.workers,
        secs(geo_mean(&hy_times)),
        hy_scals.iter().sum::<f64>() / hy_scals.len() as f64,
        t.render()
    )
}

/// Table 1: per-query time/scalability/bandwidth/remote/QPI on Nehalem EX,
/// morsel-driven vs. Volcano baseline.
pub fn table1(cfg: &ExpConfig) -> String {
    format!(
        "Table 1 — {}",
        tpch_stats_table(cfg, Topology::nehalem_ex(), true)
    )
}

/// Table 2: time and scalability on Sandy Bridge EP.
pub fn table2(cfg: &ExpConfig) -> String {
    format!(
        "Table 2 — {}",
        tpch_stats_table(cfg, Topology::sandy_bridge_ep(), false)
    )
}

// --------------------------------------------------------------- 5.1

/// Section 5.1's summary comparison (geo mean / sum / scalability).
pub fn summary(cfg: &ExpConfig) -> String {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let db = cfg.tpch_db(&topo);
    let mut t = Table::new(&["system", "geo.mean", "sum", "scal."]);
    for v in [SystemVariant::full(), SystemVariant::volcano()] {
        let vdb = db.with_placement(v.placement, &topo);
        let mut times = Vec::new();
        let mut scals = Vec::new();
        for q in 1..=22 {
            let t64 = run_query(&env, &vdb, q, v, cfg.workers, cfg.morsel_size).seconds();
            let t1 = run_query(&env, &vdb, q, v, 1, cfg.morsel_size).seconds();
            times.push(t64);
            scals.push(t1 / t64);
        }
        t.row(vec![
            v.name.to_owned(),
            secs(geo_mean(&times)),
            secs(times.iter().sum::<f64>()),
            format!("{:.1}x", scals.iter().sum::<f64>() / scals.len() as f64),
        ]);
    }
    format!(
        "Section 5.1 summary — TPC-H (SF {}), {} threads\n{}",
        cfg.scale,
        cfg.workers,
        t.render()
    )
}

// --------------------------------------------------------------- 5.3

/// Section 5.3: NUMA-aware placement vs. "OS default" and "interleaved",
/// on both topologies (geo mean and max speedup over the alternative).
pub fn numa_placement(cfg: &ExpConfig) -> String {
    let mut out = String::from("Section 5.3 — speedup of NUMA-aware placement over alternatives\n");
    let queries: Vec<usize> = if cfg.quick {
        vec![1, 3, 5, 6, 9, 13, 18]
    } else {
        (1..=22).collect()
    };
    for topo in [Topology::nehalem_ex(), Topology::sandy_bridge_ep()] {
        let env = ExecEnv::new(topo.clone());
        let db = cfg.tpch_db(&topo);
        // Baseline: NUMA-aware placement and scheduling.
        let aware: Vec<f64> = queries
            .iter()
            .map(|&q| {
                run_query(
                    &env,
                    &db,
                    q,
                    SystemVariant::full(),
                    cfg.workers,
                    cfg.morsel_size,
                )
                .seconds()
            })
            .collect();
        // "OS default": everything on node 0 (paper footnote 6).
        let os_db = db.with_placement(Placement::OsDefault, &topo);
        let os: Vec<f64> = queries
            .iter()
            .map(|&q| {
                run_query(
                    &env,
                    &os_db,
                    q,
                    SystemVariant::full(),
                    cfg.workers,
                    cfg.morsel_size,
                )
                .seconds()
            })
            .collect();
        // "Interleaved": data spread over all nodes page-wise; modelled by
        // spread partitions + locality-blind scheduling (uniform ~75%
        // remote on 4 sockets), see DESIGN.md.
        let il_variant = SystemVariant {
            numa_aware_scheduling: false,
            ..SystemVariant::full()
        };
        let il: Vec<f64> = queries
            .iter()
            .map(|&q| run_query(&env, &db, q, il_variant, cfg.workers, cfg.morsel_size).seconds())
            .collect();

        let speedups = |alt: &[f64]| -> (f64, f64) {
            let r: Vec<f64> = alt.iter().zip(&aware).map(|(a, b)| a / b).collect();
            (geo_mean(&r), r.iter().cloned().fold(0.0, f64::max))
        };
        let (os_geo, os_max) = speedups(&os);
        let (il_geo, il_max) = speedups(&il);
        let mut t = Table::new(&["alternative", "geo.mean", "max"]);
        t.row(vec![
            "OS default".into(),
            format!("{os_geo:.2}x"),
            format!("{os_max:.2}x"),
        ]);
        t.row(vec![
            "interleaved".into(),
            format!("{il_geo:.2}x"),
            format!("{il_max:.2}x"),
        ]);
        out.push_str(&format!("\n{}:\n{}", topo.name(), t.render()));
    }
    out
}

/// Section 5.3's bandwidth/latency micro-benchmark (local vs. 25/75 mix).
pub fn numa_micro() -> String {
    let mut t = Table::new(&["system", "bw local", "bw mix", "lat local", "lat mix"]);
    for (name, m, two_hop_topology) in [
        ("Nehalem EX", CostModel::nehalem_ex(), false),
        ("Sandy Bridge EP", CostModel::sandy_bridge_ep(), true),
    ] {
        let streams_per_node = 8u32;
        let local_agg = 4.0 * f64::from(streams_per_node) * m.stream_rate(0, streams_per_node, 0);
        // Mix: 25% local; remote split across the topology's link structure.
        let (mix_agg, mix_lat) = if two_hop_topology {
            let local = 8.0 * m.stream_rate(0, streams_per_node, 0);
            let one_hop = 16.0 * m.stream_rate(1, streams_per_node, 2);
            let two_hop = 8.0 * m.stream_rate(2, streams_per_node, 2);
            let lat = 0.25 * m.latency(0) + 0.5 * m.latency(1) + 0.25 * m.latency(2);
            (local + one_hop + two_hop, lat)
        } else {
            let local = 8.0 * m.stream_rate(0, streams_per_node, 0);
            let remote = 24.0 * m.stream_rate(1, streams_per_node, 2);
            let lat = 0.25 * m.latency(0) + 0.75 * m.latency(1);
            (local + remote, lat)
        };
        t.row(vec![
            name.to_owned(),
            format!("{local_agg:.0} GB/s"),
            format!("{mix_agg:.0} GB/s"),
            format!("{:.0} ns", m.latency(0)),
            format!("{mix_lat:.0} ns"),
        ]);
    }
    format!(
        "Section 5.3 micro-benchmark — NUMA-local vs. 25/75 local/remote mix\n{}",
        t.render()
    )
}

// --------------------------------------------------------------- fig 12

/// Figure 12: intra- vs. inter-query parallelism. `s` query streams share
/// all hardware threads; throughput in queries per second of virtual time.
///
/// Stream semantics are approximated round-wise: in each round the next
/// query of every stream runs concurrently; rounds are sequential (the
/// paper's streams are sequential within themselves).
pub fn fig12(cfg: &ExpConfig) -> String {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let db = cfg.tpch_db(&topo);
    // A representative mix of scan-, join-, and aggregation-heavy
    // queries; every stream cycles through a rotation of it. Using all 22
    // queries per stream only rescales the totals.
    let queries: Vec<usize> = if cfg.quick {
        vec![1, 3, 6, 13]
    } else {
        vec![1, 3, 5, 6, 9, 12, 13, 18]
    };
    let stream_counts: Vec<usize> = if cfg.quick {
        vec![1, 4, 16, 64]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    };
    let mut t = Table::new(&["streams", "queries", "time", "throughput [q/s]"]);
    for &s in &stream_counts {
        let mut total_time = 0.0;
        let mut total_queries = 0usize;
        for round in 0..queries.len() {
            let config = DispatchConfig::new(cfg.workers).with_morsel_size(cfg.morsel_size);
            let mut sim = SimExecutor::new(env.clone(), config);
            for stream in 0..s {
                // Each stream runs its own permutation: rotate by stream id.
                let qq = queries[(round + stream) % queries.len()];
                let (spec, _result) = compile_query(
                    format!("s{stream}-q{qq}"),
                    tpch_queries::query(&db, qq),
                    SystemVariant::full(),
                );
                sim.submit(spec);
            }
            let report = sim.run();
            total_time += report.makespan_secs();
            total_queries += s;
        }
        t.row(vec![
            s.to_string(),
            total_queries.to_string(),
            secs(total_time),
            format!("{:.0}", total_queries as f64 / total_time),
        ]);
    }
    format!(
        "Figure 12 — throughput vs. number of query streams ({} threads total)\n{}",
        cfg.workers,
        t.render()
    )
}

// --------------------------------------------------------------- fig 13

/// Figure 13: morsel-wise elasticity trace. Q13 starts on all workers;
/// Q14 arrives mid-flight, borrows workers, finishes, and Q13 resumes.
pub fn fig13(cfg: &ExpConfig) -> String {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let db = cfg.tpch_db(&topo);
    let workers = 4;
    // Solo runtime of Q13 to time the arrival.
    let solo = run_sim(
        &env,
        "Q13",
        tpch_queries::query(&db, 13),
        SystemVariant::full(),
        workers,
        cfg.morsel_size,
    )
    .seconds();
    let arrival_ns = (solo * 0.3 * 1e9) as u64;

    let config = DispatchConfig::new(workers).with_morsel_size(cfg.morsel_size);
    let mut sim = SimExecutor::new(env, config);
    sim.enable_trace();
    let (spec13, _r13) = compile_query("q13", tpch_queries::query(&db, 13), SystemVariant::full());
    let (spec14, _r14) = compile_query("q14", tpch_queries::query(&db, 14), SystemVariant::full());
    sim.submit(spec13);
    sim.submit_at(arrival_ns, spec14);
    let report = sim.run();
    let q13 = report.handle("q13").stats();
    let q14 = report.handle("q14").stats();
    format!(
        "Figure 13 — elasticity trace (4 workers; q14 arrives at t={:.3}ms)\n\
         q13: {:.3}ms..{:.3}ms   q14: {:.3}ms..{:.3}ms\n{}",
        arrival_ns as f64 / 1e6,
        q13.started_ns as f64 / 1e6,
        q13.finished_ns as f64 / 1e6,
        q14.started_ns as f64 / 1e6,
        q14.finished_ns as f64 / 1e6,
        render_ascii(&report.trace, workers, 100)
    )
}

// ------------------------------------------------------------ sec 5.4

/// Section 5.4: dynamic morsel assignment vs. static division under
/// interference from an unrelated process occupying one core.
pub fn interference(cfg: &ExpConfig) -> String {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let db = cfg.tpch_db(&topo);
    let workers = 32;
    // Fine-grained morsels so that load balancing operates at the paper's
    // granularity (thousands of morsels per query).
    let morsel = 256;
    let run = |mode: SchedulingMode, slow: bool| -> f64 {
        let config = DispatchConfig::new(workers)
            .with_mode(mode)
            .with_morsel_size(morsel);
        let mut sim = SimExecutor::new(env.clone(), config);
        if slow {
            sim.set_cpu_slowdown(0, 2.0);
        }
        let (spec, _r) = compile_query("q1", tpch_queries::query(&db, 1), SystemVariant::full());
        sim.submit(spec);
        sim.run().handle("q1").stats().elapsed_secs()
    };
    let dyn_base = run(SchedulingMode::NumaAware, false);
    let dyn_slow = run(SchedulingMode::NumaAware, true);
    let st_base = run(
        SchedulingMode::Static {
            workers,
            align: true,
        },
        false,
    );
    let st_slow = run(
        SchedulingMode::Static {
            workers,
            align: true,
        },
        true,
    );
    let mut t = Table::new(&["division", "clean", "interfered", "slowdown"]);
    t.row(vec![
        "dynamic (morsel)".into(),
        secs(dyn_base),
        secs(dyn_slow),
        format!("{:+.1}%", (dyn_slow / dyn_base - 1.0) * 100.0),
    ]);
    t.row(vec![
        "static (n/t)".into(),
        secs(st_base),
        secs(st_slow),
        format!("{:+.1}%", (st_slow / st_base - 1.0) * 100.0),
    ]);
    format!(
        "Section 5.4 — interference: one core slowed 2x ({workers} threads, TPC-H Q1)\n{}",
        t.render()
    )
}

// -------------------------------------------------------------- table 3

/// Table 3: Star Schema Benchmark statistics on Nehalem EX.
pub fn table3(cfg: &ExpConfig) -> String {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let db = generate_ssb(
        SsbConfig {
            scale: cfg.ssb_scale,
            ..Default::default()
        },
        &topo,
    );
    let link_bw_gbps = env.cost().link_bw;
    let mut t = Table::new(&[
        "#", "time[s]", "scal.", "rd GB/s", "wr GB/s", "remote%", "QPI%",
    ]);
    for id in ssb_queries::IDS {
        let o64 = run_sim(
            &env,
            id,
            ssb_queries::query(&db, id),
            SystemVariant::full(),
            cfg.workers,
            cfg.morsel_size,
        );
        let o1 = run_sim(
            &env,
            id,
            ssb_queries::query(&db, id),
            SystemVariant::full(),
            1,
            cfg.morsel_size,
        );
        let time = o64.seconds();
        let qpi = o64.traffic.max_link_bytes() as f64 / time.max(1e-12) / 1e9 / link_bw_gbps;
        t.row(vec![
            id.to_owned(),
            secs(time),
            ratio(o1.seconds() / time),
            gbps(o64.traffic.total_read(), time),
            gbps(o64.traffic.total_write(), time),
            pct(o64.traffic.remote_fraction()),
            pct(qpi.min(1.0)),
        ]);
    }
    format!(
        "Table 3 — Star Schema Benchmark (SF {}), {} threads, Nehalem EX\n{}",
        cfg.ssb_scale,
        cfg.workers,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 0.001,
            ssb_scale: 0.001,
            workers: 16,
            morsel_size: 2048,
            quick: true,
            ..Default::default()
        }
    }

    #[test]
    fn fig6_runs_and_small_morsels_are_slower() {
        let out = fig6(&tiny());
        assert!(out.contains("morsel size"));
        // Parse the times back out: the 100-tuple row must be slower than
        // the 10k row.
        let parse_time = |t: &str| -> Option<f64> {
            if let Some(v) = t.strip_suffix("ms") {
                v.parse::<f64>().ok().map(|v| v / 1e3)
            } else if let Some(v) = t.strip_suffix("us") {
                v.parse::<f64>().ok().map(|v| v / 1e6)
            } else {
                t.strip_suffix('s').and_then(|v| v.parse::<f64>().ok())
            }
        };
        let times: Vec<f64> = out
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric))
            .filter_map(|l| l.split_whitespace().nth(1).and_then(&parse_time))
            .collect();
        assert!(times.len() >= 4, "could not parse times from:\n{out}");
        assert!(times[0] > times[2], "tiny morsels not slower: {times:?}");
    }

    #[test]
    fn numa_micro_shapes() {
        let out = numa_micro();
        assert!(out.contains("Nehalem"));
        assert!(out.contains("Sandy Bridge"));
    }

    #[test]
    fn interference_shape() {
        let out = interference(&tiny());
        assert!(out.contains("dynamic"));
        assert!(out.contains("static"));
    }

    #[test]
    fn fig13_trace_shows_both_queries() {
        let out = fig13(&tiny());
        assert!(out.contains("q13"));
        assert!(out.contains("q14"));
        assert!(out.contains("legend"));
    }
}
