//! Tiny text-table reporting helpers.

/// Geometric mean of positive values.
pub fn geo_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (s / values.len() as f64).exp()
}

/// A fixed-width text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "table arity mismatch");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format a duration in seconds adaptively (laptop-scale runs are far
/// shorter than the paper's SF-100 numbers).
pub fn secs(v: f64) -> String {
    if v >= 0.1 {
        format!("{v:.3}s")
    } else if v >= 1e-4 {
        format!("{:.3}ms", v * 1e3)
    } else {
        format!("{:.1}us", v * 1e6)
    }
}

/// Format a ratio like "31.4x".
pub fn ratio(v: f64) -> String {
    format!("{v:.1}x")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.0}", v * 100.0)
}

/// Format GB/s.
pub fn gbps(bytes: u64, secs: f64) -> String {
    if secs <= 0.0 {
        return "-".into();
    }
    format!("{:.1}", bytes as f64 / secs / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basic() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((geo_mean(&[3.0]) - 3.0).abs() < 1e-9);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    fn table_render() {
        let mut t = Table::new(&["q", "time"]);
        t.row(vec!["1".into(), "0.123".into()]);
        let s = t.render();
        assert!(s.contains("q"));
        assert!(s.contains("0.123"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1.23456), "1.235s");
        assert_eq!(secs(0.00123), "1.230ms");
        assert_eq!(secs(0.00000123), "1.2us");
        assert_eq!(ratio(31.42), "31.4x");
        assert_eq!(pct(0.4), "40");
        assert_eq!(gbps(2_000_000_000, 1.0), "2.0");
        assert_eq!(gbps(1, 0.0), "-");
    }
}
