//! Machine-readable bench output (`repro … --json`).
//!
//! Experiments already print machine-parseable `RESULT key=value …`
//! lines for CI's `awk` assertions; this module re-packages those lines
//! into one JSON document, `BENCH_observability.json`, so downstream
//! tooling gets structured numbers without scraping tables. JSON is
//! hand-rolled — the workspace vendors no serde.

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One `key=value` pair rendered as a JSON member: numeric values stay
/// numbers (JSON forbids `NaN`/`inf`, which fall back to strings).
fn member(key: &str, value: &str) -> String {
    match value.parse::<f64>() {
        Ok(v) if v.is_finite() => format!("\"{}\":{}", escape(key), value),
        _ => format!("\"{}\":\"{}\"", escape(key), escape(value)),
    }
}

/// Parse every `RESULT k=v …` line of one report into a JSON array of
/// objects (one per line, members in line order).
fn results_array(report: &str) -> String {
    let rows: Vec<String> = report
        .lines()
        .filter_map(|l| l.trim().strip_prefix("RESULT "))
        .map(|rest| {
            let members: Vec<String> = rest
                .split_whitespace()
                .filter_map(|kv| kv.split_once('='))
                .map(|(k, v)| member(k, v))
                .collect();
            format!("{{{}}}", members.join(","))
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// Render the whole document: `{"experiments":{name:[rows…],…}}`.
pub fn render_bench_json(entries: &[(String, String)]) -> String {
    let exps: Vec<String> = entries
        .iter()
        .map(|(name, report)| format!("\"{}\":{}", escape(name), results_array(report)))
        .collect();
    format!("{{\"experiments\":{{{}}}}}", exps.join(","))
}

/// Write `BENCH_observability.json` from the run's reports. Returns the
/// path written to.
pub fn write_bench_json(entries: &[(String, String)]) -> std::io::Result<&'static str> {
    const PATH: &str = "BENCH_observability.json";
    std::fs::write(PATH, render_bench_json(entries))?;
    Ok(PATH)
}

/// Same document, caller-chosen path (`repro txn_bench --json` writes
/// `BENCH_txn.json` so write-path numbers don't clobber the
/// observability ones).
pub fn write_bench_json_to(path: &str, entries: &[(String, String)]) -> std::io::Result<()> {
    std::fs::write(path, render_bench_json(entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_lines_become_json_rows() {
        let report = "header\nRESULT mode=plan hits=10 misses=2 hit_rate=0.833 qps=12.5\n\
                      RESULT mode=uncached hits=0 misses=0 hit_rate=0.000 qps=9.1\ntrailer\n";
        let doc = render_bench_json(&[("service_load_zipf".into(), report.into())]);
        assert!(doc.starts_with("{\"experiments\":{\"service_load_zipf\":["));
        assert!(doc.contains("\"mode\":\"plan\""), "{doc}");
        assert!(doc.contains("\"hits\":10"), "{doc}");
        assert!(doc.contains("\"hit_rate\":0.833"), "{doc}");
        // Two RESULT lines, two rows.
        assert_eq!(doc.matches("\"mode\"").count(), 2);
        // Balanced braces/brackets — cheap structural sanity.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn non_numeric_and_special_values_are_quoted() {
        let report = "RESULT mode=a+b ratio=inf note=hello\n";
        let doc = render_bench_json(&[("x".into(), report.into())]);
        assert!(doc.contains("\"mode\":\"a+b\""));
        assert!(
            doc.contains("\"ratio\":\"inf\""),
            "inf is not valid JSON: {doc}"
        );
        assert!(doc.contains("\"note\":\"hello\""));
    }

    #[test]
    fn reports_without_result_lines_yield_empty_arrays() {
        let doc = render_bench_json(&[("fig6".into(), "just a table\n".into())]);
        assert_eq!(doc, "{\"experiments\":{\"fig6\":[]}}");
    }
}
