//! Planner-vs-oracle comparison (`repro plan_quality`) and the
//! `repro explain` / `repro sql` commands.
//!
//! For every query that exists in both hand-authored and logical form,
//! `plan_quality` lowers the logical plan with the cost-based planner and
//! compares it against the hand plan on equal footing: both are priced by
//! the same estimator + NUMA cost model (simulated cost) and both are run
//! in the virtual-time executor (simulated wall clock), across scale
//! factors. `explain` prints one query's chosen join order and
//! per-operator estimated vs. actual cardinalities, optd-demo style.

use morsel_core::ExecEnv;
use morsel_exec::plan::Plan;
use morsel_exec::SystemVariant;
use morsel_numa::Topology;
use morsel_planner::{explain, plan_cost, Planner};
use morsel_queries::{format_rows, run_sim, ssb_logical, ssb_queries, tpch_logical, tpch_queries};
use morsel_storage::Catalog;

use crate::experiments::ExpConfig;
use crate::report::{ratio, secs, Table};

/// Queries compared at each scale factor: the TPC-H logical slice plus
/// three SSB representatives per join-depth class.
const SSB_PICKS: [&str; 4] = ["2.1", "3.1", "4.1", "4.3"];

struct Pair {
    name: String,
    oracle: Plan,
    lowered: Plan,
    order: String,
}

fn pairs(topo: &Topology, scale: f64, ssb_scale: f64) -> Vec<Pair> {
    let planner = Planner::new(topo);
    let tpch = morsel_datagen::generate_tpch(morsel_datagen::TpchConfig::scaled(scale), topo);
    let ssb = morsel_datagen::generate_ssb(morsel_datagen::SsbConfig::scaled(ssb_scale), topo);
    let mut out = Vec::new();
    for &q in &tpch_logical::IDS {
        let logical = tpch_logical::query(&tpch, q).unwrap();
        let (lowered, report) = planner.plan_with_report(&logical);
        out.push(Pair {
            name: format!("Q{q}"),
            oracle: tpch_queries::query(&tpch, q),
            lowered,
            order: widest_order(&report),
        });
    }
    for id in SSB_PICKS {
        let (lowered, report) = planner.plan_with_report(&ssb_logical::query(&ssb, id));
        out.push(Pair {
            name: format!("SSB{id}"),
            oracle: ssb_queries::query(&ssb, id),
            lowered,
            order: widest_order(&report),
        });
    }
    out
}

fn widest_order(report: &morsel_planner::PlanReport) -> String {
    report
        .blocks
        .iter()
        .max_by_key(|b| b.leaves.len())
        .map(|b| b.order.clone())
        .unwrap_or_else(|| "-".to_owned())
}

/// The `plan_quality` experiment.
pub fn plan_quality(cfg: &ExpConfig) -> String {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let planner = Planner::new(&topo);
    // Sweep both workloads' scale factors together (quarter scale, then
    // the configured scale), honoring --scale and --ssb-scale.
    let scales: Vec<(f64, f64)> = if cfg.quick {
        vec![(cfg.scale, cfg.ssb_scale)]
    } else {
        vec![
            (cfg.scale / 4.0, cfg.ssb_scale / 4.0),
            (cfg.scale, cfg.ssb_scale),
        ]
    };
    let mut out = String::from(
        "plan_quality: cost-based planner vs hand-authored plans\n\
         (cost = simulated virtual ns under the shared NUMA model; time = \n\
         virtual-time executor seconds, 16 workers)\n\n",
    );
    for &(sf, ssb_sf) in &scales {
        let mut table = Table::new(&[
            "query",
            "cost hand",
            "cost plan",
            "ratio",
            "time hand",
            "time plan",
            "speedup",
        ]);
        let mut wins = 0usize;
        let mut total = 0usize;
        let mut orders: Vec<(String, String)> = Vec::new();
        for p in pairs(&topo, sf, ssb_sf) {
            let ch = plan_cost(&planner.params, &planner.estimator, &p.oracle);
            let cp = plan_cost(&planner.params, &planner.estimator, &p.lowered);
            let th = run_sim(
                &env,
                &format!("{}-hand", p.name),
                p.oracle,
                SystemVariant::full(),
                16,
                cfg.morsel_size,
            )
            .seconds();
            let tp = run_sim(
                &env,
                &format!("{}-plan", p.name),
                p.lowered,
                SystemVariant::full(),
                16,
                cfg.morsel_size,
            )
            .seconds();
            total += 1;
            if cp <= ch * 1.000_001 {
                wins += 1;
            }
            if p.order != "-" {
                orders.push((p.name.clone(), p.order.clone()));
            }
            table.row(vec![
                p.name.clone(),
                format!("{:.2e}", ch),
                format!("{:.2e}", cp),
                ratio(ch / cp),
                secs(th),
                secs(tp),
                ratio(th / tp),
            ]);
        }
        out.push_str(&format!("TPC-H SF {sf} / SSB SF {ssb_sf}\n"));
        out.push_str(&table.render());
        out.push_str(&format!(
            "planner cost <= hand cost on {wins}/{total} queries\n"
        ));
        if (sf, ssb_sf) == *scales.last().unwrap() {
            out.push_str("\nchosen join orders (probe side first):\n");
            for (name, order) in &orders {
                out.push_str(&format!("  {name:>7}: {order}\n"));
            }
        }
        out.push('\n');
    }
    out
}

/// The `repro explain <query>` command. Accepts `q5`/`5` (TPC-H) or
/// `ssb2.1`/`2.1` (SSB).
pub fn explain_query(cfg: &ExpConfig, query: &str) -> String {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let planner = Planner::new(&topo);
    let spec = query.trim().to_lowercase();

    let (name, scale, lowered, report) = if let Some(id) = spec
        .strip_prefix("ssb")
        .map(str::to_owned)
        .or_else(|| spec.contains('.').then(|| spec.clone()))
    {
        let db =
            morsel_datagen::generate_ssb(morsel_datagen::SsbConfig::scaled(cfg.ssb_scale), &topo);
        let (lowered, report) = planner.plan_with_report(&ssb_logical::query(&db, &id));
        (format!("SSB Q{id}"), cfg.ssb_scale, lowered, report)
    } else {
        let n: usize = spec
            .strip_prefix('q')
            .unwrap_or(&spec)
            .parse()
            .unwrap_or_else(|_| panic!("unrecognized query {query:?}; try q5 or ssb2.1"));
        let db =
            morsel_datagen::generate_tpch(morsel_datagen::TpchConfig::scaled(cfg.scale), &topo);
        let logical = tpch_logical::query(&db, n).unwrap_or_else(|| {
            panic!(
                "TPC-H Q{n} has no logical form yet (available: {:?})",
                tpch_logical::IDS
            )
        });
        let (lowered, report) = planner.plan_with_report(&logical);
        (format!("TPC-H Q{n}"), cfg.scale, lowered, report)
    };

    render_explain(&env, &planner, cfg, &name, scale, &lowered, &report)
}

/// Shared explain rendering: chosen join orders plus estimated vs.
/// measured per-operator cardinalities (every subtree is executed).
fn render_explain(
    env: &ExecEnv,
    planner: &Planner,
    cfg: &ExpConfig,
    name: &str,
    scale: f64,
    lowered: &Plan,
    report: &morsel_planner::PlanReport,
) -> String {
    let mut out = format!("explain {name} (scale {scale}, workers 16)\n\n");
    for (i, b) in report.blocks.iter().enumerate() {
        out.push_str(&format!(
            "join block {}: {} relation(s), estimated block cost {:.2e} ns{}\n  order: {}\n",
            i + 1,
            b.leaves.len(),
            b.cost,
            if b.forced_cross {
                " (cross product forced)"
            } else {
                ""
            },
            b.order
        ));
    }

    // Estimated vs actual from ONE profiled execution: the runtime
    // profile's slots are numbered in explain order (pre-order,
    // probe-first), so `profile.ops[i].rows_out` is line i's actual.
    // Re-executing every subtree survives only as the test oracle
    // (`subtree_actuals`, asserted equal in tests/planner_equivalence.rs).
    let lines = explain::collect(lowered, &planner.estimator);
    let run = run_sim(
        env,
        "explain-analyze",
        lowered.clone(),
        SystemVariant::full(),
        16,
        cfg.morsel_size,
    );
    let profile = run
        .profile
        .expect("SystemVariant::full() compiles with profiling on");
    assert_eq!(
        profile.ops.len(),
        lines.len(),
        "profile slots diverge from explain lines"
    );
    let actuals: Vec<usize> = profile.ops.iter().map(|o| o.rows_out as usize).collect();
    out.push_str("\noperators (estimated vs actual, one profiled execution):\n");
    out.push_str(&explain::render(&lines, Some(&actuals)));
    if cfg.analyze {
        out.push_str("\nruntime profile (per operator, summed over workers):\n");
        out.push_str(&profile.render());
    }
    out
}

/// The old est-vs-actual oracle: run every explain line's subtree in
/// isolation and count its result rows. Quadratic in plan depth — kept
/// *only* so tests can assert the single-execution profile agrees with
/// it on every fixture; the CLI paths never call this.
pub fn subtree_actuals(
    env: &ExecEnv,
    cfg: &ExpConfig,
    lines: &[explain::ExplainLine],
) -> Vec<usize> {
    lines
        .iter()
        .enumerate()
        .map(|(i, line)| {
            run_sim(
                env,
                &format!("explain-oracle-{i}"),
                line.subplan.clone(),
                SystemVariant::full(),
                16,
                cfg.morsel_size,
            )
            .result
            .rows()
        })
        .collect()
}

/// Which generated database `repro sql` binds against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlDb {
    Tpch,
    Ssb,
}

/// Generate the database `repro sql` binds against and export its
/// catalog (plus the effective scale factor). Generation dominates the
/// cost of a `sql` invocation — callers issuing several statements (the
/// CLI loops, CI's chained smoke) build this once and reuse it.
pub fn sql_catalog(cfg: &ExpConfig, db: SqlDb) -> (Catalog, f64) {
    let topo = Topology::nehalem_ex();
    match db {
        SqlDb::Tpch => (
            morsel_datagen::generate_tpch(morsel_datagen::TpchConfig::scaled(cfg.scale), &topo)
                .catalog(),
            cfg.scale,
        ),
        SqlDb::Ssb => (
            morsel_datagen::generate_ssb(morsel_datagen::SsbConfig::scaled(cfg.ssb_scale), &topo)
                .catalog(),
            cfg.ssb_scale,
        ),
    }
}

/// The `repro sql "<text>"` command: lex → parse → bind → plan → execute
/// against the generated TPC-H or SSB database. Errors return the
/// rendered caret diagnostic so the CLI (and CI) can fail loudly.
/// `repeat` > 1 re-executes through the session plan cache, reporting
/// each run's cache disposition (the second run reports a hit).
pub fn run_sql(cfg: &ExpConfig, db: SqlDb, sql: &str, repeat: usize) -> Result<String, String> {
    let (catalog, scale) = sql_catalog(cfg, db);
    run_sql_in(cfg, db, &catalog, scale, sql, repeat)
}

/// [`run_sql`] against a prebuilt catalog.
pub fn run_sql_in(
    cfg: &ExpConfig,
    db: SqlDb,
    catalog: &Catalog,
    scale: f64,
    sql: &str,
    repeat: usize,
) -> Result<String, String> {
    assert!(repeat > 0, "--repeat needs at least one run");
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let session = morsel_service::Session::builder()
        .catalog(catalog.clone())
        .topology(&topo)
        .build();

    let mut out = format!(
        "sql ({db:?} scale {scale}, workers 16)\n> {}\n\n",
        sql.trim()
    );
    for run in 1..=repeat {
        let plan_started = std::time::Instant::now();
        let (handle, disposition) = session.resolve(sql).map_err(|e| e.render(sql))?;
        let plan_wall = plan_started.elapsed();
        let started = std::time::Instant::now();
        let outcome = run_sim(
            &env,
            "sql",
            handle.plan.clone(),
            SystemVariant::full(),
            16,
            cfg.morsel_size,
        );
        let wall = started.elapsed();

        if run == 1 {
            for b in &handle.report.blocks {
                out.push_str(&format!("join order: {}\n", b.order));
            }
            if cfg.analyze {
                let planner = Planner::new(&topo);
                let lines = explain::collect(&handle.plan, &planner.estimator);
                let profile = outcome
                    .profile
                    .as_ref()
                    .expect("SystemVariant::full() compiles with profiling on");
                let actuals: Vec<usize> = profile.ops.iter().map(|o| o.rows_out as usize).collect();
                out.push_str("operators (estimated vs actual, one profiled execution):\n");
                out.push_str(&explain::render(&lines, Some(&actuals)));
                out.push_str("runtime profile (per operator, summed over workers):\n");
                out.push_str(&profile.render());
            }
            out.push_str(&format!("columns: {}\n", handle.schema.names().join(" | ")));
            let rows = outcome.result.rows();
            for line in format_rows(&outcome.result, 20) {
                out.push_str(&format!("  {line}\n"));
            }
            if rows > 20 {
                out.push_str(&format!("  ... ({} more rows)\n", rows - 20));
            }
            out.push_str(&format!(
                "{rows} row(s); {:.1} ms simulated, {:.1} ms wall\n",
                outcome.seconds() * 1e3,
                wall.as_secs_f64() * 1e3,
            ));
        }
        if repeat > 1 {
            out.push_str(&format!(
                "run {run}: plan cache {} ({:.1} µs parse+plan), {:.1} ms simulated, \
                 {:.1} ms wall\n",
                match disposition {
                    morsel_service::CacheDisposition::Hit => "hit",
                    morsel_service::CacheDisposition::Miss => "miss",
                    morsel_service::CacheDisposition::Bypass => "bypass",
                },
                plan_wall.as_secs_f64() * 1e6,
                outcome.seconds() * 1e3,
                wall.as_secs_f64() * 1e3,
            ));
        }
    }
    if repeat > 1 {
        let stats = session.stats();
        out.push_str(&format!("{stats}\n"));
    }
    Ok(out)
}

/// The `repro explain --sql "<text>"` command.
pub fn explain_sql(cfg: &ExpConfig, db: SqlDb, sql: &str) -> Result<String, String> {
    let (catalog, scale) = sql_catalog(cfg, db);
    explain_sql_in(cfg, &catalog, scale, sql)
}

/// [`explain_sql`] against a prebuilt catalog.
pub fn explain_sql_in(
    cfg: &ExpConfig,
    catalog: &Catalog,
    scale: f64,
    sql: &str,
) -> Result<String, String> {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let planner = Planner::new(&topo);
    let logical = morsel_sql::plan_sql(catalog, sql).map_err(|e| e.render(sql))?;
    let (lowered, report) = planner.plan_with_report(&logical);
    Ok(render_explain(
        &env, &planner, cfg, "sql", scale, &lowered, &report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_reports_join_order_and_cardinalities() {
        let cfg = ExpConfig {
            scale: 0.002,
            ssb_scale: 0.002,
            quick: true,
            ..Default::default()
        };
        let text = explain_query(&cfg, "q5");
        assert!(text.contains("join block 1:"), "{text}");
        assert!(text.contains("⋈"));
        assert!(text.contains("actual="));
        let ssb = explain_query(&cfg, "ssb2.1");
        assert!(ssb.contains("SSB Q2.1"));
    }

    #[test]
    fn run_sql_executes_text_end_to_end() {
        let cfg = ExpConfig {
            scale: 0.002,
            ssb_scale: 0.002,
            quick: true,
            ..Default::default()
        };
        let out = run_sql(
            &cfg,
            SqlDb::Tpch,
            "SELECT l_returnflag, COUNT(*) AS n FROM lineitem \
             GROUP BY l_returnflag ORDER BY l_returnflag",
            1,
        )
        .expect("valid SQL runs");
        assert!(out.contains("columns: l_returnflag | n"), "{out}");
        assert!(out.contains("row(s)"), "{out}");

        let ssb = run_sql(
            &cfg,
            SqlDb::Ssb,
            "SELECT d_year, SUM(lo_revenue) AS revenue FROM lineorder \
             JOIN date ON lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year",
            1,
        )
        .expect("SSB SQL runs");
        assert!(ssb.contains("join order"), "{ssb}");

        let err = run_sql(&cfg, SqlDb::Tpch, "SELECT nope FROM lineitem", 1)
            .expect_err("unknown column must fail");
        assert!(err.contains("unknown column"), "{err}");
        assert!(err.contains('^'), "diagnostic rendered: {err}");
    }

    #[test]
    fn sql_analyze_renders_est_vs_actual_and_profile() {
        let cfg = ExpConfig {
            scale: 0.002,
            ssb_scale: 0.002,
            quick: true,
            analyze: true,
            ..Default::default()
        };
        let out = run_sql(
            &cfg,
            SqlDb::Tpch,
            "SELECT o_orderpriority, COUNT(*) AS n FROM orders, lineitem \
             WHERE o_orderkey = l_orderkey GROUP BY o_orderpriority ORDER BY o_orderpriority",
            1,
        )
        .expect("valid SQL runs under --analyze");
        assert!(out.contains("est="), "{out}");
        assert!(out.contains("actual="), "{out}");
        assert!(out.contains("runtime profile"), "{out}");
        assert!(out.contains("wall="), "{out}");
    }

    #[test]
    fn repeated_sql_reports_a_plan_cache_hit() {
        let cfg = ExpConfig {
            scale: 0.002,
            ssb_scale: 0.002,
            quick: true,
            ..Default::default()
        };
        let out = run_sql(
            &cfg,
            SqlDb::Tpch,
            "SELECT SUM(l_extendedprice) AS total FROM lineitem WHERE l_quantity < 24",
            3,
        )
        .expect("valid SQL runs");
        assert!(out.contains("run 1: plan cache miss"), "{out}");
        assert!(out.contains("run 2: plan cache hit"), "{out}");
        assert!(out.contains("run 3: plan cache hit"), "{out}");
        assert!(out.contains("plan cache: 2 hit / 1 miss"), "{out}");
    }

    #[test]
    fn explain_sql_reports_cardinalities() {
        let cfg = ExpConfig {
            scale: 0.002,
            ssb_scale: 0.002,
            quick: true,
            ..Default::default()
        };
        let out = explain_sql(
            &cfg,
            SqlDb::Tpch,
            "SELECT o_orderpriority, COUNT(*) AS n FROM orders, lineitem \
             WHERE o_orderkey = l_orderkey GROUP BY o_orderpriority ORDER BY o_orderpriority",
        )
        .expect("valid SQL explains");
        assert!(out.contains("join block 1:"), "{out}");
        assert!(out.contains("actual="), "{out}");
    }
}
