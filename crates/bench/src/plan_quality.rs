//! Planner-vs-oracle comparison (`repro plan_quality`) and the
//! `repro explain` command.
//!
//! For every query that exists in both hand-authored and logical form,
//! `plan_quality` lowers the logical plan with the cost-based planner and
//! compares it against the hand plan on equal footing: both are priced by
//! the same estimator + NUMA cost model (simulated cost) and both are run
//! in the virtual-time executor (simulated wall clock), across scale
//! factors. `explain` prints one query's chosen join order and
//! per-operator estimated vs. actual cardinalities, optd-demo style.

use morsel_core::ExecEnv;
use morsel_exec::plan::Plan;
use morsel_exec::SystemVariant;
use morsel_numa::Topology;
use morsel_planner::{explain, plan_cost, Planner};
use morsel_queries::{run_sim, ssb_logical, ssb_queries, tpch_logical, tpch_queries};

use crate::experiments::ExpConfig;
use crate::report::{ratio, secs, Table};

/// Queries compared at each scale factor: the TPC-H logical slice plus
/// three SSB representatives per join-depth class.
const SSB_PICKS: [&str; 4] = ["2.1", "3.1", "4.1", "4.3"];

struct Pair {
    name: String,
    oracle: Plan,
    lowered: Plan,
    order: String,
}

fn pairs(topo: &Topology, scale: f64, ssb_scale: f64) -> Vec<Pair> {
    let planner = Planner::new(topo);
    let tpch = morsel_datagen::generate_tpch(morsel_datagen::TpchConfig::scaled(scale), topo);
    let ssb = morsel_datagen::generate_ssb(morsel_datagen::SsbConfig::scaled(ssb_scale), topo);
    let mut out = Vec::new();
    for &q in &tpch_logical::IDS {
        let logical = tpch_logical::query(&tpch, q).unwrap();
        let (lowered, report) = planner.plan_with_report(&logical);
        out.push(Pair {
            name: format!("Q{q}"),
            oracle: tpch_queries::query(&tpch, q),
            lowered,
            order: widest_order(&report),
        });
    }
    for id in SSB_PICKS {
        let (lowered, report) = planner.plan_with_report(&ssb_logical::query(&ssb, id));
        out.push(Pair {
            name: format!("SSB{id}"),
            oracle: ssb_queries::query(&ssb, id),
            lowered,
            order: widest_order(&report),
        });
    }
    out
}

fn widest_order(report: &morsel_planner::PlanReport) -> String {
    report
        .blocks
        .iter()
        .max_by_key(|b| b.leaves.len())
        .map(|b| b.order.clone())
        .unwrap_or_else(|| "-".to_owned())
}

/// The `plan_quality` experiment.
pub fn plan_quality(cfg: &ExpConfig) -> String {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let planner = Planner::new(&topo);
    // Sweep both workloads' scale factors together (quarter scale, then
    // the configured scale), honoring --scale and --ssb-scale.
    let scales: Vec<(f64, f64)> = if cfg.quick {
        vec![(cfg.scale, cfg.ssb_scale)]
    } else {
        vec![
            (cfg.scale / 4.0, cfg.ssb_scale / 4.0),
            (cfg.scale, cfg.ssb_scale),
        ]
    };
    let mut out = String::from(
        "plan_quality: cost-based planner vs hand-authored plans\n\
         (cost = simulated virtual ns under the shared NUMA model; time = \n\
         virtual-time executor seconds, 16 workers)\n\n",
    );
    for &(sf, ssb_sf) in &scales {
        let mut table = Table::new(&[
            "query",
            "cost hand",
            "cost plan",
            "ratio",
            "time hand",
            "time plan",
            "speedup",
        ]);
        let mut wins = 0usize;
        let mut total = 0usize;
        let mut orders: Vec<(String, String)> = Vec::new();
        for p in pairs(&topo, sf, ssb_sf) {
            let ch = plan_cost(&planner.params, &planner.estimator, &p.oracle);
            let cp = plan_cost(&planner.params, &planner.estimator, &p.lowered);
            let th = run_sim(
                &env,
                &format!("{}-hand", p.name),
                p.oracle,
                SystemVariant::full(),
                16,
                cfg.morsel_size,
            )
            .seconds();
            let tp = run_sim(
                &env,
                &format!("{}-plan", p.name),
                p.lowered,
                SystemVariant::full(),
                16,
                cfg.morsel_size,
            )
            .seconds();
            total += 1;
            if cp <= ch * 1.000_001 {
                wins += 1;
            }
            if p.order != "-" {
                orders.push((p.name.clone(), p.order.clone()));
            }
            table.row(vec![
                p.name.clone(),
                format!("{:.2e}", ch),
                format!("{:.2e}", cp),
                ratio(ch / cp),
                secs(th),
                secs(tp),
                ratio(th / tp),
            ]);
        }
        out.push_str(&format!("TPC-H SF {sf} / SSB SF {ssb_sf}\n"));
        out.push_str(&table.render());
        out.push_str(&format!(
            "planner cost <= hand cost on {wins}/{total} queries\n"
        ));
        if (sf, ssb_sf) == *scales.last().unwrap() {
            out.push_str("\nchosen join orders (probe side first):\n");
            for (name, order) in &orders {
                out.push_str(&format!("  {name:>7}: {order}\n"));
            }
        }
        out.push('\n');
    }
    out
}

/// The `repro explain <query>` command. Accepts `q5`/`5` (TPC-H) or
/// `ssb2.1`/`2.1` (SSB).
pub fn explain_query(cfg: &ExpConfig, query: &str) -> String {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let planner = Planner::new(&topo);
    let spec = query.trim().to_lowercase();

    let (name, scale, lowered, report) = if let Some(id) = spec
        .strip_prefix("ssb")
        .map(str::to_owned)
        .or_else(|| spec.contains('.').then(|| spec.clone()))
    {
        let db =
            morsel_datagen::generate_ssb(morsel_datagen::SsbConfig::scaled(cfg.ssb_scale), &topo);
        let (lowered, report) = planner.plan_with_report(&ssb_logical::query(&db, &id));
        (format!("SSB Q{id}"), cfg.ssb_scale, lowered, report)
    } else {
        let n: usize = spec
            .strip_prefix('q')
            .unwrap_or(&spec)
            .parse()
            .unwrap_or_else(|_| panic!("unrecognized query {query:?}; try q5 or ssb2.1"));
        let db =
            morsel_datagen::generate_tpch(morsel_datagen::TpchConfig::scaled(cfg.scale), &topo);
        let logical = tpch_logical::query(&db, n).unwrap_or_else(|| {
            panic!(
                "TPC-H Q{n} has no logical form yet (available: {:?})",
                tpch_logical::IDS
            )
        });
        let (lowered, report) = planner.plan_with_report(&logical);
        (format!("TPC-H Q{n}"), cfg.scale, lowered, report)
    };

    let mut out = format!("explain {name} (scale {scale}, workers 16)\n\n");
    for (i, b) in report.blocks.iter().enumerate() {
        out.push_str(&format!(
            "join block {}: {} relation(s), estimated block cost {:.2e} ns{}\n  order: {}\n",
            i + 1,
            b.leaves.len(),
            b.cost,
            if b.forced_cross {
                " (cross product forced)"
            } else {
                ""
            },
            b.order
        ));
    }

    // Estimated vs actual: run every operator's subtree and count rows.
    let lines = explain::collect(&lowered, &planner.estimator);
    let actuals: Vec<usize> = lines
        .iter()
        .enumerate()
        .map(|(i, line)| {
            run_sim(
                &env,
                &format!("explain-{i}"),
                line.subplan.clone(),
                SystemVariant::full(),
                16,
                cfg.morsel_size,
            )
            .result
            .rows()
        })
        .collect();
    out.push_str("\noperators (estimated vs measured cardinality):\n");
    out.push_str(&explain::render(&lines, Some(&actuals)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_reports_join_order_and_cardinalities() {
        let cfg = ExpConfig {
            scale: 0.002,
            ssb_scale: 0.002,
            quick: true,
            ..Default::default()
        };
        let text = explain_query(&cfg, "q5");
        assert!(text.contains("join block 1:"), "{text}");
        assert!(text.contains("⋈"));
        assert!(text.contains("actual="));
        let ssb = explain_query(&cfg, "ssb2.1");
        assert!(ssb.contains("SSB Q2.1"));
    }
}
