//! # morsel-bench
//!
//! The experiment harness: one function per table/figure of the paper's
//! evaluation (Section 5), each printing the same rows/series the paper
//! reports, plus the [`service_load()`] serving experiment over
//! `morsel-service` and the [`plan_quality()`]/[`explain_query()`]
//! planner comparisons over `morsel-planner`. The `repro` binary
//! dispatches to them; criterion benches under `benches/` cover the
//! wall-clock micro-benchmarks (hash table tagging, morsel cut-out,
//! operator ablations, service throughput, plan search).

pub mod adaptive;
pub mod experiments;
pub mod json;
pub mod observability;
pub mod plan_quality;
pub mod report;
pub mod service_load;
pub mod txn_bench;

pub use adaptive::adaptive;
pub use experiments::*;
pub use json::{render_bench_json, write_bench_json, write_bench_json_to};
pub use observability::{metrics_snapshot, trace_query};
pub use plan_quality::{
    explain_query, explain_sql, explain_sql_in, plan_quality, run_sql, run_sql_in, sql_catalog,
    subtree_actuals, SqlDb,
};
pub use service_load::{service_load, service_load_zipf};
pub use txn_bench::{recovery_smoke, txn_bench, txn_demo};
