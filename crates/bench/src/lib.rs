//! # morsel-bench
//!
//! The experiment harness: one function per table/figure of the paper's
//! evaluation (Section 5), each printing the same rows/series the paper
//! reports. The `repro` binary dispatches to them; criterion benches under
//! `benches/` cover the wall-clock micro-benchmarks (hash table tagging,
//! morsel cut-out, operator ablations).

pub mod experiments;
pub mod report;

pub use experiments::*;
