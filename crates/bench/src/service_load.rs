//! The serving scenario: closed-loop clients driving the query service.
//!
//! Unlike the figure experiments (deterministic virtual time), this one
//! measures the real `morsel-service` front end on OS threads: N
//! closed-loop clients submit a mixed TPC-H/SSB query rotation through
//! admission control, and the report shows completed/cancelled/rejected
//! counts, aggregate throughput, and per-priority latency percentiles per
//! client count. Numbers are wall-clock and host-dependent — the *shape*
//! to look for is throughput saturating (not collapsing) as clients grow
//! past the in-flight bound, with high-priority p50 staying well below
//! low-priority p50.

use std::sync::Arc;
use std::time::Duration;

use morsel_core::{AgingPolicy, ExecEnv, QuerySpec};
use morsel_datagen::{generate_ssb, generate_tpch, SsbConfig, SsbDb, TpchConfig, TpchDb};
use morsel_exec::plan::compile_query;
use morsel_exec::SystemVariant;
use morsel_numa::Topology;
use morsel_queries::{ssb_queries, tpch_queries};
use morsel_service::{fmt_ns, run_closed_loop, QueryRequest, QueryService, ServiceConfig};

use crate::experiments::ExpConfig;
use crate::report::Table;

/// The query rotation every client cycles through: scan-, join-, and
/// aggregation-heavy TPC-H plus two SSB flight patterns.
///
/// Shared with the `service_throughput` criterion bench so experiment
/// and bench measure the same workload.
pub const TPCH_MIX: [usize; 4] = [1, 6, 13, 14];
pub const SSB_MIX: [&str; 2] = ["1.1", "2.1"];

/// Priority assigned to client `c`: every fourth client is an
/// "interactive" priority-8 stream, the rest are priority-1 analytics.
pub fn client_priority(client: usize) -> u32 {
    if client.is_multiple_of(4) {
        8
    } else {
        1
    }
}

/// Compile the `seq`-th query of client `client`'s rotation, priority
/// already applied.
pub fn build_query(tpch: &Arc<TpchDb>, ssb: &Arc<SsbDb>, client: usize, seq: usize) -> QuerySpec {
    let mix_len = TPCH_MIX.len() + SSB_MIX.len();
    let pick = (client + seq) % mix_len;
    let name = format!("c{client}-s{seq}");
    let (spec, _result) = if pick < TPCH_MIX.len() {
        let q = TPCH_MIX[pick];
        compile_query(name, tpch_queries::query(tpch, q), SystemVariant::full())
    } else {
        let id = SSB_MIX[pick - TPCH_MIX.len()];
        compile_query(name, ssb_queries::query(ssb, id), SystemVariant::full())
    };
    spec.with_priority(client_priority(client))
}

/// The `service_load` experiment: mixed TPC-H/SSB traffic from a sweep
/// of closed-loop client counts through the admission-controlled query
/// service.
pub fn service_load(cfg: &ExpConfig) -> String {
    let topo = Topology::laptop();
    let env = ExecEnv::new(topo.clone());
    let tpch = Arc::new(generate_tpch(
        TpchConfig {
            scale: cfg.scale,
            ..Default::default()
        },
        &topo,
    ));
    let ssb = Arc::new(generate_ssb(
        SsbConfig {
            scale: cfg.ssb_scale,
            ..Default::default()
        },
        &topo,
    ));
    // Wall-clock workers: a small pool (this runs on the host, not the
    // simulated 64-thread box).
    let workers = cfg.workers.min(4);
    let client_counts: Vec<usize> = if cfg.quick {
        vec![2, 8]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let per_client = if cfg.quick { 4 } else { 8 };

    let mut t = Table::new(&[
        "clients", "done", "canc", "rej", "fail", "q/s", "p50 lo", "p99 lo", "p50 hi", "p99 hi",
    ]);
    let mut result_lines = String::new();
    for &clients in &client_counts {
        let service = QueryService::start(
            env.clone(),
            ServiceConfig::new(workers)
                .with_morsel_size(cfg.morsel_size.max(2_048))
                .with_max_in_flight(workers.max(2))
                .with_max_queue(4 * clients + 8)
                .with_aging(AgingPolicy::every(
                    Duration::from_millis(5).as_nanos() as u64
                )),
        );
        let tpch = Arc::clone(&tpch);
        let ssb = Arc::clone(&ssb);
        let _reports = run_closed_loop(&service, clients, per_client, move |client, seq| {
            QueryRequest::new(build_query(&tpch, &ssb, client, seq))
        });
        let summary = service.shutdown();
        let quantiles = |prio: u32| -> (String, String) {
            summary
                .priority(prio)
                .map(|(_, h)| (fmt_ns(h.p50()), fmt_ns(h.p99())))
                .unwrap_or_else(|| ("-".into(), "-".into()))
        };
        let raw = |prio: u32| -> (u64, u64) {
            summary
                .priority(prio)
                .map(|(_, h)| (h.p50(), h.p99()))
                .unwrap_or((0, 0))
        };
        let ((lo50_ns, lo99_ns), (hi50_ns, hi99_ns)) = (raw(1), raw(8));
        result_lines.push_str(&format!(
            "RESULT clients={clients} completed={} cancelled={} rejected={} failed={} \
             qps={:.2} p50_lo_ns={lo50_ns} p99_lo_ns={lo99_ns} p50_hi_ns={hi50_ns} \
             p99_hi_ns={hi99_ns}\n",
            summary.completed(),
            summary.cancelled(),
            summary.rejected(),
            summary.failed(),
            summary.throughput_qps(),
        ));
        let (lo50, lo99) = quantiles(1);
        let (hi50, hi99) = quantiles(8);
        t.row(vec![
            clients.to_string(),
            summary.completed().to_string(),
            summary.cancelled().to_string(),
            summary.rejected().to_string(),
            summary.failed().to_string(),
            format!("{:.1}", summary.throughput_qps()),
            lo50,
            lo99,
            hi50,
            hi99,
        ]);
    }
    format!(
        "Service load — closed-loop clients over admission-controlled service \
         ({workers} workers, TPC-H SF {} + SSB SF {}, {per_client} queries/client; \
         lo = priority 1, hi = priority 8)\n{}\n{}",
        cfg.scale,
        cfg.ssb_scale,
        t.render(),
        result_lines
    )
}

// ------------------------------------------------- Zipfian SQL replay

/// Client count for the Zipfian replay (the acceptance bar wants a
/// many-client skewed mix).
const ZIPF_CLIENTS: usize = 8;
/// Queries per client per mode.
const ZIPF_PER_CLIENT: usize = 24;
/// Zipf exponent: rank r drawn with weight 1/(r+1)^s.
const ZIPF_EXPONENT: f64 = 1.3;

/// Deterministic Zipf rank for `(client, seq)` over `n` shapes, so the
/// cached and uncached modes replay byte-identical query sequences.
fn zipf_pick(client: usize, seq: usize, n: usize) -> usize {
    // SplitMix-style scramble of the (client, seq) coordinate.
    let mut x = (client as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seq as u64)
        .wrapping_add(0xD1B5_4A32_D192_ED03);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let u = x as f64 / u64::MAX as f64;
    let weights: Vec<f64> = (0..n)
        .map(|r| 1.0 / ((r + 1) as f64).powf(ZIPF_EXPONENT))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for (r, w) in weights.iter().enumerate() {
        acc += w / total;
        if u < acc {
            return r;
        }
    }
    n - 1
}

/// The `service_load_zipf` experiment: a skewed (Zipfian) SQL replay of
/// the TPC-H fixture texts through the service's [`morsel_service::Session`], once
/// per caching mode, over identical query sequences. What to look for:
/// the plan-cache rows keep the same completion counts (cached plans
/// are equivalent) at a higher sustained q/s, with a plan-cache hit
/// rate ≥ 90% (misses are bounded by the number of distinct shapes).
///
/// Emits one machine-parseable `RESULT mode=… hits=… misses=…
/// hit_rate=… qps=…` line per mode for CI's assertions.
pub fn service_load_zipf(cfg: &ExpConfig) -> String {
    use morsel_queries::tpch_sql;
    use morsel_service::Session;

    let topo = Topology::laptop();
    let env = ExecEnv::new(topo.clone());
    let tpch = generate_tpch(
        TpchConfig {
            scale: cfg.scale,
            ..Default::default()
        },
        &topo,
    );
    let catalog = tpch.catalog();
    let fixtures: Vec<(usize, &'static str)> = tpch_sql::all();
    let workers = cfg.workers.min(4);

    // (label, plan caching, result caching)
    let modes: [(&str, bool, bool); 3] = [
        ("uncached", false, false),
        ("plan", true, false),
        ("plan+result", true, true),
    ];
    let mut t = Table::new(&[
        "mode",
        "done",
        "fail",
        "q/s",
        "plan hit",
        "plan miss",
        "hit %",
        "result hit",
    ]);
    let mut result_lines = String::new();
    for (label, plan_caching, result_caching) in modes {
        let service = QueryService::start(
            env.clone(),
            ServiceConfig::new(workers)
                .with_morsel_size(cfg.morsel_size.max(2_048))
                .with_max_in_flight(workers.max(2))
                .with_max_queue(4 * ZIPF_CLIENTS + 8),
        );
        let session = Session::builder()
            .catalog(catalog.clone())
            .topology(&topo)
            .for_service(&service)
            .plan_caching(plan_caching)
            .result_caching(result_caching)
            .build();
        std::thread::scope(|scope| {
            for client in 0..ZIPF_CLIENTS {
                let service = &service;
                let session = &session;
                let fixtures = &fixtures;
                scope.spawn(move || {
                    for seq in 0..ZIPF_PER_CLIENT {
                        let (q, sql) = fixtures[zipf_pick(client, seq, fixtures.len())];
                        session
                            .execute(service, format!("z{client}-{seq}-q{q}"), sql)
                            .expect("fixture SQL binds");
                    }
                });
            }
        });
        let summary = service.shutdown();
        let stats = summary.cache;
        t.row(vec![
            label.to_owned(),
            summary.completed().to_string(),
            summary.failed().to_string(),
            format!("{:.1}", summary.throughput_qps()),
            stats.plan_hits.to_string(),
            stats.plan_misses.to_string(),
            format!("{:.1}", stats.plan_hit_rate() * 100.0),
            stats.result_hits.to_string(),
        ]);
        result_lines.push_str(&format!(
            "RESULT mode={label} completed={} hits={} misses={} hit_rate={:.3} \
             result_hits={} qps={:.2}\n",
            summary.completed(),
            stats.plan_hits,
            stats.plan_misses,
            stats.plan_hit_rate(),
            stats.result_hits,
            summary.throughput_qps(),
        ));
    }
    format!(
        "Service load (Zipfian replay) — {ZIPF_CLIENTS} closed-loop clients, \
         {ZIPF_PER_CLIENT} queries each, Zipf(s={ZIPF_EXPONENT}) over {} TPC-H SQL \
         fixtures (SF {}), {workers} workers; identical sequences per mode\n{}\n{}",
        fixtures.len(),
        cfg.scale,
        t.render(),
        result_lines
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_load_reports_all_client_counts() {
        let cfg = ExpConfig {
            scale: 0.001,
            ssb_scale: 0.001,
            workers: 2,
            morsel_size: 2048,
            quick: true,
            ..Default::default()
        };
        let out = service_load(&cfg);
        assert!(out.contains("clients"), "missing header:\n{out}");
        for c in ["2", "8"] {
            assert!(
                out.lines().any(|l| l.trim_start().starts_with(c)),
                "missing row for {c} clients:\n{out}"
            );
        }
    }

    #[test]
    fn zipf_replay_modes_share_sequences_and_cache_pays_off() {
        let cfg = ExpConfig {
            scale: 0.001,
            ssb_scale: 0.001,
            workers: 2,
            morsel_size: 2048,
            quick: true,
            ..Default::default()
        };
        let out = service_load_zipf(&cfg);
        for mode in ["uncached", "plan", "plan+result"] {
            assert!(
                out.contains(&format!("RESULT mode={mode} ")),
                "missing RESULT line for {mode}:\n{out}"
            );
        }
        let field = |mode: &str, key: &str| -> f64 {
            out.lines()
                .find(|l| l.starts_with(&format!("RESULT mode={mode} ")))
                .and_then(|l| {
                    l.split_whitespace()
                        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
                })
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("no {key} for {mode}:\n{out}"))
        };
        let submissions = (ZIPF_CLIENTS * ZIPF_PER_CLIENT) as f64;
        assert_eq!(field("uncached", "completed"), submissions);
        assert_eq!(field("plan", "completed"), submissions);
        assert_eq!(field("uncached", "hits") + field("uncached", "misses"), 0.0);
        // Every submission consults the cache; misses are bounded by the
        // number of distinct shapes, so the skewed replay hits >= 90%.
        assert_eq!(
            field("plan", "hits") + field("plan", "misses"),
            submissions,
            "every plan-cached submission is a hit or a miss"
        );
        assert!(
            field("plan", "hit_rate") >= 0.9,
            "plan-cache hit rate below 90%:\n{out}"
        );
        assert!(
            field("plan+result", "result_hits") > 0.0,
            "result cache never hit:\n{out}"
        );
    }

    #[test]
    fn zipf_sampling_is_deterministic_and_skewed() {
        let n = 12;
        let picks: Vec<usize> = (0..256).map(|s| zipf_pick(3, s, n)).collect();
        let again: Vec<usize> = (0..256).map(|s| zipf_pick(3, s, n)).collect();
        assert_eq!(picks, again, "same coordinates, same ranks");
        assert!(picks.iter().all(|&r| r < n));
        let head = picks.iter().filter(|&&r| r < 3).count();
        assert!(
            head * 2 > picks.len(),
            "Zipf head (top 3 of {n}) drew only {head}/256"
        );
    }
}
