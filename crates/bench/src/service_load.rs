//! The serving scenario: closed-loop clients driving the query service.
//!
//! Unlike the figure experiments (deterministic virtual time), this one
//! measures the real `morsel-service` front end on OS threads: N
//! closed-loop clients submit a mixed TPC-H/SSB query rotation through
//! admission control, and the report shows completed/cancelled/rejected
//! counts, aggregate throughput, and per-priority latency percentiles per
//! client count. Numbers are wall-clock and host-dependent — the *shape*
//! to look for is throughput saturating (not collapsing) as clients grow
//! past the in-flight bound, with high-priority p50 staying well below
//! low-priority p50.

use std::sync::Arc;
use std::time::Duration;

use morsel_core::{AgingPolicy, ExecEnv, QuerySpec};
use morsel_datagen::{generate_ssb, generate_tpch, SsbConfig, SsbDb, TpchConfig, TpchDb};
use morsel_exec::plan::compile_query;
use morsel_exec::SystemVariant;
use morsel_numa::Topology;
use morsel_queries::{ssb_queries, tpch_queries};
use morsel_service::{fmt_ns, run_closed_loop, QueryRequest, QueryService, ServiceConfig};

use crate::experiments::ExpConfig;
use crate::report::Table;

/// The query rotation every client cycles through: scan-, join-, and
/// aggregation-heavy TPC-H plus two SSB flight patterns.
///
/// Shared with the `service_throughput` criterion bench so experiment
/// and bench measure the same workload.
pub const TPCH_MIX: [usize; 4] = [1, 6, 13, 14];
pub const SSB_MIX: [&str; 2] = ["1.1", "2.1"];

/// Priority assigned to client `c`: every fourth client is an
/// "interactive" priority-8 stream, the rest are priority-1 analytics.
pub fn client_priority(client: usize) -> u32 {
    if client.is_multiple_of(4) {
        8
    } else {
        1
    }
}

/// Compile the `seq`-th query of client `client`'s rotation, priority
/// already applied.
pub fn build_query(tpch: &Arc<TpchDb>, ssb: &Arc<SsbDb>, client: usize, seq: usize) -> QuerySpec {
    let mix_len = TPCH_MIX.len() + SSB_MIX.len();
    let pick = (client + seq) % mix_len;
    let name = format!("c{client}-s{seq}");
    let (spec, _result) = if pick < TPCH_MIX.len() {
        let q = TPCH_MIX[pick];
        compile_query(name, tpch_queries::query(tpch, q), SystemVariant::full())
    } else {
        let id = SSB_MIX[pick - TPCH_MIX.len()];
        compile_query(name, ssb_queries::query(ssb, id), SystemVariant::full())
    };
    spec.with_priority(client_priority(client))
}

/// The `service_load` experiment: mixed TPC-H/SSB traffic from a sweep
/// of closed-loop client counts through the admission-controlled query
/// service.
pub fn service_load(cfg: &ExpConfig) -> String {
    let topo = Topology::laptop();
    let env = ExecEnv::new(topo.clone());
    let tpch = Arc::new(generate_tpch(
        TpchConfig {
            scale: cfg.scale,
            ..Default::default()
        },
        &topo,
    ));
    let ssb = Arc::new(generate_ssb(
        SsbConfig {
            scale: cfg.ssb_scale,
            ..Default::default()
        },
        &topo,
    ));
    // Wall-clock workers: a small pool (this runs on the host, not the
    // simulated 64-thread box).
    let workers = cfg.workers.min(4);
    let client_counts: Vec<usize> = if cfg.quick {
        vec![2, 8]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let per_client = if cfg.quick { 4 } else { 8 };

    let mut t = Table::new(&[
        "clients", "done", "canc", "rej", "fail", "q/s", "p50 lo", "p99 lo", "p50 hi", "p99 hi",
    ]);
    for &clients in &client_counts {
        let service = QueryService::start(
            env.clone(),
            ServiceConfig::new(workers)
                .with_morsel_size(cfg.morsel_size.max(2_048))
                .with_max_in_flight(workers.max(2))
                .with_max_queue(4 * clients + 8)
                .with_aging(AgingPolicy::every(
                    Duration::from_millis(5).as_nanos() as u64
                )),
        );
        let tpch = Arc::clone(&tpch);
        let ssb = Arc::clone(&ssb);
        let _reports = run_closed_loop(&service, clients, per_client, move |client, seq| {
            QueryRequest::new(build_query(&tpch, &ssb, client, seq))
        });
        let summary = service.shutdown();
        let quantiles = |prio: u32| -> (String, String) {
            summary
                .priority(prio)
                .map(|(_, h)| (fmt_ns(h.p50()), fmt_ns(h.p99())))
                .unwrap_or_else(|| ("-".into(), "-".into()))
        };
        let (lo50, lo99) = quantiles(1);
        let (hi50, hi99) = quantiles(8);
        t.row(vec![
            clients.to_string(),
            summary.completed().to_string(),
            summary.cancelled().to_string(),
            summary.rejected().to_string(),
            summary.failed().to_string(),
            format!("{:.1}", summary.throughput_qps()),
            lo50,
            lo99,
            hi50,
            hi99,
        ]);
    }
    format!(
        "Service load — closed-loop clients over admission-controlled service \
         ({workers} workers, TPC-H SF {} + SSB SF {}, {per_client} queries/client; \
         lo = priority 1, hi = priority 8)\n{}",
        cfg.scale,
        cfg.ssb_scale,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_load_reports_all_client_counts() {
        let cfg = ExpConfig {
            scale: 0.001,
            ssb_scale: 0.001,
            workers: 2,
            morsel_size: 2048,
            quick: true,
        };
        let out = service_load(&cfg);
        assert!(out.contains("clients"), "missing header:\n{out}");
        for c in ["2", "8"] {
            assert!(
                out.lines().any(|l| l.trim_start().starts_with(c)),
                "missing row for {c} clients:\n{out}"
            );
        }
    }
}
