//! The `repro metrics` and `repro trace` commands: the CLI surface of
//! the observability stack.
//!
//! `metrics` drives a short closed-loop workload through the query
//! service and prints the resulting [`morsel_service::ServiceReport`] in
//! Prometheus text exposition format, self-validated with
//! [`validate_exposition`] so a malformed exposition exits non-zero.
//! `trace` runs one query on the real threaded executor with a
//! [`TraceRecorder`] attached and exports the query → pipeline → morsel
//! span hierarchy as Chrome-trace JSON (loadable in `chrome://tracing`
//! or Perfetto).

use std::sync::Arc;
use std::time::Duration;

use morsel_core::{
    render_chrome_trace, validate_exposition, AgingPolicy, DispatchConfig, ExecEnv, SpanKind,
    ThreadedExecutor, TraceRecorder,
};
use morsel_exec::plan::{compile_query, Plan};
use morsel_exec::SystemVariant;
use morsel_numa::Topology;
use morsel_queries::{ssb_queries, tpch_queries};
use morsel_service::{run_closed_loop, QueryRequest, QueryService, ServiceConfig};

use crate::experiments::ExpConfig;
use crate::service_load::build_query;

/// The `repro metrics` command: run a short mixed TPC-H/SSB closed-loop
/// workload through the service and return its metrics in Prometheus
/// text format. The exposition is validated before being returned;
/// a violation is an `Err` (the CLI exits non-zero on it).
pub fn metrics_snapshot(cfg: &ExpConfig) -> Result<String, String> {
    let topo = Topology::laptop();
    let env = ExecEnv::new(topo.clone());
    let tpch = Arc::new(morsel_datagen::generate_tpch(
        morsel_datagen::TpchConfig::scaled(cfg.scale),
        &topo,
    ));
    let ssb = Arc::new(morsel_datagen::generate_ssb(
        morsel_datagen::SsbConfig::scaled(cfg.ssb_scale),
        &topo,
    ));
    let workers = cfg.workers.min(4);
    let clients = 4;
    let per_client = if cfg.quick { 3 } else { 6 };
    let service = QueryService::start(
        env,
        ServiceConfig::new(workers)
            .with_morsel_size(cfg.morsel_size.max(2_048))
            .with_max_in_flight(workers.max(2))
            .with_max_queue(4 * clients + 8)
            .with_aging(AgingPolicy::every(
                Duration::from_millis(5).as_nanos() as u64
            )),
    );
    let _reports = run_closed_loop(&service, clients, per_client, move |client, seq| {
        QueryRequest::new(build_query(&tpch, &ssb, client, seq))
    });
    let text = service.shutdown().render_prometheus();
    let samples = validate_exposition(&text)
        .map_err(|e| format!("metrics exposition failed validation: {e}"))?;
    debug_assert!(samples > 0);
    Ok(text)
}

/// Resolve `q5`/`5` (TPC-H) or `ssb2.1`/`2.1` (SSB) to a hand-authored
/// physical plan against a freshly generated database, mirroring
/// `repro explain`'s query grammar.
fn resolve_query(cfg: &ExpConfig, query: &str) -> (String, Plan) {
    let topo = Topology::laptop();
    let spec = query.trim().to_lowercase();
    if let Some(id) = spec
        .strip_prefix("ssb")
        .map(str::to_owned)
        .or_else(|| spec.contains('.').then(|| spec.clone()))
    {
        let db =
            morsel_datagen::generate_ssb(morsel_datagen::SsbConfig::scaled(cfg.ssb_scale), &topo);
        (format!("ssb{id}"), ssb_queries::query(&db, &id))
    } else {
        let n: usize = spec
            .strip_prefix('q')
            .unwrap_or(&spec)
            .parse()
            .unwrap_or_else(|_| panic!("unrecognized query {query:?}; try q5 or ssb2.1"));
        let db =
            morsel_datagen::generate_tpch(morsel_datagen::TpchConfig::scaled(cfg.scale), &topo);
        (format!("q{n}"), tpch_queries::query(&db, n))
    }
}

/// The `repro trace <q>` command: execute one query on the threaded
/// executor with span recording on and return `(summary, chrome_json)`.
/// The caller decides where the JSON lands (`--out`, default
/// `trace_<q>.json`).
pub fn trace_query(cfg: &ExpConfig, query: &str) -> (String, String) {
    let topo = Topology::laptop();
    let env = ExecEnv::new(topo.clone());
    let (name, plan) = resolve_query(cfg, query);
    let workers = cfg.workers.min(4);
    let variant = SystemVariant::full();
    let config = DispatchConfig::new(workers)
        .with_mode(variant.mode(workers))
        .with_morsel_size(cfg.morsel_size);
    let recorder = Arc::new(TraceRecorder::new());
    let exec = ThreadedExecutor::new(env, config).with_trace(Arc::clone(&recorder));
    let (spec, _result) = compile_query(name.clone(), plan, variant);
    let handles = exec.run(vec![spec]);
    let outcome = handles[0].outcome().expect("run() joins to terminal state");
    let events = recorder.take();
    let count = |kind: SpanKind| events.iter().filter(|e| e.kind == kind).count();
    let summary = format!(
        "trace {name}: {:?}, {} spans ({} query / {} pipeline / {} morsel), {workers} workers\n",
        outcome,
        events.len(),
        count(SpanKind::Query),
        count(SpanKind::Pipeline),
        count(SpanKind::Morsel),
    );
    (summary, render_chrome_trace(&events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 0.001,
            ssb_scale: 0.001,
            workers: 2,
            morsel_size: 2048,
            quick: true,
            ..Default::default()
        }
    }

    #[test]
    fn metrics_snapshot_is_valid_prometheus() {
        let text = metrics_snapshot(&tiny()).expect("exposition validates");
        assert!(text.contains("# TYPE morsel_service_queries_total counter"));
        assert!(text.contains("morsel_service_queries_total{outcome=\"completed\"}"));
        assert!(text.contains("morsel_exec_morsels_total"));
    }

    #[test]
    fn trace_query_emits_all_three_span_kinds() {
        let (summary, json) = trace_query(&tiny(), "q6");
        assert!(summary.contains("Completed"), "{summary}");
        assert!(json.starts_with("{\"traceEvents\":["));
        for cat in [
            "\"cat\":\"query\"",
            "\"cat\":\"pipeline\"",
            "\"cat\":\"morsel\"",
        ] {
            assert!(json.contains(cat), "missing {cat} in trace");
        }
    }
}
