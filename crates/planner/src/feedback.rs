//! Cross-query cardinality feedback: observed selectivities keyed on
//! normalized predicate / join-edge shape.
//!
//! The executor's runtime profile records actual rows per operator
//! (finalized at pipeline breakers — see
//! `morsel_core::profile::OpProfile::breaker_complete`). [`harvest`]
//! walks a finished plan against those actuals and stores *observed*
//! selectivities into a [`FeedbackCache`]; the estimator consults the
//! cache before falling back to its min/max + NDV model, so the next
//! planning pass of any query with the same predicate shape sees the
//! truth instead of the textbook assumption.
//!
//! Three properties keep the cache sound:
//!
//! - **Normalized keys.** A scan key is the filter expression with
//!   every literal replaced by a `?` hole and columns named through the
//!   base relation's schema; a join key is the sorted pair of equi-join
//!   column lists. Both are invariant under literal churn and alias
//!   renames (same normalization philosophy as the plan cache's
//!   `ShapeKey`), so feedback accumulates across a parameterized
//!   workload instead of fragmenting per literal.
//! - **Exponential decay.** A new observation moves the stored value by
//!   [`FEEDBACK_DECAY`]; old evidence fades geometrically, so a shifting
//!   data distribution is tracked instead of averaged away.
//! - **Catalog-version awareness.** Every entry is stamped with the
//!   catalog version it was observed under; [`set_catalog_version`]
//!   drops *all* learned entries the moment the version moves (DML
//!   commit, delta merge, DDL), so no entry ever outlives a catalog
//!   bump.
//!
//! [`set_catalog_version`]: FeedbackCache::set_catalog_version

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

use morsel_exec::expr::Expr;
use morsel_exec::join::JoinKind;
use morsel_exec::plan::Plan;
use morsel_storage::Schema;

/// Weight of the newest observation when merged into an existing entry
/// (`new = DECAY * observed + (1 - DECAY) * old`).
pub const FEEDBACK_DECAY: f64 = 0.5;

/// Relative change below which an observation does not bump the cache
/// epoch: converged entries stop invalidating cached plans.
const EPOCH_TOLERANCE: f64 = 0.1;

/// One learned selectivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackEntry {
    /// Exponentially-decayed observed selectivity.
    pub sel: f64,
    /// Observations folded into `sel`.
    pub observations: u64,
    /// Catalog version the latest observation was made under.
    pub catalog_version: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<String, FeedbackEntry>,
    catalog_version: u64,
}

/// The persistent feedback cache. Shared (`Arc`) between the planner's
/// estimator (reader) and the session that harvests runtime profiles
/// (writer); thread-safe.
#[derive(Default)]
pub struct FeedbackCache {
    inner: Mutex<Inner>,
    /// Bumped whenever learned state changes enough to warrant
    /// replanning; the plan cache stores the epoch it planned under and
    /// treats a mismatch as an invalidation.
    epoch: AtomicU64,
}

impl fmt::Debug for FeedbackCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FeedbackCache")
            .field("entries", &self.len())
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl FeedbackCache {
    pub fn new() -> Arc<Self> {
        Arc::new(FeedbackCache::default())
    }

    /// Learned entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Monotonic counter of material learning events (see field docs).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The catalog version the cache currently considers live.
    pub fn catalog_version(&self) -> u64 {
        self.inner.lock().unwrap().catalog_version
    }

    /// Install a new catalog version. If it differs from the live one,
    /// every learned entry is dropped — observed selectivities describe
    /// the data as of the version they were measured under, and a commit
    /// or merge invalidates that evidence wholesale (mirroring the plan
    /// cache's version guard).
    pub fn set_catalog_version(&self, version: u64) {
        let mut inner = self.inner.lock().unwrap();
        if inner.catalog_version != version {
            inner.catalog_version = version;
            if !inner.entries.is_empty() {
                inner.entries.clear();
                self.epoch.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// Fold one observed selectivity into the cache under `key`.
    pub fn observe(&self, key: &str, sel: f64) {
        let sel = sel.clamp(1e-9, 1.0);
        let mut inner = self.inner.lock().unwrap();
        let version = inner.catalog_version;
        let material = match inner.entries.get_mut(key) {
            Some(e) => {
                let merged = FEEDBACK_DECAY * sel + (1.0 - FEEDBACK_DECAY) * e.sel;
                let rel = (merged - e.sel).abs() / e.sel.max(1e-12);
                e.sel = merged;
                e.observations += 1;
                e.catalog_version = version;
                rel > EPOCH_TOLERANCE
            }
            None => {
                inner.entries.insert(
                    key.to_owned(),
                    FeedbackEntry {
                        sel,
                        observations: 1,
                        catalog_version: version,
                    },
                );
                true
            }
        };
        drop(inner);
        if material {
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// The learned selectivity for `key`, if any.
    pub fn lookup(&self, key: &str) -> Option<f64> {
        self.inner.lock().unwrap().entries.get(key).map(|e| e.sel)
    }

    /// The full entry for `key` (tests and diagnostics).
    pub fn entry(&self, key: &str) -> Option<FeedbackEntry> {
        self.inner.lock().unwrap().entries.get(key).copied()
    }
}

// ------------------------------------------------------------------ keys

/// Normalized key for a base-table filter: the expression shape with
/// literals holed out and columns resolved to the relation's canonical
/// column names. Stable under literal churn (every constant becomes `?`)
/// and alias renames (binder aliases never reach physical plans; the
/// names here come from the base schema).
pub fn scan_key(schema: &Schema, filter: &Expr) -> String {
    let mut out = String::from("scan|");
    expr_shape(filter, &|i| schema.name(i).to_owned(), &mut out);
    out
}

/// Normalized key for an inner-join edge: both key-column lists, sorted
/// so `a ⋈ b` and `b ⋈ a` share one entry.
pub fn join_key(a_keys: &[String], b_keys: &[String]) -> String {
    let a = a_keys.join(",");
    let b = b_keys.join(",");
    let (x, y) = if a <= b { (a, b) } else { (b, a) };
    format!("join|{x}={y}")
}

/// Write the literal-free shape of `expr` into `out`, naming columns via
/// `name_of`.
fn expr_shape(expr: &Expr, name_of: &dyn Fn(usize) -> String, out: &mut String) {
    let bin = |tag: &str, a: &Expr, b: &Expr, out: &mut String| {
        out.push_str(tag);
        out.push('(');
        expr_shape(a, name_of, out);
        out.push(',');
        expr_shape(b, name_of, out);
        out.push(')');
    };
    match expr {
        Expr::Col(i) => out.push_str(&name_of(*i)),
        // Every literal is a hole: the key must survive literal churn.
        Expr::ConstI64(_) | Expr::ConstF64(_) | Expr::ConstStr(_) => out.push('?'),
        Expr::Add(a, b) => bin("add", a, b, out),
        Expr::Sub(a, b) => bin("sub", a, b, out),
        Expr::Mul(a, b) => bin("mul", a, b, out),
        Expr::Div(a, b) => bin("div", a, b, out),
        Expr::And(a, b) => bin("and", a, b, out),
        Expr::Or(a, b) => bin("or", a, b, out),
        Expr::Cmp(op, a, b) => {
            out.push_str(&format!("cmp[{op:?}]"));
            out.push('(');
            expr_shape(a, name_of, out);
            out.push(',');
            expr_shape(b, name_of, out);
            out.push(')');
        }
        Expr::Not(a) => {
            out.push_str("not(");
            expr_shape(a, name_of, out);
            out.push(')');
        }
        Expr::ToF64(a) => {
            out.push_str("f64(");
            expr_shape(a, name_of, out);
            out.push(')');
        }
        Expr::BetweenI64(a, _, _) => {
            out.push_str("between(");
            expr_shape(a, name_of, out);
            out.push_str(",?,?)");
        }
        Expr::InI64(a, list) => {
            out.push_str("in_i64(");
            expr_shape(a, name_of, out);
            // List *arity* stays in the key: `IN (a)` and `IN (a,b,c)`
            // have genuinely different selectivities.
            out.push_str(&format!(",#{})", list.len()));
        }
        Expr::InStr(a, list) => {
            out.push_str("in_str(");
            expr_shape(a, name_of, out);
            out.push_str(&format!(",#{})", list.len()));
        }
        Expr::Like(a, _) => {
            out.push_str("like(");
            expr_shape(a, name_of, out);
            out.push_str(",?)");
        }
        Expr::StrPrefix(a, _) => {
            out.push_str("prefix(");
            expr_shape(a, name_of, out);
            out.push_str(",?)");
        }
        Expr::Case(c, t, e) => {
            out.push_str("case(");
            expr_shape(c, name_of, out);
            out.push(',');
            expr_shape(t, name_of, out);
            out.push(',');
            expr_shape(e, name_of, out);
            out.push(')');
        }
        Expr::YearOf(a) => {
            out.push_str("year(");
            expr_shape(a, name_of, out);
            out.push(')');
        }
        Expr::Substr(a, from, len) => {
            // Positions are structure, not data: keep them.
            out.push_str(&format!("substr[{from},{len}]("));
            expr_shape(a, name_of, out);
            out.push(')');
        }
    }
}

// --------------------------------------------------------------- harvest

/// Walk a finished plan against its runtime actuals (`rows_out` per
/// operator, in explain / profile-slot order: pre-order, probe before
/// build) and fold observed selectivities into `cache`.
///
/// Learns two families of keys:
/// - filtered base scans: `actual / total_rows` under [`scan_key`];
/// - inner-join edges: `actual / (probe_actual * build_actual)` under
///   [`join_key`].
///
/// Returns the number of observations recorded.
pub fn harvest(plan: &Plan, actuals: &[u64], cache: &FeedbackCache) -> usize {
    let mut slot = 0usize;
    let mut n = 0usize;
    harvest_walk(plan, actuals, cache, &mut slot, &mut n);
    n
}

fn harvest_walk(
    plan: &Plan,
    actuals: &[u64],
    cache: &FeedbackCache,
    slot: &mut usize,
    n: &mut usize,
) {
    let my = *slot;
    *slot += 1;
    if my >= actuals.len() {
        return;
    }
    match plan {
        Plan::Scan {
            relation, filter, ..
        } => {
            if let Some(f) = filter {
                let total = relation.total_rows();
                if total > 0 {
                    cache.observe(
                        &scan_key(relation.schema(), f),
                        actuals[my] as f64 / total as f64,
                    );
                    *n += 1;
                }
            }
        }
        Plan::Filter { input, .. }
        | Plan::Map { input, .. }
        | Plan::Agg { input, .. }
        | Plan::Sort { input, .. } => harvest_walk(input, actuals, cache, slot, n),
        Plan::Join {
            build,
            probe,
            build_keys,
            probe_keys,
            kind,
            ..
        } => {
            let probe_slot = *slot;
            harvest_walk(probe, actuals, cache, slot, n);
            let build_slot = *slot;
            harvest_walk(build, actuals, cache, slot, n);
            if matches!(kind, JoinKind::Inner | JoinKind::InnerMark) {
                let (Some(&ap), Some(&ab)) = (actuals.get(probe_slot), actuals.get(build_slot))
                else {
                    return;
                };
                if ap > 0 && ab > 0 {
                    let ps = probe.schema();
                    let bs = build.schema();
                    let pk: Vec<String> =
                        probe_keys.iter().map(|&i| ps.name(i).to_owned()).collect();
                    let bk: Vec<String> =
                        build_keys.iter().map(|&i| bs.name(i).to_owned()).collect();
                    let sel = actuals[my] as f64 / (ap as f64 * ab as f64);
                    cache.observe(&join_key(&pk, &bk), sel);
                    *n += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morsel_exec::expr::{and, between, col, eq, lit};
    use morsel_numa::{Placement, Topology};
    use morsel_storage::{Batch, Column, DataType, PartitionBy, Relation};

    fn schema() -> Schema {
        Schema::new(vec![("a", DataType::I64), ("b", DataType::I64)])
    }

    #[test]
    fn scan_keys_hole_literals_but_keep_structure() {
        let s = schema();
        let k1 = scan_key(&s, &and(eq(col(0), lit(7)), between(col(1), 1, 9)));
        let k2 = scan_key(&s, &and(eq(col(0), lit(99)), between(col(1), 0, 1000)));
        assert_eq!(k1, k2, "literal churn must not change the key");
        let k3 = scan_key(&s, &and(eq(col(1), lit(7)), between(col(1), 1, 9)));
        assert_ne!(k1, k3, "different columns are different shapes");
        let k4 = scan_key(&s, &eq(col(0), lit(7)));
        assert_ne!(k1, k4, "dropping a conjunct changes the shape");
    }

    #[test]
    fn join_keys_are_orientation_free() {
        let a = vec!["o_orderkey".to_owned()];
        let b = vec!["l_orderkey".to_owned()];
        assert_eq!(join_key(&a, &b), join_key(&b, &a));
        assert_ne!(join_key(&a, &b), join_key(&a, &a));
    }

    #[test]
    fn observe_decays_toward_new_evidence() {
        let fb = FeedbackCache::default();
        fb.observe("k", 0.8);
        assert_eq!(fb.lookup("k"), Some(0.8));
        fb.observe("k", 0.0); // clamps to 1e-9
        let v = fb.lookup("k").unwrap();
        assert!((v - 0.4).abs() < 1e-6, "decayed halfway, got {v}");
        assert_eq!(fb.entry("k").unwrap().observations, 2);
    }

    #[test]
    fn catalog_bump_drops_every_entry() {
        let fb = FeedbackCache::default();
        fb.set_catalog_version(3);
        fb.observe("k", 0.5);
        assert_eq!(fb.entry("k").unwrap().catalog_version, 3);
        let epoch = fb.epoch();
        fb.set_catalog_version(3); // no-op: same version
        assert_eq!(fb.lookup("k"), Some(0.5));
        assert_eq!(fb.epoch(), epoch);
        fb.set_catalog_version(4);
        assert_eq!(fb.lookup("k"), None);
        assert!(fb.is_empty());
        assert!(fb.epoch() > epoch, "invalidation is a material change");
    }

    #[test]
    fn converged_entries_stop_bumping_the_epoch() {
        let fb = FeedbackCache::default();
        fb.observe("k", 0.5);
        for _ in 0..10 {
            fb.observe("k", 0.5);
        }
        let epoch = fb.epoch();
        fb.observe("k", 0.5);
        assert_eq!(fb.epoch(), epoch, "steady state must not churn plans");
        fb.observe("k", 0.001);
        assert!(fb.epoch() > epoch, "a shift resumes invalidation");
    }

    #[test]
    fn harvest_learns_scan_and_join_selectivities() {
        let topo = Topology::laptop();
        let mk = |n: i64| {
            std::sync::Arc::new(Relation::partitioned(
                Schema::new(vec![("k", DataType::I64), ("v", DataType::I64)]),
                &Batch::from_columns(vec![
                    Column::I64((0..n).collect()),
                    Column::I64((0..n).map(|x| x % 10).collect()),
                ]),
                PartitionBy::Hash { column: 0 },
                2,
                Placement::FirstTouch,
                &topo,
            ))
        };
        let probe = Plan::scan(mk(1000), Some(eq(col(1), lit(3))), &["k", "v"]);
        let build = Plan::scan(mk(100), None, &["k"]);
        let plan = probe.join(build, &["k"], &["k"], &[]);
        // Slots: 0 = join, 1 = probe scan, 2 = build scan.
        let actuals = vec![10u64, 100, 100];
        let fb = FeedbackCache::default();
        let n = harvest(&plan, &actuals, &fb);
        assert_eq!(n, 2, "one filtered scan + one join edge");
        let sk = fb.lookup(&scan_key(
            &Schema::new(vec![("k", DataType::I64), ("v", DataType::I64)]),
            &eq(col(1), lit(3)),
        ));
        assert_eq!(sk, Some(0.1), "100 of 1000 rows survived");
        let jk = fb.lookup(&join_key(&["k".to_owned()], &["k".to_owned()]));
        assert_eq!(jk, Some(10.0 / (100.0 * 100.0)));
    }
}
