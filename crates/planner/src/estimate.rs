//! Cardinality estimation over physical plans.
//!
//! Works on the executor's [`Plan`] so the same estimates drive three
//! consumers: the join enumerator's leaf statistics, the simulated-cost
//! comparison between planner-chosen and hand-authored plans, and the
//! `repro explain` cardinality annotations.
//!
//! Assumptions are the textbook ones (System R lineage):
//! **independence** between predicates (conjunctions multiply), and
//! **containment of value sets** for equi-joins
//! (`|L ⋈ R| = |L|·|R| / max(ndv(L.k), ndv(R.k))`). Base-table inputs
//! come from the catalog sketches cached on each
//! [`Relation`](morsel_storage::Relation); derived columns fall back to
//! documented default selectivities.

use std::collections::HashMap;
use std::sync::Arc;

use morsel_exec::expr::{CmpOp, Expr};
use morsel_exec::join::JoinKind;
use morsel_exec::plan::Plan;
use morsel_storage::{ColumnStats, DataType, Dictionary};

use crate::feedback::{self, FeedbackCache};

/// Estimated properties of one output column.
#[derive(Debug, Clone)]
pub struct ColEst {
    /// Estimated distinct values.
    pub ndv: f64,
    /// Average bytes per value.
    pub width: f64,
    /// Numeric `[min, max]` range, when known.
    pub span: Option<(f64, f64)>,
    /// The column's sorted dictionary, when dictionary-encoded. String
    /// range, prefix, LIKE, and IN predicates then resolve to exact
    /// fractions of the code domain instead of default selectivities.
    pub dict: Option<Arc<Dictionary>>,
}

impl ColEst {
    fn unknown(dtype: DataType, rows: f64) -> Self {
        ColEst {
            ndv: rows.max(1.0),
            width: match dtype {
                DataType::Str => 16.0,
                DataType::I32 => 4.0,
                _ => 8.0,
            },
            span: None,
            dict: None,
        }
    }

    pub(crate) fn from_stats(s: &ColumnStats) -> Self {
        ColEst {
            ndv: s.ndv.max(1.0),
            width: s.avg_width.max(1.0),
            span: s.numeric_span().and_then(|_| match (&s.min, &s.max) {
                (Some(lo), Some(hi)) => Some((lo.as_f64(), hi.as_f64())),
                _ => None,
            }),
            dict: s.dict.clone(),
        }
    }

    fn capped(&self, rows: f64) -> Self {
        ColEst {
            ndv: self.ndv.min(rows.max(1.0)),
            width: self.width,
            span: self.span,
            dict: self.dict.clone(),
        }
    }
}

/// Estimated properties of a plan node's output.
#[derive(Debug, Clone)]
pub struct PlanEst {
    /// Estimated output rows.
    pub rows: f64,
    /// Column estimates, aligned with the node's output schema.
    pub cols: Vec<ColEst>,
}

impl PlanEst {
    /// Estimated bytes per output row.
    pub fn row_width(&self) -> f64 {
        self.cols.iter().map(|c| c.width).sum::<f64>().max(1.0)
    }

    /// Estimated total output bytes.
    pub fn bytes(&self) -> f64 {
        self.rows * self.row_width()
    }
}

/// The estimator, with its default selectivities exposed for tuning.
#[derive(Debug, Clone)]
pub struct Estimator {
    /// Selectivity of a predicate the estimator cannot decompose.
    pub default_sel: f64,
    /// Selectivity of a column-vs-column inequality (`a < b`).
    pub col_cmp_sel: f64,
    /// Selectivity of `LIKE '%..%'` containment patterns.
    pub like_sel: f64,
    /// Selectivity of prefix-anchored string predicates.
    pub prefix_sel: f64,
    /// Runtime cardinality feedback, consulted before the model above:
    /// an observed selectivity for a scan filter or join edge overrides
    /// the textbook estimate. `None` disables feedback entirely.
    pub feedback: Option<Arc<FeedbackCache>>,
}

impl Default for Estimator {
    fn default() -> Self {
        Estimator {
            default_sel: 0.25,
            col_cmp_sel: 1.0 / 3.0,
            like_sel: 0.1,
            prefix_sel: 0.05,
            feedback: None,
        }
    }
}

impl Estimator {
    /// Attach a feedback cache (builder style).
    pub fn with_feedback(mut self, cache: Arc<FeedbackCache>) -> Self {
        self.feedback = Some(cache);
        self
    }
}

/// Memo for repeated estimates over one plan tree, keyed by node address
/// (valid only while the borrowed plan is alive). Lets tree walkers like
/// [`crate::cost::plan_cost`] and `explain` stay linear instead of
/// re-estimating every subtree at every ancestor.
pub type EstMemo = HashMap<usize, PlanEst>;

impl Estimator {
    /// Estimate a plan node (recursively).
    pub fn estimate(&self, plan: &Plan) -> PlanEst {
        self.estimate_memo(plan, &mut EstMemo::new())
    }

    /// Estimate with an explicit memo shared across calls over the same
    /// plan tree.
    pub fn estimate_memo(&self, plan: &Plan, memo: &mut EstMemo) -> PlanEst {
        let key = plan as *const Plan as usize;
        if let Some(hit) = memo.get(&key) {
            return hit.clone();
        }
        let out = self.estimate_node(plan, memo);
        memo.insert(key, out.clone());
        out
    }

    fn estimate_node(&self, plan: &Plan, memo: &mut EstMemo) -> PlanEst {
        match plan {
            Plan::Scan {
                relation,
                filter,
                project,
            } => {
                let stats = relation.stats();
                let base: Vec<ColEst> = stats.columns.iter().map(ColEst::from_stats).collect();
                // An observed selectivity for this exact predicate shape
                // beats the independence model.
                let sel = filter.as_ref().map_or(1.0, |f| {
                    self.feedback
                        .as_ref()
                        .and_then(|fb| fb.lookup(&feedback::scan_key(relation.schema(), f)))
                        .unwrap_or_else(|| self.selectivity(f, &base))
                });
                let rows = (relation.total_rows() as f64 * sel).max(1.0);
                let src_types = relation.schema().data_types();
                let cols = project
                    .iter()
                    .map(|(_, e)| self.project_col(e, &base, &src_types, rows))
                    .collect();
                PlanEst { rows, cols }
            }
            Plan::Filter { input, predicate } => {
                let mut est = self.estimate_memo(input, memo);
                let sel = self.selectivity(predicate, &est.cols);
                est.rows = (est.rows * sel).max(1.0);
                est.cols = est.cols.iter().map(|c| c.capped(est.rows)).collect();
                est
            }
            Plan::Map { input, project } => {
                let est = self.estimate_memo(input, memo);
                let in_types: Vec<DataType> = input.schema().data_types();
                let cols = project
                    .iter()
                    .map(|(_, e)| self.project_col(e, &est.cols, &in_types, est.rows))
                    .collect();
                PlanEst {
                    rows: est.rows,
                    cols,
                }
            }
            Plan::Join {
                build,
                probe,
                build_keys,
                probe_keys,
                kind,
                build_payload,
            } => {
                let b = self.estimate_memo(build, memo);
                let p = self.estimate_memo(probe, memo);
                let ndv_b = combined_ndv(&b, build_keys);
                let ndv_p = combined_ndv(&p, probe_keys);
                let (rows, emit_build) = match kind {
                    JoinKind::Inner | JoinKind::InnerMark => {
                        // Observed join-edge selectivity (actual_out /
                        // (probe_in * build_in)) overrides containment.
                        let observed = self.feedback.as_ref().and_then(|fb| {
                            let ps = probe.schema();
                            let bs = build.schema();
                            let pk: Vec<String> =
                                probe_keys.iter().map(|&i| ps.name(i).to_owned()).collect();
                            let bk: Vec<String> =
                                build_keys.iter().map(|&i| bs.name(i).to_owned()).collect();
                            fb.lookup(&feedback::join_key(&pk, &bk))
                        });
                        let rows = match observed {
                            Some(s) => (p.rows * b.rows * s).max(1.0),
                            None => (p.rows * b.rows / ndv_b.max(ndv_p)).max(1.0),
                        };
                        (rows, true)
                    }
                    JoinKind::Semi => ((p.rows * (ndv_b / ndv_p).min(1.0)).max(1.0), false),
                    JoinKind::Anti => ((p.rows * (1.0 - (ndv_b / ndv_p).min(1.0))).max(1.0), false),
                    JoinKind::Count => (p.rows, false),
                };
                let mut cols: Vec<ColEst> = p.cols.iter().map(|c| c.capped(rows)).collect();
                if emit_build {
                    for &c in build_payload {
                        cols.push(b.cols[c].capped(rows));
                    }
                }
                if matches!(kind, JoinKind::Count) {
                    cols.push(ColEst {
                        ndv: (b.rows / ndv_b + 1.0).min(rows),
                        width: 8.0,
                        span: None,
                        dict: None,
                    });
                }
                PlanEst { rows, cols }
            }
            Plan::Agg {
                input,
                group_cols,
                aggs,
            } => {
                let est = self.estimate_memo(input, memo);
                let rows = if group_cols.is_empty() {
                    1.0
                } else {
                    group_cols
                        .iter()
                        .map(|&c| est.cols[c].ndv)
                        .product::<f64>()
                        .min(est.rows)
                        .max(1.0)
                };
                let mut cols: Vec<ColEst> = group_cols
                    .iter()
                    .map(|&c| est.cols[c].capped(rows))
                    .collect();
                for _ in aggs {
                    cols.push(ColEst {
                        ndv: rows,
                        width: 8.0,
                        span: None,
                        dict: None,
                    });
                }
                PlanEst { rows, cols }
            }
            Plan::Sort { input, limit, .. } => {
                let est = self.estimate_memo(input, memo);
                let rows = limit.map_or(est.rows, |k| est.rows.min(k as f64)).max(1.0);
                PlanEst {
                    rows,
                    cols: est.cols.iter().map(|c| c.capped(rows)).collect(),
                }
            }
        }
    }

    /// Column estimate for a projected expression.
    fn project_col(
        &self,
        expr: &Expr,
        input: &[ColEst],
        in_types: &[DataType],
        rows: f64,
    ) -> ColEst {
        match expr {
            Expr::Col(i) => input[*i].capped(rows),
            // Calendar years collapse day-number spans by ~365x; this is
            // the one derived-column shape the TPC-H aggregates group by.
            Expr::YearOf(inner) => {
                if let Expr::Col(i) = &**inner {
                    if let Some((lo, hi)) = input[*i].span {
                        let years = ((hi - lo) / 365.25).floor() + 1.0;
                        return ColEst {
                            ndv: years.max(1.0).min(rows),
                            width: 8.0,
                            span: None,
                            dict: None,
                        };
                    }
                }
                ColEst::unknown(DataType::I64, rows)
            }
            Expr::ConstI64(_) | Expr::ConstF64(_) | Expr::ConstStr(_) => ColEst {
                ndv: 1.0,
                width: 8.0,
                span: None,
                dict: None,
            },
            other => ColEst::unknown(other.result_type(in_types), rows),
        }
    }

    /// Selectivity of a predicate against the given column estimates.
    pub fn selectivity(&self, expr: &Expr, cols: &[ColEst]) -> f64 {
        let s = match expr {
            Expr::And(a, b) => self.selectivity(a, cols) * self.selectivity(b, cols),
            Expr::Or(a, b) => {
                let (sa, sb) = (self.selectivity(a, cols), self.selectivity(b, cols));
                sa + sb - sa * sb
            }
            Expr::Not(a) => 1.0 - self.selectivity(a, cols),
            Expr::Cmp(op, a, b) => self.cmp_selectivity(*op, a, b, cols),
            Expr::BetweenI64(a, lo, hi) => match &**a {
                Expr::Col(i) => range_fraction(&cols[*i], *lo as f64, *hi as f64, self.default_sel),
                _ => self.default_sel,
            },
            Expr::InI64(a, list) => self.membership(a, list.len(), cols),
            Expr::InStr(a, list) => {
                // Against a dictionary: count how many of the listed
                // values exist in the domain — absent values contribute
                // nothing (the executor's code-set rewrite drops them too).
                if let Expr::Col(i) = a.as_ref() {
                    if let Some(d) = &cols[*i].dict {
                        let present = list.iter().filter(|l| d.code_of(l).is_some()).count() as f64;
                        return (present / d.len().max(1) as f64).clamp(1e-7, 1.0);
                    }
                }
                self.membership(a, list.len(), cols)
            }
            Expr::Like(a, pat) => {
                // A dictionary enumerates the domain, so LIKE selectivity
                // is exact over values (uniformity across values assumed).
                if let Expr::Col(i) = a.as_ref() {
                    if let Some(d) = &cols[*i].dict {
                        let hits = d.values().iter().filter(|v| pat.matches(v)).count() as f64;
                        return (hits / d.len().max(1) as f64).clamp(1e-7, 1.0);
                    }
                }
                self.like_sel
            }
            Expr::StrPrefix(a, p) => {
                // Prefix predicates are code ranges of the sorted domain.
                if let Expr::Col(i) = a.as_ref() {
                    if let Some(d) = &cols[*i].dict {
                        let (lo, hi) = d.prefix_range(p);
                        return (f64::from(hi - lo) / d.len().max(1) as f64).clamp(1e-7, 1.0);
                    }
                }
                self.prefix_sel
            }
            _ => self.default_sel,
        };
        s.clamp(1e-7, 1.0)
    }

    fn membership(&self, a: &Expr, list_len: usize, cols: &[ColEst]) -> f64 {
        match a {
            Expr::Col(i) => (list_len as f64 / cols[*i].ndv).min(1.0),
            // `substr(phone, 1, 2) IN (codes)`-style derived membership.
            _ => self.default_sel,
        }
    }

    fn cmp_selectivity(&self, op: CmpOp, a: &Expr, b: &Expr, cols: &[ColEst]) -> f64 {
        match (a, b) {
            (Expr::Col(i), Expr::ConstI64(c)) => self.col_const_cmp(op, &cols[*i], *c as f64),
            (Expr::ConstI64(c), Expr::Col(i)) => self.col_const_cmp(flip(op), &cols[*i], *c as f64),
            (Expr::Col(i), Expr::ConstF64(c)) => self.col_const_cmp(op, &cols[*i], *c),
            (Expr::Col(i), Expr::ConstStr(s)) => match op {
                CmpOp::Eq => match &cols[*i].dict {
                    // Absent from the domain: selects nothing.
                    Some(d) if d.code_of(s).is_none() => 1e-7,
                    _ => 1.0 / cols[*i].ndv,
                },
                CmpOp::Ne => match &cols[*i].dict {
                    // Absent from the domain: excludes nothing.
                    Some(d) if d.code_of(s).is_none() => 1.0,
                    _ => 1.0 - 1.0 / cols[*i].ndv,
                },
                // Ordering against a sorted dictionary: the constant's
                // code position is the range fraction of the domain.
                _ => match &cols[*i].dict {
                    Some(d) if !d.is_empty() => {
                        let len = d.len() as f64;
                        let below = f64::from(d.lower_bound(s)) / len;
                        let at_or_below = f64::from(d.upper_bound(s)) / len;
                        match op {
                            CmpOp::Lt => below,
                            CmpOp::Le => at_or_below,
                            CmpOp::Gt => 1.0 - at_or_below,
                            CmpOp::Ge => 1.0 - below,
                            CmpOp::Eq | CmpOp::Ne => unreachable!("handled above"),
                        }
                    }
                    _ => self.col_cmp_sel,
                },
            },
            (Expr::Col(i), Expr::Col(j)) => match op {
                CmpOp::Eq => 1.0 / cols[*i].ndv.max(cols[*j].ndv),
                CmpOp::Ne => 1.0 - 1.0 / cols[*i].ndv.max(cols[*j].ndv),
                _ => self.col_cmp_sel,
            },
            _ => self.default_sel,
        }
    }

    fn col_const_cmp(&self, op: CmpOp, col: &ColEst, c: f64) -> f64 {
        match op {
            CmpOp::Eq => 1.0 / col.ndv,
            CmpOp::Ne => 1.0 - 1.0 / col.ndv,
            CmpOp::Lt | CmpOp::Le => match col.span {
                Some((lo, hi)) if hi > lo => ((c - lo) / (hi - lo)).clamp(0.0, 1.0),
                _ => self.col_cmp_sel,
            },
            CmpOp::Gt | CmpOp::Ge => match col.span {
                Some((lo, hi)) if hi > lo => ((hi - c) / (hi - lo)).clamp(0.0, 1.0),
                _ => self.col_cmp_sel,
            },
        }
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

/// `BETWEEN lo AND hi` fraction of a column's range.
fn range_fraction(col: &ColEst, lo: f64, hi: f64, default_sel: f64) -> f64 {
    match col.span {
        Some((cl, ch)) if ch > cl => {
            let overlap = (hi.min(ch) - lo.max(cl) + 1.0).max(0.0);
            (overlap / (ch - cl + 1.0)).clamp(0.0, 1.0)
        }
        Some((cl, _)) => {
            // Single-valued column: in range or not.
            if cl >= lo && cl <= hi {
                1.0
            } else {
                0.0
            }
        }
        None => default_sel,
    }
}

/// Combined distinct count of a multi-column key (independence, capped by
/// the side's row count).
pub fn combined_ndv(est: &PlanEst, keys: &[usize]) -> f64 {
    keys.iter()
        .map(|&k| est.cols[k].ndv)
        .product::<f64>()
        .min(est.rows)
        .max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use morsel_exec::expr::{and, between, col, eq, lit, lits};
    use morsel_exec::plan::Plan;
    use morsel_numa::{Placement, Topology};
    use morsel_storage::{Batch, Column, PartitionBy, Relation, Schema};
    use std::sync::Arc;

    fn rel(n: i64, groups: i64) -> Arc<Relation> {
        Arc::new(Relation::partitioned(
            Schema::new(vec![
                ("k", DataType::I64),
                ("g", DataType::I64),
                ("s", DataType::Str),
            ]),
            &Batch::from_columns(vec![
                Column::I64((0..n).collect()),
                Column::I64((0..n).map(|x| x % groups).collect()),
                Column::Str((0..n).map(|x| format!("s{}", x % 11)).collect()),
            ]),
            PartitionBy::Hash { column: 0 },
            8,
            Placement::FirstTouch,
            &Topology::laptop(),
        ))
    }

    fn est() -> Estimator {
        Estimator::default()
    }

    #[test]
    fn scan_point_predicate_uses_ndv() {
        let r = rel(10_000, 100);
        let p = Plan::scan(r, Some(eq(col(1), lit(7))), &["k", "g"]);
        let e = est().estimate(&p);
        // 1/ndv(g) = 1/100 of 10k rows = ~100.
        assert!(e.rows > 50.0 && e.rows < 220.0, "rows {}", e.rows);
    }

    #[test]
    fn range_predicate_uses_span() {
        let r = rel(10_000, 100);
        // k in [0, 9999]; between 0..999 is ~10%.
        let p = Plan::scan(r, Some(between(col(0), 0, 999)), &["k"]);
        let e = est().estimate(&p);
        assert!(e.rows > 700.0 && e.rows < 1400.0, "rows {}", e.rows);
    }

    #[test]
    fn conjunction_multiplies() {
        let r = rel(10_000, 100);
        let p = Plan::scan(
            r,
            Some(and(eq(col(1), lit(7)), eq(col(2), lits("s3")))),
            &["k"],
        );
        let e = est().estimate(&p);
        // ~10_000 / 100 / 11 ≈ 9.
        assert!(e.rows > 2.0 && e.rows < 40.0, "rows {}", e.rows);
    }

    #[test]
    fn dict_domain_gives_exact_string_selectivities() {
        use morsel_exec::expr::{ge, in_str, like, ne, prefix};
        // 11 distinct values s0..s10 over 10k rows: the relation encodes.
        let r = Arc::new(
            Arc::try_unwrap(rel(10_000, 100))
                .expect("sole owner")
                .dict_encoded(),
        );
        let n = 10_000.0;
        let sel_of = |p: morsel_exec::expr::Expr| {
            est()
                .estimate(&Plan::scan(Arc::clone(&r), Some(p), &["k"]))
                .rows
                / n
        };
        // Equality/inequality of an absent constant: nothing / everything.
        assert!(sel_of(eq(col(2), lits("nope"))) < 1e-3);
        assert!(sel_of(ne(col(2), lits("nope"))) > 0.99);
        // Prefix covers the whole s0..s10 domain; an absent prefix none.
        assert!(sel_of(prefix(col(2), "s")) > 0.99);
        assert!(sel_of(prefix(col(2), "zz")) < 1e-3);
        // IN counts only values present in the domain (1 of 11 here).
        let in_sel = sel_of(in_str(col(2), &["s3", "absent"]));
        assert!((in_sel - 1.0 / 11.0).abs() < 0.02, "in_sel {in_sel}");
        // LIKE enumerates the domain exactly: '%0%' hits s0 and s10.
        let like_sel = sel_of(like(col(2), "%0%"));
        assert!((like_sel - 2.0 / 11.0).abs() < 0.02, "like_sel {like_sel}");
        // Ordering uses code positions: >= "s10" keeps all but "s0"/"s1"
        // (lexicographic order is s0 < s1 < s10 < s2 < ... < s9).
        let ge_sel = sel_of(ge(col(2), lits("s10")));
        assert!((ge_sel - 9.0 / 11.0).abs() < 0.02, "ge_sel {ge_sel}");
    }

    #[test]
    fn pk_fk_join_is_containment_bounded() {
        let fact = rel(100_000, 50);
        let dim = rel(1_000, 10);
        // fact.k joins dim.k: ndv(fact.k)=100k, ndv(dim.k)=1k ->
        // 100k * 1k / 100k = 1k rows.
        let p = Plan::scan(fact, None, &["k", "g"]).join(
            Plan::scan(dim, None, &["k"]),
            &["k"],
            &["k"],
            &[],
        );
        let e = est().estimate(&p);
        assert!(e.rows > 500.0 && e.rows < 2_000.0, "rows {}", e.rows);
    }

    #[test]
    fn group_by_rows_track_ndv() {
        let r = rel(10_000, 37);
        let p = Plan::scan(r, None, &["g", "k"])
            .agg(&["g"], vec![("c", morsel_exec::agg::AggFn::Count)]);
        let e = est().estimate(&p);
        assert!(e.rows > 25.0 && e.rows < 50.0, "rows {}", e.rows);
        // Scalar aggregation collapses to one row.
        let scalar = Plan::scan(rel(1000, 5), None, &["k"])
            .agg(&[], vec![("c", morsel_exec::agg::AggFn::Count)]);
        assert_eq!(est().estimate(&scalar).rows, 1.0);
    }

    #[test]
    fn semi_join_bounded_by_probe_rows() {
        let big = rel(50_000, 50);
        let small = rel(100, 10);
        let p = Plan::scan(big, None, &["k", "g"]).join_kind(
            Plan::scan(small, None, &["k"]),
            &["k"],
            &["k"],
            &[],
            morsel_exec::join::JoinKind::Semi,
        );
        let e = est().estimate(&p);
        assert!(e.rows <= 50_000.0);
        assert!(e.rows < 500.0, "selective semi join, rows {}", e.rows);
    }

    #[test]
    fn limit_caps_rows() {
        let p = Plan::scan(rel(10_000, 10), None, &["k"])
            .sort_by(vec![morsel_exec::sort::SortKey::asc(0)], Some(10));
        assert_eq!(est().estimate(&p).rows, 10.0);
    }
}
