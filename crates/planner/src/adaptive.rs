//! Mid-query re-optimization: re-cost the remaining join order once
//! runtime feedback has corrected the estimates, and splice a cheaper
//! plan if one exists.
//!
//! The morsel engine's pipeline breakers (hash-table build, aggregate
//! merge, sort merge) are natural re-optimization points: when a
//! breaker finishes, the true cardinality of that subtree is known
//! while the rest of the query has not started. The session layer
//! executes the top build side standalone, feeds the observed
//! cardinalities into the [`FeedbackCache`](crate::feedback), replaces
//! the build with its materialized result, and calls [`reoptimize`] to
//! re-enumerate the remaining inner-join block via DPsize under the
//! corrected statistics.
//!
//! Splice invariants (what makes this safe):
//!
//! - only a **maximal run of `JoinKind::Inner` joins** at the top of the
//!   plan (below any unary Sort/Agg/Map/Filter spine) is reordered;
//!   semi/anti/mark joins and anything inside a leaf stay untouched;
//! - leaves are required to have **globally unique column names** (the
//!   lowering pass guarantees this for planned queries); re-emitted
//!   joins resolve keys and payloads by name;
//! - the re-emitted block is wrapped in a `Plan::Map` that restores the
//!   **exact original block-root schema** (names, order, types), so
//!   index-based operators above the splice are oblivious to it;
//! - a replacement is returned only if its estimated cost is at least
//!   [`REOPT_MIN_GAIN`] cheaper **and** the join order actually changed.

use std::collections::{BTreeMap, BTreeSet};

use morsel_exec::expr::col;
use morsel_exec::join::JoinKind;
use morsel_exec::plan::Plan;

use crate::cost::CostParams;
use crate::estimate::Estimator;
use crate::joinorder::{enumerate, tree_cost, GraphEdge, GraphNode, JoinGraph, JoinTree};

/// Minimum relative cost improvement before a splice is worth the churn.
pub const REOPT_MIN_GAIN: f64 = 0.01;

/// Default divergence threshold: re-optimize when a breaker's actual
/// cardinality is off from the estimate by at least this factor (either
/// direction).
pub const REOPT_THRESHOLD_DEFAULT: f64 = 4.0;

/// A successful re-optimization.
#[derive(Clone)]
pub struct Reopt {
    /// The spliced plan (same output schema as the input plan).
    pub plan: Plan,
    /// Estimated cost of the incumbent join order under current stats.
    pub old_cost: f64,
    /// Estimated cost of the chosen replacement order.
    pub new_cost: f64,
    /// Incumbent order, rendered `((a ⋈ b) ⋈ c)`.
    pub old_order: String,
    /// Replacement order.
    pub new_order: String,
}

/// The build side of the topmost inner join (descending through unary
/// operators), i.e. the first pipeline breaker a staged execution would
/// materialize.
pub fn top_build(plan: &Plan) -> Option<&Plan> {
    match plan {
        Plan::Filter { input, .. }
        | Plan::Map { input, .. }
        | Plan::Agg { input, .. }
        | Plan::Sort { input, .. } => top_build(input),
        Plan::Join {
            build,
            kind: JoinKind::Inner,
            ..
        } => Some(build),
        _ => None,
    }
}

/// Clone `plan` with the topmost inner join's build side replaced
/// (typically by a scan of its materialized result). The replacement
/// must produce the same schema as the subtree it replaces.
pub fn with_top_build_replaced(plan: &Plan, replacement: Plan) -> Option<Plan> {
    match plan {
        Plan::Filter { input, predicate } => Some(Plan::Filter {
            input: Box::new(with_top_build_replaced(input, replacement)?),
            predicate: predicate.clone(),
        }),
        Plan::Map { input, project } => Some(Plan::Map {
            input: Box::new(with_top_build_replaced(input, replacement)?),
            project: project.clone(),
        }),
        Plan::Agg {
            input,
            group_cols,
            aggs,
        } => Some(Plan::Agg {
            input: Box::new(with_top_build_replaced(input, replacement)?),
            group_cols: group_cols.clone(),
            aggs: aggs.clone(),
        }),
        Plan::Sort { input, keys, limit } => Some(Plan::Sort {
            input: Box::new(with_top_build_replaced(input, replacement)?),
            keys: keys.clone(),
            limit: *limit,
        }),
        Plan::Join {
            build,
            probe,
            build_keys,
            probe_keys,
            kind,
            build_payload,
        } if matches!(kind, JoinKind::Inner) => {
            debug_assert_eq!(
                replacement.schema().names(),
                build.schema().names(),
                "replacement must preserve the build schema"
            );
            Some(Plan::Join {
                build: Box::new(replacement),
                probe: probe.clone(),
                build_keys: build_keys.clone(),
                probe_keys: probe_keys.clone(),
                kind: *kind,
                build_payload: build_payload.clone(),
            })
        }
        _ => None,
    }
}

/// One extracted inner-join block.
struct Block<'a> {
    leaves: Vec<&'a Plan>,
    /// Equi-join key name pairs, one per key column per join.
    pairs: Vec<(String, String)>,
}

fn collect_block<'a>(plan: &'a Plan, block: &mut Block<'a>) -> JoinTree {
    match plan {
        Plan::Join {
            build,
            probe,
            build_keys,
            probe_keys,
            kind: JoinKind::Inner,
            ..
        } => {
            let ps = probe.schema();
            let bs = build.schema();
            for (&pi, &bi) in probe_keys.iter().zip(build_keys.iter()) {
                block
                    .pairs
                    .push((ps.name(pi).to_owned(), bs.name(bi).to_owned()));
            }
            let pt = collect_block(probe, block);
            let bt = collect_block(build, block);
            JoinTree::Node {
                probe: Box::new(pt),
                build: Box::new(bt),
                edges: Vec::new(),
                rows: 0.0,
            }
        }
        other => {
            block.leaves.push(other);
            JoinTree::Leaf(block.leaves.len() - 1)
        }
    }
}

/// Re-enumerate the topmost inner-join block of `plan` under the
/// estimator's *current* statistics (feedback included) and return a
/// spliced plan if a meaningfully cheaper, different join order exists.
///
/// Returns `None` when there is no reorderable block (fewer than three
/// leaves), when leaf column names are ambiguous, when the enumerator
/// would need a cross product, or when the incumbent order is already
/// (close enough to) optimal.
pub fn reoptimize(
    plan: &Plan,
    estimator: &Estimator,
    params: &CostParams,
    dp_budget: usize,
) -> Option<Reopt> {
    // Descend the unary spine to the block root.
    match plan {
        Plan::Filter { input, .. }
        | Plan::Map { input, .. }
        | Plan::Agg { input, .. }
        | Plan::Sort { input, .. } => {
            let inner = reoptimize(input, estimator, params, dp_budget)?;
            return Some(Reopt {
                plan: rebuild_spine(plan, inner.plan),
                ..inner
            });
        }
        Plan::Join {
            kind: JoinKind::Inner,
            ..
        } => {}
        _ => return None,
    }

    let mut block = Block {
        leaves: Vec::new(),
        pairs: Vec::new(),
    };
    let incumbent = collect_block(plan, &mut block);
    if block.leaves.len() < 3 || block.leaves.len() > 64 {
        return None;
    }

    // Name → leaf ownership; bail on ambiguity (e.g. self-joins).
    let mut owner: BTreeMap<String, usize> = BTreeMap::new();
    for (i, leaf) in block.leaves.iter().enumerate() {
        let s = leaf.schema();
        for n in s.names() {
            if owner.insert(n.to_owned(), i).is_some() {
                return None;
            }
        }
    }

    // Merge key pairs into per-leaf-pair edges (mirrors the lowering
    // pass) and apply any observed edge selectivities.
    let mut edges: Vec<GraphEdge> = Vec::new();
    for (l, r) in &block.pairs {
        let (&a, &b) = (owner.get(l)?, owner.get(r)?);
        if a == b {
            return None;
        }
        let (a, b, ak, bk) = if a < b {
            (a, b, l.clone(), r.clone())
        } else {
            (b, a, r.clone(), l.clone())
        };
        if let Some(e) = edges.iter_mut().find(|e| e.a == a && e.b == b) {
            e.a_keys.push(ak);
            e.b_keys.push(bk);
        } else {
            edges.push(GraphEdge {
                a,
                b,
                a_keys: vec![ak],
                b_keys: vec![bk],
                sel_override: None,
            });
        }
    }
    if let Some(fb) = &estimator.feedback {
        for e in &mut edges {
            e.sel_override = fb.lookup(&crate::feedback::join_key(&e.a_keys, &e.b_keys));
        }
    }

    let key_names: BTreeSet<&String> = block.pairs.iter().flat_map(|(l, r)| [l, r]).collect();
    let nodes: Vec<GraphNode> = block
        .leaves
        .iter()
        .map(|leaf| {
            let est = estimator.estimate(leaf);
            let schema = leaf.schema();
            let key_ndv = key_names
                .iter()
                .filter(|k| schema.names().contains(&k.as_str()))
                .map(|k| {
                    let pos = schema.index_of(k);
                    ((*k).clone(), est.cols[pos].ndv)
                })
                .collect();
            GraphNode {
                label: schema.name(0).to_owned(),
                rows: est.rows,
                width: est.row_width(),
                key_ndv,
            }
        })
        .collect();
    let graph = JoinGraph { nodes, edges };

    let chosen = enumerate(&graph, params, dp_budget);
    if chosen.forced_cross {
        return None;
    }
    let old_cost = tree_cost(&graph, params, &incumbent);
    let old_order = incumbent.render(&graph);
    let new_order = chosen.tree.render(&graph);
    if new_order == old_order || chosen.cost >= old_cost * (1.0 - REOPT_MIN_GAIN) {
        return None;
    }

    // Re-emit the block over the untouched leaf subplans.
    let root_schema = plan.schema();
    let mut required: BTreeSet<String> =
        root_schema.names().iter().map(|&s| s.to_owned()).collect();
    for (l, r) in &block.pairs {
        required.insert(l.clone());
        required.insert(r.clone());
    }
    let mut used = vec![false; block.pairs.len()];
    let emitted = emit(
        &chosen.tree,
        &block.leaves,
        &block.pairs,
        &mut used,
        &required,
    )?;

    // Restore the original schema so operators above are unaffected.
    let spliced = emitted.clone().map(
        root_schema
            .names()
            .iter()
            .map(|&n| (n, col(emitted.schema().index_of(n))))
            .collect(),
    );
    Some(Reopt {
        plan: spliced,
        old_cost,
        new_cost: chosen.cost,
        old_order,
        new_order,
    })
}

fn emit(
    tree: &JoinTree,
    leaves: &[&Plan],
    pairs: &[(String, String)],
    used: &mut [bool],
    required: &BTreeSet<String>,
) -> Option<Plan> {
    match tree {
        JoinTree::Leaf(i) => Some(leaves[*i].clone()),
        JoinTree::Node { probe, build, .. } => {
            let p = emit(probe, leaves, pairs, used, required)?;
            let b = emit(build, leaves, pairs, used, required)?;
            let ps = p.schema();
            let bs = b.schema();
            let pnames: BTreeSet<&str> = ps.names().into_iter().collect();
            let bnames: BTreeSet<&str> = bs.names().into_iter().collect();
            let mut pk: Vec<&str> = Vec::new();
            let mut bk: Vec<&str> = Vec::new();
            for (i, (l, r)) in pairs.iter().enumerate() {
                if used[i] {
                    continue;
                }
                if pnames.contains(l.as_str()) && bnames.contains(r.as_str()) {
                    pk.push(l);
                    bk.push(r);
                    used[i] = true;
                } else if pnames.contains(r.as_str()) && bnames.contains(l.as_str()) {
                    pk.push(r);
                    bk.push(l);
                    used[i] = true;
                }
            }
            if pk.is_empty() {
                return None; // would be a cross product
            }
            let payload: Vec<&str> = bs
                .names()
                .into_iter()
                .filter(|n| required.contains(*n))
                .collect();
            Some(p.join(b, &pk, &bk, &payload))
        }
    }
}

/// Clone the unary spine of `plan`, substituting `new_block` for the
/// first join encountered (the block root `reoptimize` rewrote).
fn rebuild_spine(plan: &Plan, new_block: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(rebuild_spine(input, new_block)),
            predicate: predicate.clone(),
        },
        Plan::Map { input, project } => Plan::Map {
            input: Box::new(rebuild_spine(input, new_block)),
            project: project.clone(),
        },
        Plan::Agg {
            input,
            group_cols,
            aggs,
        } => Plan::Agg {
            input: Box::new(rebuild_spine(input, new_block)),
            group_cols: group_cols.clone(),
            aggs: aggs.clone(),
        },
        Plan::Sort { input, keys, limit } => Plan::Sort {
            input: Box::new(rebuild_spine(input, new_block)),
            keys: keys.clone(),
            limit: *limit,
        },
        _ => new_block,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joinorder::DP_BUDGET_DEFAULT;
    use morsel_numa::Topology;
    use morsel_storage::{Batch, Column, DataType, Relation, Schema};
    use std::sync::Arc;

    fn rel(names: [&str; 2], rows: i64, second_mod: i64) -> Arc<Relation> {
        Arc::new(Relation::single(
            Schema::new(vec![(names[0], DataType::I64), (names[1], DataType::I64)]),
            Batch::from_columns(vec![
                Column::I64((0..rows).collect()),
                Column::I64((0..rows).map(|x| x % second_mod.max(1)).collect()),
            ]),
        ))
    }

    /// Incumbent ((big ⋈ mid) ⋈ small) with an expensive 10k-row build;
    /// the enumerator should prefer reducing mid against small first.
    fn bad_plan() -> Plan {
        let big = Plan::scan(rel(["b_k", "b_v"], 20_000, 7), None, &["b_k", "b_v"]);
        let mid = Plan::scan(rel(["m_k", "m_j"], 10_000, 10_000), None, &["m_k", "m_j"]);
        let small = Plan::scan(rel(["s_j", "s_v"], 50, 5), None, &["s_j", "s_v"]);
        big.join(mid, &["b_k"], &["m_k"], &["m_j"])
            .join(small, &["m_j"], &["s_j"], &["s_v"])
    }

    fn params() -> CostParams {
        CostParams::for_topology(&Topology::nehalem_ex())
    }

    #[test]
    fn reoptimize_splices_a_cheaper_order_and_preserves_the_schema() {
        let plan = bad_plan();
        let r = reoptimize(&plan, &Estimator::default(), &params(), DP_BUDGET_DEFAULT)
            .expect("a 10k-row premature build must be beatable");
        assert!(r.new_cost < r.old_cost);
        assert_ne!(r.new_order, r.old_order);
        assert_eq!(
            r.plan.schema().names(),
            plan.schema().names(),
            "splice must restore the block-root schema exactly"
        );
    }

    #[test]
    fn reoptimize_descends_a_unary_spine() {
        let plan = bad_plan().agg(&["s_v"], vec![("n", morsel_exec::agg::AggFn::Count)]);
        let r = reoptimize(&plan, &Estimator::default(), &params(), DP_BUDGET_DEFAULT)
            .expect("the spine must not hide the block");
        assert_eq!(r.plan.schema().names(), plan.schema().names());
    }

    #[test]
    fn two_way_joins_are_left_alone() {
        let big = Plan::scan(rel(["b_k", "b_v"], 1000, 7), None, &["b_k", "b_v"]);
        let mid = Plan::scan(rel(["m_k", "m_j"], 100, 100), None, &["m_k"]);
        let plan = big.join(mid, &["b_k"], &["m_k"], &[]);
        assert!(reoptimize(&plan, &Estimator::default(), &params(), DP_BUDGET_DEFAULT).is_none());
    }

    #[test]
    fn top_build_finds_the_first_breaker() {
        let plan = bad_plan();
        let build = top_build(&plan).expect("plan has an inner join");
        // The top join's build side is the small relation's scan.
        assert_eq!(build.schema().names(), vec!["s_j", "s_v"]);
        let replacement = build.clone();
        let swapped = with_top_build_replaced(&plan, replacement).unwrap();
        assert_eq!(swapped.schema().names(), plan.schema().names());
    }
}
