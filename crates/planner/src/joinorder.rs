//! Join-order enumeration: DPsize with a greedy fallback.
//!
//! The lowering pass flattens each maximal run of inner joins into a
//! [`JoinGraph`] — vertices are already-lowered inputs with estimated
//! cardinalities, edges are the equi-join predicates connecting them —
//! and asks this module for the cheapest join tree under the NUMA cost
//! model ([`CostParams::join_step`]).
//!
//! Up to [`DP_BUDGET_DEFAULT`] relations the enumerator runs classic
//! DPsize (Moerkotte & Neumann's terminology: dynamic programming by
//! subplan size over connected subgraphs, cross products only when the
//! graph is disconnected). Past the budget it falls back to greedy
//! operator ordering (repeatedly join the connected pair with the
//! smallest output), which is linear-ish and good enough for the
//! machine-generated many-way joins a serving system sees.
//!
//! Cardinality of a vertex set is order-independent under the
//! containment assumption: the product of vertex cardinalities times the
//! selectivity of every edge internal to the set. That keeps the DP
//! admissible — every split of the same set agrees on the result size.

use std::collections::HashMap;

use crate::cost::CostParams;

/// Relation-count budget beyond which DPsize yields to the greedy
/// heuristic (DPsize explores ~3^n subset splits).
pub const DP_BUDGET_DEFAULT: usize = 12;

/// A vertex: one reorderable input.
#[derive(Debug, Clone)]
pub struct GraphNode {
    /// Display label (base table name or operator description).
    pub label: String,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated bytes per output row.
    pub width: f64,
    /// Estimated distinct counts for the columns used as join keys.
    pub key_ndv: HashMap<String, f64>,
}

impl GraphNode {
    fn ndv(&self, key: &str) -> f64 {
        self.key_ndv.get(key).copied().unwrap_or(self.rows).max(1.0)
    }
}

/// An equi-join predicate between two vertices (possibly multi-column).
#[derive(Debug, Clone)]
pub struct GraphEdge {
    pub a: usize,
    pub b: usize,
    pub a_keys: Vec<String>,
    pub b_keys: Vec<String>,
    /// Observed selectivity from runtime feedback
    /// ([`crate::feedback::FeedbackCache`]); when set it replaces the
    /// containment estimate for this edge.
    pub sel_override: Option<f64>,
}

/// The join graph for one inner-join block.
#[derive(Debug, Clone, Default)]
pub struct JoinGraph {
    pub nodes: Vec<GraphNode>,
    pub edges: Vec<GraphEdge>,
}

impl JoinGraph {
    /// Selectivity of one edge: containment of value sets over the
    /// combined (multi-column) key.
    fn edge_selectivity(&self, e: &GraphEdge) -> f64 {
        if let Some(s) = e.sel_override {
            return s.clamp(1e-9, 1.0);
        }
        let na = &self.nodes[e.a];
        let nb = &self.nodes[e.b];
        let ndv_a = e
            .a_keys
            .iter()
            .map(|k| na.ndv(k))
            .product::<f64>()
            .min(na.rows.max(1.0));
        let ndv_b = e
            .b_keys
            .iter()
            .map(|k| nb.ndv(k))
            .product::<f64>()
            .min(nb.rows.max(1.0));
        1.0 / ndv_a.max(ndv_b).max(1.0)
    }

    /// Estimated rows of a vertex subset: product of vertex rows times
    /// every internal edge's selectivity (order-independent).
    fn set_rows(&self, set: u64) -> f64 {
        let mut rows: f64 = 1.0;
        for (i, n) in self.nodes.iter().enumerate() {
            if set & (1 << i) != 0 {
                rows *= n.rows.max(1.0);
            }
        }
        for e in &self.edges {
            if set & (1 << e.a) != 0 && set & (1 << e.b) != 0 {
                rows *= self.edge_selectivity(e);
            }
        }
        rows.max(1.0)
    }

    fn set_width(&self, set: u64) -> f64 {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| set & (1 << i) != 0)
            .map(|(_, n)| n.width)
            .sum::<f64>()
            .max(1.0)
    }

    /// Edge indexes crossing between two disjoint sets.
    fn crossing_edges(&self, s1: u64, s2: u64) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                let (ba, bb) = (1u64 << e.a, 1u64 << e.b);
                (s1 & ba != 0 && s2 & bb != 0) || (s2 & ba != 0 && s1 & bb != 0)
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// A chosen join order.
#[derive(Debug, Clone)]
pub enum JoinTree {
    Leaf(usize),
    Node {
        /// Streaming (probe) side.
        probe: Box<JoinTree>,
        /// Materialized (build) side.
        build: Box<JoinTree>,
        /// Edge indexes applied at this join (≥1 unless forced cross).
        edges: Vec<usize>,
        /// Estimated output rows.
        rows: f64,
    },
}

impl JoinTree {
    /// Leaf indexes in probe-before-build preorder.
    pub fn leaves(&self, out: &mut Vec<usize>) {
        match self {
            JoinTree::Leaf(i) => out.push(*i),
            JoinTree::Node { probe, build, .. } => {
                probe.leaves(out);
                build.leaves(out);
            }
        }
    }

    /// Human-readable order, e.g. `((lineitem ⋈ orders) ⋈ customer)`.
    pub fn render(&self, graph: &JoinGraph) -> String {
        match self {
            JoinTree::Leaf(i) => graph.nodes[*i].label.clone(),
            JoinTree::Node { probe, build, .. } => {
                format!("({} ⋈ {})", probe.render(graph), build.render(graph))
            }
        }
    }
}

/// Result of enumeration.
#[derive(Debug, Clone)]
pub struct Enumerated {
    pub tree: JoinTree,
    /// Estimated cost of the join block (excluding leaf production).
    pub cost: f64,
    /// Whether a cross product had to be forced (disconnected graph).
    pub forced_cross: bool,
}

#[derive(Clone)]
struct Best {
    tree: JoinTree,
    cost: f64,
    set: u64,
}

/// Enumerate the cheapest join tree for `graph`.
///
/// # Panics
/// Panics if the graph is empty or has more than 64 vertices.
pub fn enumerate(graph: &JoinGraph, params: &CostParams, dp_budget: usize) -> Enumerated {
    let n = graph.nodes.len();
    assert!(n >= 1, "empty join graph");
    assert!(n <= 64, "join graph too large for bitset enumeration");
    if n == 1 {
        return Enumerated {
            tree: JoinTree::Leaf(0),
            cost: 0.0,
            forced_cross: false,
        };
    }
    if n <= dp_budget {
        dpsize(graph, params)
    } else {
        greedy(graph, params)
    }
}

/// Cost and orientation of joining two solved subsets; returns the
/// combined tree node.
fn join_sets(graph: &JoinGraph, params: &CostParams, s1: &Best, s2: &Best) -> Best {
    let set = s1.set | s2.set;
    let out_rows = graph.set_rows(set);
    let out_bytes = out_rows * graph.set_width(set);
    let (r1, w1) = (graph.set_rows(s1.set), graph.set_width(s1.set));
    let (r2, w2) = (graph.set_rows(s2.set), graph.set_width(s2.set));
    let edges = graph.crossing_edges(s1.set, s2.set);
    // Orientation: build the smaller side (by bytes), stream the larger.
    let (build, probe, br, bw, pr, pw) = if r1 * w1 <= r2 * w2 {
        (s1, s2, r1, w1, r2, w2)
    } else {
        (s2, s1, r2, w2, r1, w1)
    };
    let step = params.join_step(br, br * bw, pr, pr * pw, out_rows, out_bytes);
    Best {
        tree: JoinTree::Node {
            probe: Box::new(probe.tree.clone()),
            build: Box::new(build.tree.clone()),
            edges,
            rows: out_rows,
        },
        cost: s1.cost + s2.cost + step,
        set,
    }
}

fn leaf_best(i: usize) -> Best {
    Best {
        tree: JoinTree::Leaf(i),
        cost: 0.0,
        set: 1 << i,
    }
}

/// Classic DPsize: solve connected subsets by increasing size; a second
/// pass stitches disconnected components with cross products only if the
/// graph itself is disconnected.
fn dpsize(graph: &JoinGraph, params: &CostParams) -> Enumerated {
    let n = graph.nodes.len();
    let full: u64 = if n == 64 { u64::MAX } else { (1 << n) - 1 };
    let mut best: HashMap<u64, Best> = HashMap::new();
    let mut by_size: Vec<Vec<u64>> = vec![Vec::new(); n + 1];
    for i in 0..n {
        best.insert(1 << i, leaf_best(i));
        by_size[1].push(1 << i);
    }
    for size in 2..=n {
        for s1_size in 1..size {
            let s2_size = size - s1_size;
            if s2_size < s1_size {
                break; // symmetric splits already visited
            }
            let (smaller, larger) = (by_size[s1_size].clone(), by_size[s2_size].clone());
            for &sa in &smaller {
                for &sb in &larger {
                    if sa & sb != 0 || (s1_size == s2_size && sa >= sb) {
                        continue;
                    }
                    if graph.crossing_edges(sa, sb).is_empty() {
                        continue; // no cross products in the DP itself
                    }
                    let (ba, bb) = (best[&sa].clone(), best[&sb].clone());
                    let cand = join_sets(graph, params, &ba, &bb);
                    let set = cand.set;
                    match best.get(&set) {
                        Some(b) if b.cost <= cand.cost => {}
                        _ => {
                            if !best.contains_key(&set) {
                                by_size[size].push(set);
                            }
                            best.insert(set, cand);
                        }
                    }
                }
            }
        }
    }
    if let Some(b) = best.get(&full) {
        return Enumerated {
            tree: b.tree.clone(),
            cost: b.cost,
            forced_cross: false,
        };
    }
    // Disconnected graph: the DP solved each connected component; cross
    // the components smallest-first (the standard forced-cross stitch).
    let mut components: Vec<Best> = connected_components(graph)
        .into_iter()
        .map(|c| best[&c].clone())
        .collect();
    components.sort_by(|a, b| {
        graph
            .set_rows(a.set)
            .partial_cmp(&graph.set_rows(b.set))
            .unwrap()
    });
    let mut acc = components[0].clone();
    for c in &components[1..] {
        acc = join_sets(graph, params, &acc, c);
    }
    Enumerated {
        cost: acc.cost,
        tree: acc.tree,
        forced_cross: true,
    }
}

/// Cost of the left-deep tree that joins the vertices in exactly the
/// given sequence (build/probe orientation still chosen per step). Used
/// by tests and the `plan_quality` baseline as "the order a human wrote".
pub fn left_deep_cost(graph: &JoinGraph, params: &CostParams, order: &[usize]) -> f64 {
    assert!(!order.is_empty());
    let mut acc = leaf_best(order[0]);
    for &i in &order[1..] {
        acc = join_sets(graph, params, &acc, &leaf_best(i));
    }
    acc.cost
}

/// Cost of a specific join tree under the current graph statistics
/// (build/probe orientation re-chosen per step, like the enumerator).
/// This is how mid-query re-optimization prices the *incumbent* order
/// under feedback-updated statistics, for an apples-to-apples comparison
/// with a fresh enumeration.
pub fn tree_cost(graph: &JoinGraph, params: &CostParams, tree: &JoinTree) -> f64 {
    fn solve(graph: &JoinGraph, params: &CostParams, tree: &JoinTree) -> Best {
        match tree {
            JoinTree::Leaf(i) => leaf_best(*i),
            JoinTree::Node { probe, build, .. } => {
                let p = solve(graph, params, probe);
                let b = solve(graph, params, build);
                join_sets(graph, params, &p, &b)
            }
        }
    }
    solve(graph, params, tree).cost
}

/// Connected components as bitsets.
fn connected_components(graph: &JoinGraph) -> Vec<u64> {
    let n = graph.nodes.len();
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack = vec![start];
        let mut set = 0u64;
        while let Some(v) = stack.pop() {
            if seen[v] {
                continue;
            }
            seen[v] = true;
            set |= 1 << v;
            for e in &graph.edges {
                if e.a == v && !seen[e.b] {
                    stack.push(e.b);
                }
                if e.b == v && !seen[e.a] {
                    stack.push(e.a);
                }
            }
        }
        out.push(set);
    }
    out
}

/// Greedy operator ordering: repeatedly merge the connected pair with
/// the smallest estimated output (cross products only when nothing is
/// connected).
fn greedy(graph: &JoinGraph, params: &CostParams) -> Enumerated {
    let mut parts: Vec<Best> = (0..graph.nodes.len()).map(leaf_best).collect();
    let mut forced_cross = false;
    while parts.len() > 1 {
        let mut choice: Option<(usize, usize, f64)> = None;
        for i in 0..parts.len() {
            for j in i + 1..parts.len() {
                if graph.crossing_edges(parts[i].set, parts[j].set).is_empty() {
                    continue;
                }
                let rows = graph.set_rows(parts[i].set | parts[j].set);
                if choice.is_none_or(|(_, _, r)| rows < r) {
                    choice = Some((i, j, rows));
                }
            }
        }
        let (i, j) = match choice {
            Some((i, j, _)) => (i, j),
            None => {
                // Disconnected: cross the two smallest parts.
                forced_cross = true;
                let mut idx: Vec<usize> = (0..parts.len()).collect();
                idx.sort_by(|&a, &b| {
                    graph
                        .set_rows(parts[a].set)
                        .partial_cmp(&graph.set_rows(parts[b].set))
                        .unwrap()
                });
                (idx[0].min(idx[1]), idx[0].max(idx[1]))
            }
        };
        let b = parts.swap_remove(j);
        let a = parts.swap_remove(i);
        parts.push(join_sets(graph, params, &a, &b));
    }
    let done = parts.pop().unwrap();
    Enumerated {
        cost: done.cost,
        tree: done.tree,
        forced_cross,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morsel_numa::Topology;

    fn node(label: &str, rows: f64, keys: &[(&str, f64)]) -> GraphNode {
        GraphNode {
            label: label.to_owned(),
            rows,
            width: 16.0,
            key_ndv: keys.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        }
    }

    fn edge(a: usize, b: usize, ak: &str, bk: &str) -> GraphEdge {
        GraphEdge {
            a,
            b,
            a_keys: vec![ak.to_owned()],
            b_keys: vec![bk.to_owned()],
            sel_override: None,
        }
    }

    fn params() -> CostParams {
        CostParams::for_topology(&Topology::nehalem_ex())
    }

    #[test]
    fn single_relation_is_a_leaf() {
        let g = JoinGraph {
            nodes: vec![node("r", 100.0, &[])],
            edges: vec![],
        };
        let e = enumerate(&g, &params(), DP_BUDGET_DEFAULT);
        assert!(matches!(e.tree, JoinTree::Leaf(0)));
        assert_eq!(e.cost, 0.0);
    }

    #[test]
    fn two_relations_build_the_small_side() {
        let g = JoinGraph {
            nodes: vec![
                node("big", 1_000_000.0, &[("k", 1_000_000.0)]),
                node("small", 100.0, &[("k", 100.0)]),
            ],
            edges: vec![edge(0, 1, "k", "k")],
        };
        let e = enumerate(&g, &params(), DP_BUDGET_DEFAULT);
        match &e.tree {
            JoinTree::Node { probe, build, .. } => {
                assert!(matches!(**probe, JoinTree::Leaf(0)));
                assert!(matches!(**build, JoinTree::Leaf(1)));
            }
            other => panic!("expected a join node, got {other:?}"),
        }
    }

    #[test]
    fn disconnected_graph_forces_cross_product() {
        let g = JoinGraph {
            nodes: vec![node("a", 10.0, &[]), node("b", 20.0, &[])],
            edges: vec![],
        };
        let e = enumerate(&g, &params(), DP_BUDGET_DEFAULT);
        assert!(e.forced_cross);
        match &e.tree {
            JoinTree::Node { edges, .. } => assert!(edges.is_empty()),
            other => panic!("expected a join node, got {other:?}"),
        }
    }

    #[test]
    fn tree_cost_agrees_with_enumeration() {
        let g = JoinGraph {
            nodes: vec![
                node("a", 50_000.0, &[("k", 50_000.0)]),
                node("b", 5_000.0, &[("k", 5_000.0), ("j", 100.0)]),
                node("c", 200.0, &[("j", 100.0)]),
            ],
            edges: vec![edge(0, 1, "k", "k"), edge(1, 2, "j", "j")],
        };
        let e = enumerate(&g, &params(), DP_BUDGET_DEFAULT);
        let c = tree_cost(&g, &params(), &e.tree);
        assert!((c - e.cost).abs() / e.cost.max(1.0) < 1e-9);
    }

    #[test]
    fn sel_override_redirects_the_plan() {
        // Without feedback both edges look alike; an override that makes
        // the a–b edge explosive pushes the enumerator to start with b⋈c.
        let mk = |sel: Option<f64>| {
            let mut e0 = edge(0, 1, "k", "k");
            e0.sel_override = sel;
            JoinGraph {
                nodes: vec![
                    node("a", 10_000.0, &[("k", 10_000.0)]),
                    node("b", 10_000.0, &[("k", 10_000.0), ("j", 10_000.0)]),
                    node("c", 10_000.0, &[("j", 10_000.0)]),
                ],
                edges: vec![e0, edge(1, 2, "j", "j")],
            }
        };
        let base = enumerate(&mk(None), &params(), DP_BUDGET_DEFAULT);
        let fed = enumerate(&mk(Some(0.5)), &params(), DP_BUDGET_DEFAULT);
        assert!(
            fed.cost > base.cost,
            "a 0.5-selectivity edge must look far more expensive than 1/ndv"
        );
    }

    #[test]
    fn greedy_handles_many_relations() {
        // 16-relation chain, past the DP budget.
        let n = 16;
        let nodes: Vec<GraphNode> = (0..n)
            .map(|i| node(&format!("r{i}"), 1000.0 * (i + 1) as f64, &[("k", 500.0)]))
            .collect();
        let edges: Vec<GraphEdge> = (0..n - 1).map(|i| edge(i, i + 1, "k", "k")).collect();
        let g = JoinGraph { nodes, edges };
        let e = enumerate(&g, &params(), DP_BUDGET_DEFAULT);
        let mut leaves = Vec::new();
        e.tree.leaves(&mut leaves);
        leaves.sort_unstable();
        assert_eq!(leaves, (0..n).collect::<Vec<_>>());
        assert!(!e.forced_cross, "chain is connected");
    }
}
