//! # morsel-planner
//!
//! The cost-based query planner for the morsel-driven engine. The paper
//! (and the rest of this reproduction) hand-authors physical plans
//! because its subject is execution; this crate closes the loop for the
//! production system the roadmap aims at:
//!
//! 1. **Catalog** — per-column min/max, null counts, and HyperLogLog NDV
//!    sketches, computed per partition and cached on each `Relation`
//!    (`morsel_storage::stats`).
//! 2. **Logical algebra** ([`logical`]) — declarative query specs over
//!    named columns, with a builder DSL mirroring the hand-plan style.
//! 3. **Estimation** ([`estimate`]) — System-R-style cardinalities under
//!    independence and join containment.
//! 4. **Join ordering** ([`joinorder`]) — DPsize over the join graph with
//!    a greedy fallback past a relation budget, costed with the same
//!    calibrated NUMA model (`morsel_numa::CostModel`) that drives the
//!    simulator: build-side size, socket spread, and probe stream costs
//!    decide the order.
//! 5. **Lowering** ([`lower`]) — emits the executor's physical
//!    [`Plan`](morsel_exec::plan::Plan), choosing build/probe sides and
//!    pushing projections into scans, so the compiler, dispatcher, and
//!    service layer run planned queries unchanged.

pub mod adaptive;
pub mod cost;
pub mod dml;
pub mod estimate;
pub mod explain;
pub mod feedback;
pub mod joinorder;
pub mod logical;
pub mod lower;

pub use adaptive::{reoptimize, Reopt};
pub use cost::{plan_cost, CostParams};
pub use dml::{DmlKind, DmlPlan};
pub use estimate::{ColEst, Estimator, PlanEst};
pub use feedback::{harvest, FeedbackCache, FeedbackEntry, FEEDBACK_DECAY};
pub use joinorder::{
    enumerate, left_deep_cost, tree_cost, GraphEdge, GraphNode, JoinGraph, JoinTree,
    DP_BUDGET_DEFAULT,
};
pub use logical::{AggSpec, LogicalPlan, OrderBy};
pub use lower::{BlockReport, PlanHandle, PlanReport, Planner};
