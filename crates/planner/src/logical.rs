//! The logical algebra: declarative query specs over named columns.
//!
//! A [`LogicalPlan`] describes *what* to compute — scans, filters,
//! projections, joins keyed by column **names**, aggregates, and sorts —
//! without fixing join order or build/probe sides. The planner
//! ([`crate::lower::Planner`]) turns it into the physical
//! [`Plan`](morsel_exec::plan::Plan) the executor runs.
//!
//! Scalar expressions reuse the executor's [`Expr`] with column indices
//! resolved against the node's *canonical* input schema (the schema
//! [`LogicalPlan::schema`] reports). The lowering pass remaps those
//! indices when join reordering or projection pruning changes the
//! physical column layout, so authors write expressions exactly as they
//! would against the hand-authored plans.

use std::sync::Arc;

use morsel_exec::agg::AggFn;
use morsel_exec::expr::{col, Expr};
use morsel_exec::join::JoinKind;
use morsel_storage::{DataType, Relation, Schema};

/// An aggregate call over a named input column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggSpec {
    /// `count(*)`.
    Count,
    /// `sum(col)` — integer or float, chosen by the column's type.
    Sum(String),
    Min(String),
    Max(String),
    /// `avg(col)` over an integer column, emitted as `f64`.
    Avg(String),
    /// `count(distinct col)` over an integer column.
    CountDistinct(String),
}

impl AggSpec {
    // Builder shorthands (so query authors write `AggSpec::sum("rev")`).

    pub fn sum(c: &str) -> Self {
        AggSpec::Sum(c.to_owned())
    }

    pub fn min(c: &str) -> Self {
        AggSpec::Min(c.to_owned())
    }

    pub fn max(c: &str) -> Self {
        AggSpec::Max(c.to_owned())
    }

    pub fn avg(c: &str) -> Self {
        AggSpec::Avg(c.to_owned())
    }

    pub fn count_distinct(c: &str) -> Self {
        AggSpec::CountDistinct(c.to_owned())
    }

    /// The input column name, if any.
    pub fn input(&self) -> Option<&str> {
        match self {
            AggSpec::Count => None,
            AggSpec::Sum(c)
            | AggSpec::Min(c)
            | AggSpec::Max(c)
            | AggSpec::Avg(c)
            | AggSpec::CountDistinct(c) => Some(c),
        }
    }

    /// Resolve to the executor's [`AggFn`] against a physical schema.
    pub fn resolve(&self, schema: &Schema) -> AggFn {
        match self {
            AggSpec::Count => AggFn::Count,
            AggSpec::Sum(c) => {
                let i = schema.index_of(c);
                if schema.dtype(i) == DataType::F64 {
                    AggFn::SumF64(i)
                } else {
                    AggFn::SumI64(i)
                }
            }
            AggSpec::Min(c) => AggFn::MinI64(schema.index_of(c)),
            AggSpec::Max(c) => AggFn::MaxI64(schema.index_of(c)),
            AggSpec::Avg(c) => AggFn::AvgI64(schema.index_of(c)),
            AggSpec::CountDistinct(c) => AggFn::CountDistinctI64(schema.index_of(c)),
        }
    }

    /// Output type, given the input schema.
    pub fn output_type(&self, schema: &Schema) -> DataType {
        self.resolve(schema).output_type()
    }
}

/// A sort key by column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderBy {
    pub column: String,
    pub descending: bool,
}

impl OrderBy {
    pub fn asc(column: &str) -> Self {
        OrderBy {
            column: column.to_owned(),
            descending: false,
        }
    }

    pub fn desc(column: &str) -> Self {
        OrderBy {
            column: column.to_owned(),
            descending: true,
        }
    }
}

/// A declarative logical query plan.
#[derive(Clone)]
pub enum LogicalPlan {
    /// Scan a base relation: optional filter over the *base* schema,
    /// projection into named working columns.
    Scan {
        table: String,
        relation: Arc<Relation>,
        filter: Option<Expr>,
        project: Vec<(String, Expr)>,
    },
    /// Filter on the canonical schema of `input`.
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    /// Replace the working columns by projected expressions (canonical
    /// indices of `input`).
    Project {
        input: Box<LogicalPlan>,
        project: Vec<(String, Expr)>,
    },
    /// Equi-join by column names. For [`JoinKind::Inner`] the canonical
    /// output is all `left` columns followed by all `right` columns; the
    /// planner is free to reorder a block of adjacent inner joins and to
    /// pick build/probe sides. Semi/Anti keep only `left` columns; Count
    /// appends a `match_count` column.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        left_keys: Vec<String>,
        right_keys: Vec<String>,
        kind: JoinKind,
    },
    /// Grouped (or scalar) aggregation over named columns.
    Aggregate {
        input: Box<LogicalPlan>,
        group: Vec<String>,
        aggs: Vec<(String, AggSpec)>,
    },
    /// Order by named columns, with optional limit.
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<OrderBy>,
        limit: Option<usize>,
    },
}

impl LogicalPlan {
    // Constructors ------------------------------------------------------

    /// Scan named base-table columns.
    pub fn scan(table: &str, relation: Arc<Relation>, filter: Option<Expr>, cols: &[&str]) -> Self {
        let project = cols
            .iter()
            .map(|&c| (c.to_owned(), col(relation.schema().index_of(c))))
            .collect();
        LogicalPlan::Scan {
            table: table.to_owned(),
            relation,
            filter,
            project,
        }
    }

    /// Scan with computed projections (exprs over the base schema).
    pub fn scan_project(
        table: &str,
        relation: Arc<Relation>,
        filter: Option<Expr>,
        project: Vec<(&str, Expr)>,
    ) -> Self {
        LogicalPlan::Scan {
            table: table.to_owned(),
            relation,
            filter,
            project: project
                .into_iter()
                .map(|(n, e)| (n.to_owned(), e))
                .collect(),
        }
    }

    pub fn filter(self, predicate: Expr) -> Self {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    pub fn project(self, project: Vec<(&str, Expr)>) -> Self {
        LogicalPlan::Project {
            input: Box::new(self),
            project: project
                .into_iter()
                .map(|(n, e)| (n.to_owned(), e))
                .collect(),
        }
    }

    /// Inner-join `self` with `right` on named key equalities.
    pub fn join(self, right: LogicalPlan, left_keys: &[&str], right_keys: &[&str]) -> Self {
        self.join_kind(right, left_keys, right_keys, JoinKind::Inner)
    }

    pub fn join_kind(
        self,
        right: LogicalPlan,
        left_keys: &[&str],
        right_keys: &[&str],
        kind: JoinKind,
    ) -> Self {
        assert_eq!(left_keys.len(), right_keys.len(), "join key arity mismatch");
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_keys: left_keys.iter().map(|&k| k.to_owned()).collect(),
            right_keys: right_keys.iter().map(|&k| k.to_owned()).collect(),
            kind,
        }
    }

    pub fn aggregate(self, group: &[&str], aggs: Vec<(&str, AggSpec)>) -> Self {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group: group.iter().map(|&g| g.to_owned()).collect(),
            aggs: aggs.into_iter().map(|(n, a)| (n.to_owned(), a)).collect(),
        }
    }

    pub fn sort(self, keys: Vec<OrderBy>, limit: Option<usize>) -> Self {
        LogicalPlan::Sort {
            input: Box::new(self),
            keys,
            limit,
        }
    }

    // Schema ------------------------------------------------------------

    /// Canonical output schema (names and types). Join reordering never
    /// changes this — only the physical layout underneath.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::Scan {
                relation, project, ..
            } => {
                let src = relation.schema().data_types();
                Schema::new(
                    project
                        .iter()
                        .map(|(n, e)| (n.as_str(), e.result_type(&src)))
                        .collect(),
                )
            }
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { input, project } => {
                let src = input.schema().data_types();
                Schema::new(
                    project
                        .iter()
                        .map(|(n, e)| (n.as_str(), e.result_type(&src)))
                        .collect(),
                )
            }
            LogicalPlan::Join {
                left, right, kind, ..
            } => {
                let l = left.schema();
                let mut fields: Vec<(String, DataType)> = (0..l.len())
                    .map(|i| (l.name(i).to_owned(), l.dtype(i)))
                    .collect();
                match kind {
                    JoinKind::Inner | JoinKind::InnerMark => {
                        let r = right.schema();
                        for i in 0..r.len() {
                            let name = r.name(i);
                            assert!(
                                !fields.iter().any(|(n, _)| n == name),
                                "duplicate column name {name:?} across join sides; \
                                 rename one side in its scan/projection"
                            );
                            fields.push((name.to_owned(), r.dtype(i)));
                        }
                    }
                    JoinKind::Semi | JoinKind::Anti => {}
                    JoinKind::Count => fields.push(("match_count".to_owned(), DataType::I64)),
                }
                Schema::new(fields.iter().map(|(n, t)| (n.as_str(), *t)).collect())
            }
            LogicalPlan::Aggregate { input, group, aggs } => {
                let src = input.schema();
                let mut fields: Vec<(String, DataType)> = group
                    .iter()
                    .map(|g| {
                        let i = src.index_of(g);
                        (g.clone(), src.dtype(i))
                    })
                    .collect();
                for (n, a) in aggs {
                    fields.push((n.clone(), a.output_type(&src)));
                }
                Schema::new(fields.iter().map(|(n, t)| (n.as_str(), *t)).collect())
            }
            LogicalPlan::Sort { input, .. } => input.schema(),
        }
    }

    /// Canonical index of a named output column.
    pub fn col_index(&self, name: &str) -> usize {
        self.schema().index_of(name)
    }

    /// Column reference by name (for building filter/project expressions
    /// against this plan's canonical schema).
    pub fn cref(&self, name: &str) -> Expr {
        col(self.col_index(name))
    }

    /// Number of base-relation scans in the tree.
    pub fn scan_count(&self) -> usize {
        match self {
            LogicalPlan::Scan { .. } => 1,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. } => input.scan_count(),
            LogicalPlan::Join { left, right, .. } => left.scan_count() + right.scan_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morsel_exec::expr::{gt, lit};
    use morsel_numa::{Placement, Topology};
    use morsel_storage::{Batch, Column, PartitionBy};

    fn rel(names: (&str, &str), n: i64) -> Arc<Relation> {
        Arc::new(Relation::partitioned(
            Schema::new(vec![(names.0, DataType::I64), (names.1, DataType::I64)]),
            &Batch::from_columns(vec![
                Column::I64((0..n).collect()),
                Column::I64((0..n).map(|x| x % 7).collect()),
            ]),
            PartitionBy::Hash { column: 0 },
            4,
            Placement::FirstTouch,
            &Topology::laptop(),
        ))
    }

    #[test]
    fn canonical_schema_concatenates_join_sides() {
        let p = LogicalPlan::scan("a", rel(("ak", "av"), 100), None, &["ak", "av"])
            .join(
                LogicalPlan::scan("b", rel(("bk", "bv"), 10), None, &["bk", "bv"]),
                &["ak"],
                &["bk"],
            )
            .aggregate(&["bv"], vec![("total", AggSpec::sum("av"))]);
        assert_eq!(
            p.schema().names(),
            vec!["bv", "total"],
            "aggregate output is group cols then aggs"
        );
        let join = LogicalPlan::scan("a", rel(("ak", "av"), 100), None, &["ak", "av"]).join(
            LogicalPlan::scan("b", rel(("bk", "bv"), 10), None, &["bk", "bv"]),
            &["ak"],
            &["bk"],
        );
        assert_eq!(join.schema().names(), vec!["ak", "av", "bk", "bv"]);
        assert_eq!(join.scan_count(), 2);
    }

    #[test]
    fn semi_join_keeps_left_columns_only() {
        let p = LogicalPlan::scan("a", rel(("ak", "av"), 100), None, &["ak", "av"]).join_kind(
            LogicalPlan::scan("b", rel(("bk", "bv"), 10), None, &["bk"]),
            &["ak"],
            &["bk"],
            JoinKind::Semi,
        );
        assert_eq!(p.schema().names(), vec!["ak", "av"]);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_across_sides_rejected() {
        let p = LogicalPlan::scan("a", rel(("k", "v"), 10), None, &["k", "v"]).join(
            LogicalPlan::scan("b", rel(("k", "w"), 10), None, &["k"]),
            &["k"],
            &["k"],
        );
        p.schema();
    }

    #[test]
    fn filter_and_sort_preserve_schema() {
        let p = LogicalPlan::scan("a", rel(("k", "v"), 10), None, &["k", "v"])
            .filter(gt(col(1), lit(3)))
            .sort(vec![OrderBy::desc("v"), OrderBy::asc("k")], Some(5));
        assert_eq!(p.schema().names(), vec!["k", "v"]);
        assert_eq!(p.col_index("v"), 1);
    }
}
