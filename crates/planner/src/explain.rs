//! EXPLAIN-style rendering with estimated (and measured) cardinalities.
//!
//! [`collect`] walks a physical plan in pre-order and pairs every
//! operator with its estimated output rows plus a clone of the subtree
//! rooted there — callers that want estimated-vs-actual numbers (the
//! `repro explain` command) execute each subtree and feed the measured
//! row counts back into [`render`].

use morsel_exec::plan::Plan;

use crate::estimate::{EstMemo, Estimator};

/// One operator line of an explain tree.
pub struct ExplainLine {
    pub depth: usize,
    pub label: String,
    /// Estimated output rows.
    pub est_rows: f64,
    /// The subtree rooted at this operator (executable on its own).
    pub subplan: Plan,
}

/// Pre-order operator list with estimates.
pub fn collect(plan: &Plan, estimator: &Estimator) -> Vec<ExplainLine> {
    let mut out = Vec::new();
    walk(plan, estimator, 0, &mut out, &mut EstMemo::new());
    out
}

fn walk(
    plan: &Plan,
    estimator: &Estimator,
    depth: usize,
    out: &mut Vec<ExplainLine>,
    memo: &mut EstMemo,
) {
    let est = estimator.estimate_memo(plan, memo);
    let label = match plan {
        Plan::Scan {
            relation, filter, ..
        } => format!(
            "Scan [{} rows{}]",
            relation.total_rows(),
            if filter.is_some() { ", filtered" } else { "" }
        ),
        Plan::Filter { .. } => "Filter".to_owned(),
        Plan::Map { project, .. } => format!("Map -> {} cols", project.len()),
        Plan::Join {
            kind, probe_keys, ..
        } => format!("HashJoin {kind:?} on {} key(s)", probe_keys.len()),
        Plan::Agg {
            group_cols, aggs, ..
        } => format!(
            "Aggregate [{} group col(s), {} agg(s)]",
            group_cols.len(),
            aggs.len()
        ),
        Plan::Sort { keys, limit, .. } => match limit {
            Some(k) => format!("Sort [{} key(s), limit {k}]", keys.len()),
            None => format!("Sort [{} key(s)]", keys.len()),
        },
    };
    out.push(ExplainLine {
        depth,
        label,
        est_rows: est.rows,
        subplan: plan.clone(),
    });
    match plan {
        Plan::Scan { .. } => {}
        Plan::Filter { input, .. }
        | Plan::Map { input, .. }
        | Plan::Agg { input, .. }
        | Plan::Sort { input, .. } => walk(input, estimator, depth + 1, out, memo),
        Plan::Join { build, probe, .. } => {
            // Probe first (it continues the pipeline), then the build
            // side, mirroring `Plan::explain`.
            walk(probe, estimator, depth + 1, out, memo);
            walk(build, estimator, depth + 1, out, memo);
        }
    }
}

/// Render collected lines; `actuals[i]` (if given) is the measured row
/// count of `lines[i]`'s subtree. Uses the default re-optimization
/// threshold ([`crate::adaptive::REOPT_THRESHOLD_DEFAULT`]) for the
/// drift highlight.
pub fn render(lines: &[ExplainLine], actuals: Option<&[usize]>) -> String {
    render_with_threshold(lines, actuals, crate::adaptive::REOPT_THRESHOLD_DEFAULT)
}

/// Like [`render`], with an explicit divergence threshold: every line
/// with an actual gains a `drift` column (actual/est ratio), and rows
/// whose drift exceeds the threshold in either direction are flagged as
/// the re-optimization candidates mid-query adaptivity would act on.
pub fn render_with_threshold(
    lines: &[ExplainLine],
    actuals: Option<&[usize]>,
    threshold: f64,
) -> String {
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        let pad = "  ".repeat(line.depth);
        out.push_str(&format!("{pad}{}  est={:.0}", line.label, line.est_rows));
        if let Some(actual) = actuals.and_then(|a| a.get(i)) {
            let drift = if line.est_rows > 0.0 {
                *actual as f64 / line.est_rows
            } else {
                f64::NAN
            };
            out.push_str(&format!("  actual={actual}  drift={drift:.2}x"));
            if drift.is_finite()
                && threshold > 1.0
                && (drift >= threshold || drift <= 1.0 / threshold)
            {
                out.push_str("  <<< exceeds re-opt threshold");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use morsel_exec::agg::AggFn;
    use morsel_numa::{Placement, Topology};
    use morsel_storage::{Batch, Column, DataType, PartitionBy, Relation, Schema};
    use std::sync::Arc;

    #[test]
    fn collect_and_render() {
        let rel = Arc::new(Relation::partitioned(
            Schema::new(vec![("k", DataType::I64)]),
            &Batch::from_columns(vec![Column::I64((0..100).collect())]),
            PartitionBy::Chunks,
            4,
            Placement::FirstTouch,
            &Topology::laptop(),
        ));
        let plan = Plan::scan(rel, None, &["k"]).agg(&["k"], vec![("c", AggFn::Count)]);
        let lines = collect(&plan, &Estimator::default());
        assert_eq!(lines.len(), 2);
        assert!(lines[0].label.starts_with("Aggregate"));
        assert_eq!(lines[1].depth, 1);
        let text = render(&lines, Some(&[100, 100]));
        assert!(text.contains("est="));
        assert!(text.contains("actual=100"));
        assert!(text.contains("drift=1.00x"));
        assert!(
            !text.contains("re-opt threshold"),
            "accurate estimates must not be flagged"
        );
        // A 100x miss on the scan line trips the divergence highlight.
        let text = render_with_threshold(&lines, Some(&[100, 10_000]), 4.0);
        assert!(text.contains("<<< exceeds re-opt threshold"));
    }
}
