//! Lowering: logical plans to physical `exec` plans.
//!
//! The pass does the optimizer's physical work:
//!
//! * **Join ordering** — each maximal run of adjacent inner joins is
//!   flattened into a [`JoinGraph`] and handed to the enumerator; the
//!   chosen [`JoinTree`] decides both order and build/probe sides.
//! * **Projection pushdown** — a needed-column set flows top-down, so
//!   scans only materialize referenced columns and build sides only
//!   carry payload that someone upstream reads.
//! * **Expression remapping** — logical expressions are written against
//!   canonical schemas; after reordering/pruning the physical layout
//!   differs, so column indices are rewritten by name at every boundary
//!   ([`Expr::remap`]).
//!
//! Sorts with a small limit lower to the executor's top-k operator
//! automatically (the executor's compiler keys that off `limit`, see
//! [`morsel_exec::plan::TOPK_THRESHOLD`]).

use std::collections::BTreeSet;

use morsel_exec::expr::Expr;
use morsel_exec::join::JoinKind;
use morsel_exec::plan::Plan;
use morsel_exec::sort::SortKey;
use morsel_numa::Topology;
use morsel_storage::Schema;

use crate::cost::CostParams;
use crate::estimate::Estimator;
use crate::joinorder::{enumerate, GraphEdge, GraphNode, JoinGraph, JoinTree, DP_BUDGET_DEFAULT};
use crate::logical::LogicalPlan;

/// What the planner did to one inner-join block.
#[derive(Debug, Clone)]
pub struct BlockReport {
    /// Chosen order, rendered `((a ⋈ b) ⋈ c)` with probe side first.
    pub order: String,
    /// Leaf labels in graph order.
    pub leaves: Vec<String>,
    /// Estimated cost of the block's joins under the NUMA model.
    pub cost: f64,
    /// Whether a cross product was forced (disconnected join graph).
    pub forced_cross: bool,
}

/// Planning summary returned next to the lowered plan.
#[derive(Debug, Clone, Default)]
pub struct PlanReport {
    pub blocks: Vec<BlockReport>,
}

/// A cacheable planning product: the physical [`Plan`] plus everything a
/// cache needs to replay an execution without re-planning — the output
/// [`Schema`] (for result wiring) and the [`PlanReport`] (so a cache hit
/// can still explain itself). `Plan` is `Clone`, so a handle can be
/// stored once and cloned per execution; only `compile_query` (cheap,
/// per-run) happens on the hit path.
#[derive(Clone)]
pub struct PlanHandle {
    pub plan: Plan,
    pub schema: Schema,
    pub report: PlanReport,
}

/// The cost-based planner.
pub struct Planner {
    pub params: CostParams,
    pub estimator: Estimator,
    /// Relation-count budget for exhaustive DPsize enumeration.
    pub dp_budget: usize,
}

impl Planner {
    /// Planner calibrated for a topology (the cost model the executor
    /// itself would use on that machine).
    pub fn new(topology: &Topology) -> Self {
        Planner {
            params: CostParams::for_topology(topology),
            estimator: Estimator::default(),
            dp_budget: DP_BUDGET_DEFAULT,
        }
    }

    pub fn with_dp_budget(mut self, budget: usize) -> Self {
        self.dp_budget = budget;
        self
    }

    /// Lower a logical plan to a physical plan.
    pub fn plan(&self, lp: &LogicalPlan) -> Plan {
        self.plan_with_report(lp).0
    }

    /// Lower and report the join-order decisions made along the way.
    ///
    /// # Panics
    /// Panics if the logical plan's root does not pin its output layout
    /// (end queries with a `Project`, `Aggregate`, or a `Sort` above one
    /// of those) — the planner refuses to return a plan whose column
    /// order silently differs from the canonical schema.
    pub fn plan_with_report(&self, lp: &LogicalPlan) -> (Plan, PlanReport) {
        let mut report = PlanReport::default();
        let lowered = self.lower(lp, None, &mut report);
        let canonical = lp.schema();
        let actual = lowered.schema();
        assert_eq!(
            canonical.names(),
            actual.names(),
            "planner output layout diverged from the canonical schema; \
             finish the query with a Project or Aggregate to pin column order"
        );
        (lowered, report)
    }

    /// Lower into a self-describing [`PlanHandle`] — the unit a plan
    /// cache stores.
    pub fn plan_handle(&self, lp: &LogicalPlan) -> PlanHandle {
        let (plan, report) = self.plan_with_report(lp);
        let schema = plan.schema();
        PlanHandle {
            plan,
            schema,
            report,
        }
    }

    /// Recursive lowering. `needed` is the set of output column names the
    /// parent requires (`None` = all canonical columns).
    fn lower(
        &self,
        lp: &LogicalPlan,
        needed: Option<&BTreeSet<String>>,
        report: &mut PlanReport,
    ) -> Plan {
        match lp {
            LogicalPlan::Scan {
                relation,
                filter,
                project,
                ..
            } => {
                let mut kept: Vec<(String, Expr)> = project
                    .iter()
                    .filter(|(n, _)| needed.is_none_or(|set| set.contains(n)))
                    .cloned()
                    .collect();
                if kept.is_empty() {
                    // Never emit a zero-column scan: row counts would be
                    // lost. Keep the narrowest declared column.
                    kept.push(project[0].clone());
                }
                Plan::Scan {
                    relation: relation.clone(),
                    filter: filter.clone(),
                    project: kept,
                }
            }
            LogicalPlan::Filter { input, predicate } => {
                let canonical = input.schema();
                let child_needed = extend_needed(needed, refs_of(predicate, &canonical));
                let child = self.lower(input, child_needed.as_ref(), report);
                let actual = child.schema();
                Plan::Filter {
                    predicate: remap_expr(predicate, &canonical, &actual),
                    input: Box::new(child),
                }
            }
            LogicalPlan::Project { input, project } => {
                let kept: Vec<&(String, Expr)> = {
                    let all: Vec<&(String, Expr)> = project.iter().collect();
                    let filtered: Vec<&(String, Expr)> = all
                        .iter()
                        .copied()
                        .filter(|(n, _)| needed.is_none_or(|set| set.contains(n)))
                        .collect();
                    if filtered.is_empty() {
                        vec![all[0]]
                    } else {
                        filtered
                    }
                };
                let canonical = input.schema();
                let mut refs = BTreeSet::new();
                for (_, e) in &kept {
                    refs.extend(refs_of(e, &canonical));
                }
                let child = self.lower(input, Some(&refs), report);
                let actual = child.schema();
                Plan::Map {
                    project: kept
                        .into_iter()
                        .map(|(n, e)| (n.clone(), remap_expr(e, &canonical, &actual)))
                        .collect(),
                    input: Box::new(child),
                }
            }
            LogicalPlan::Aggregate { input, group, aggs } => {
                let mut refs: BTreeSet<String> = group.iter().cloned().collect();
                for (_, a) in aggs {
                    if let Some(c) = a.input() {
                        refs.insert(c.to_owned());
                    }
                }
                let child = self.lower(input, Some(&refs), report);
                let actual = child.schema();
                Plan::Agg {
                    group_cols: group.iter().map(|g| actual.index_of(g)).collect(),
                    aggs: aggs
                        .iter()
                        .map(|(n, a)| (n.clone(), a.resolve(&actual)))
                        .collect(),
                    input: Box::new(child),
                }
            }
            LogicalPlan::Sort { input, keys, limit } => {
                let child_needed =
                    extend_needed(needed, keys.iter().map(|k| k.column.clone()).collect());
                let child = self.lower(input, child_needed.as_ref(), report);
                let actual = child.schema();
                Plan::Sort {
                    keys: keys
                        .iter()
                        .map(|k| SortKey {
                            col: actual.index_of(&k.column),
                            desc: k.descending,
                        })
                        .collect(),
                    limit: *limit,
                    input: Box::new(child),
                }
            }
            LogicalPlan::Join {
                kind: JoinKind::Inner,
                ..
            } => self.lower_inner_block(lp, needed, report),
            LogicalPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
                kind,
            } => {
                // Semi/Anti/Count/InnerMark: direction is fixed (left
                // streams, right builds); only prune columns.
                let left_names = names_of(&left.schema());
                let mut ln: BTreeSet<String> = match needed {
                    Some(set) => set.intersection(&left_names).cloned().collect(),
                    None => left_names.clone(),
                };
                ln.extend(left_keys.iter().cloned());
                let mut rn: BTreeSet<String> = right_keys.iter().cloned().collect();
                if matches!(kind, JoinKind::InnerMark) {
                    let right_names = names_of(&right.schema());
                    match needed {
                        Some(set) => rn.extend(set.intersection(&right_names).cloned()),
                        None => rn.extend(right_names),
                    }
                }
                let probe = self.lower(left, Some(&ln), report);
                let build = self.lower(right, Some(&rn), report);
                let (ps, bs) = (probe.schema(), build.schema());
                let build_payload = if matches!(kind, JoinKind::InnerMark) {
                    (0..bs.len())
                        .filter(|&i| {
                            !right_keys.contains(&bs.name(i).to_owned())
                                && needed.is_none_or(|set| set.contains(bs.name(i)))
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                Plan::Join {
                    probe_keys: left_keys.iter().map(|k| ps.index_of(k)).collect(),
                    build_keys: right_keys.iter().map(|k| bs.index_of(k)).collect(),
                    probe: Box::new(probe),
                    build: Box::new(build),
                    kind: *kind,
                    build_payload,
                }
            }
        }
    }

    /// Flatten, enumerate, and emit one inner-join block.
    fn lower_inner_block(
        &self,
        lp: &LogicalPlan,
        needed: Option<&BTreeSet<String>>,
        report: &mut PlanReport,
    ) -> Plan {
        // 1. Flatten the run of inner joins into leaves + key pairs.
        let mut leaves: Vec<&LogicalPlan> = Vec::new();
        let mut pairs: Vec<(String, String)> = Vec::new();
        collect_block(lp, &mut leaves, &mut pairs);

        let leaf_names: Vec<BTreeSet<String>> =
            leaves.iter().map(|l| names_of(&l.schema())).collect();
        let owner = |name: &str| -> usize {
            leaf_names
                .iter()
                .position(|s| s.contains(name))
                .unwrap_or_else(|| panic!("join key {name:?} not found in any join input"))
        };

        // 2. Merge key pairs into per-leaf-pair edges.
        let mut edges: Vec<GraphEdge> = Vec::new();
        for (l, r) in &pairs {
            let (a, b) = (owner(l), owner(r));
            assert_ne!(
                a, b,
                "join predicate {l:?} = {r:?} references a single input"
            );
            let (a, b, ak, bk) = if a < b {
                (a, b, l.clone(), r.clone())
            } else {
                (b, a, r.clone(), l.clone())
            };
            if let Some(e) = edges.iter_mut().find(|e| e.a == a && e.b == b) {
                e.a_keys.push(ak);
                e.b_keys.push(bk);
            } else {
                edges.push(GraphEdge {
                    a,
                    b,
                    a_keys: vec![ak],
                    b_keys: vec![bk],
                    sel_override: None,
                });
            }
        }
        // Observed selectivities from runtime feedback override the
        // containment model for edges the workload has already executed.
        if let Some(fb) = &self.estimator.feedback {
            for e in &mut edges {
                e.sel_override = fb.lookup(&crate::feedback::join_key(&e.a_keys, &e.b_keys));
            }
        }

        // 3. Per-leaf needed set: downstream columns plus every join key.
        let block_needed: BTreeSet<String> = match needed {
            Some(set) => set.clone(),
            None => names_of(&lp.schema()),
        };
        let all_keys: BTreeSet<String> = pairs
            .iter()
            .flat_map(|(l, r)| [l.clone(), r.clone()])
            .collect();
        let lowered: Vec<Plan> = leaves
            .iter()
            .enumerate()
            .map(|(i, leaf)| {
                let mut ln: BTreeSet<String> = block_needed
                    .union(&all_keys)
                    .filter(|n| leaf_names[i].contains(*n))
                    .cloned()
                    .collect();
                if ln.is_empty() {
                    // A leaf nothing references still contributes its
                    // row multiplicity; keep its first column.
                    ln.insert(leaf.schema().name(0).to_owned());
                }
                self.lower(leaf, Some(&ln), report)
            })
            .collect();

        // 4. Build the graph from the lowered leaves' estimates.
        let nodes: Vec<GraphNode> = lowered
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let est = self.estimator.estimate(p);
                let schema = p.schema();
                let key_ndv = all_keys
                    .iter()
                    .filter(|k| leaf_names[i].contains(*k))
                    .map(|k| {
                        let pos = schema.index_of(k);
                        (k.clone(), est.cols[pos].ndv)
                    })
                    .collect();
                GraphNode {
                    label: leaf_label(leaves[i]),
                    rows: est.rows,
                    width: est.row_width(),
                    key_ndv,
                }
            })
            .collect();
        let graph = JoinGraph { nodes, edges };

        // 5. Enumerate and emit.
        let chosen = enumerate(&graph, &self.params, self.dp_budget);
        report.blocks.push(BlockReport {
            order: chosen.tree.render(&graph),
            leaves: graph.nodes.iter().map(|n| n.label.clone()).collect(),
            cost: chosen.cost,
            forced_cross: chosen.forced_cross,
        });
        let mut slots: Vec<Option<Plan>> = lowered.into_iter().map(Some).collect();
        self.emit(&chosen.tree, &graph, &block_needed, &mut slots)
    }

    /// Emit the physical joins for a chosen tree. `required` is the set
    /// of columns every ancestor still reads.
    fn emit(
        &self,
        tree: &JoinTree,
        graph: &JoinGraph,
        required: &BTreeSet<String>,
        slots: &mut Vec<Option<Plan>>,
    ) -> Plan {
        match tree {
            JoinTree::Leaf(i) => slots[*i].take().expect("leaf emitted twice"),
            JoinTree::Node {
                probe,
                build,
                edges,
                ..
            } => {
                // Which leaves live under the probe subtree?
                let mut probe_leaves = Vec::new();
                probe.leaves(&mut probe_leaves);
                let in_probe = |leaf: usize| probe_leaves.contains(&leaf);

                // Orient every applied edge's key pairs.
                let mut probe_key_names = Vec::new();
                let mut build_key_names = Vec::new();
                for &ei in edges {
                    let e = &graph.edges[ei];
                    if in_probe(e.a) {
                        probe_key_names.extend(e.a_keys.iter().cloned());
                        build_key_names.extend(e.b_keys.iter().cloned());
                    } else {
                        probe_key_names.extend(e.b_keys.iter().cloned());
                        build_key_names.extend(e.a_keys.iter().cloned());
                    }
                }

                let mut child_required = required.clone();
                child_required.extend(probe_key_names.iter().cloned());
                child_required.extend(build_key_names.iter().cloned());
                let p = self.emit(probe, graph, &child_required, slots);
                let b = self.emit(build, graph, &child_required, slots);
                let (ps, bs) = (p.schema(), b.schema());
                // Payload: build columns an ancestor still needs (keys
                // consumed here are dropped unless required above).
                let build_payload: Vec<usize> = (0..bs.len())
                    .filter(|&i| required.contains(bs.name(i)))
                    .collect();
                Plan::Join {
                    probe_keys: probe_key_names.iter().map(|k| ps.index_of(k)).collect(),
                    build_keys: build_key_names.iter().map(|k| bs.index_of(k)).collect(),
                    probe: Box::new(p),
                    build: Box::new(b),
                    kind: JoinKind::Inner,
                    build_payload,
                }
            }
        }
    }
}

/// Flatten a run of inner joins.
fn collect_block<'a>(
    lp: &'a LogicalPlan,
    leaves: &mut Vec<&'a LogicalPlan>,
    pairs: &mut Vec<(String, String)>,
) {
    match lp {
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            kind: JoinKind::Inner,
        } => {
            collect_block(left, leaves, pairs);
            collect_block(right, leaves, pairs);
            for (l, r) in left_keys.iter().zip(right_keys) {
                pairs.push((l.clone(), r.clone()));
            }
        }
        other => leaves.push(other),
    }
}

/// Short label for a join-graph leaf.
fn leaf_label(lp: &LogicalPlan) -> String {
    match lp {
        LogicalPlan::Scan { table, .. } => table.clone(),
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => leaf_label(input),
        LogicalPlan::Join { left, kind, .. } => match kind {
            JoinKind::Semi => format!("σ∃({})", leaf_label(left)),
            JoinKind::Anti => format!("σ∄({})", leaf_label(left)),
            JoinKind::Count => format!("cnt({})", leaf_label(left)),
            _ => format!("join({})", leaf_label(left)),
        },
        LogicalPlan::Aggregate { input, .. } => format!("Γ({})", leaf_label(input)),
        LogicalPlan::Sort { input, .. } => leaf_label(input),
    }
}

fn names_of(schema: &Schema) -> BTreeSet<String> {
    schema.names().iter().map(|n| (*n).to_owned()).collect()
}

/// Output column names referenced by an expression, via the canonical
/// schema its indices point into.
fn refs_of(expr: &Expr, canonical: &Schema) -> BTreeSet<String> {
    let mut cols = Vec::new();
    expr.referenced_cols(&mut cols);
    cols.into_iter()
        .map(|i| canonical.name(i).to_owned())
        .collect()
}

/// `needed ∪ extra`, preserving `None` = "all" absorption.
fn extend_needed(
    needed: Option<&BTreeSet<String>>,
    extra: BTreeSet<String>,
) -> Option<BTreeSet<String>> {
    needed.map(|set| set.union(&extra).cloned().collect())
}

/// Rewrite an expression's canonical indices into a physical layout.
fn remap_expr(expr: &Expr, canonical: &Schema, actual: &Schema) -> Expr {
    let actual_names = actual.names();
    let map: Vec<Option<usize>> = canonical
        .names()
        .iter()
        .map(|n| actual_names.iter().position(|m| m == n))
        .collect();
    expr.remap(&map)
}
