//! Simulated operator costs on top of the calibrated NUMA model.
//!
//! The planner prices candidate plans in virtual nanoseconds of total
//! work using the same [`CostModel`] that drives the discrete-event
//! executor: scans and materializations are streaming transfers
//! ([`CostModel::stream_ns`]), hash-table builds and probes are dependent
//! random accesses ([`CostModel::random_ns`]) whose miss rate scales with
//! how far the table outgrows the last-level cache, and CPU work overlaps
//! with streaming but not with stalls ([`CostModel::combine`]).
//!
//! Hash tables are NUMA-spread (Section 4.2 of the paper: the table is
//! interleaved across sockets), so `1 - 1/sockets` of the probe misses
//! pay a one-hop latency. That term is what makes a small build side
//! cheap — the signal the join enumerator optimizes.

use morsel_exec::plan::Plan;
use morsel_numa::{CostModel, Topology};

use crate::estimate::{EstMemo, Estimator, PlanEst};

/// CPU nanoseconds per expression-weight unit per row.
const CPU_NS_PER_WEIGHT: f64 = 0.4;
/// CPU nanoseconds to hash a key and walk a bucket.
const HASH_CPU_NS: f64 = 2.5;
/// CPU nanoseconds per comparison in a sort.
const SORT_CPU_NS: f64 = 1.5;
/// Effective last-level cache per socket: accesses to hash tables smaller
/// than this mostly hit cache and pay no memory stall.
const CACHE_BYTES: f64 = 8.0 * (1 << 20) as f64;

/// Cost parameters for one simulated machine.
#[derive(Debug, Clone)]
pub struct CostParams {
    pub model: CostModel,
    pub sockets: u32,
}

impl CostParams {
    pub fn for_topology(topology: &Topology) -> Self {
        CostParams {
            model: CostModel::for_topology(topology),
            sockets: u32::from(topology.sockets().max(1)),
        }
    }

    /// Streaming cost of moving `bytes` (NUMA-local: morsel scheduling
    /// keeps scans on the partition's socket).
    fn stream(&self, bytes: f64) -> f64 {
        self.model.stream_ns(bytes.max(0.0) as u64, 0, 1, 0)
    }

    /// Stall cost of `misses` dependent accesses into a socket-spread
    /// structure: `1/sockets` of them are local, the rest one hop away.
    fn spread_random(&self, misses: f64) -> f64 {
        let misses = misses.max(0.0);
        let local = misses / f64::from(self.sockets);
        let remote = misses - local;
        self.model.random_ns(local as u64, 0) + self.model.random_ns(remote as u64, 1)
    }

    /// Stall cost of probing/updating a hash structure of `table_bytes`
    /// total size `accesses` times: fully cached tables stall on nothing,
    /// tables far beyond cache stall on every access.
    fn table_random(&self, accesses: f64, table_bytes: f64) -> f64 {
        let miss_rate = (table_bytes / CACHE_BYTES).min(1.0);
        self.spread_random(accesses * miss_rate)
    }

    /// Cost of one hash-join step. Shared between the DP enumerator's
    /// incremental search and [`plan_cost`]'s full-plan evaluation so the
    /// two always agree on what "cheaper" means.
    pub fn join_step(
        &self,
        build_rows: f64,
        build_bytes: f64,
        probe_rows: f64,
        probe_bytes: f64,
        out_rows: f64,
        out_bytes: f64,
    ) -> f64 {
        // Build: materialize the side, then insert every row (a random
        // write into the spread table).
        let build = self.model.combine(
            build_rows * HASH_CPU_NS,
            self.stream(build_bytes),
            self.table_random(build_rows, build_bytes),
        );
        // Probe: stream the probe side through, one dependent lookup per
        // row, then emit matches.
        let probe = self.model.combine(
            probe_rows * HASH_CPU_NS,
            self.stream(probe_bytes),
            self.table_random(probe_rows, build_bytes),
        );
        let emit = self.stream((out_bytes - probe_bytes).max(0.0)) + out_rows * 0.5;
        build + probe + emit
    }
}

/// Total simulated cost (virtual ns of work) of a physical plan.
///
/// Used to compare planner-chosen against hand-authored plans on equal
/// footing: both are lowered `exec` plans priced by the same model and
/// the same cardinality estimates.
pub fn plan_cost(params: &CostParams, est: &Estimator, plan: &Plan) -> f64 {
    // One memo for the whole walk keeps costing linear in plan size.
    cost_node(params, est, plan, &mut EstMemo::new()).0
}

/// Returns `(cumulative cost, output estimate)`.
fn cost_node(
    params: &CostParams,
    est: &Estimator,
    plan: &Plan,
    memo: &mut EstMemo,
) -> (f64, PlanEst) {
    let out = est.estimate_memo(plan, memo);
    match plan {
        Plan::Scan {
            relation,
            filter,
            project,
        } => {
            let bytes = relation.total_bytes() as f64;
            let rows = relation.total_rows() as f64;
            let weight: u32 = project.iter().map(|(_, e)| e.weight()).sum::<u32>()
                + filter.as_ref().map_or(0, |f| f.weight());
            let cpu = rows * f64::from(weight.max(1)) * CPU_NS_PER_WEIGHT;
            (params.model.combine(cpu, params.stream(bytes), 0.0), out)
        }
        Plan::Filter { input, predicate } => {
            let (c, i) = cost_node(params, est, input, memo);
            let cpu = i.rows * f64::from(predicate.weight()) * CPU_NS_PER_WEIGHT;
            (c + cpu, out)
        }
        Plan::Map { input, project } => {
            let (c, i) = cost_node(params, est, input, memo);
            let weight: u32 = project.iter().map(|(_, e)| e.weight()).sum();
            let cpu = i.rows * f64::from(weight.max(1)) * CPU_NS_PER_WEIGHT;
            (c + cpu, out)
        }
        Plan::Join { build, probe, .. } => {
            let (cb, b) = cost_node(params, est, build, memo);
            let (cp, p) = cost_node(params, est, probe, memo);
            let step =
                params.join_step(b.rows, b.bytes(), p.rows, p.bytes(), out.rows, out.bytes());
            (cb + cp + step, out)
        }
        Plan::Agg { input, aggs, .. } => {
            let (c, i) = cost_node(params, est, input, memo);
            let cpu = i.rows * HASH_CPU_NS * (1.0 + aggs.len() as f64);
            let groups_bytes = out.rows * out.row_width();
            let stall = params.table_random(i.rows, groups_bytes);
            (c + params.model.combine(cpu, 0.0, stall), out)
        }
        Plan::Sort { input, limit, .. } => {
            let (c, i) = cost_node(params, est, input, memo);
            let sort_cost = match limit {
                // Top-k: a heap that rejects most rows cheaply.
                Some(k) if *k <= morsel_exec::plan::TOPK_THRESHOLD => {
                    let k = (*k as f64).max(2.0);
                    i.rows * SORT_CPU_NS + out.rows * k.log2() * SORT_CPU_NS
                }
                _ => {
                    let n = i.rows.max(2.0);
                    params.model.combine(
                        n * n.log2() * SORT_CPU_NS,
                        params.stream(2.0 * i.bytes()), // materialize in, merge out
                        0.0,
                    )
                }
            };
            (c + sort_cost, out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morsel_exec::expr::{col, gt, lit};
    use morsel_numa::{Placement, Topology};
    use morsel_storage::{Batch, Column, DataType, PartitionBy, Relation, Schema};
    use std::sync::Arc;

    fn rel(n: i64) -> Arc<Relation> {
        Arc::new(Relation::partitioned(
            Schema::new(vec![("k", DataType::I64), ("v", DataType::I64)]),
            &Batch::from_columns(vec![
                Column::I64((0..n).collect()),
                Column::I64((0..n).map(|x| x % 97).collect()),
            ]),
            PartitionBy::Hash { column: 0 },
            8,
            Placement::FirstTouch,
            &Topology::nehalem_ex(),
        ))
    }

    fn params() -> CostParams {
        CostParams::for_topology(&Topology::nehalem_ex())
    }

    #[test]
    fn bigger_scans_cost_more() {
        let est = Estimator::default();
        let small = plan_cost(&params(), &est, &Plan::scan(rel(1_000), None, &["k"]));
        let large = plan_cost(&params(), &est, &Plan::scan(rel(100_000), None, &["k"]));
        assert!(large > 10.0 * small, "small {small}, large {large}");
    }

    #[test]
    fn building_the_small_side_is_cheaper() {
        let est = Estimator::default();
        let p = params();
        let build_small = Plan::scan(rel(200_000), None, &["k", "v"]).join(
            Plan::scan(rel(500), None, &["k"]),
            &["k"],
            &["k"],
            &[],
        );
        let build_large = Plan::scan(rel(500), None, &["k"]).join(
            Plan::scan(rel(200_000), None, &["k", "v"]),
            &["k"],
            &["k"],
            &["v"],
        );
        let cs = plan_cost(&p, &est, &build_small);
        let cl = plan_cost(&p, &est, &build_large);
        assert!(cs < cl, "build-small {cs} should beat build-large {cl}");
    }

    #[test]
    fn selective_filter_cheapens_downstream_join() {
        let est = Estimator::default();
        let p = params();
        let unfiltered = Plan::scan(rel(100_000), None, &["k", "v"]).join(
            Plan::scan(rel(100_000), None, &["k"]),
            &["k"],
            &["k"],
            &[],
        );
        let filtered = Plan::scan(rel(100_000), Some(gt(col(0), lit(99_000))), &["k", "v"]).join(
            Plan::scan(rel(100_000), None, &["k"]),
            &["k"],
            &["k"],
            &[],
        );
        // The filtered probe side costs less overall even though the scan
        // itself is identical.
        assert!(plan_cost(&p, &est, &filtered) < plan_cost(&p, &est, &unfiltered));
    }
}
