//! Plans for the DML statements (`INSERT`/`UPDATE`/`DELETE`).
//!
//! DML has no join order to enumerate — a bound statement names one
//! target table, an optional predicate, and its payload — so the
//! "plan" here is a carrier the service layer executes against a
//! transactional database, plus the two things a plan owes its
//! callers: a cardinality estimate (how many rows this statement will
//! touch, from the same [`Estimator`] the read-side planner uses) and
//! an `EXPLAIN` rendering.

use std::fmt;

use morsel_exec::expr::Expr;
use morsel_storage::{Relation, Value};

use crate::estimate::{ColEst, Estimator};

/// Which DML statement a [`DmlPlan`] executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmlKind {
    Insert,
    Update,
    Delete,
}

impl DmlKind {
    pub fn verb(self) -> &'static str {
        match self {
            DmlKind::Insert => "INSERT",
            DmlKind::Update => "UPDATE",
            DmlKind::Delete => "DELETE",
        }
    }
}

/// A bound, estimable DML statement against one table.
#[derive(Debug, Clone)]
pub struct DmlPlan {
    pub kind: DmlKind,
    pub table: String,
    /// Row filter (`WHERE`), with column indices resolved against the
    /// target table's schema. `None` means every row.
    pub predicate: Option<Expr>,
    /// `INSERT` payload, already in schema column order.
    pub rows: Vec<Vec<Value>>,
    /// `UPDATE` assignments: `(column index, new value)`.
    pub sets: Vec<(usize, Value)>,
    /// Rows this statement is expected to touch (see [`DmlPlan::estimate`]).
    pub estimated_rows: f64,
}

impl DmlPlan {
    pub fn insert(table: &str, rows: Vec<Vec<Value>>) -> Self {
        let n = rows.len() as f64;
        DmlPlan {
            kind: DmlKind::Insert,
            table: table.to_owned(),
            predicate: None,
            rows,
            sets: Vec::new(),
            estimated_rows: n,
        }
    }

    pub fn update(table: &str, predicate: Option<Expr>, sets: Vec<(usize, Value)>) -> Self {
        DmlPlan {
            kind: DmlKind::Update,
            table: table.to_owned(),
            predicate,
            rows: Vec::new(),
            sets,
            estimated_rows: 0.0,
        }
    }

    pub fn delete(table: &str, predicate: Option<Expr>) -> Self {
        DmlPlan {
            kind: DmlKind::Delete,
            table: table.to_owned(),
            predicate,
            rows: Vec::new(),
            sets: Vec::new(),
            estimated_rows: 0.0,
        }
    }

    /// Fill `estimated_rows` from the target relation's statistics —
    /// the same per-column min/max/NDV sketches and selectivity model
    /// the read-side planner costs scans with. Inserts already know
    /// their exact row count; updates and deletes estimate
    /// `|T| * sel(predicate)`.
    pub fn estimate(mut self, relation: &Relation) -> Self {
        if self.kind == DmlKind::Insert {
            return self;
        }
        let total = relation.total_rows() as f64;
        self.estimated_rows = match &self.predicate {
            None => total,
            Some(pred) => {
                let stats = relation.stats();
                let cols: Vec<ColEst> = stats.columns.iter().map(ColEst::from_stats).collect();
                (total * Estimator::default().selectivity(pred, &cols)).max(1.0)
            }
        };
        self
    }

    /// One-line-per-clause `EXPLAIN` rendering, matching the read-side
    /// explain style.
    pub fn explain(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for DmlPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {}  (est. {:.0} rows)",
            self.kind.verb(),
            self.table,
            self.estimated_rows
        )?;
        match self.kind {
            DmlKind::Insert => writeln!(f, "  values: {} rows", self.rows.len())?,
            DmlKind::Update => {
                let cols: Vec<String> = self
                    .sets
                    .iter()
                    .map(|(c, v)| format!("#{c} = {v}"))
                    .collect();
                writeln!(f, "  set: {}", cols.join(", "))?;
            }
            DmlKind::Delete => {}
        }
        if let Some(p) = &self.predicate {
            writeln!(f, "  where: {p:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morsel_exec::expr::{col, eq, lit};
    use morsel_storage::{Batch, Column, DataType, Schema};

    fn rel(n: i64) -> Relation {
        Relation::single(
            Schema::new(vec![("k", DataType::I64), ("v", DataType::I64)]),
            Batch::from_columns(vec![
                Column::I64((0..n).collect()),
                Column::I64(vec![0; n as usize]),
            ]),
        )
    }

    #[test]
    fn insert_estimate_is_exact() {
        let p =
            DmlPlan::insert("t", vec![vec![Value::I64(1), Value::I64(2)]; 3]).estimate(&rel(100));
        assert_eq!(p.estimated_rows, 3.0);
        assert!(p.explain().contains("INSERT t"));
    }

    #[test]
    fn point_update_estimates_from_stats() {
        let p = DmlPlan::update("t", Some(eq(col(0), lit(7))), vec![(1, Value::I64(9))])
            .estimate(&rel(1000));
        // Unique key column: a point predicate should estimate ~1 row,
        // far below the table size.
        assert!(p.estimated_rows < 20.0, "{}", p.estimated_rows);
        assert!(p.explain().contains("UPDATE t"));
        assert!(p.explain().contains("#1 = 9"));
    }

    #[test]
    fn unfiltered_delete_estimates_full_table() {
        let p = DmlPlan::delete("t", None).estimate(&rel(250));
        assert_eq!(p.estimated_rows, 250.0);
    }
}
