//! Lowered plans must compute exactly what the logical plan describes:
//! property tests over synthetic join graphs compare planner output
//! against hand-authored oracle plans, row for row.

use std::sync::Arc;

use morsel_core::{DispatchConfig, ExecEnv, SimExecutor};
use morsel_exec::agg::AggFn;
use morsel_exec::expr::{col, ge, gt, lit};
use morsel_exec::join::JoinKind;
use morsel_exec::plan::{compile_query, Plan};
use morsel_exec::sort::{sort_batch, SortKey};
use morsel_exec::SystemVariant;
use morsel_numa::{Placement, Topology};
use morsel_planner::{AggSpec, LogicalPlan, OrderBy, Planner};
use morsel_storage::{Batch, Column, PartitionBy, Relation, Schema};
use proptest::prelude::*;

fn run(env: &ExecEnv, plan: Plan) -> Batch {
    let (spec, result) = compile_query("q", plan, SystemVariant::full());
    let mut sim = SimExecutor::new(env.clone(), DispatchConfig::new(8).with_morsel_size(512));
    sim.submit(spec);
    sim.run();
    let out = result.lock().take().unwrap_or_default();
    out
}

/// Sort by every column so multiset comparison ignores row order.
fn normalized(batch: &Batch) -> Batch {
    let keys: Vec<SortKey> = (0..batch.width()).map(SortKey::asc).collect();
    sort_batch(batch, &keys)
}

fn rel(topo: &Topology, cols: Vec<(&str, Column)>) -> Arc<Relation> {
    let schema = Schema::new(
        cols.iter()
            .map(|(n, c)| (*n, c.data_type()))
            .collect::<Vec<_>>(),
    );
    let batch = Batch::from_columns(cols.into_iter().map(|(_, c)| c).collect());
    Arc::new(Relation::partitioned(
        schema,
        &batch,
        PartitionBy::Chunks,
        4,
        Placement::FirstTouch,
        topo,
    ))
}

/// Fact(n) with two foreign keys; two dimensions with payloads.
struct Star {
    fact: Arc<Relation>,
    dim_a: Arc<Relation>,
    dim_b: Arc<Relation>,
}

fn star(topo: &Topology, n: i64, na: i64, nb: i64, seed: i64) -> Star {
    let mix = |x: i64, m: i64| (x.wrapping_mul(2654435761) ^ seed).rem_euclid(m);
    Star {
        fact: rel(
            topo,
            vec![
                ("f_id", Column::I64((0..n).collect())),
                ("f_a", Column::I64((0..n).map(|x| mix(x, na)).collect())),
                ("f_b", Column::I64((0..n).map(|x| mix(x + 7, nb)).collect())),
                ("f_val", Column::I64((0..n).map(|x| x % 1000).collect())),
            ],
        ),
        dim_a: rel(
            topo,
            vec![
                ("a_id", Column::I64((0..na).collect())),
                ("a_grp", Column::I64((0..na).map(|x| x % 5).collect())),
            ],
        ),
        dim_b: rel(
            topo,
            vec![
                ("b_id", Column::I64((0..nb).collect())),
                ("b_grp", Column::I64((0..nb).map(|x| x % 3).collect())),
            ],
        ),
    }
}

#[test]
fn two_join_aggregate_matches_oracle() {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let s = star(&topo, 20_000, 50, 20, 0);

    let logical = LogicalPlan::scan("fact", s.fact.clone(), None, &["f_a", "f_b", "f_val"])
        .join(
            LogicalPlan::scan(
                "dim_a",
                s.dim_a.clone(),
                Some(ge(col(1), lit(2))),
                &["a_id", "a_grp"],
            ),
            &["f_a"],
            &["a_id"],
        )
        .join(
            LogicalPlan::scan("dim_b", s.dim_b.clone(), None, &["b_id", "b_grp"]),
            &["f_b"],
            &["b_id"],
        )
        .aggregate(
            &["a_grp", "b_grp"],
            vec![("total", AggSpec::sum("f_val")), ("n", AggSpec::Count)],
        )
        .sort(vec![OrderBy::asc("a_grp"), OrderBy::asc("b_grp")], None);

    let oracle = Plan::scan(s.fact.clone(), None, &["f_a", "f_b", "f_val"])
        .join(
            Plan::scan(
                s.dim_a.clone(),
                Some(ge(col(1), lit(2))),
                &["a_id", "a_grp"],
            ),
            &["f_a"],
            &["a_id"],
            &["a_grp"],
        )
        .join(
            Plan::scan(s.dim_b.clone(), None, &["b_id", "b_grp"]),
            &["f_b"],
            &["b_id"],
            &["b_grp"],
        )
        .agg(
            &["a_grp", "b_grp"],
            vec![("total", AggFn::SumI64(2)), ("n", AggFn::Count)],
        )
        .sort_by(vec![SortKey::asc(0), SortKey::asc(1)], None);

    let planner = Planner::new(&topo);
    let (lowered, report) = planner.plan_with_report(&logical);
    assert_eq!(report.blocks.len(), 1, "one inner-join block");
    assert_eq!(report.blocks[0].leaves.len(), 3);

    let got = run(&env, lowered);
    let want = run(&env, oracle);
    assert_eq!(got, want, "planner result diverged from oracle");
}

#[test]
fn semi_join_blocks_are_respected() {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let s = star(&topo, 10_000, 40, 15, 3);

    let logical = LogicalPlan::scan("fact", s.fact.clone(), None, &["f_a", "f_b", "f_val"])
        .join_kind(
            LogicalPlan::scan(
                "dim_a",
                s.dim_a.clone(),
                Some(gt(col(1), lit(1))),
                &["a_id"],
            ),
            &["f_a"],
            &["a_id"],
            JoinKind::Semi,
        )
        .join(
            LogicalPlan::scan("dim_b", s.dim_b.clone(), None, &["b_id", "b_grp"]),
            &["f_b"],
            &["b_id"],
        )
        .aggregate(&["b_grp"], vec![("total", AggSpec::sum("f_val"))])
        .sort(vec![OrderBy::asc("b_grp")], None);

    let oracle = Plan::scan(s.fact.clone(), None, &["f_a", "f_b", "f_val"])
        .join_kind(
            Plan::scan(s.dim_a.clone(), Some(gt(col(1), lit(1))), &["a_id"]),
            &["f_a"],
            &["a_id"],
            &[],
            JoinKind::Semi,
        )
        .join(
            Plan::scan(s.dim_b.clone(), None, &["b_id", "b_grp"]),
            &["f_b"],
            &["b_id"],
            &["b_grp"],
        )
        .agg(&["b_grp"], vec![("total", AggFn::SumI64(2))])
        .sort_by(vec![SortKey::asc(0)], None);

    let got = run(&env, Planner::new(&topo).plan(&logical));
    let want = run(&env, oracle);
    assert_eq!(got, want);
}

#[test]
fn projection_pruning_preserves_results() {
    let topo = Topology::laptop();
    let env = ExecEnv::new(topo.clone());
    let s = star(&topo, 5_000, 25, 10, 11);

    // Scans declare more columns than the aggregate reads; pruned scans
    // must not change the answer.
    let logical = LogicalPlan::scan(
        "fact",
        s.fact.clone(),
        None,
        &["f_id", "f_a", "f_b", "f_val"],
    )
    .join(
        LogicalPlan::scan("dim_a", s.dim_a.clone(), None, &["a_id", "a_grp"]),
        &["f_a"],
        &["a_id"],
    )
    .aggregate(&["a_grp"], vec![("n", AggSpec::Count)])
    .sort(vec![OrderBy::asc("a_grp")], None);

    let lowered = Planner::new(&topo).plan(&logical);
    // The fact scan must have been narrowed: f_id and f_val are unread.
    fn scan_widths(p: &Plan, out: &mut Vec<usize>) {
        match p {
            Plan::Scan { project, .. } => out.push(project.len()),
            Plan::Filter { input, .. }
            | Plan::Map { input, .. }
            | Plan::Agg { input, .. }
            | Plan::Sort { input, .. } => scan_widths(input, out),
            Plan::Join { build, probe, .. } => {
                scan_widths(probe, out);
                scan_widths(build, out);
            }
        }
    }
    let mut widths = Vec::new();
    scan_widths(&lowered, &mut widths);
    assert!(
        widths.iter().all(|&w| w <= 2),
        "scans not pruned: {widths:?}"
    );

    let oracle = Plan::scan(s.fact.clone(), None, &["f_a"])
        .join(
            Plan::scan(s.dim_a.clone(), None, &["a_id", "a_grp"]),
            &["f_a"],
            &["a_id"],
            &["a_grp"],
        )
        .agg(&["a_grp"], vec![("n", AggFn::Count)])
        .sort_by(vec![SortKey::asc(0)], None);
    assert_eq!(run(&env, lowered), run(&env, oracle));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random star shapes: the planner's chosen order always returns the
    /// oracle's rows, whatever order it picked.
    #[test]
    fn random_star_equivalence(
        n in 500i64..4_000,
        na in 3i64..60,
        nb in 2i64..25,
        seed in 0i64..1_000,
    ) {
        let topo = Topology::nehalem_ex();
        let env = ExecEnv::new(topo.clone());
        let s = star(&topo, n, na, nb, seed);

        let logical = LogicalPlan::scan("fact", s.fact.clone(), None, &["f_a", "f_b", "f_val"])
            .join(
                LogicalPlan::scan("dim_a", s.dim_a.clone(), None, &["a_id", "a_grp"]),
                &["f_a"],
                &["a_id"],
            )
            .join(
                LogicalPlan::scan("dim_b", s.dim_b.clone(), None, &["b_id", "b_grp"]),
                &["f_b"],
                &["b_id"],
            )
            .aggregate(
                &["a_grp", "b_grp"],
                vec![("total", AggSpec::sum("f_val")), ("n", AggSpec::Count)],
            );

        let oracle = Plan::scan(s.fact.clone(), None, &["f_a", "f_b", "f_val"])
            .join(
                Plan::scan(s.dim_a.clone(), None, &["a_id", "a_grp"]),
                &["f_a"],
                &["a_id"],
                &["a_grp"],
            )
            .join(
                Plan::scan(s.dim_b.clone(), None, &["b_id", "b_grp"]),
                &["f_b"],
                &["b_id"],
                &["b_grp"],
            )
            .agg(
                &["a_grp", "b_grp"],
                vec![("total", AggFn::SumI64(2)), ("n", AggFn::Count)],
            );

        // No sort in the plan: compare as multisets.
        let got = normalized(&run(&env, Planner::new(&topo).plan(&logical)));
        let want = normalized(&run(&env, oracle));
        prop_assert_eq!(got, want);
    }
}
