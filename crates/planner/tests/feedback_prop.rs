//! Feedback-cache property tests.
//!
//! The feedback key function must be exactly as coarse as the plan
//! cache's shape key: invariant under literal churn and table-alias
//! renames (so evidence accumulates across a parameterized workload),
//! while structurally different predicates never collide by
//! construction of the printed shape. The cache's lifecycle invariant —
//! a (decayed) entry never outlives a catalog-version bump — is checked
//! over random interleavings of observations and bumps.

use morsel_exec::expr::{CmpOp, Expr, LikePattern};
use morsel_exec::plan::Plan;
use morsel_planner::feedback::{join_key, scan_key, FeedbackCache};
use morsel_planner::Planner;
use morsel_storage::{DataType, Schema};
use proptest::prelude::*;

fn fixture_schema() -> Schema {
    Schema::new(vec![
        ("l_orderkey", DataType::I64),
        ("l_quantity", DataType::I64),
        ("l_shipdate", DataType::I64),
        ("l_shipmode", DataType::Str),
    ])
}

const INT_COLS: [usize; 3] = [0, 1, 2];
const STR_COL: usize = 3;

/// A small deterministic generator (xorshift) driving predicate
/// construction — the same idiom as `morsel-sql`'s `shape_prop.rs`, since
/// the vendored proptest stub has no combinators.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn int(&mut self) -> i64 {
        self.next() as i64 % 10_000
    }

    fn int_col(&mut self) -> Expr {
        Expr::Col(INT_COLS[self.below(INT_COLS.len())])
    }

    /// A random boolean predicate over the fixture schema, structured
    /// like real pushed-down scan filters.
    fn pred(&mut self, depth: usize) -> Expr {
        if depth == 0 {
            return match self.below(6) {
                0 => {
                    const OPS: [CmpOp; 6] = [
                        CmpOp::Eq,
                        CmpOp::Ne,
                        CmpOp::Lt,
                        CmpOp::Le,
                        CmpOp::Gt,
                        CmpOp::Ge,
                    ];
                    Expr::Cmp(
                        OPS[self.below(OPS.len())],
                        Box::new(self.int_col()),
                        Box::new(Expr::ConstI64(self.int())),
                    )
                }
                1 => {
                    let (a, b) = (self.int(), self.int());
                    Expr::BetweenI64(Box::new(self.int_col()), a.min(b), a.max(b))
                }
                2 => {
                    let n = 1 + self.below(4);
                    let list = (0..n).map(|_| self.int()).collect();
                    Expr::InI64(Box::new(self.int_col()), list)
                }
                3 => {
                    let n = 1 + self.below(3);
                    let list = (0..n).map(|_| format!("s{}", self.int())).collect();
                    Expr::InStr(Box::new(Expr::Col(STR_COL)), list)
                }
                4 => Expr::Like(
                    Box::new(Expr::Col(STR_COL)),
                    LikePattern::parse(&format!("%x{}%", self.int())),
                ),
                _ => Expr::StrPrefix(Box::new(Expr::Col(STR_COL)), format!("p{}", self.int())),
            };
        }
        match self.below(4) {
            0 => Expr::And(
                Box::new(self.pred(depth - 1)),
                Box::new(self.pred(depth - 1)),
            ),
            1 => Expr::Or(
                Box::new(self.pred(depth - 1)),
                Box::new(self.pred(depth - 1)),
            ),
            2 => Expr::Not(Box::new(self.pred(depth - 1))),
            _ => self.pred(0),
        }
    }
}

/// Replace every literal in `expr` with values drawn from `churn`,
/// preserving structure (including `IN`-list arity).
fn churn_literals(expr: &Expr, churn: &mut dyn FnMut() -> i64) -> Expr {
    match expr {
        Expr::Col(i) => Expr::Col(*i),
        Expr::ConstI64(_) => Expr::ConstI64(churn()),
        Expr::ConstF64(_) => Expr::ConstF64(churn() as f64),
        Expr::ConstStr(_) => Expr::ConstStr(format!("s{}", churn())),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(churn_literals(a, churn)),
            Box::new(churn_literals(b, churn)),
        ),
        Expr::And(a, b) => Expr::And(
            Box::new(churn_literals(a, churn)),
            Box::new(churn_literals(b, churn)),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(churn_literals(a, churn)),
            Box::new(churn_literals(b, churn)),
        ),
        Expr::Not(a) => Expr::Not(Box::new(churn_literals(a, churn))),
        Expr::BetweenI64(a, _, _) => {
            let (lo, hi) = (churn(), churn());
            Expr::BetweenI64(Box::new(churn_literals(a, churn)), lo.min(hi), lo.max(hi))
        }
        Expr::InI64(a, list) => Expr::InI64(
            Box::new(churn_literals(a, churn)),
            list.iter().map(|_| churn()).collect(),
        ),
        Expr::InStr(a, list) => Expr::InStr(
            Box::new(churn_literals(a, churn)),
            list.iter().map(|_| format!("s{}", churn())).collect(),
        ),
        Expr::Like(a, _) => Expr::Like(
            Box::new(churn_literals(a, churn)),
            LikePattern::parse(&format!("%x{}%", churn())),
        ),
        Expr::StrPrefix(a, _) => {
            Expr::StrPrefix(Box::new(churn_literals(a, churn)), format!("p{}", churn()))
        }
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Literal churn never changes a scan key: a parameterized workload
    /// accumulates evidence under ONE key per predicate shape.
    #[test]
    fn scan_keys_survive_literal_churn(seed in any::<u64>(), churn_seed in any::<i64>()) {
        let schema = fixture_schema();
        let mut gen = Gen::new(seed);
        let depth = gen.below(4);
        let pred = gen.pred(depth);
        let mut i = 0i64;
        let mut churn = || {
            i += 1;
            churn_seed.wrapping_mul(31).wrapping_add(i)
        };
        let churned = churn_literals(&pred, &mut churn);
        prop_assert_eq!(scan_key(&schema, &pred), scan_key(&schema, &churned));
    }

    /// Join keys are orientation-free (swapping build and probe sides
    /// yields the same key) and stable across repeated computation.
    #[test]
    fn join_keys_are_orientation_free(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let cols = ["l_orderkey", "o_orderkey", "c_custkey", "ps_partkey"];
        let n = 1 + gen.below(3);
        let a: Vec<String> = (0..n).map(|_| cols[gen.below(cols.len())].to_owned()).collect();
        let b: Vec<String> = (0..n).map(|_| cols[gen.below(cols.len())].to_owned()).collect();
        prop_assert_eq!(join_key(&a, &b), join_key(&b, &a));
        prop_assert_eq!(join_key(&a, &b), join_key(&a, &b));
    }

    /// A decayed entry never outlives a catalog-version bump: whatever
    /// interleaving of observations and version changes ran, entries
    /// observed before the last bump are gone, and every survivor was
    /// observed at the live version.
    #[test]
    fn entries_never_outlive_a_catalog_bump(
        ops in collection::vec((0usize..10, 1u64..1000), 1..64)
    ) {
        let fb = FeedbackCache::new();
        let mut version = 0u64;
        let mut live: std::collections::HashSet<usize> = Default::default();
        for (op, raw) in ops {
            if op < 8 {
                // Observation of one of 8 keys; selectivity in (0, 1].
                fb.observe(&format!("key-{op}"), raw as f64 / 1000.0);
                live.insert(op);
            } else {
                version += 1;
                fb.set_catalog_version(version);
                live.clear();
            }
        }
        for k in 0..8usize {
            let entry = fb.entry(&format!("key-{k}"));
            if live.contains(&k) {
                let entry = entry.expect("observed since the last bump");
                prop_assert_eq!(entry.catalog_version, version);
                prop_assert!(entry.sel >= 1e-9 && entry.sel <= 1.0);
            } else {
                prop_assert!(
                    entry.is_none(),
                    "key-{} observed before the bump must be dropped", k
                );
            }
        }
        prop_assert_eq!(fb.len(), live.len());
    }
}

/// Alias renames never change a feedback key, end to end: two SQL
/// spellings of the same query differing only in table aliases (and in
/// literals) lower to scans whose filters key identically — the binder's
/// alias names never reach the physical plan, whose keys use the base
/// relation's canonical column names.
#[test]
fn scan_keys_survive_alias_renames_end_to_end() {
    let topo = morsel_numa::Topology::laptop();
    let db = morsel_datagen::generate_tpch(morsel_datagen::TpchConfig::scaled(0.002), &topo);
    let catalog = db.catalog();
    let planner = Planner::new(&topo);

    fn first_filtered_scan(plan: &Plan) -> Option<(&morsel_storage::Relation, &Expr)> {
        match plan {
            Plan::Scan {
                relation,
                filter: Some(f),
                ..
            } => Some((relation.as_ref(), f)),
            Plan::Scan { .. } => None,
            Plan::Filter { input, .. }
            | Plan::Map { input, .. }
            | Plan::Agg { input, .. }
            | Plan::Sort { input, .. } => first_filtered_scan(input),
            Plan::Join { build, probe, .. } => {
                first_filtered_scan(probe).or_else(|| first_filtered_scan(build))
            }
        }
    }

    let key_of = |sql: &str| {
        let logical = morsel_sql::plan_sql(&catalog, sql).expect("fixture SQL binds");
        let plan = planner.plan(&logical);
        let (relation, filter) =
            first_filtered_scan(&plan).expect("fixture has a pushed-down filter");
        scan_key(relation.schema(), filter)
    };

    let base = key_of("SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 24");
    let aliased = key_of("SELECT COUNT(*) AS n FROM lineitem ali WHERE ali.l_quantity < 24");
    let renamed = key_of("SELECT COUNT(*) AS n FROM lineitem zz99 WHERE zz99.l_quantity < 11");
    assert_eq!(base, aliased, "alias spelling leaked into the key");
    assert_eq!(
        base, renamed,
        "alias rename + literal churn changed the key"
    );

    let other = key_of("SELECT COUNT(*) AS n FROM lineitem WHERE l_orderkey < 24");
    assert_ne!(base, other, "different columns must not collide");
}
