//! Enumerator behavior on synthetic chain, star, and clique join graphs:
//! the DP never emits a cross product unless the graph forces one, and
//! its chosen cost is at least as good as every left-deep order a human
//! could have written.

use std::collections::HashMap;

use morsel_numa::Topology;
use morsel_planner::{
    enumerate, left_deep_cost, CostParams, GraphEdge, GraphNode, JoinGraph, JoinTree,
    DP_BUDGET_DEFAULT,
};

fn node(label: &str, rows: f64, keys: &[(&str, f64)]) -> GraphNode {
    GraphNode {
        label: label.to_owned(),
        rows,
        width: 16.0,
        key_ndv: keys
            .iter()
            .map(|(k, v)| ((*k).to_owned(), *v))
            .collect::<HashMap<_, _>>(),
    }
}

fn edge(a: usize, b: usize, ak: &str, bk: &str) -> GraphEdge {
    GraphEdge {
        a,
        b,
        a_keys: vec![ak.to_owned()],
        b_keys: vec![bk.to_owned()],
        sel_override: None,
    }
}

fn params() -> CostParams {
    CostParams::for_topology(&Topology::nehalem_ex())
}

/// Every join node must apply at least one edge (no hidden cross
/// products) unless the enumeration reported a forced cross.
fn assert_no_cross(tree: &JoinTree) {
    if let JoinTree::Node {
        probe,
        build,
        edges,
        ..
    } = tree
    {
        assert!(!edges.is_empty(), "cross product in a connected graph");
        assert_no_cross(probe);
        assert_no_cross(build);
    }
}

fn all_leaves(tree: &JoinTree, n: usize) {
    let mut leaves = Vec::new();
    tree.leaves(&mut leaves);
    leaves.sort_unstable();
    assert_eq!(leaves, (0..n).collect::<Vec<_>>(), "leaf set incomplete");
}

/// Exhaustive left-deep baseline: the DP must not lose to any
/// permutation a human could write down.
fn beats_every_left_deep(graph: &JoinGraph, chosen_cost: f64) {
    let n = graph.nodes.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut best = f64::INFINITY;
    permute(&mut order, 0, &mut |perm| {
        best = best.min(left_deep_cost(graph, &params(), perm));
    });
    assert!(
        chosen_cost <= best * 1.000_001,
        "DP cost {chosen_cost} worse than best left-deep {best}"
    );
}

fn permute(items: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, f);
        items.swap(k, i);
    }
}

#[test]
fn chain_orders_through_the_selective_middle() {
    // A(1M) — B(10) — C(1M): every good order goes through B; joining A
    // with C directly would be a cross product.
    let g = JoinGraph {
        nodes: vec![
            node("a", 1_000_000.0, &[("ak", 1_000_000.0)]),
            node("b", 10.0, &[("ak", 10.0), ("ck", 10.0)]),
            node("c", 1_000_000.0, &[("ck", 1_000_000.0)]),
        ],
        edges: vec![edge(0, 1, "ak", "ak"), edge(1, 2, "ck", "ck")],
    };
    let e = enumerate(&g, &params(), DP_BUDGET_DEFAULT);
    assert!(!e.forced_cross);
    assert_no_cross(&e.tree);
    all_leaves(&e.tree, 3);
    beats_every_left_deep(&g, e.cost);
    // The selective middle relation is in the first (deepest) join: the
    // deepest node of the chosen tree must include leaf 1.
    fn deepest_join_leaves(t: &JoinTree) -> Vec<usize> {
        match t {
            JoinTree::Leaf(i) => vec![*i],
            JoinTree::Node { probe, build, .. } => {
                // Find a deepest Node: prefer whichever child is a Node.
                for c in [probe, build] {
                    if matches!(**c, JoinTree::Node { .. }) {
                        return deepest_join_leaves(c);
                    }
                }
                let mut l = Vec::new();
                t.leaves(&mut l);
                l
            }
        }
    }
    let first = deepest_join_leaves(&e.tree);
    assert!(
        first.contains(&1),
        "first join should involve the tiny middle relation, got {first:?}"
    );
}

#[test]
fn long_chain_within_dp_budget_is_optimal_and_cross_free() {
    // 8-relation chain with descending sizes.
    let n = 8;
    let nodes: Vec<GraphNode> = (0..n)
        .map(|i| {
            let rows = 1_000_000.0 / (1 << i) as f64;
            node(&format!("r{i}"), rows, &[("l", rows), ("r", rows)])
        })
        .collect();
    let edges: Vec<GraphEdge> = (0..n - 1).map(|i| edge(i, i + 1, "r", "l")).collect();
    let g = JoinGraph { nodes, edges };
    let e = enumerate(&g, &params(), DP_BUDGET_DEFAULT);
    assert!(!e.forced_cross);
    assert_no_cross(&e.tree);
    all_leaves(&e.tree, n);
}

#[test]
fn star_streams_the_fact_table() {
    // One big fact, four dimensions of varying selectivity — the SSB
    // shape. Optimal plans keep the fact on the probe side throughout.
    let g = JoinGraph {
        nodes: vec![
            node(
                "fact",
                6_000_000.0,
                &[
                    ("d1k", 1_000.0),
                    ("d2k", 30_000.0),
                    ("d3k", 2_000.0),
                    ("d4k", 200_000.0),
                ],
            ),
            node("d1", 1_000.0, &[("d1k", 1_000.0)]),
            node("d2", 30_000.0, &[("d2k", 30_000.0)]),
            node("d3", 100.0, &[("d3k", 100.0)]),
            node("d4", 200_000.0, &[("d4k", 200_000.0)]),
        ],
        edges: vec![
            edge(0, 1, "d1k", "d1k"),
            edge(0, 2, "d2k", "d2k"),
            edge(0, 3, "d3k", "d3k"),
            edge(0, 4, "d4k", "d4k"),
        ],
    };
    let e = enumerate(&g, &params(), DP_BUDGET_DEFAULT);
    assert!(!e.forced_cross);
    assert_no_cross(&e.tree);
    all_leaves(&e.tree, 5);
    beats_every_left_deep(&g, e.cost);
    // The fact table (leaf 0) must sit on the probe side of every join
    // on its path: no plan materializes 6M rows as a build side.
    fn fact_never_built(t: &JoinTree) -> bool {
        match t {
            JoinTree::Leaf(_) => true,
            JoinTree::Node { probe, build, .. } => {
                let mut bl = Vec::new();
                build.leaves(&mut bl);
                !bl.contains(&0) && fact_never_built(probe) && fact_never_built(build)
            }
        }
    }
    assert!(
        fact_never_built(&e.tree),
        "fact table ended up on a build side: {}",
        e.tree.render(&g)
    );
}

#[test]
fn clique_picks_selective_pairs_first() {
    // Four relations, fully connected with uniform key NDVs: optimal
    // cost must match the best left-deep order; no cross products.
    let sizes: [f64; 4] = [500_000.0, 40_000.0, 3_000.0, 800.0];
    let nodes: Vec<GraphNode> = sizes
        .iter()
        .enumerate()
        .map(|(i, &rows)| {
            let keys: Vec<(String, f64)> = (0..4)
                .filter(|&j| j != i)
                .map(|j| (format!("k{}{}", i.min(j), i.max(j)), rows.min(sizes[j])))
                .collect();
            node(
                &format!("r{i}"),
                rows,
                &keys
                    .iter()
                    .map(|(k, v)| (k.as_str(), *v))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let mut edges = Vec::new();
    for i in 0..4 {
        for j in i + 1..4 {
            let k = format!("k{i}{j}");
            edges.push(edge(i, j, &k, &k));
        }
    }
    let g = JoinGraph { nodes, edges };
    let e = enumerate(&g, &params(), DP_BUDGET_DEFAULT);
    assert!(!e.forced_cross);
    assert_no_cross(&e.tree);
    all_leaves(&e.tree, 4);
    beats_every_left_deep(&g, e.cost);
}

#[test]
fn disconnected_components_force_one_cross_only() {
    // Two connected pairs with no edge between them: exactly one forced
    // cross product at the top, none inside the components.
    let g = JoinGraph {
        nodes: vec![
            node("a", 1_000.0, &[("ab", 1_000.0)]),
            node("b", 100.0, &[("ab", 100.0)]),
            node("c", 2_000.0, &[("cd", 2_000.0)]),
            node("d", 50.0, &[("cd", 50.0)]),
        ],
        edges: vec![edge(0, 1, "ab", "ab"), edge(2, 3, "cd", "cd")],
    };
    let e = enumerate(&g, &params(), DP_BUDGET_DEFAULT);
    assert!(e.forced_cross);
    all_leaves(&e.tree, 4);
    fn count_cross(t: &JoinTree) -> usize {
        match t {
            JoinTree::Leaf(_) => 0,
            JoinTree::Node {
                probe,
                build,
                edges,
                ..
            } => usize::from(edges.is_empty()) + count_cross(probe) + count_cross(build),
        }
    }
    assert_eq!(count_cross(&e.tree), 1, "{}", e.tree.render(&g));
}

#[test]
fn greedy_fallback_matches_leaf_set_and_avoids_crosses() {
    // 20-relation chain: beyond the DP budget, handled greedily.
    let n = 20;
    let nodes: Vec<GraphNode> = (0..n)
        .map(|i| {
            let rows = 10_000.0 + 1_000.0 * i as f64;
            node(
                &format!("r{i}"),
                rows,
                &[("l", rows / 2.0), ("r", rows / 2.0)],
            )
        })
        .collect();
    let edges: Vec<GraphEdge> = (0..n - 1).map(|i| edge(i, i + 1, "r", "l")).collect();
    let g = JoinGraph { nodes, edges };
    let e = enumerate(&g, &params(), DP_BUDGET_DEFAULT);
    assert!(!e.forced_cross);
    assert_no_cross(&e.tree);
    all_leaves(&e.tree, n);
}

#[test]
fn dp_and_greedy_agree_on_small_graphs() {
    // On a small graph the greedy heuristic cannot beat the DP.
    let g = JoinGraph {
        nodes: vec![
            node("a", 100_000.0, &[("x", 100_000.0)]),
            node("b", 2_000.0, &[("x", 2_000.0), ("y", 500.0)]),
            node("c", 30_000.0, &[("y", 30_000.0)]),
        ],
        edges: vec![edge(0, 1, "x", "x"), edge(1, 2, "y", "y")],
    };
    let dp = enumerate(&g, &params(), DP_BUDGET_DEFAULT);
    let greedy = enumerate(&g, &params(), 1); // budget 1 forces greedy
    assert!(dp.cost <= greedy.cost * 1.000_001);
}
