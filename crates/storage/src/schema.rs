//! Relation schemas.

use crate::value::DataType;

/// One attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

/// An ordered list of named, typed attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<(&str, DataType)>) -> Self {
        Schema {
            fields: fields
                .into_iter()
                .map(|(name, dtype)| Field {
                    name: name.to_owned(),
                    dtype,
                })
                .collect(),
        }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn dtype(&self, i: usize) -> DataType {
        self.fields[i].dtype
    }

    pub fn name(&self, i: usize) -> &str {
        &self.fields[i].name
    }

    /// Index of the attribute called `name`.
    ///
    /// # Panics
    /// Panics if no such attribute exists — looking up an unknown column is
    /// a query construction bug.
    pub fn index_of(&self, name: &str) -> usize {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("no column named {name:?} in schema {:?}", self.names()))
    }

    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Schema with a subset of columns, in the given order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }

    pub fn data_types(&self) -> Vec<DataType> {
        self.fields.iter().map(|f| f.dtype).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ("a", DataType::I64),
            ("b", DataType::Str),
            ("c", DataType::F64),
        ])
    }

    #[test]
    fn lookup() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("b"), 1);
        assert_eq!(s.dtype(2), DataType::F64);
        assert_eq!(s.name(0), "a");
        assert_eq!(s.names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn projection() {
        let s = sample().project(&[2, 0]);
        assert_eq!(s.names(), vec!["c", "a"]);
        assert_eq!(s.data_types(), vec![DataType::F64, DataType::I64]);
    }

    #[test]
    #[should_panic(expected = "no column named")]
    fn unknown_column_panics() {
        sample().index_of("zz");
    }
}
