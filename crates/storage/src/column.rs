//! Columnar storage.
//!
//! HyPer stores relations column-wise (Section 5: "we used the column
//! format in all experiments"). A [`Column`] is one attribute's values for
//! one partition; operators work on contiguous slices of it (one morsel at
//! a time).
//!
//! String attributes have two physical representations under the single
//! logical type [`DataType::Str`]: plain `Vec<String>` and
//! dictionary-encoded [`DictColumn`] (sorted shared domain + `u32` codes,
//! see [`crate::dict`]). Appending dictionary data into an empty plain
//! column *adopts* the source dictionary, so pipeline intermediates stay
//! code-typed end-to-end; a cross-dictionary append falls back to decoded
//! strings (correct, never hit on the single-relation hot paths).

use std::sync::Arc;

use crate::dict::{DictColumn, Dictionary};
use crate::value::{DataType, Value, ValueRef};

/// A single column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    I64(Vec<i64>),
    I32(Vec<i32>),
    F64(Vec<f64>),
    Str(Vec<String>),
    /// Dictionary-encoded strings (logical type is still `Str`).
    Dict(DictColumn),
}

impl Column {
    /// Create an empty column of the given type.
    pub fn empty(dt: DataType) -> Self {
        match dt {
            DataType::I64 => Column::I64(Vec::new()),
            DataType::I32 => Column::I32(Vec::new()),
            DataType::F64 => Column::F64(Vec::new()),
            DataType::Str => Column::Str(Vec::new()),
        }
    }

    /// Create an empty column with reserved capacity.
    pub fn with_capacity(dt: DataType, cap: usize) -> Self {
        match dt {
            DataType::I64 => Column::I64(Vec::with_capacity(cap)),
            DataType::I32 => Column::I32(Vec::with_capacity(cap)),
            DataType::F64 => Column::F64(Vec::with_capacity(cap)),
            DataType::Str => Column::Str(Vec::with_capacity(cap)),
        }
    }

    /// Empty column with the same *physical* representation as `like`
    /// (a dictionary column begets a code column sharing the dictionary).
    /// Gather kernels use this so encoded data never re-materializes.
    pub fn with_capacity_like(like: &Column, cap: usize) -> Self {
        match like {
            Column::Dict(d) => Column::Dict(DictColumn::with_capacity(Arc::clone(d.dict()), cap)),
            other => Column::with_capacity(other.data_type(), cap),
        }
    }

    pub fn data_type(&self) -> DataType {
        match self {
            Column::I64(_) => DataType::I64,
            Column::I32(_) => DataType::I32,
            Column::F64(_) => DataType::F64,
            Column::Str(_) | Column::Dict(_) => DataType::Str,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Column::I64(v) => v.len(),
            Column::I32(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Dict(d) => d.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Typed slice accessors. Panic on type mismatch — a schema violation
    /// is an engine bug, not a runtime condition.
    pub fn as_i64(&self) -> &[i64] {
        match self {
            Column::I64(v) => v,
            other => panic!("expected I64 column, got {:?}", other.data_type()),
        }
    }

    pub fn as_i32(&self) -> &[i32] {
        match self {
            Column::I32(v) => v,
            other => panic!("expected I32 column, got {:?}", other.data_type()),
        }
    }

    pub fn as_f64(&self) -> &[f64] {
        match self {
            Column::F64(v) => v,
            other => panic!("expected F64 column, got {:?}", other.data_type()),
        }
    }

    /// Plain string slice. Panics on a dictionary column — use
    /// [`Column::str_at`] or [`Column::decoded`] for representation-
    /// agnostic access.
    pub fn as_str(&self) -> &[String] {
        match self {
            Column::Str(v) => v,
            Column::Dict(_) => {
                panic!("expected plain Str column, got dictionary-encoded (use str_at/decoded)")
            }
            other => panic!("expected Str column, got {:?}", other.data_type()),
        }
    }

    /// The dictionary representation, when this column is encoded.
    pub fn as_dict(&self) -> Option<&DictColumn> {
        match self {
            Column::Dict(d) => Some(d),
            _ => None,
        }
    }

    /// Borrowed string at row `i`, for either string representation.
    #[inline]
    pub fn str_at(&self, i: usize) -> &str {
        match self {
            Column::Str(v) => &v[i],
            Column::Dict(d) => d.str_at(i),
            other => panic!("expected string column, got {:?}", other.data_type()),
        }
    }

    /// Value at row `i` as a dynamic [`Value`] (edge use only; slow path —
    /// clones strings; prefer [`Column::value_ref`] when only comparing or
    /// hashing).
    pub fn value(&self, i: usize) -> Value {
        self.value_ref(i).to_value()
    }

    /// Borrowed value at row `i`: no `String` clone for either string
    /// representation. The row-accessor for compare/hash paths.
    #[inline]
    pub fn value_ref(&self, i: usize) -> ValueRef<'_> {
        match self {
            Column::I64(v) => ValueRef::I64(v[i]),
            Column::I32(v) => ValueRef::I32(v[i]),
            Column::F64(v) => ValueRef::F64(v[i]),
            Column::Str(v) => ValueRef::Str(&v[i]),
            Column::Dict(d) => ValueRef::Str(d.str_at(i)),
        }
    }

    /// Plain-string copy of this column (dictionary columns decode; other
    /// types clone). The late-materialization point for result sinks.
    pub fn decoded(&self) -> Column {
        match self {
            Column::Dict(d) => Column::Str(d.decode()),
            other => other.clone(),
        }
    }

    /// Decode a dictionary column in place (fallback for cross-dictionary
    /// appends; no-op otherwise).
    fn decode_in_place(&mut self) {
        if let Column::Dict(d) = self {
            *self = Column::Str(d.decode());
        }
    }

    /// Align this column's string representation so that appending from
    /// `src` is a same-representation copy: an *empty* plain column adopts
    /// `src`'s dictionary; a dictionary column facing a foreign dictionary
    /// (or plain strings) decodes itself.
    fn unify_for_append(&mut self, src: &Column) {
        match (&mut *self, src) {
            (Column::Str(v), Column::Dict(s)) if v.is_empty() => {
                *self = Column::Dict(DictColumn::empty(Arc::clone(s.dict())));
            }
            (Column::Dict(d), Column::Dict(s)) if !d.same_dict(s) => self.decode_in_place(),
            (Column::Dict(_), Column::Str(_)) => self.decode_in_place(),
            _ => {}
        }
    }

    /// Append a dynamic value (edge use only; slow path).
    pub fn push(&mut self, v: Value) {
        if let (Column::Dict(d), Value::Str(s)) = (&mut *self, &v) {
            match d.dict().code_of(s) {
                Some(code) => {
                    d.codes_mut().push(code);
                    return;
                }
                None => self.decode_in_place(),
            }
        }
        match (self, v) {
            (Column::I64(c), Value::I64(x)) => c.push(x),
            (Column::I32(c), Value::I32(x)) => c.push(x),
            (Column::F64(c), Value::F64(x)) => c.push(x),
            (Column::Str(c), Value::Str(x)) => c.push(x),
            (c, v) => panic!(
                "cannot push {:?} into {:?} column",
                v.data_type(),
                c.data_type()
            ),
        }
    }

    /// Append row `i` of `src` to this column.
    pub fn push_from(&mut self, src: &Column, i: usize) {
        self.unify_for_append(src);
        match (self, src) {
            (Column::I64(dst), Column::I64(s)) => dst.push(s[i]),
            (Column::I32(dst), Column::I32(s)) => dst.push(s[i]),
            (Column::F64(dst), Column::F64(s)) => dst.push(s[i]),
            (Column::Str(dst), Column::Str(s)) => dst.push(s[i].clone()),
            (Column::Str(dst), Column::Dict(s)) => dst.push(s.str_at(i).to_owned()),
            (Column::Dict(dst), Column::Dict(s)) => dst.codes_mut().push(s.codes()[i]),
            (dst, s) => {
                panic!(
                    "column type mismatch: {:?} vs {:?}",
                    dst.data_type(),
                    s.data_type()
                )
            }
        }
    }

    /// Append the row range `rows` of `src`, filtered by `sel` (row indexes
    /// relative to the whole column of `src`).
    pub fn extend_selected(&mut self, src: &Column, sel: &[u32]) {
        self.unify_for_append(src);
        match (self, src) {
            (Column::I64(dst), Column::I64(s)) => dst.extend(sel.iter().map(|&i| s[i as usize])),
            (Column::I32(dst), Column::I32(s)) => dst.extend(sel.iter().map(|&i| s[i as usize])),
            (Column::F64(dst), Column::F64(s)) => dst.extend(sel.iter().map(|&i| s[i as usize])),
            (Column::Str(dst), Column::Str(s)) => {
                dst.extend(sel.iter().map(|&i| s[i as usize].clone()))
            }
            (Column::Str(dst), Column::Dict(s)) => {
                dst.extend(sel.iter().map(|&i| s.str_at(i as usize).to_owned()))
            }
            (Column::Dict(dst), Column::Dict(s)) => {
                let codes = s.codes();
                dst.codes_mut()
                    .extend(sel.iter().map(|&i| codes[i as usize]))
            }
            (dst, s) => {
                panic!(
                    "column type mismatch: {:?} vs {:?}",
                    dst.data_type(),
                    s.data_type()
                )
            }
        }
    }

    /// Append the contiguous row range `[from, to)` of `src` (memcpy-style
    /// fast path used when a scan keeps every row of a morsel).
    pub fn extend_range(&mut self, src: &Column, from: usize, to: usize) {
        self.unify_for_append(src);
        match (self, src) {
            (Column::I64(dst), Column::I64(s)) => dst.extend_from_slice(&s[from..to]),
            (Column::I32(dst), Column::I32(s)) => dst.extend_from_slice(&s[from..to]),
            (Column::F64(dst), Column::F64(s)) => dst.extend_from_slice(&s[from..to]),
            (Column::Str(dst), Column::Str(s)) => dst.extend_from_slice(&s[from..to]),
            (Column::Str(dst), Column::Dict(s)) => {
                dst.extend((from..to).map(|i| s.str_at(i).to_owned()))
            }
            (Column::Dict(dst), Column::Dict(s)) => {
                dst.codes_mut().extend_from_slice(&s.codes()[from..to])
            }
            (dst, s) => {
                panic!(
                    "column type mismatch: {:?} vs {:?}",
                    dst.data_type(),
                    s.data_type()
                )
            }
        }
    }

    /// Append all rows of `src`.
    pub fn extend_from(&mut self, src: &Column) {
        self.extend_range(src, 0, src.len());
    }

    /// Approximate in-memory bytes of rows `[from, to)`, used to charge the
    /// NUMA traffic counters. Plain strings count their byte length plus
    /// the 8-byte offset a real column store would keep; dictionary
    /// columns move 4-byte codes (the whole point of the encoding).
    pub fn byte_size(&self, from: usize, to: usize) -> u64 {
        match self {
            Column::I64(_) | Column::F64(_) => 8 * (to - from) as u64,
            Column::I32(_) | Column::Dict(_) => 4 * (to - from) as u64,
            Column::Str(v) => v[from..to].iter().map(|s| s.len() as u64 + 8).sum(),
        }
    }

    /// Total approximate bytes of the whole column.
    pub fn total_bytes(&self) -> u64 {
        self.byte_size(0, self.len())
    }

    /// Approximate bytes of the selected rows (same accounting rules as
    /// [`Column::byte_size`]).
    pub fn selected_bytes(&self, sel: &[u32]) -> u64 {
        match self {
            Column::I64(_) | Column::F64(_) => 8 * sel.len() as u64,
            Column::I32(_) | Column::Dict(_) => 4 * sel.len() as u64,
            Column::Str(v) => sel.iter().map(|&i| v[i as usize].len() as u64 + 8).sum(),
        }
    }
}

/// Build a dictionary over plain string columns and encode them, if the
/// domain passes [`crate::dict::worth_encoding`]. `fragments` are the
/// per-partition columns of one logical column; they share the returned
/// dictionary. Returns `None` when encoding is not worthwhile (or the
/// fragments are not plain strings).
pub fn encode_fragments(fragments: &[&Column]) -> Option<(Arc<Dictionary>, Vec<Column>)> {
    let mut unique: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut rows = 0usize;
    for f in fragments {
        match f {
            Column::Str(v) => {
                rows += v.len();
                for s in v {
                    unique.insert(s.as_str());
                    if unique.len() > crate::dict::DICT_MAX_UNIQUE {
                        return None;
                    }
                }
            }
            _ => return None,
        }
    }
    if !crate::dict::worth_encoding(unique.len(), rows) {
        return None;
    }
    let dict = Dictionary::from_values(unique);
    let encoded = fragments
        .iter()
        .map(|f| {
            Column::Dict(
                DictColumn::encode(&dict, f.as_str())
                    .expect("dictionary was built over these values"),
            )
        })
        .collect();
    Some((dict, encoded))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_roundtrip() {
        let mut c = Column::empty(DataType::I64);
        c.push(Value::I64(1));
        c.push(Value::I64(2));
        assert_eq!(c.as_i64(), &[1, 2]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.value(1), Value::I64(2));
        assert_eq!(c.value_ref(1), ValueRef::I64(2));
    }

    #[test]
    fn extend_selected_filters() {
        let src = Column::I64(vec![10, 20, 30, 40]);
        let mut dst = Column::empty(DataType::I64);
        dst.extend_selected(&src, &[0, 2]);
        assert_eq!(dst.as_i64(), &[10, 30]);
    }

    #[test]
    fn extend_range_copies_contiguous_rows() {
        let src = Column::I64(vec![10, 20, 30, 40]);
        let mut dst = Column::empty(DataType::I64);
        dst.extend_range(&src, 1, 3);
        assert_eq!(dst.as_i64(), &[20, 30]);
        dst.extend_range(&src, 0, 0);
        assert_eq!(dst.len(), 2);
    }

    #[test]
    fn extend_from_appends_all() {
        let src = Column::Str(vec!["a".into(), "b".into()]);
        let mut dst = Column::empty(DataType::Str);
        dst.extend_from(&src);
        dst.extend_from(&src);
        assert_eq!(dst.len(), 4);
    }

    #[test]
    fn push_from_copies_row() {
        let src = Column::F64(vec![1.5, 2.5]);
        let mut dst = Column::empty(DataType::F64);
        dst.push_from(&src, 1);
        assert_eq!(dst.as_f64(), &[2.5]);
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Column::I64(vec![0; 10]).byte_size(2, 5), 24);
        assert_eq!(Column::I32(vec![0; 10]).byte_size(0, 10), 40);
        let s = Column::Str(vec!["ab".into(), "c".into()]);
        assert_eq!(s.total_bytes(), (2 + 8) + (1 + 8));
    }

    #[test]
    fn selected_byte_sizes() {
        assert_eq!(Column::I64(vec![0; 10]).selected_bytes(&[1, 5, 9]), 24);
        assert_eq!(Column::I32(vec![0; 10]).selected_bytes(&[0]), 4);
        let s = Column::Str(vec!["ab".into(), "c".into()]);
        assert_eq!(s.selected_bytes(&[1]), 1 + 8);
        assert_eq!(s.selected_bytes(&[0, 1]), s.total_bytes());
    }

    #[test]
    #[should_panic(expected = "expected I64")]
    fn type_mismatch_panics() {
        Column::F64(vec![]).as_i64();
    }

    #[test]
    fn with_capacity_type() {
        let c = Column::with_capacity(DataType::Str, 8);
        assert_eq!(c.data_type(), DataType::Str);
        assert!(c.is_empty());
    }

    // ---- dictionary representation ------------------------------------

    fn dict_col(values: &[&str]) -> Column {
        let dict = Dictionary::from_values(values.iter().copied());
        let owned: Vec<String> = values.iter().map(|s| (*s).to_owned()).collect();
        Column::Dict(DictColumn::encode(&dict, &owned).unwrap())
    }

    #[test]
    fn dict_reports_str_type_and_codes_bytes() {
        let c = dict_col(&["x", "y", "x", "x"]);
        assert_eq!(c.data_type(), DataType::Str);
        assert_eq!(c.len(), 4);
        assert_eq!(c.byte_size(0, 4), 16); // 4 bytes per code
        assert_eq!(c.selected_bytes(&[0, 3]), 8);
        assert_eq!(c.str_at(1), "y");
        assert_eq!(c.value(0), Value::Str("x".into()));
        assert_eq!(c.value_ref(1), ValueRef::Str("y"));
    }

    #[test]
    fn empty_plain_column_adopts_dictionary() {
        let src = dict_col(&["b", "a", "b"]);
        let mut dst = Column::empty(DataType::Str);
        dst.extend_selected(&src, &[0, 2]);
        assert!(dst.as_dict().is_some());
        assert!(dst.as_dict().unwrap().same_dict(src.as_dict().unwrap()));
        assert_eq!(dst.str_at(0), "b");
        dst.extend_range(&src, 1, 2);
        dst.push_from(&src, 0);
        assert_eq!(dst.decoded().as_str(), &["b", "b", "a", "b"]);
    }

    #[test]
    fn nonempty_plain_column_decodes_dict_appends() {
        let src = dict_col(&["b", "a"]);
        let mut dst = Column::Str(vec!["z".into()]);
        dst.extend_from(&src);
        assert_eq!(dst.as_str(), &["z", "b", "a"]);
    }

    #[test]
    fn cross_dictionary_append_falls_back_to_strings() {
        let mut dst = dict_col(&["a", "b"]);
        let other = dict_col(&["c", "d"]);
        dst.extend_from(&other);
        // Different domains: dst decoded itself.
        assert!(dst.as_dict().is_none());
        assert_eq!(dst.as_str(), &["a", "b", "c", "d"]);
    }

    #[test]
    fn push_value_into_dict_column() {
        let mut c = dict_col(&["a", "b"]);
        c.push(Value::Str("a".into()));
        assert!(c.as_dict().is_some());
        assert_eq!(c.len(), 3);
        // Out-of-domain pushes decode.
        c.push(Value::Str("zz".into()));
        assert!(c.as_dict().is_none());
        assert_eq!(c.str_at(3), "zz");
    }

    #[test]
    fn with_capacity_like_preserves_encoding() {
        let src = dict_col(&["a", "b"]);
        let c = Column::with_capacity_like(&src, 8);
        assert!(c.as_dict().unwrap().same_dict(src.as_dict().unwrap()));
        let plain = Column::with_capacity_like(&Column::I64(vec![1]), 2);
        assert_eq!(plain.data_type(), DataType::I64);
    }

    #[test]
    fn encode_fragments_shares_one_dictionary() {
        let a = Column::Str(vec!["x".into(), "y".into(), "x".into(), "x".into()]);
        let b = Column::Str(vec!["y".into(), "y".into(), "x".into(), "y".into()]);
        let (dict, encoded) = encode_fragments(&[&a, &b]).unwrap();
        assert_eq!(dict.len(), 2);
        let da = encoded[0].as_dict().unwrap();
        let db = encoded[1].as_dict().unwrap();
        assert!(da.same_dict(db));
        assert_eq!(encoded[0].decoded(), a);
        assert_eq!(encoded[1].decoded(), b);
        // High-cardinality or non-repeating domains are left plain.
        let uniq = Column::Str((0..10).map(|i| format!("u{i}")).collect());
        assert!(encode_fragments(&[&uniq]).is_none());
    }

    #[test]
    fn dict_columns_compare_by_content() {
        let a = dict_col(&["a", "b", "a"]);
        let b = dict_col(&["a", "b", "a"]);
        assert_eq!(a, b); // same content, dictionaries built separately
        assert_ne!(a, dict_col(&["a", "b", "b"]));
    }
}
