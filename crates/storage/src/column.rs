//! Columnar storage.
//!
//! HyPer stores relations column-wise (Section 5: "we used the column
//! format in all experiments"). A [`Column`] is one attribute's values for
//! one partition; operators work on contiguous slices of it (one morsel at
//! a time).

use crate::value::{DataType, Value};

/// A single column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    I64(Vec<i64>),
    I32(Vec<i32>),
    F64(Vec<f64>),
    Str(Vec<String>),
}

impl Column {
    /// Create an empty column of the given type.
    pub fn empty(dt: DataType) -> Self {
        match dt {
            DataType::I64 => Column::I64(Vec::new()),
            DataType::I32 => Column::I32(Vec::new()),
            DataType::F64 => Column::F64(Vec::new()),
            DataType::Str => Column::Str(Vec::new()),
        }
    }

    /// Create an empty column with reserved capacity.
    pub fn with_capacity(dt: DataType, cap: usize) -> Self {
        match dt {
            DataType::I64 => Column::I64(Vec::with_capacity(cap)),
            DataType::I32 => Column::I32(Vec::with_capacity(cap)),
            DataType::F64 => Column::F64(Vec::with_capacity(cap)),
            DataType::Str => Column::Str(Vec::with_capacity(cap)),
        }
    }

    pub fn data_type(&self) -> DataType {
        match self {
            Column::I64(_) => DataType::I64,
            Column::I32(_) => DataType::I32,
            Column::F64(_) => DataType::F64,
            Column::Str(_) => DataType::Str,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Column::I64(v) => v.len(),
            Column::I32(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Typed slice accessors. Panic on type mismatch — a schema violation
    /// is an engine bug, not a runtime condition.
    pub fn as_i64(&self) -> &[i64] {
        match self {
            Column::I64(v) => v,
            other => panic!("expected I64 column, got {:?}", other.data_type()),
        }
    }

    pub fn as_i32(&self) -> &[i32] {
        match self {
            Column::I32(v) => v,
            other => panic!("expected I32 column, got {:?}", other.data_type()),
        }
    }

    pub fn as_f64(&self) -> &[f64] {
        match self {
            Column::F64(v) => v,
            other => panic!("expected F64 column, got {:?}", other.data_type()),
        }
    }

    pub fn as_str(&self) -> &[String] {
        match self {
            Column::Str(v) => v,
            other => panic!("expected Str column, got {:?}", other.data_type()),
        }
    }

    /// Value at row `i` as a dynamic [`Value`] (edge use only; slow path).
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::I64(v) => Value::I64(v[i]),
            Column::I32(v) => Value::I32(v[i]),
            Column::F64(v) => Value::F64(v[i]),
            Column::Str(v) => Value::Str(v[i].clone()),
        }
    }

    /// Append a dynamic value (edge use only; slow path).
    pub fn push(&mut self, v: Value) {
        match (self, v) {
            (Column::I64(c), Value::I64(x)) => c.push(x),
            (Column::I32(c), Value::I32(x)) => c.push(x),
            (Column::F64(c), Value::F64(x)) => c.push(x),
            (Column::Str(c), Value::Str(x)) => c.push(x),
            (c, v) => panic!(
                "cannot push {:?} into {:?} column",
                v.data_type(),
                c.data_type()
            ),
        }
    }

    /// Append row `i` of `src` to this column.
    pub fn push_from(&mut self, src: &Column, i: usize) {
        match (self, src) {
            (Column::I64(dst), Column::I64(s)) => dst.push(s[i]),
            (Column::I32(dst), Column::I32(s)) => dst.push(s[i]),
            (Column::F64(dst), Column::F64(s)) => dst.push(s[i]),
            (Column::Str(dst), Column::Str(s)) => dst.push(s[i].clone()),
            (dst, s) => {
                panic!(
                    "column type mismatch: {:?} vs {:?}",
                    dst.data_type(),
                    s.data_type()
                )
            }
        }
    }

    /// Append the row range `rows` of `src`, filtered by `sel` (row indexes
    /// relative to the whole column of `src`).
    pub fn extend_selected(&mut self, src: &Column, sel: &[u32]) {
        match (self, src) {
            (Column::I64(dst), Column::I64(s)) => dst.extend(sel.iter().map(|&i| s[i as usize])),
            (Column::I32(dst), Column::I32(s)) => dst.extend(sel.iter().map(|&i| s[i as usize])),
            (Column::F64(dst), Column::F64(s)) => dst.extend(sel.iter().map(|&i| s[i as usize])),
            (Column::Str(dst), Column::Str(s)) => {
                dst.extend(sel.iter().map(|&i| s[i as usize].clone()))
            }
            (dst, s) => {
                panic!(
                    "column type mismatch: {:?} vs {:?}",
                    dst.data_type(),
                    s.data_type()
                )
            }
        }
    }

    /// Append the contiguous row range `[from, to)` of `src` (memcpy-style
    /// fast path used when a scan keeps every row of a morsel).
    pub fn extend_range(&mut self, src: &Column, from: usize, to: usize) {
        match (self, src) {
            (Column::I64(dst), Column::I64(s)) => dst.extend_from_slice(&s[from..to]),
            (Column::I32(dst), Column::I32(s)) => dst.extend_from_slice(&s[from..to]),
            (Column::F64(dst), Column::F64(s)) => dst.extend_from_slice(&s[from..to]),
            (Column::Str(dst), Column::Str(s)) => dst.extend_from_slice(&s[from..to]),
            (dst, s) => {
                panic!(
                    "column type mismatch: {:?} vs {:?}",
                    dst.data_type(),
                    s.data_type()
                )
            }
        }
    }

    /// Append all rows of `src`.
    pub fn extend_from(&mut self, src: &Column) {
        match (self, src) {
            (Column::I64(dst), Column::I64(s)) => dst.extend_from_slice(s),
            (Column::I32(dst), Column::I32(s)) => dst.extend_from_slice(s),
            (Column::F64(dst), Column::F64(s)) => dst.extend_from_slice(s),
            (Column::Str(dst), Column::Str(s)) => dst.extend_from_slice(s),
            (dst, s) => {
                panic!(
                    "column type mismatch: {:?} vs {:?}",
                    dst.data_type(),
                    s.data_type()
                )
            }
        }
    }

    /// Approximate in-memory bytes of rows `[from, to)`, used to charge the
    /// NUMA traffic counters. Strings count their byte length plus the
    /// 8-byte offset a real column store would keep.
    pub fn byte_size(&self, from: usize, to: usize) -> u64 {
        match self {
            Column::I64(_) | Column::F64(_) => 8 * (to - from) as u64,
            Column::I32(_) => 4 * (to - from) as u64,
            Column::Str(v) => v[from..to].iter().map(|s| s.len() as u64 + 8).sum(),
        }
    }

    /// Total approximate bytes of the whole column.
    pub fn total_bytes(&self) -> u64 {
        self.byte_size(0, self.len())
    }

    /// Approximate bytes of the selected rows (same accounting rules as
    /// [`Column::byte_size`]).
    pub fn selected_bytes(&self, sel: &[u32]) -> u64 {
        match self {
            Column::I64(_) | Column::F64(_) => 8 * sel.len() as u64,
            Column::I32(_) => 4 * sel.len() as u64,
            Column::Str(v) => sel.iter().map(|&i| v[i as usize].len() as u64 + 8).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_roundtrip() {
        let mut c = Column::empty(DataType::I64);
        c.push(Value::I64(1));
        c.push(Value::I64(2));
        assert_eq!(c.as_i64(), &[1, 2]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.value(1), Value::I64(2));
    }

    #[test]
    fn extend_selected_filters() {
        let src = Column::I64(vec![10, 20, 30, 40]);
        let mut dst = Column::empty(DataType::I64);
        dst.extend_selected(&src, &[0, 2]);
        assert_eq!(dst.as_i64(), &[10, 30]);
    }

    #[test]
    fn extend_range_copies_contiguous_rows() {
        let src = Column::I64(vec![10, 20, 30, 40]);
        let mut dst = Column::empty(DataType::I64);
        dst.extend_range(&src, 1, 3);
        assert_eq!(dst.as_i64(), &[20, 30]);
        dst.extend_range(&src, 0, 0);
        assert_eq!(dst.len(), 2);
    }

    #[test]
    fn extend_from_appends_all() {
        let src = Column::Str(vec!["a".into(), "b".into()]);
        let mut dst = Column::empty(DataType::Str);
        dst.extend_from(&src);
        dst.extend_from(&src);
        assert_eq!(dst.len(), 4);
    }

    #[test]
    fn push_from_copies_row() {
        let src = Column::F64(vec![1.5, 2.5]);
        let mut dst = Column::empty(DataType::F64);
        dst.push_from(&src, 1);
        assert_eq!(dst.as_f64(), &[2.5]);
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Column::I64(vec![0; 10]).byte_size(2, 5), 24);
        assert_eq!(Column::I32(vec![0; 10]).byte_size(0, 10), 40);
        let s = Column::Str(vec!["ab".into(), "c".into()]);
        assert_eq!(s.total_bytes(), (2 + 8) + (1 + 8));
    }

    #[test]
    fn selected_byte_sizes() {
        assert_eq!(Column::I64(vec![0; 10]).selected_bytes(&[1, 5, 9]), 24);
        assert_eq!(Column::I32(vec![0; 10]).selected_bytes(&[0]), 4);
        let s = Column::Str(vec!["ab".into(), "c".into()]);
        assert_eq!(s.selected_bytes(&[1]), 1 + 8);
        assert_eq!(s.selected_bytes(&[0, 1]), s.total_bytes());
    }

    #[test]
    #[should_panic(expected = "expected I64")]
    fn type_mismatch_panics() {
        Column::F64(vec![]).as_i64();
    }

    #[test]
    fn with_capacity_type() {
        let c = Column::with_capacity(DataType::Str, 8);
        assert_eq!(c.data_type(), DataType::Str);
        assert!(c.is_empty());
    }
}
