//! Scalar values and types.
//!
//! The engine is columnar; `Value` is only used at the edges (query
//! constants, final results, tests). TPC-H decimals are fixed-point `i64`
//! scaled by 100, dates are days since 1970-01-01 — both standard for
//! TPC-H reproductions and what HyPer's column store does internally.

use std::fmt;

/// Physical column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit integer; also used for fixed-point decimals (cents).
    I64,
    /// 32-bit integer; also used for dates (days since epoch).
    I32,
    /// 64-bit float (used for a handful of TPC-H averages).
    F64,
    /// Variable-length string.
    Str,
}

/// A scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    I64(i64),
    I32(i32),
    F64(f64),
    Str(String),
}

impl Value {
    pub fn data_type(&self) -> DataType {
        match self {
            Value::I64(_) => DataType::I64,
            Value::I32(_) => DataType::I32,
            Value::F64(_) => DataType::F64,
            Value::Str(_) => DataType::Str,
        }
    }

    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(v) => *v,
            Value::I32(v) => i64::from(*v),
            _ => panic!("value {self:?} is not an integer"),
        }
    }

    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(v) => *v,
            Value::I64(v) => *v as f64,
            Value::I32(v) => f64::from(*v),
            Value::Str(_) => panic!("value {self:?} is not numeric"),
        }
    }

    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            _ => panic!("value {self:?} is not a string"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.4}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

/// A borrowed scalar: what [`crate::Column::value_ref`] returns. Carries
/// `&str` instead of `String`, so row accessors that only compare or hash
/// never clone (the dictionary-encoded representation decodes to a
/// borrowed `&str` for free).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    I64(i64),
    I32(i32),
    F64(f64),
    Str(&'a str),
}

impl<'a> ValueRef<'a> {
    pub fn data_type(&self) -> DataType {
        match self {
            ValueRef::I64(_) => DataType::I64,
            ValueRef::I32(_) => DataType::I32,
            ValueRef::F64(_) => DataType::F64,
            ValueRef::Str(_) => DataType::Str,
        }
    }

    /// Promote to an owned [`Value`] (the only allocating step).
    pub fn to_value(self) -> Value {
        match self {
            ValueRef::I64(v) => Value::I64(v),
            ValueRef::I32(v) => Value::I32(v),
            ValueRef::F64(v) => Value::F64(v),
            ValueRef::Str(s) => Value::Str(s.to_owned()),
        }
    }

    pub fn as_i64(&self) -> i64 {
        match self {
            ValueRef::I64(v) => *v,
            ValueRef::I32(v) => i64::from(*v),
            _ => panic!("value {self:?} is not an integer"),
        }
    }

    pub fn as_str(&self) -> &'a str {
        match self {
            ValueRef::Str(s) => s,
            _ => panic!("value {self:?} is not a string"),
        }
    }
}

impl PartialEq<Value> for ValueRef<'_> {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (ValueRef::I64(a), Value::I64(b)) => a == b,
            (ValueRef::I32(a), Value::I32(b)) => a == b,
            (ValueRef::F64(a), Value::F64(b)) => a == b,
            (ValueRef::Str(a), Value::Str(b)) => *a == b.as_str(),
            _ => false,
        }
    }
}

impl<'a> From<&'a Value> for ValueRef<'a> {
    fn from(v: &'a Value) -> Self {
        match v {
            Value::I64(x) => ValueRef::I64(*x),
            Value::I32(x) => ValueRef::I32(*x),
            Value::F64(x) => ValueRef::F64(*x),
            Value::Str(s) => ValueRef::Str(s),
        }
    }
}

/// Fixed-point decimal scale used for TPC-H money columns (2 digits).
pub const DECIMAL_SCALE: i64 = 100;

/// Build a fixed-point decimal from whole and hundredth parts.
pub fn decimal(units: i64, cents: i64) -> i64 {
    units * DECIMAL_SCALE + cents
}

/// Days from 1970-01-01 to `year-month-day` (proleptic Gregorian).
///
/// Valid for the TPC-H date range (1992..1999) and far beyond; verified
/// against known anchors in tests.
pub fn date(year: i32, month: u32, day: u32) -> i32 {
    debug_assert!((1..=12).contains(&month));
    debug_assert!((1..=31).contains(&day));
    // Howard Hinnant's days_from_civil algorithm.
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (i64::from(month) + 9) % 12;
    let doy = (153 * mp + 2) / 5 + i64::from(day) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era * 146097 + doe - 719468) as i32
}

/// Inverse of [`date`]: (year, month, day) for a day number.
pub fn date_parts(days: i32) -> (i32, u32, u32) {
    let z = i64::from(days) + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
}

/// Format a day number as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = date_parts(days);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_anchors() {
        assert_eq!(date(1970, 1, 1), 0);
        assert_eq!(date(1970, 1, 2), 1);
        assert_eq!(date(1969, 12, 31), -1);
        assert_eq!(date(2000, 1, 1), 10957);
        assert_eq!(date(1992, 1, 1), 8035);
        assert_eq!(date(1998, 12, 1), 10561);
    }

    #[test]
    fn date_roundtrip() {
        for days in (-20000..30000).step_by(17) {
            let (y, m, d) = date_parts(days);
            assert_eq!(date(y, m, d), days, "roundtrip failed at {days}");
        }
    }

    #[test]
    fn leap_years() {
        assert_eq!(date(1996, 2, 29) + 1, date(1996, 3, 1));
        assert_eq!(date(1900, 2, 28) + 1, date(1900, 3, 1)); // 1900 not leap
        assert_eq!(date(2000, 2, 29) + 1, date(2000, 3, 1)); // 2000 leap
    }

    #[test]
    fn format_dates() {
        assert_eq!(format_date(date(1995, 3, 15)), "1995-03-15");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::I64(5).as_i64(), 5);
        assert_eq!(Value::I32(5).as_i64(), 5);
        assert_eq!(Value::F64(2.5).as_f64(), 2.5);
        assert_eq!(Value::from("abc").as_str(), "abc");
        assert_eq!(Value::from(7i64).data_type(), DataType::I64);
    }

    #[test]
    #[should_panic(expected = "not an integer")]
    fn wrong_accessor_panics() {
        Value::F64(1.0).as_i64();
    }

    #[test]
    fn decimal_helper() {
        assert_eq!(decimal(12, 34), 1234);
    }

    #[test]
    fn display() {
        assert_eq!(Value::I64(3).to_string(), "3");
        assert_eq!(Value::F64(1.5).to_string(), "1.5000");
        assert_eq!(Value::from("x").to_string(), "x");
    }
}
