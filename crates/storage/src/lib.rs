//! # morsel-storage
//!
//! NUMA-partitioned columnar storage for the morsel-driven engine:
//! [`value::Value`]/[`value::DataType`] scalars, [`column::Column`] typed
//! columns (with sorted per-relation string [`dict::Dictionary`]s behind
//! the same logical string type), [`batch::Batch`] row batches, hash- or
//! chunk-partitioned [`relation::Relation`]s placed across memory nodes,
//! and per-worker [`area::StorageArea`]s that hold pipeline
//! intermediates NUMA-locally.
//!
//! Morsels are *views*: a morsel is a `(partition/area, row-range)` pair cut
//! out by the dispatcher; no storage type here owns scheduling state.

pub mod area;
pub mod batch;
pub mod catalog;
pub mod column;
pub mod delta;
pub mod dict;
pub mod hash;
pub mod recovery;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod value;
pub mod wal;

pub use area::{AreaSet, StorageArea};
pub use batch::Batch;
pub use catalog::Catalog;
pub use column::{encode_fragments, Column};
pub use delta::{delta_row_id, row_bytes, DeltaStore, DELTA_ROW_BIT};
pub use dict::{DictColumn, Dictionary};
pub use hash::{hash64, hash_bytes, hash_combine, hash_i64};
pub use recovery::{replay, scan_bytes, scan_wal, RecoveredState, WalScan};
pub use relation::{Partition, PartitionBy, Relation};
pub use schema::{Field, Schema};
pub use stats::{ColumnStats, HllSketch, TableStats};
pub use value::{date, date_parts, decimal, format_date, DataType, Value, ValueRef, DECIMAL_SCALE};
pub use wal::{Wal, WalError, WalFaults, WalOp, WalRecord, WalStats};
