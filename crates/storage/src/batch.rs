//! Row batches: equal-length column sets.

use crate::column::Column;
use crate::value::{DataType, Value};

/// A set of equal-length columns — the unit of materialized data.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Batch {
    columns: Vec<Column>,
    rows: usize,
}

impl Batch {
    /// An empty batch with columns of the given types.
    pub fn empty(types: &[DataType]) -> Self {
        Batch {
            columns: types.iter().map(|&t| Column::empty(t)).collect(),
            rows: 0,
        }
    }

    /// Build a batch from columns.
    ///
    /// # Panics
    /// Panics if column lengths differ.
    pub fn from_columns(columns: Vec<Column>) -> Self {
        let rows = columns.first().map_or(0, Column::len);
        for c in &columns {
            assert_eq!(c.len(), rows, "batch columns must have equal lengths");
        }
        Batch { columns, rows }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    pub fn width(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// One full row as dynamic values (edge use: tests, result printing).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Append a row of dynamic values (edge use).
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.push(v);
        }
        self.rows += 1;
    }

    /// Append the selected rows of `src` (same schema).
    pub fn extend_selected(&mut self, src: &Batch, sel: &[u32]) {
        assert_eq!(self.width(), src.width(), "batch arity mismatch");
        for (dst, s) in self.columns.iter_mut().zip(&src.columns) {
            dst.extend_selected(s, sel);
        }
        self.rows += sel.len();
    }

    /// Append all rows of `src` (same schema).
    pub fn extend_from(&mut self, src: &Batch) {
        assert_eq!(self.width(), src.width(), "batch arity mismatch");
        for (dst, s) in self.columns.iter_mut().zip(&src.columns) {
            dst.extend_from(s);
        }
        self.rows += src.rows;
    }

    /// Append row `i` of `src` (same schema).
    pub fn push_from(&mut self, src: &Batch, i: usize) {
        assert_eq!(self.width(), src.width(), "batch arity mismatch");
        for (dst, s) in self.columns.iter_mut().zip(&src.columns) {
            dst.push_from(s, i);
        }
        self.rows += 1;
    }

    /// Approximate bytes of rows `[from, to)` across all columns.
    pub fn byte_size(&self, from: usize, to: usize) -> u64 {
        self.columns.iter().map(|c| c.byte_size(from, to)).sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.byte_size(0, self.rows)
    }

    /// Approximate bytes of the selected rows across all columns.
    pub fn selected_bytes(&self, sel: &[u32]) -> u64 {
        self.columns.iter().map(|c| c.selected_bytes(sel)).sum()
    }

    /// Sort all rows by the given key extraction on row indices and return
    /// a reordered copy. Used by tests and the result comparator.
    pub fn reordered(&self, perm: &[u32]) -> Batch {
        let mut out = Batch::empty(
            &self
                .columns
                .iter()
                .map(Column::data_type)
                .collect::<Vec<_>>(),
        );
        out.extend_selected(self, perm);
        out
    }

    /// Compact copy of the selected rows (capacity-exact gather; the
    /// pipeline's selection-vector materialization point). Dictionary
    /// columns gather codes and keep their encoding.
    pub fn gather(&self, sel: &[u32]) -> Batch {
        let cols: Vec<Column> = self
            .columns
            .iter()
            .map(|c| {
                let mut out = Column::with_capacity_like(c, sel.len());
                out.extend_selected(c, sel);
                out
            })
            .collect();
        Batch {
            columns: cols,
            rows: sel.len(),
        }
    }

    /// Copy with every dictionary column decoded to plain strings — the
    /// late-materialization point for query results.
    pub fn decoded(&self) -> Batch {
        Batch {
            columns: self.columns.iter().map(Column::decoded).collect(),
            rows: self.rows,
        }
    }

    /// Replace column `i` (same length required; used by load-time
    /// dictionary encoding).
    pub fn replace_column(&mut self, i: usize, col: Column) {
        assert_eq!(col.len(), self.rows, "replacement column length mismatch");
        self.columns[i] = col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Batch {
        Batch::from_columns(vec![
            Column::I64(vec![3, 1, 2]),
            Column::Str(vec!["c".into(), "a".into(), "b".into()]),
        ])
    }

    #[test]
    fn construction_and_access() {
        let b = sample();
        assert_eq!(b.rows(), 3);
        assert_eq!(b.width(), 2);
        assert_eq!(b.row(1), vec![Value::I64(1), Value::Str("a".into())]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn unequal_columns_rejected() {
        Batch::from_columns(vec![Column::I64(vec![1]), Column::I64(vec![1, 2])]);
    }

    #[test]
    fn push_and_extend() {
        let mut b = Batch::empty(&[DataType::I64, DataType::Str]);
        b.push_row(vec![Value::I64(9), Value::Str("x".into())]);
        b.extend_from(&sample());
        assert_eq!(b.rows(), 4);
        b.extend_selected(&sample(), &[2]);
        assert_eq!(b.rows(), 5);
        assert_eq!(b.column(0).as_i64(), &[9, 3, 1, 2, 2]);
    }

    #[test]
    fn push_from_row() {
        let mut b = Batch::empty(&[DataType::I64, DataType::Str]);
        b.push_from(&sample(), 0);
        assert_eq!(b.row(0), vec![Value::I64(3), Value::Str("c".into())]);
    }

    #[test]
    fn reorder() {
        let b = sample().reordered(&[1, 2, 0]);
        assert_eq!(b.column(0).as_i64(), &[1, 2, 3]);
    }

    #[test]
    fn gather_compacts_selection() {
        let b = sample().gather(&[2, 0]);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.column(0).as_i64(), &[2, 3]);
        assert_eq!(b.column(1).as_str(), &["b".to_owned(), "c".to_owned()]);
        assert_eq!(sample().gather(&[]).rows(), 0);
    }

    #[test]
    fn byte_accounting() {
        let b = sample();
        assert_eq!(b.byte_size(0, 1), 8 + (1 + 8));
        assert!(b.total_bytes() > 0);
    }
}
