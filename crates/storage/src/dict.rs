//! Sorted string dictionaries.
//!
//! Low-cardinality string columns are stored as a per-relation
//! [`Dictionary`] (the sorted, deduplicated value domain, shared via `Arc`
//! by every partition) plus a `Vec<u32>` of codes per partition. Because
//! the dictionary is **sorted**, code order equals string order, so
//! comparisons, sorts, and range/prefix predicates all run on integer
//! codes; and because every value's hash is precomputed here, key hashing
//! of a dictionary column is a table lookup that stays consistent with
//! hashing the raw string (two columns with *different* dictionaries still
//! hash and join correctly).
//!
//! Strings decode only at the result sink (late materialization); the
//! whole scan→filter→project→group→sort hot path moves 4-byte codes.

use std::sync::Arc;

use crate::hash::hash_bytes;

/// A sorted, deduplicated string domain with precomputed value hashes.
#[derive(Debug)]
pub struct Dictionary {
    values: Vec<String>,
    hashes: Vec<u64>,
}

impl Dictionary {
    /// Build a dictionary from an already sorted, deduplicated value list.
    ///
    /// # Panics
    /// Panics (debug only) if `values` is not strictly increasing.
    pub fn from_sorted(values: Vec<String>) -> Arc<Self> {
        debug_assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "dictionary values must be sorted and unique"
        );
        let hashes = values.iter().map(|v| hash_bytes(v.as_bytes())).collect();
        Arc::new(Dictionary { values, hashes })
    }

    /// Build a dictionary from arbitrary values (sorts and deduplicates).
    pub fn from_values<'a>(values: impl IntoIterator<Item = &'a str>) -> Arc<Self> {
        let mut v: Vec<String> = values.into_iter().map(str::to_owned).collect();
        v.sort_unstable();
        v.dedup();
        Self::from_sorted(v)
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The string for a code.
    #[inline]
    pub fn get(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// All values in code (= sort) order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Precomputed hash of a code's string — identical to
    /// `hash_bytes(self.get(code).as_bytes())`.
    #[inline]
    pub fn hash_of(&self, code: u32) -> u64 {
        self.hashes[code as usize]
    }

    /// Code of an exact value, if present (binary search).
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.values
            .binary_search_by(|v| v.as_str().cmp(s))
            .ok()
            .map(|i| i as u32)
    }

    /// Number of dictionary values strictly less than `s`. Since codes are
    /// sort-ordered, `value < s  ⟺  code < lower_bound(s)`.
    pub fn lower_bound(&self, s: &str) -> u32 {
        self.values.partition_point(|v| v.as_str() < s) as u32
    }

    /// Number of dictionary values less than or equal to `s`:
    /// `value <= s  ⟺  code < upper_bound(s)`.
    pub fn upper_bound(&self, s: &str) -> u32 {
        self.values.partition_point(|v| v.as_str() <= s) as u32
    }

    /// Half-open code range `[lo, hi)` of values starting with `prefix`
    /// (prefix-sharing values are contiguous in sort order).
    pub fn prefix_range(&self, prefix: &str) -> (u32, u32) {
        let lo = self.lower_bound(prefix);
        let hi =
            lo as usize + self.values[lo as usize..].partition_point(|v| v.starts_with(prefix));
        (lo, hi as u32)
    }
}

impl PartialEq for Dictionary {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self, other) || self.values == other.values
    }
}

/// One partition's worth of a dictionary-encoded string column.
#[derive(Debug, Clone)]
pub struct DictColumn {
    dict: Arc<Dictionary>,
    codes: Vec<u32>,
}

impl DictColumn {
    pub fn new(dict: Arc<Dictionary>, codes: Vec<u32>) -> Self {
        debug_assert!(codes.iter().all(|&c| (c as usize) < dict.len()));
        DictColumn { dict, codes }
    }

    /// An empty column sharing `dict`.
    pub fn empty(dict: Arc<Dictionary>) -> Self {
        DictColumn {
            dict,
            codes: Vec::new(),
        }
    }

    pub fn with_capacity(dict: Arc<Dictionary>, cap: usize) -> Self {
        DictColumn {
            dict,
            codes: Vec::with_capacity(cap),
        }
    }

    /// Encode plain strings against an existing dictionary. Returns `None`
    /// if any value is missing from the dictionary.
    pub fn encode(dict: &Arc<Dictionary>, values: &[String]) -> Option<Self> {
        let codes = values
            .iter()
            .map(|s| dict.code_of(s))
            .collect::<Option<Vec<u32>>>()?;
        Some(DictColumn {
            dict: Arc::clone(dict),
            codes,
        })
    }

    pub fn dict(&self) -> &Arc<Dictionary> {
        &self.dict
    }

    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    pub fn codes_mut(&mut self) -> &mut Vec<u32> {
        &mut self.codes
    }

    pub fn len(&self) -> usize {
        self.codes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Borrowed string at row `i` (no allocation).
    #[inline]
    pub fn str_at(&self, i: usize) -> &str {
        self.dict.get(self.codes[i])
    }

    /// Same `Arc` behind both columns (codes directly comparable).
    pub fn same_dict(&self, other: &DictColumn) -> bool {
        Arc::ptr_eq(&self.dict, &other.dict)
    }

    /// Decode every row to an owned string vector (the late-materialization
    /// point).
    pub fn decode(&self) -> Vec<String> {
        self.codes
            .iter()
            .map(|&c| self.dict.get(c).to_owned())
            .collect()
    }
}

impl PartialEq for DictColumn {
    fn eq(&self, other: &Self) -> bool {
        if self.same_dict(other) {
            return self.codes == other.codes;
        }
        self.codes.len() == other.codes.len()
            && (0..self.codes.len()).all(|i| self.str_at(i) == other.str_at(i))
    }
}

/// Whether a string column with `unique` distinct values over `rows` rows
/// is worth dictionary-encoding: the domain must be small in absolute
/// terms (code-range predicate rewrites assume a compact domain) and the
/// column must actually repeat values.
pub const DICT_MAX_UNIQUE: usize = 1024;

pub fn worth_encoding(unique: usize, rows: usize) -> bool {
    unique <= DICT_MAX_UNIQUE && unique * 2 <= rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> Arc<Dictionary> {
        Dictionary::from_values(["cherry", "apple", "banana", "apple", "fig"])
    }

    #[test]
    fn sorted_and_deduplicated() {
        let d = dict();
        assert_eq!(d.len(), 4);
        assert_eq!(d.values(), &["apple", "banana", "cherry", "fig"]);
        assert_eq!(d.get(2), "cherry");
        assert!(!d.is_empty());
    }

    #[test]
    fn code_lookup_and_bounds() {
        let d = dict();
        assert_eq!(d.code_of("banana"), Some(1));
        assert_eq!(d.code_of("durian"), None);
        // value < "banana" ⟺ code < 1
        assert_eq!(d.lower_bound("banana"), 1);
        assert_eq!(d.upper_bound("banana"), 2);
        // A probe between values lands between codes.
        assert_eq!(d.lower_bound("ba"), 1);
        assert_eq!(d.upper_bound("ba"), 1);
        assert_eq!(d.lower_bound(""), 0);
        assert_eq!(d.upper_bound("zzz"), 4);
    }

    #[test]
    fn prefix_ranges() {
        let d = Dictionary::from_values(["ab", "abc", "abd", "ac", "b"]);
        assert_eq!(d.prefix_range("ab"), (0, 3));
        assert_eq!(d.prefix_range("a"), (0, 4));
        assert_eq!(d.prefix_range("b"), (4, 5));
        assert_eq!(d.prefix_range("zz"), (5, 5));
        assert_eq!(d.prefix_range(""), (0, 5));
    }

    #[test]
    fn hashes_match_raw_string_hashes() {
        let d = dict();
        for code in 0..d.len() as u32 {
            assert_eq!(d.hash_of(code), hash_bytes(d.get(code).as_bytes()));
        }
    }

    #[test]
    fn dict_column_roundtrip() {
        let d = dict();
        let col = DictColumn::encode(
            &d,
            &["fig".to_owned(), "apple".to_owned(), "fig".to_owned()],
        )
        .unwrap();
        assert_eq!(col.codes(), &[3, 0, 3]);
        assert_eq!(col.str_at(1), "apple");
        assert_eq!(col.decode(), vec!["fig", "apple", "fig"]);
        assert!(DictColumn::encode(&d, &["durian".to_owned()]).is_none());
    }

    #[test]
    fn cross_dictionary_equality_compares_strings() {
        let a = DictColumn::encode(&dict(), &["apple".to_owned(), "fig".to_owned()]).unwrap();
        let d2 = Dictionary::from_values(["apple", "fig", "zzz"]);
        let b = DictColumn::encode(&d2, &["apple".to_owned(), "fig".to_owned()]).unwrap();
        assert!(!a.same_dict(&b));
        assert_eq!(a, b);
        let c = DictColumn::encode(&d2, &["apple".to_owned(), "zzz".to_owned()]).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn encoding_heuristic() {
        assert!(worth_encoding(7, 1000));
        assert!(!worth_encoding(25, 25)); // no repetition
        assert!(!worth_encoding(5000, 1_000_000)); // domain too large
        assert!(worth_encoding(1024, 2048));
    }
}
