//! The engine's hash function.
//!
//! Section 4.3 of the paper notes that the *same* hash function is used for
//! NUMA partitioning and for the hash-table bucket index (partitioning uses
//! the lowest bits here, the table uses the highest bits), which co-locates
//! matching join pairs on the same socket. We use a 64-bit
//! multiply-xorshift finaliser (Murmur3/splitmix-style): fast, good
//! avalanche, no per-query seeds needed (the engine is not exposed to
//! untrusted keys in these experiments).

/// Hash a 64-bit key.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash a signed key (join keys are `i64` in the engine).
#[inline]
pub fn hash_i64(x: i64) -> u64 {
    hash64(x as u64)
}

/// Hash a byte string (FNV-1a folded through the 64-bit finaliser).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash64(h)
}

/// Combine two hashes (for composite keys).
#[inline]
pub fn hash_combine(a: u64, b: u64) -> u64 {
    hash64(a ^ b.rotate_left(32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash64(42), hash64(42));
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
    }

    #[test]
    fn distinct_inputs_differ() {
        assert_ne!(hash64(1), hash64(2));
        assert_ne!(hash_bytes(b"a"), hash_bytes(b"b"));
        assert_ne!(
            hash_combine(hash64(1), hash64(2)),
            hash_combine(hash64(2), hash64(1))
        );
    }

    #[test]
    fn avalanche_spreads_low_bits() {
        // Sequential keys must not map to sequential buckets: count
        // collisions in the top 8 bits over 1000 sequential keys.
        let mut buckets = [0u32; 256];
        for k in 0..1000u64 {
            buckets[(hash64(k) >> 56) as usize] += 1;
        }
        let max = buckets.iter().copied().max().unwrap();
        assert!(
            max < 20,
            "top-bit distribution too skewed: max bucket {max}"
        );
    }

    #[test]
    fn signed_hash_matches_bit_pattern() {
        assert_eq!(hash_i64(-1), hash64(u64::MAX));
    }
}
