//! Catalog statistics: per-column min/max, null counts, and
//! HyperLogLog-style distinct-value sketches.
//!
//! The morsel engine inherits the paper's split between optimization and
//! execution: plans were hand-authored because the paper benchmarks the
//! executor. The cost-based planner (`morsel-planner`) closes that gap,
//! and this module is its catalog: statistics are computed **per
//! partition** (so the work parallelizes along the same NUMA boundaries
//! as everything else) and merged into one [`TableStats`] per relation,
//! cached on the [`Relation`](crate::relation::Relation) so repeated
//! planner lookups are free.
//!
//! The NDV sketch is a classic HyperLogLog (Flajolet et al., 2007) with
//! `2^P` one-byte registers: mergeable across partitions by a register-wise
//! max, ~3% standard error at `P = 10`, fixed 1 KiB per column.

use std::sync::Arc;

use crate::batch::Batch;
use crate::column::Column;
use crate::dict::Dictionary;
use crate::hash::{hash64, hash_bytes};
use crate::value::Value;

/// Register-count exponent: 2^10 = 1024 registers per sketch.
const HLL_P: u32 = 10;
const HLL_M: usize = 1 << HLL_P;

/// A mergeable HyperLogLog distinct-count sketch.
#[derive(Debug, Clone)]
pub struct HllSketch {
    registers: Vec<u8>,
}

impl Default for HllSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl HllSketch {
    pub fn new() -> Self {
        HllSketch {
            registers: vec![0; HLL_M],
        }
    }

    /// Insert a pre-hashed value.
    #[inline]
    pub fn insert_hash(&mut self, h: u64) {
        // Top P bits pick the register; the rank of the remaining bits
        // (position of the first set bit) is the register value.
        let idx = (h >> (64 - HLL_P)) as usize;
        let rest = h << HLL_P;
        let rank = (rest.leading_zeros() + 1).min(64 - HLL_P + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Merge another sketch into this one (register-wise max). The merge
    /// of per-partition sketches equals the sketch of the whole relation.
    pub fn merge(&mut self, other: &HllSketch) {
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(*b);
        }
    }

    /// Estimated number of distinct inserted values.
    pub fn estimate(&self) -> f64 {
        let m = HLL_M as f64;
        // alpha_m for m >= 128.
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2f64.powi(-i32::from(r)))
            .sum();
        let raw = alpha * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            // Small-range correction: linear counting.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }
}

/// Statistics for one column of one relation (or one partition of it,
/// before merging).
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Smallest value (numeric comparison for numeric columns,
    /// lexicographic for strings). `None` for empty columns.
    pub min: Option<Value>,
    /// Largest value.
    pub max: Option<Value>,
    /// Number of NULLs. The engine's columns are non-nullable, so this is
    /// always zero today; the field keeps the catalog shape honest for
    /// when nullable columns arrive.
    pub null_count: u64,
    /// Estimated number of distinct values (from the HLL sketch).
    pub ndv: f64,
    /// Average in-memory bytes per value (same accounting as
    /// [`Column::byte_size`]).
    pub avg_width: f64,
    /// The shared dictionary, when this column is dictionary-encoded —
    /// lets the planner turn string range/prefix predicates into exact
    /// code-domain fractions.
    pub dict: Option<Arc<Dictionary>>,
    sketch: HllSketch,
}

impl ColumnStats {
    /// Compute stats over one column fragment.
    pub fn from_column(col: &Column) -> Self {
        let mut sketch = HllSketch::new();
        let mut dict = None;
        let (min, max) = match col {
            Column::Dict(d) => {
                // Codes are sort-ordered, so min/max over codes decode to
                // the lexicographic min/max; the NDV sketch inserts the
                // dictionary's precomputed per-value hashes, which keeps
                // per-partition sketches mergeable with plain-string
                // fragments of the same column.
                for &c in d.codes() {
                    sketch.insert_hash(d.dict().hash_of(c));
                }
                dict = Some(Arc::clone(d.dict()));
                let min = d.codes().iter().min();
                let max = d.codes().iter().max();
                (
                    min.map(|&c| Value::Str(d.dict().get(c).to_owned())),
                    max.map(|&c| Value::Str(d.dict().get(c).to_owned())),
                )
            }
            Column::I64(v) => {
                for &x in v {
                    sketch.insert_hash(hash64(x as u64));
                }
                (
                    v.iter().min().map(|&x| Value::I64(x)),
                    v.iter().max().map(|&x| Value::I64(x)),
                )
            }
            Column::I32(v) => {
                for &x in v {
                    sketch.insert_hash(hash64(x as u64 & 0xffff_ffff));
                }
                (
                    v.iter().min().map(|&x| Value::I32(x)),
                    v.iter().max().map(|&x| Value::I32(x)),
                )
            }
            Column::F64(v) => {
                for &x in v {
                    // Normalize -0.0 so it hashes like 0.0.
                    let x = if x == 0.0 { 0.0 } else { x };
                    sketch.insert_hash(hash64(x.to_bits()));
                }
                let min = v.iter().copied().reduce(f64::min).map(Value::F64);
                let max = v.iter().copied().reduce(f64::max).map(Value::F64);
                (min, max)
            }
            Column::Str(v) => {
                for x in v {
                    sketch.insert_hash(hash_bytes(x.as_bytes()));
                }
                (
                    v.iter().min().map(|x| Value::Str(x.clone())),
                    v.iter().max().map(|x| Value::Str(x.clone())),
                )
            }
        };
        let rows = col.len();
        let ndv = sketch.estimate().min(rows as f64);
        ColumnStats {
            min,
            max,
            null_count: 0,
            ndv,
            avg_width: if rows == 0 {
                0.0
            } else {
                col.total_bytes() as f64 / rows as f64
            },
            dict,
            sketch,
        }
    }

    /// Merge the stats of another fragment of the same column.
    pub fn merge(&mut self, other: &ColumnStats, own_rows: u64, other_rows: u64) {
        self.sketch.merge(&other.sketch);
        self.null_count += other.null_count;
        // Partitions of one relation share their dictionary; anything else
        // (or a plain fragment) drops it.
        self.dict = match (self.dict.take(), &other.dict) {
            (Some(a), Some(b)) if Arc::ptr_eq(&a, b) => Some(a),
            (Some(a), None) if other_rows == 0 => Some(a),
            (None, Some(b)) if own_rows == 0 => Some(Arc::clone(b)),
            _ => None,
        };
        self.min = match (self.min.take(), other.min.clone()) {
            (Some(a), Some(b)) => Some(if value_le(&b, &a) { b } else { a }),
            (a, b) => a.or(b),
        };
        self.max = match (self.max.take(), other.max.clone()) {
            (Some(a), Some(b)) => Some(if value_le(&a, &b) { b } else { a }),
            (a, b) => a.or(b),
        };
        let total = own_rows + other_rows;
        if total > 0 {
            self.avg_width = (self.avg_width * own_rows as f64
                + other.avg_width * other_rows as f64)
                / total as f64;
        }
        self.ndv = self.sketch.estimate().min(total as f64);
    }

    /// Numeric span `max - min`, if the column is numeric and non-empty.
    pub fn numeric_span(&self) -> Option<f64> {
        match (&self.min, &self.max) {
            (Some(lo), Some(hi)) if !matches!(lo, Value::Str(_)) => Some(hi.as_f64() - lo.as_f64()),
            _ => None,
        }
    }
}

fn value_le(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => x <= y,
        _ => a.as_f64() <= b.as_f64(),
    }
}

/// Merged statistics for a whole relation.
#[derive(Debug, Clone)]
pub struct TableStats {
    pub rows: u64,
    pub bytes: u64,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Stats of one partition batch.
    pub fn from_batch(batch: &Batch) -> Self {
        TableStats {
            rows: batch.rows() as u64,
            bytes: batch.total_bytes(),
            columns: batch
                .columns()
                .iter()
                .map(ColumnStats::from_column)
                .collect(),
        }
    }

    /// Merge another partition's stats into this one.
    pub fn merge(&mut self, other: &TableStats) {
        assert_eq!(
            self.columns.len(),
            other.columns.len(),
            "partition column counts differ"
        );
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.merge(b, self.rows, other.rows);
        }
        self.rows += other.rows;
        self.bytes += other.bytes;
    }

    /// Compute merged stats over a sequence of partition batches.
    pub fn from_partitions<'a>(parts: impl IntoIterator<Item = &'a Batch>) -> Self {
        let mut iter = parts.into_iter();
        let mut acc = match iter.next() {
            Some(first) => TableStats::from_batch(first),
            None => TableStats {
                rows: 0,
                bytes: 0,
                columns: Vec::new(),
            },
        };
        for b in iter {
            acc.merge(&TableStats::from_batch(b));
        }
        acc
    }

    pub fn column(&self, i: usize) -> &ColumnStats {
        &self.columns[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hll_is_accurate_within_a_few_percent() {
        for &n in &[100u64, 1_000, 50_000] {
            let mut s = HllSketch::new();
            for i in 0..n {
                s.insert_hash(hash64(i));
            }
            let est = s.estimate();
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.08, "n={n} est={est} err={err}");
        }
    }

    #[test]
    fn hll_merge_equals_union() {
        let mut a = HllSketch::new();
        let mut b = HllSketch::new();
        let mut whole = HllSketch::new();
        for i in 0..10_000u64 {
            let h = hash64(i);
            if i % 2 == 0 {
                a.insert_hash(h);
            } else {
                b.insert_hash(h);
            }
            whole.insert_hash(h);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), whole.estimate());
    }

    #[test]
    fn hll_duplicates_do_not_inflate() {
        let mut s = HllSketch::new();
        for _ in 0..100_000 {
            s.insert_hash(hash64(7));
        }
        assert!(s.estimate() <= 2.0);
    }

    #[test]
    fn column_stats_min_max_ndv() {
        let c = Column::I64(vec![5, 1, 9, 1, 5]);
        let s = ColumnStats::from_column(&c);
        assert_eq!(s.min, Some(Value::I64(1)));
        assert_eq!(s.max, Some(Value::I64(9)));
        assert_eq!(s.null_count, 0);
        assert!((s.ndv - 3.0).abs() < 0.5, "ndv {}", s.ndv);
        assert_eq!(s.avg_width, 8.0);
        assert_eq!(s.numeric_span(), Some(8.0));
    }

    #[test]
    fn string_stats_are_lexicographic() {
        let c = Column::Str(vec!["pear".into(), "apple".into(), "fig".into()]);
        let s = ColumnStats::from_column(&c);
        assert_eq!(s.min, Some(Value::Str("apple".into())));
        assert_eq!(s.max, Some(Value::Str("pear".into())));
        assert!(s.numeric_span().is_none());
        assert!(s.avg_width > 4.0);
    }

    #[test]
    fn empty_column_stats() {
        let s = ColumnStats::from_column(&Column::I64(vec![]));
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.ndv, 0.0);
    }

    #[test]
    fn partition_merge_matches_whole() {
        use crate::value::DataType;
        let whole = Batch::from_columns(vec![
            Column::I64((0..1000).collect()),
            Column::Str((0..1000).map(|i| format!("v{}", i % 37)).collect()),
        ]);
        let mut parts = Vec::new();
        for p in 0..4 {
            let sel: Vec<u32> = (0..1000u32).filter(|i| i % 4 == p).collect();
            let mut b = Batch::empty(&[DataType::I64, DataType::Str]);
            b.extend_selected(&whole, &sel);
            parts.push(b);
        }
        let merged = TableStats::from_partitions(parts.iter());
        let direct = TableStats::from_batch(&whole);
        assert_eq!(merged.rows, 1000);
        assert_eq!(merged.bytes, direct.bytes);
        assert_eq!(merged.column(0).min, direct.column(0).min);
        assert_eq!(merged.column(0).max, direct.column(0).max);
        // Same inserted hash set => identical sketches => identical NDV.
        assert_eq!(merged.column(0).ndv, direct.column(0).ndv);
        assert_eq!(merged.column(1).ndv, direct.column(1).ndv);
    }
}
