//! Write-ahead log: length+CRC-framed redo records with group commit.
//!
//! The log is a single append-only file of self-describing frames:
//!
//! ```text
//! frame   := [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! payload := [lsn: u64 LE] [op tag: u8] [op fields...]
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the payload, so a torn tail — a frame cut
//! short by a crash mid-`write` — is detected either by the length
//! running past end-of-file or by a checksum mismatch, and recovery
//! truncates it (see [`crate::recovery`]). LSNs are assigned
//! contiguously from 1 by the single appender.
//!
//! **Group commit.** [`Wal::append`] only buffers serialized frames;
//! durability happens in [`Wal::commit_durable`], which blocks until the
//! caller's LSN has been fsynced. The first committer to find no flush
//! in progress becomes the *leader*: it takes the whole buffer (its own
//! frames plus every frame appended since the last flush), writes and
//! fsyncs once, then wakes all waiters whose LSNs the flush covered.
//! Commits that arrive while a flush is running pile into the next
//! group — one fsync amortizes over all of them, which is where the
//! commits/s headroom over fsync-per-commit comes from. A commit is
//! acknowledged only after its group is durable.
//!
//! **Fault injection.** [`WalFaults`] models the storage failure modes
//! chaos schedules exercise: `crash@lsn` stops the log dead at a record
//! boundary (the file keeps exactly the frames before that LSN),
//! torn-write keeps only a byte prefix of one frame, and failed-fsync
//! makes the n-th fsync fail. Any fired fault *poisons* the log — every
//! later append or commit returns [`WalError::Poisoned`], modeling a
//! process that halts on write-path failure rather than limping on with
//! unknown durability (the post-fsyncgate consensus). Tests then
//! recover from the on-disk bytes as a restart would.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};

use crate::value::{DataType, Value};

/// Name of the log file inside a WAL directory.
pub const WAL_FILE: &str = "wal.log";

/// Frame header size: length + CRC.
pub const FRAME_HEADER: usize = 8;

/// One redo operation. `table` is the registration index of the
/// relation in the transactional catalog (stable across restarts
/// because tables are registered in a fixed order).
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Row inserted by `txn` (visible only once its Commit arrives).
    Insert {
        txn: u64,
        table: u32,
        row: Vec<Value>,
    },
    /// Row (base or delta, see [`crate::delta::delta_row_id`]) deleted by `txn`.
    Delete { txn: u64, table: u32, row_id: u64 },
    /// `txn`'s buffered operations become visible at `commit_ts`.
    Commit { txn: u64, commit_ts: u64 },
    /// Committed delta state of `table` up to `upto_ts` was folded into
    /// new base partitions; replay re-runs the same fold.
    Merge { table: u32, upto_ts: u64 },
}

/// A framed record: operation plus its log sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    pub lsn: u64,
    pub op: WalOp,
}

/// Why a WAL operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// An injected crash/torn-write/fsync fault (or a real I/O error)
    /// halted the log; the engine must restart and recover.
    Poisoned(String),
    /// Real I/O error from the filesystem.
    Io(String),
    /// A frame failed to decode (recovery-side).
    Corrupt(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Poisoned(m) => write!(f, "wal poisoned: {m}"),
            WalError::Io(m) => write!(f, "wal i/o error: {m}"),
            WalError::Corrupt(m) => write!(f, "wal corrupt: {m}"),
        }
    }
}

/// Deterministic WAL fault schedule (the storage-level half of the
/// chaos `FaultPlan` grammar; `morsel-core` parses the text form and
/// converts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalFaults {
    /// Stop the log immediately before writing the frame with this LSN.
    pub crash_at_lsn: Vec<u64>,
    /// Write only `keep` bytes of the frame with this LSN, then stop.
    pub torn_write: Vec<(u64, u32)>,
    /// Fail the n-th fsync (0-based).
    pub fail_fsync: Vec<u64>,
}

impl WalFaults {
    pub fn none() -> Self {
        WalFaults::default()
    }

    pub fn is_empty(&self) -> bool {
        self.crash_at_lsn.is_empty() && self.torn_write.is_empty() && self.fail_fsync.is_empty()
    }

    pub fn crash_at(lsn: u64) -> Self {
        WalFaults {
            crash_at_lsn: vec![lsn],
            ..Default::default()
        }
    }

    pub fn torn_at(lsn: u64, keep: u32) -> Self {
        WalFaults {
            torn_write: vec![(lsn, keep)],
            ..Default::default()
        }
    }

    pub fn fsync_fail(nth: u64) -> Self {
        WalFaults {
            fail_fsync: vec![nth],
            ..Default::default()
        }
    }
}

struct WalState {
    /// Serialized frames not yet written to the file.
    buf: Vec<u8>,
    /// LSN of the last frame in `buf` (0 when empty).
    buffered_lsn: u64,
    /// Next LSN to assign.
    next_lsn: u64,
    /// Highest LSN known durable (written + fsynced).
    durable_lsn: u64,
    /// A leader is currently flushing outside the lock.
    flushing: bool,
    /// Set by a fired fault or real I/O error; everything fails after.
    poisoned: Option<String>,
    /// LSNs of commit records awaiting durability (for batch stats).
    pending_commits: Vec<u64>,
    /// Completed fsync count (indexes `fail_fsync`).
    fsyncs: u64,
    /// Commits acknowledged per fsync, in order (group-commit batches).
    groups: Vec<u32>,
    /// Total bytes written to the file.
    written_bytes: u64,
}

/// Group-commit write-ahead log over one append-only file.
pub struct Wal {
    path: PathBuf,
    file: Mutex<File>,
    state: Mutex<WalState>,
    cond: Condvar,
    faults: WalFaults,
}

/// Throughput-facing statistics for benches and RESULT lines.
#[derive(Debug, Clone, Default)]
pub struct WalStats {
    pub next_lsn: u64,
    pub durable_lsn: u64,
    pub fsyncs: u64,
    pub written_bytes: u64,
    /// Commits acknowledged per fsync (group-commit batch sizes).
    pub groups: Vec<u32>,
}

impl WalStats {
    pub fn mean_group(&self) -> f64 {
        if self.groups.is_empty() {
            0.0
        } else {
            self.groups.iter().map(|&g| f64::from(g)).sum::<f64>() / self.groups.len() as f64
        }
    }
}

impl Wal {
    /// Create (or truncate) the log at `dir/wal.log`.
    pub fn create(dir: &Path) -> Result<Wal, WalError> {
        std::fs::create_dir_all(dir).map_err(|e| WalError::Io(e.to_string()))?;
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| WalError::Io(e.to_string()))?;
        Ok(Wal::with_file(path, file, 1, 0))
    }

    /// Reopen an existing log for appending after recovery scanned it:
    /// the file is truncated to `valid_bytes` (dropping any torn tail)
    /// and LSNs continue from `next_lsn`.
    pub fn reopen(dir: &Path, valid_bytes: u64, next_lsn: u64) -> Result<Wal, WalError> {
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)
            .map_err(|e| WalError::Io(e.to_string()))?;
        file.set_len(valid_bytes)
            .map_err(|e| WalError::Io(e.to_string()))?;
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| WalError::Io(e.to_string()))?;
        Ok(Wal::with_file(path, file, next_lsn, valid_bytes))
    }

    fn with_file(path: PathBuf, file: File, next_lsn: u64, written: u64) -> Wal {
        Wal {
            path,
            file: Mutex::new(file),
            state: Mutex::new(WalState {
                buf: Vec::new(),
                buffered_lsn: 0,
                next_lsn,
                durable_lsn: next_lsn - 1,
                flushing: false,
                poisoned: None,
                pending_commits: Vec::new(),
                fsyncs: 0,
                groups: Vec::new(),
                written_bytes: written,
            }),
            cond: Condvar::new(),
            faults: WalFaults::none(),
        }
    }

    /// Attach a fault schedule (chaos tests).
    pub fn with_faults(mut self, faults: WalFaults) -> Wal {
        self.faults = faults;
        self
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Serialize and buffer `ops` as consecutive frames. Returns the LSN
    /// of the **last** buffered record; pass it to
    /// [`Wal::commit_durable`] to make the batch durable. Fails without
    /// buffering anything past the fault point when a crash or
    /// torn-write fault fires.
    pub fn append(&self, ops: &[WalOp]) -> Result<u64, WalError> {
        let mut st = self.state.lock().unwrap();
        if let Some(msg) = &st.poisoned {
            return Err(WalError::Poisoned(msg.clone()));
        }
        for op in ops {
            let lsn = st.next_lsn;
            // crash@lsn: flush everything before this frame, then halt.
            if self.faults.crash_at_lsn.contains(&lsn) {
                let msg = format!("injected fault: crash@lsn#{lsn}");
                self.flush_for_poison(&mut st, None, &msg);
                self.cond.notify_all();
                return Err(WalError::Poisoned(msg));
            }
            let frame = encode_frame(lsn, op);
            if let Some(&(_, keep)) = self.faults.torn_write.iter().find(|&&(l, _)| l == lsn) {
                let msg = format!("injected fault: torn@lsn#{lsn}+{keep}");
                let torn: Vec<u8> = frame.iter().copied().take(keep as usize).collect();
                self.flush_for_poison(&mut st, Some(torn), &msg);
                self.cond.notify_all();
                return Err(WalError::Poisoned(msg));
            }
            st.buf.extend_from_slice(&frame);
            st.buffered_lsn = lsn;
            st.next_lsn = lsn + 1;
            if matches!(op, WalOp::Commit { .. }) {
                st.pending_commits.push(lsn);
            }
        }
        Ok(st.next_lsn - 1)
    }

    /// Write out everything buffered (plus an optional torn suffix) and
    /// poison the log: the file now holds exactly what a crash at this
    /// point would leave behind. Buffered frames *before* the fault
    /// point still reach the file — a crash loses the fsync guarantee,
    /// not bytes the page cache already accepted; recovery treats both
    /// the same and the tests exercise the strictest (all-bytes-present)
    /// prefix.
    fn flush_for_poison(&self, st: &mut WalState, torn_tail: Option<Vec<u8>>, msg: &str) {
        let mut bytes = std::mem::take(&mut st.buf);
        if let Some(tail) = torn_tail {
            bytes.extend_from_slice(&tail);
        }
        let mut file = self.file.lock().unwrap();
        let _ = file.write_all(&bytes);
        let _ = file.sync_data();
        st.written_bytes += bytes.len() as u64;
        st.poisoned = Some(msg.to_owned());
    }

    /// Block until `lsn` is durable (group commit). The caller must have
    /// appended the record for `lsn` already.
    pub fn commit_durable(&self, lsn: u64) -> Result<(), WalError> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(msg) = &st.poisoned {
                return Err(WalError::Poisoned(msg.clone()));
            }
            if st.durable_lsn >= lsn {
                return Ok(());
            }
            if !st.flushing {
                // Become the leader: take the buffer, flush outside the
                // state lock so later appends/commits form the next group.
                st.flushing = true;
                let bytes = std::mem::take(&mut st.buf);
                let target = st.buffered_lsn;
                let fsync_idx = st.fsyncs;
                let acked = {
                    let covered = st.pending_commits.iter().filter(|&&c| c <= target).count();
                    st.pending_commits.retain(|&c| c > target);
                    covered as u32
                };
                drop(st);

                let io_result = (|| -> Result<(), String> {
                    let mut file = self.file.lock().unwrap();
                    file.write_all(&bytes).map_err(|e| e.to_string())?;
                    if self.faults.fail_fsync.contains(&fsync_idx) {
                        return Err(format!("injected fault: fsync@wal#{fsync_idx}"));
                    }
                    file.sync_data().map_err(|e| e.to_string())?;
                    Ok(())
                })();

                st = self.state.lock().unwrap();
                st.flushing = false;
                st.fsyncs += 1;
                st.written_bytes += bytes.len() as u64;
                match io_result {
                    Ok(()) => {
                        st.durable_lsn = st.durable_lsn.max(target);
                        if acked > 0 {
                            st.groups.push(acked);
                        }
                    }
                    Err(msg) => {
                        st.poisoned = Some(msg);
                    }
                }
                self.cond.notify_all();
            } else {
                st = self.cond.wait(st).unwrap();
            }
        }
    }

    /// Append `ops` and wait for their durability: the whole commit
    /// path in one call.
    pub fn log_commit(&self, ops: &[WalOp]) -> Result<u64, WalError> {
        let lsn = self.append(ops)?;
        self.commit_durable(lsn)?;
        Ok(lsn)
    }

    pub fn is_poisoned(&self) -> bool {
        self.state.lock().unwrap().poisoned.is_some()
    }

    pub fn stats(&self) -> WalStats {
        let st = self.state.lock().unwrap();
        WalStats {
            next_lsn: st.next_lsn,
            durable_lsn: st.durable_lsn,
            fsyncs: st.fsyncs,
            written_bytes: st.written_bytes,
            groups: st.groups.clone(),
        }
    }
}

// ---- frame encoding -----------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Small branchless table built once.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::I64(x) => {
            out.push(0);
            put_u64(out, *x as u64);
        }
        Value::I32(x) => {
            out.push(1);
            put_u32(out, *x as u32);
        }
        Value::F64(x) => {
            out.push(2);
            put_u64(out, x.to_bits());
        }
        Value::Str(s) => {
            out.push(3);
            put_u32(out, s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Serialize one record as a complete frame (header + payload).
pub fn encode_frame(lsn: u64, op: &WalOp) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32);
    put_u64(&mut payload, lsn);
    match op {
        WalOp::Insert { txn, table, row } => {
            payload.push(0);
            put_u64(&mut payload, *txn);
            put_u32(&mut payload, *table);
            put_u32(&mut payload, row.len() as u32);
            for v in row {
                put_value(&mut payload, v);
            }
        }
        WalOp::Delete { txn, table, row_id } => {
            payload.push(1);
            put_u64(&mut payload, *txn);
            put_u32(&mut payload, *table);
            put_u64(&mut payload, *row_id);
        }
        WalOp::Commit { txn, commit_ts } => {
            payload.push(2);
            put_u64(&mut payload, *txn);
            put_u64(&mut payload, *commit_ts);
        }
        WalOp::Merge { table, upto_ts } => {
            payload.push(3);
            put_u32(&mut payload, *table);
            put_u64(&mut payload, *upto_ts);
        }
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        if self.pos + n > self.bytes.len() {
            return Err(WalError::Corrupt("payload truncated".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn value(&mut self) -> Result<Value, WalError> {
        Ok(match self.u8()? {
            0 => Value::I64(self.u64()? as i64),
            1 => Value::I32(self.u32()? as i32),
            2 => Value::F64(f64::from_bits(self.u64()?)),
            3 => {
                let len = self.u32()? as usize;
                let bytes = self.take(len)?;
                Value::Str(
                    std::str::from_utf8(bytes)
                        .map_err(|_| WalError::Corrupt("non-utf8 string".into()))?
                        .to_owned(),
                )
            }
            t => return Err(WalError::Corrupt(format!("unknown value tag {t}"))),
        })
    }
}

/// Decode one payload (the bytes after the frame header) into a record.
pub fn decode_payload(payload: &[u8]) -> Result<WalRecord, WalError> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let lsn = c.u64()?;
    let op = match c.u8()? {
        0 => {
            let txn = c.u64()?;
            let table = c.u32()?;
            let n = c.u32()? as usize;
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(c.value()?);
            }
            WalOp::Insert { txn, table, row }
        }
        1 => WalOp::Delete {
            txn: c.u64()?,
            table: c.u32()?,
            row_id: c.u64()?,
        },
        2 => WalOp::Commit {
            txn: c.u64()?,
            commit_ts: c.u64()?,
        },
        3 => WalOp::Merge {
            table: c.u32()?,
            upto_ts: c.u64()?,
        },
        t => return Err(WalError::Corrupt(format!("unknown op tag {t}"))),
    };
    if c.pos != payload.len() {
        return Err(WalError::Corrupt("trailing payload bytes".into()));
    }
    Ok(WalRecord { lsn, op })
}

/// Placeholder for [`DataType`] round-trips in doc examples.
pub fn value_type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::I64 => 0,
        DataType::I32 => 1,
        DataType::F64 => 2,
        DataType::Str => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "morsel-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Insert {
                txn: 7,
                table: 0,
                row: vec![
                    Value::I64(42),
                    Value::I32(-3),
                    Value::F64(1.5),
                    Value::Str("it's".into()),
                ],
            },
            WalOp::Delete {
                txn: 7,
                table: 0,
                row_id: 0x8000_0000_0000_0001,
            },
            WalOp::Commit {
                txn: 7,
                commit_ts: 11,
            },
            WalOp::Merge {
                table: 0,
                upto_ts: 11,
            },
        ]
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frames_round_trip() {
        for (i, op) in sample_ops().into_iter().enumerate() {
            let lsn = i as u64 + 1;
            let frame = encode_frame(lsn, &op);
            let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
            let payload = &frame[FRAME_HEADER..];
            assert_eq!(payload.len(), len);
            assert_eq!(crc32(payload), crc);
            let rec = decode_payload(payload).unwrap();
            assert_eq!(rec.lsn, lsn);
            assert_eq!(rec.op, op);
        }
    }

    #[test]
    fn append_assigns_contiguous_lsns_and_commit_is_durable() {
        let dir = tmpdir("basic");
        let wal = Wal::create(&dir).unwrap();
        let last = wal.append(&sample_ops()).unwrap();
        assert_eq!(last, 4);
        wal.commit_durable(last).unwrap();
        let st = wal.stats();
        assert_eq!(st.durable_lsn, 4);
        assert_eq!(st.next_lsn, 5);
        assert_eq!(st.fsyncs, 1);
        assert_eq!(st.groups, vec![1], "one commit record in the group");
        let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        assert_eq!(bytes.len() as u64, st.written_bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_fault_keeps_exact_prefix_and_poisons() {
        let dir = tmpdir("crash");
        let wal = Wal::create(&dir)
            .unwrap()
            .with_faults(WalFaults::crash_at(3));
        let err = wal.append(&sample_ops()).unwrap_err();
        assert!(matches!(err, WalError::Poisoned(_)), "{err:?}");
        assert!(wal.is_poisoned());
        // Everything later fails fast.
        assert!(wal.append(&sample_ops()[..1]).is_err());
        assert!(wal.commit_durable(1).is_err());
        // The file holds exactly frames 1 and 2.
        let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let ops = sample_ops();
        let expect: Vec<u8> = encode_frame(1, &ops[0])
            .into_iter()
            .chain(encode_frame(2, &ops[1]))
            .collect();
        assert_eq!(bytes, expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_fault_leaves_partial_frame() {
        let dir = tmpdir("torn");
        let wal = Wal::create(&dir)
            .unwrap()
            .with_faults(WalFaults::torn_at(2, 5));
        let err = wal.append(&sample_ops()).unwrap_err();
        assert!(matches!(err, WalError::Poisoned(_)));
        let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let ops = sample_ops();
        let full1 = encode_frame(1, &ops[0]);
        assert_eq!(bytes.len(), full1.len() + 5, "frame 1 plus 5 torn bytes");
        assert_eq!(&bytes[..full1.len()], &full1[..]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_fsync_poisons_and_commit_errors() {
        let dir = tmpdir("fsync");
        let wal = Wal::create(&dir)
            .unwrap()
            .with_faults(WalFaults::fsync_fail(0));
        let last = wal.append(&sample_ops()).unwrap();
        let err = wal.commit_durable(last).unwrap_err();
        assert!(matches!(err, WalError::Poisoned(_)), "{err:?}");
        assert!(wal.is_poisoned());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_batches_concurrent_committers() {
        let dir = tmpdir("group");
        let wal = std::sync::Arc::new(Wal::create(&dir).unwrap());
        let threads = 8u64;
        let per = 4u64;
        let mut joins = Vec::new();
        for t in 0..threads {
            let wal = std::sync::Arc::clone(&wal);
            joins.push(std::thread::spawn(move || {
                for i in 0..per {
                    let lsn = wal
                        .append(&[
                            WalOp::Insert {
                                txn: t,
                                table: 0,
                                row: vec![Value::I64(i as i64)],
                            },
                            WalOp::Commit {
                                txn: t,
                                commit_ts: 1,
                            },
                        ])
                        .unwrap();
                    wal.commit_durable(lsn).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let st = wal.stats();
        let total: u32 = st.groups.iter().sum();
        assert_eq!(u64::from(total), threads * per, "every commit acknowledged");
        assert_eq!(st.durable_lsn, st.next_lsn - 1);
        assert!(
            st.fsyncs <= threads * per,
            "fsyncs ({}) never exceed commits",
            st.fsyncs
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_lsns_and_truncates() {
        let dir = tmpdir("reopen");
        let wal = Wal::create(&dir).unwrap();
        let ops = sample_ops();
        let last = wal.append(&ops[..2]).unwrap();
        wal.commit_durable(last).unwrap();
        let valid = wal.stats().written_bytes;
        drop(wal);
        // Simulate a torn tail beyond the valid prefix.
        {
            use std::io::Write;
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(WAL_FILE))
                .unwrap();
            f.write_all(&[0xAB, 0xCD]).unwrap();
        }
        let wal = Wal::reopen(&dir, valid, last + 1).unwrap();
        let l2 = wal.append(&ops[2..3]).unwrap();
        assert_eq!(l2, 3);
        wal.commit_durable(l2).unwrap();
        let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let expect: Vec<u8> = encode_frame(1, &ops[0])
            .into_iter()
            .chain(encode_frame(2, &ops[1]))
            .chain(encode_frame(3, &ops[2]))
            .collect();
        assert_eq!(bytes, expect, "torn tail dropped, frame 3 appended after");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
