//! A name → relation catalog: the binding surface between a text front
//! end and the storage layer.
//!
//! The engine's relations carry their own [`Schema`]s and
//! statistics; a [`Catalog`] only adds the table-name level on top so
//! that a SQL binder (or any other front end that works with names
//! instead of `Arc<Relation>` handles) can resolve `FROM` clauses. It is
//! deliberately a thin, immutable snapshot: benchmarks build one per
//! generated database and hand it to whoever needs name resolution.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::relation::Relation;
use crate::schema::Schema;

/// An ordered table-name → [`Relation`] map.
#[derive(Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Relation>>,
    version: u64,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register `relation` under `name` (replacing any previous entry).
    /// Every registration advances [`Catalog::version`].
    pub fn add(&mut self, name: &str, relation: Arc<Relation>) {
        self.tables.insert(name.to_owned(), relation);
        self.version += 1;
    }

    /// Monotonic change counter: advances on every [`Catalog::add`] and
    /// on explicit [`Catalog::bump_version`] calls. Plan and result
    /// caches key on this so entries bound against a stale snapshot are
    /// invalidated instead of served.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Explicit invalidation hook for in-place data changes the table
    /// map cannot see (a reloaded relation behind an existing `Arc`, a
    /// regenerated database reusing the same names): advances the
    /// version without touching any entry.
    pub fn bump_version(&mut self) -> u64 {
        self.version += 1;
        self.version
    }

    /// Force the version to `v` (must not move backwards). Transactional
    /// snapshot catalogs are rebuilt from scratch per snapshot, so their
    /// `add`-counted versions would restart low; the transaction layer
    /// stamps them with its own monotonic counter instead so downstream
    /// plan/result caches see a strictly advancing version across
    /// commits and merges.
    pub fn set_version(&mut self, v: u64) {
        assert!(
            v >= self.version,
            "catalog version must be monotonic ({} -> {v})",
            self.version
        );
        self.version = v;
    }

    /// Builder-style [`Catalog::add`].
    pub fn with_table(mut self, name: &str, relation: Arc<Relation>) -> Self {
        self.add(name, relation);
        self
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Option<&Arc<Relation>> {
        self.tables.get(name)
    }

    /// The schema of a named table, if present.
    pub fn schema(&self, name: &str) -> Option<&Schema> {
        self.tables.get(name).map(|r| r.schema())
    }

    /// Registered table names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Iterate `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Relation>)> {
        self.tables.iter().map(|(n, r)| (n.as_str(), r))
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;
    use crate::column::Column;
    use crate::value::DataType;

    fn rel(names: &[&str]) -> Arc<Relation> {
        let schema = Schema::new(names.iter().map(|&n| (n, DataType::I64)).collect());
        let data = Batch::from_columns(names.iter().map(|_| Column::I64(vec![1, 2])).collect());
        Arc::new(Relation::single(schema, data))
    }

    #[test]
    fn lookup_and_listing() {
        let cat = Catalog::new()
            .with_table("t2", rel(&["b"]))
            .with_table("t1", rel(&["a"]));
        assert_eq!(cat.names(), vec!["t1", "t2"], "names sorted");
        assert_eq!(cat.len(), 2);
        assert!(!cat.is_empty());
        assert_eq!(cat.schema("t1").unwrap().names(), vec!["a"]);
        assert!(cat.get("missing").is_none());
        assert_eq!(cat.iter().count(), 2);
    }

    #[test]
    fn add_replaces_existing_entry() {
        let mut cat = Catalog::new();
        cat.add("t", rel(&["a"]));
        cat.add("t", rel(&["b"]));
        assert_eq!(cat.schema("t").unwrap().names(), vec!["b"]);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn version_advances_on_change() {
        let mut cat = Catalog::new();
        assert_eq!(cat.version(), 0);
        cat.add("t", rel(&["a"]));
        assert_eq!(cat.version(), 1);
        cat.add("t", rel(&["b"]));
        assert_eq!(cat.version(), 2, "replacement is a change too");
        assert_eq!(cat.bump_version(), 3);
        let snapshot = cat.clone();
        assert_eq!(snapshot.version(), 3, "clones carry the version");
        cat.bump_version();
        assert_eq!(snapshot.version(), 3, "snapshots stay pinned");
    }
}
