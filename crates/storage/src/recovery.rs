//! Crash recovery: scan the WAL, truncate the torn tail, redo the
//! committed prefix.
//!
//! Recovery is redo-only (ARIES without undo): the delta stores hold
//! committed data only, so there is nothing to roll back — operations
//! of transactions whose `Commit` record never became durable were
//! never applied and are simply discarded when replay ends.
//!
//! [`scan_wal`] reads frames until the first one that fails any check —
//! a header cut short (zero-length tail), a length running past
//! end-of-file (torn write), a CRC mismatch (corrupt or partially
//! written payload), or an undecodable payload. Everything after the
//! first bad frame is unreachable (frames are not self-synchronizing by
//! design: a commit is only acknowledged once durable, so nothing after
//! a torn frame was ever promised to a client) and gets truncated when
//! the log reopens for appending.
//!
//! [`replay`] then rebuilds the delta stores: operations buffer per
//! transaction and apply — in log order — when that transaction's
//! `Commit` record arrives; `Merge` records re-fold the store at the
//! logged timestamp so post-merge row ids come out identical to the
//! pre-crash run. Records at or below the highest LSN already applied
//! are skipped, which makes replay idempotent under duplicate-LSN
//! anomalies (a crashed retry that wrote the same frame twice).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use crate::delta::DeltaStore;
use crate::relation::Relation;
use crate::value::Value;
use crate::wal::{decode_payload, WalError, WalOp, WalRecord, FRAME_HEADER, WAL_FILE};

/// Upper bound on a sane frame payload; anything larger is treated as
/// corruption rather than an allocation request.
const MAX_PAYLOAD: u32 = 1 << 30;

/// Result of scanning a WAL file.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Every decodable record before the first bad frame, in LSN order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix; the log reopens truncated here.
    pub valid_bytes: u64,
    /// Why the scan stopped before end-of-file, if it did.
    pub truncated: Option<String>,
}

/// Scan `dir/wal.log`. A missing directory or file is an empty log —
/// recovery on a never-written database is a no-op, not an error.
pub fn scan_wal(dir: &Path) -> Result<WalScan, WalError> {
    let path = dir.join(WAL_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(WalError::Io(e.to_string())),
    };
    Ok(scan_bytes(&bytes))
}

/// Scan an in-memory log image (tests corrupt bytes directly).
pub fn scan_bytes(bytes: &[u8]) -> WalScan {
    let mut scan = WalScan::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remain = bytes.len() - pos;
        if remain < FRAME_HEADER {
            scan.truncated = Some(format!("{remain}-byte tail shorter than a frame header"));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_PAYLOAD {
            scan.truncated = Some(format!("implausible frame length {len}"));
            break;
        }
        let end = pos + FRAME_HEADER + len as usize;
        if end > bytes.len() {
            scan.truncated = Some(format!(
                "frame length {len} runs past end of file (torn write)"
            ));
            break;
        }
        let payload = &bytes[pos + FRAME_HEADER..end];
        if crate::wal::crc32(payload) != crc {
            scan.truncated = Some("CRC mismatch".into());
            break;
        }
        match decode_payload(payload) {
            Ok(rec) => scan.records.push(rec),
            Err(e) => {
                scan.truncated = Some(format!("undecodable payload: {e}"));
                break;
            }
        }
        pos = end;
        scan.valid_bytes = pos as u64;
    }
    scan
}

/// One transaction's not-yet-committed redo operation.
enum Pending {
    Insert { table: u32, row: Vec<Value> },
    Delete { table: u32, row_id: u64 },
}

/// The durable state reconstructed by [`replay`].
pub struct RecoveredState {
    /// Per-table base relations — replaced in place by `Merge` replays.
    pub bases: Vec<Arc<Relation>>,
    /// Per-table committed delta stores.
    pub deltas: Vec<DeltaStore>,
    /// Highest commit timestamp made durable.
    pub last_commit_ts: u64,
    /// One past the highest transaction id seen (restart allocates from
    /// here so ids never collide with logged ones).
    pub next_txn: u64,
    /// Highest LSN applied (restart's log continues after it).
    pub applied_lsn: u64,
}

/// Redo `records` over the load-time `bases` (table order must match
/// the table indices used when the log was written). `already_applied`
/// is the LSN floor for idempotent re-replay — pass 0 on a cold start.
pub fn replay(
    records: &[WalRecord],
    bases: &[Arc<Relation>],
    already_applied: u64,
) -> RecoveredState {
    let mut state = RecoveredState {
        deltas: bases
            .iter()
            .map(|b| DeltaStore::new(b.schema().clone()))
            .collect(),
        bases: bases.to_vec(),
        last_commit_ts: 0,
        next_txn: 1,
        applied_lsn: already_applied,
    };
    let mut pending: BTreeMap<u64, Vec<Pending>> = BTreeMap::new();
    for rec in records {
        if rec.lsn <= state.applied_lsn {
            continue; // duplicate LSN: already redone
        }
        state.applied_lsn = rec.lsn;
        match &rec.op {
            WalOp::Insert { txn, table, row } => {
                state.next_txn = state.next_txn.max(txn + 1);
                pending.entry(*txn).or_default().push(Pending::Insert {
                    table: *table,
                    row: row.clone(),
                });
            }
            WalOp::Delete { txn, table, row_id } => {
                state.next_txn = state.next_txn.max(txn + 1);
                pending.entry(*txn).or_default().push(Pending::Delete {
                    table: *table,
                    row_id: *row_id,
                });
            }
            WalOp::Commit { txn, commit_ts } => {
                state.next_txn = state.next_txn.max(txn + 1);
                for op in pending.remove(txn).unwrap_or_default() {
                    match op {
                        Pending::Insert { table, row } => {
                            state.deltas[table as usize].apply_insert(row, *commit_ts);
                        }
                        Pending::Delete { table, row_id } => {
                            state.deltas[table as usize].apply_delete(row_id, *commit_ts);
                        }
                    }
                }
                state.last_commit_ts = state.last_commit_ts.max(*commit_ts);
            }
            WalOp::Merge { table, upto_ts } => {
                let t = *table as usize;
                let (folded, next) = state.deltas[t].merge(&state.bases[t], *upto_ts);
                state.bases[t] = Arc::new(folded);
                state.deltas[t] = next;
            }
        }
    }
    // Operations still pending belong to transactions whose commit never
    // became durable: redo-only recovery drops them.
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;
    use crate::column::Column;
    use crate::schema::Schema;
    use crate::value::DataType;
    use crate::wal::{encode_frame, Wal, WalFaults};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "morsel-recovery-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn base() -> Arc<Relation> {
        let schema = Schema::new(vec![("k", DataType::I64)]);
        let data = Batch::from_columns(vec![Column::I64(vec![1, 2, 3])]);
        Arc::new(Relation::single(schema, data))
    }

    fn ops() -> Vec<WalOp> {
        vec![
            WalOp::Insert {
                txn: 1,
                table: 0,
                row: vec![Value::I64(10)],
            },
            WalOp::Commit {
                txn: 1,
                commit_ts: 5,
            },
            WalOp::Delete {
                txn: 2,
                table: 0,
                row_id: 0,
            },
            WalOp::Commit {
                txn: 2,
                commit_ts: 6,
            },
        ]
    }

    fn log_of(records: &[(u64, WalOp)]) -> Vec<u8> {
        records
            .iter()
            .flat_map(|(lsn, op)| encode_frame(*lsn, op))
            .collect()
    }

    #[test]
    fn empty_directory_recovers_to_nothing() {
        let dir = tmpdir("empty");
        let scan = scan_wal(&dir).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_bytes, 0);
        assert!(scan.truncated.is_none());
        let st = replay(&scan.records, &[base()], 0);
        assert!(st.deltas[0].is_empty());
        assert_eq!(st.next_txn, 1);
        assert_eq!(st.applied_lsn, 0);
    }

    #[test]
    fn scan_reads_everything_the_wal_wrote() {
        let dir = tmpdir("full");
        let wal = Wal::create(&dir).unwrap();
        let last = wal.append(&ops()).unwrap();
        wal.commit_durable(last).unwrap();
        drop(wal);
        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert!(scan.truncated.is_none());
        let st = replay(&scan.records, &[base()], 0);
        assert_eq!(st.last_commit_ts, 6);
        assert_eq!(st.next_txn, 3);
        assert_eq!(st.applied_lsn, 4);
        let snap = st.deltas[0].snapshot(&st.bases[0], 6).gather();
        assert_eq!(snap.column(0).as_i64(), &[2, 3, 10]);
    }

    #[test]
    fn zero_length_tail_is_truncated() {
        let o = ops();
        let mut bytes = log_of(&[(1, o[0].clone()), (2, o[1].clone())]);
        let good = bytes.len() as u64;
        bytes.extend_from_slice(&[0x17, 0x00, 0x00]); // 3 stray bytes
        let scan = scan_bytes(&bytes);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_bytes, good);
        assert!(scan.truncated.as_deref().unwrap().contains("header"));
    }

    #[test]
    fn torn_frame_is_truncated() {
        let o = ops();
        let mut bytes = log_of(&[(1, o[0].clone())]);
        let good = bytes.len() as u64;
        let torn = encode_frame(2, &o[1]);
        bytes.extend_from_slice(&torn[..torn.len() - 3]);
        let scan = scan_bytes(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_bytes, good);
        assert!(scan.truncated.as_deref().unwrap().contains("torn"));
    }

    #[test]
    fn crc_corruption_mid_file_stops_the_scan() {
        let o = ops();
        let frames: Vec<Vec<u8>> = o
            .iter()
            .enumerate()
            .map(|(i, op)| encode_frame(i as u64 + 1, op))
            .collect();
        let mut bytes: Vec<u8> = frames.concat();
        // Flip one payload byte inside frame 2.
        let f2_payload = frames[0].len() + FRAME_HEADER + 2;
        bytes[f2_payload] ^= 0xFF;
        let scan = scan_bytes(&bytes);
        assert_eq!(scan.records.len(), 1, "only frame 1 survives");
        assert_eq!(scan.valid_bytes, frames[0].len() as u64);
        assert_eq!(scan.truncated.as_deref(), Some("CRC mismatch"));
    }

    #[test]
    fn duplicate_lsn_replay_is_idempotent() {
        let o = ops();
        let records: Vec<WalRecord> = scan_bytes(&log_of(&[
            (1, o[0].clone()),
            (2, o[1].clone()),
            (2, o[1].clone()), // duplicated commit frame
            (3, o[2].clone()),
            (4, o[3].clone()),
        ]))
        .records;
        assert_eq!(records.len(), 5);
        let st = replay(&records, &[base()], 0);
        assert_eq!(st.deltas[0].delta_rows(), 1, "insert applied once");
        assert_eq!(st.deltas[0].tombstone_count(), 1);
        // Replaying the whole log again over the recovered floor is a no-op.
        let st2 = replay(&records, &[base()], st.applied_lsn);
        assert!(st2.deltas[0].is_empty());
    }

    #[test]
    fn uncommitted_tail_is_dropped() {
        let o = ops();
        let records = scan_bytes(&log_of(&[
            (1, o[0].clone()),
            (2, o[1].clone()),
            (3, o[2].clone()), // delete by txn 2, but no commit follows
        ]))
        .records;
        let st = replay(&records, &[base()], 0);
        assert_eq!(st.deltas[0].delta_rows(), 1);
        assert_eq!(
            st.deltas[0].tombstone_count(),
            0,
            "uncommitted delete dropped"
        );
        assert_eq!(st.next_txn, 3, "txn 2 id still burned");
    }

    #[test]
    fn merge_record_refolds_identically() {
        let dir = tmpdir("merge");
        let wal = Wal::create(&dir).unwrap();
        let mut all = ops();
        all.push(WalOp::Merge {
            table: 0,
            upto_ts: 6,
        });
        all.push(WalOp::Insert {
            txn: 3,
            table: 0,
            row: vec![Value::I64(20)],
        });
        all.push(WalOp::Commit {
            txn: 3,
            commit_ts: 7,
        });
        let last = wal.append(&all).unwrap();
        wal.commit_durable(last).unwrap();
        drop(wal);

        // Live run: apply the same sequence directly.
        let mut delta = DeltaStore::new(base().schema().clone());
        let mut b = base();
        delta.apply_insert(vec![Value::I64(10)], 5);
        delta.apply_delete(0, 6);
        let (folded, next) = delta.merge(&b, 6);
        b = Arc::new(folded);
        let mut delta = next;
        delta.apply_insert(vec![Value::I64(20)], 7);

        let scan = scan_wal(&dir).unwrap();
        let st = replay(&scan.records, &[base()], 0);
        assert_eq!(st.deltas[0], delta, "delta store byte-identical");
        assert_eq!(st.bases[0].gather(), b.gather(), "merged base identical");
        assert_eq!(st.deltas[0].epoch(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_fault_prefix_recovers_cleanly() {
        let dir = tmpdir("crashprefix");
        let wal = Wal::create(&dir)
            .unwrap()
            .with_faults(WalFaults::crash_at(4));
        let _ = wal.append(&ops());
        drop(wal);
        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.records.len(), 3, "frames before the crash LSN");
        assert!(scan.truncated.is_none(), "crash cut at a record boundary");
        let st = replay(&scan.records, &[base()], 0);
        // txn 1 committed (lsn 2); txn 2's delete never committed.
        assert_eq!(st.deltas[0].delta_rows(), 1);
        assert_eq!(st.deltas[0].tombstone_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_fault_recovers_to_prefix() {
        let dir = tmpdir("tornfault");
        let wal = Wal::create(&dir)
            .unwrap()
            .with_faults(WalFaults::torn_at(3, 6));
        let _ = wal.append(&ops());
        drop(wal);
        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(scan.truncated.is_some());
        // Reopen truncates the torn bytes and appending continues at lsn 3.
        let wal = Wal::reopen(&dir, scan.valid_bytes, 3).unwrap();
        let o = ops();
        let last = wal.append(&o[2..]).unwrap();
        wal.commit_durable(last).unwrap();
        drop(wal);
        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert!(scan.truncated.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
