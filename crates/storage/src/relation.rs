//! NUMA-partitioned base relations.
//!
//! Section 4.3: relations are distributed over the memory nodes, either
//! round-robin or — better — hash-partitioned on an "important" attribute
//! so that co-partitioned joins mostly find their partners NUMA-locally.
//! Section 5.1: HyPer partitions each relation on the first attribute of
//! the primary key into 64 partitions. A partition lives entirely on one
//! node; morsels never span partitions.

use std::sync::{Arc, OnceLock};

use morsel_numa::{Placement, SocketId, Topology};

use crate::batch::Batch;
use crate::hash::hash_i64;
use crate::schema::Schema;
use crate::stats::TableStats;

/// One NUMA-resident fragment of a relation.
#[derive(Debug, Clone)]
pub struct Partition {
    pub node: SocketId,
    pub data: Batch,
}

/// How rows are assigned to partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionBy {
    /// Hash of an `i64` key column (the paper's preferred scheme).
    Hash { column: usize },
    /// Contiguous chunks in row order (round-robin across nodes).
    Chunks,
}

/// A base relation: schema plus NUMA-resident partitions.
///
/// Row/byte totals are computed once at construction, and catalog
/// statistics ([`TableStats`]) are computed lazily on first use and
/// cached — the planner's estimator hits both repeatedly.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    partitions: Vec<Partition>,
    total_rows: usize,
    total_bytes: u64,
    stats: OnceLock<Arc<TableStats>>,
}

impl Relation {
    fn from_parts(schema: Schema, partitions: Vec<Partition>) -> Self {
        let total_rows = partitions.iter().map(|p| p.data.rows()).sum();
        let total_bytes = partitions.iter().map(|p| p.data.total_bytes()).sum();
        Relation {
            schema,
            partitions,
            total_rows,
            total_bytes,
            stats: OnceLock::new(),
        }
    }

    /// Build a relation from already-placed partitions. Row/byte totals
    /// and the stats cache are recomputed from scratch, which is the
    /// write path's staleness guarantee: a snapshot or merge that
    /// changes row data must construct a *new* `Relation` through here
    /// (never mutate one in place), so the planner can never cost
    /// against pre-write `total_rows`/`total_bytes`/`stats()` values —
    /// the caches belong to the instance and the instance is immutable.
    pub fn from_partitions(schema: Schema, partitions: Vec<Partition>) -> Self {
        assert!(
            !partitions.is_empty(),
            "a relation needs at least one partition"
        );
        Relation::from_parts(schema, partitions)
    }
}

impl Relation {
    /// Partition `data` into `partition_count` fragments and place them on
    /// nodes according to `placement`.
    ///
    /// With [`Placement::FirstTouch`] partitions go round-robin over nodes
    /// (each is "first touched" by the loader thread of its node); with
    /// [`Placement::OsDefault`] everything lands on node 0 (paper,
    /// footnote 6); with [`Placement::Interleaved`] partitions go
    /// round-robin as well (per-page interleaving and per-partition
    /// round-robin are equivalent at morsel granularity);
    /// [`Placement::OnNode`] pins all partitions to one node.
    pub fn partitioned(
        schema: Schema,
        data: &Batch,
        by: PartitionBy,
        partition_count: usize,
        placement: Placement,
        topology: &Topology,
    ) -> Self {
        assert!(partition_count > 0, "need at least one partition");
        let sockets = topology.sockets();
        let types = schema.data_types();
        let mut parts: Vec<Batch> = (0..partition_count).map(|_| Batch::empty(&types)).collect();

        match by {
            PartitionBy::Hash { column } => {
                let keys = data.column(column).as_i64();
                let mut sel: Vec<Vec<u32>> = vec![Vec::new(); partition_count];
                for (i, &k) in keys.iter().enumerate() {
                    // The *lowest* bits of the same hash the join hash
                    // table will use its highest bits of (Section 4.3).
                    let p = (hash_i64(k) % partition_count as u64) as usize;
                    sel[p].push(i as u32);
                }
                for (p, s) in parts.iter_mut().zip(&sel) {
                    p.extend_selected(data, s);
                }
            }
            PartitionBy::Chunks => {
                let n = data.rows();
                let per = n.div_ceil(partition_count);
                for (pi, part) in parts.iter_mut().enumerate() {
                    let from = (pi * per).min(n);
                    let to = ((pi + 1) * per).min(n);
                    if from < to {
                        let sel: Vec<u32> = (from as u32..to as u32).collect();
                        part.extend_selected(data, &sel);
                    }
                }
            }
        }

        let partitions = parts
            .into_iter()
            .enumerate()
            .map(|(i, data)| Partition {
                node: placement.node_for(i, SocketId((i % sockets as usize) as u16), sockets),
                data,
            })
            .collect();
        Relation::from_parts(schema, partitions)
    }

    /// A single-partition relation on node 0 (for tests and tiny tables).
    pub fn single(schema: Schema, data: Batch) -> Self {
        Relation::from_parts(
            schema,
            vec![Partition {
                node: SocketId(0),
                data,
            }],
        )
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    pub fn partition(&self, i: usize) -> &Partition {
        &self.partitions[i]
    }

    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Merged catalog statistics, computed per partition on first use and
    /// cached for the planner's repeated lookups.
    pub fn stats(&self) -> Arc<TableStats> {
        Arc::clone(self.stats.get_or_init(|| {
            Arc::new(TableStats::from_partitions(
                self.partitions.iter().map(|p| &p.data),
            ))
        }))
    }

    /// Re-place the partitions under a different policy without copying
    /// row data (used by the Section 5.3 placement comparison).
    pub fn with_placement(&self, placement: Placement, topology: &Topology) -> Relation {
        let sockets = topology.sockets();
        let partitions = self
            .partitions
            .iter()
            .enumerate()
            .map(|(i, p)| Partition {
                node: placement.node_for(i, SocketId((i % sockets as usize) as u16), sockets),
                data: p.data.clone(),
            })
            .collect();
        Relation {
            schema: self.schema.clone(),
            partitions,
            total_rows: self.total_rows,
            total_bytes: self.total_bytes,
            // Placement does not change the data, so the stats carry over
            // (including an already-computed cache).
            stats: self.stats.clone(),
        }
    }

    /// Concatenate all partitions back into one batch, with dictionary
    /// columns decoded to plain strings (tests/verification — callers
    /// compare raw values).
    pub fn gather(&self) -> Batch {
        let mut out = Batch::empty(&self.schema.data_types());
        for p in &self.partitions {
            out.extend_from(&p.data);
        }
        out.decoded()
    }

    /// Dictionary-encode every low-cardinality string column (one sorted
    /// dictionary per column, shared by all partitions). The load-time
    /// step that turns string predicates, group-bys, and sorts into
    /// integer-code kernels; columns whose domain fails
    /// [`crate::dict::worth_encoding`] stay plain. Row counts are
    /// unchanged; byte totals shrink to the 4-byte-code accounting.
    pub fn dict_encoded(mut self) -> Relation {
        let str_cols: Vec<usize> = (0..self.schema.len())
            .filter(|&i| self.schema.dtype(i) == crate::value::DataType::Str)
            .collect();
        for c in str_cols {
            let fragments: Vec<&crate::column::Column> =
                self.partitions.iter().map(|p| p.data.column(c)).collect();
            if let Some((_dict, encoded)) = crate::column::encode_fragments(&fragments) {
                for (p, col) in self.partitions.iter_mut().zip(encoded) {
                    p.data.replace_column(c, col);
                }
            }
        }
        Relation::from_parts(self.schema, self.partitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::value::DataType;

    fn sample_batch(n: usize) -> Batch {
        Batch::from_columns(vec![
            Column::I64((0..n as i64).collect()),
            Column::I64((0..n as i64).map(|x| x * 10).collect()),
        ])
    }

    fn schema() -> Schema {
        Schema::new(vec![("k", DataType::I64), ("v", DataType::I64)])
    }

    #[test]
    fn hash_partitioning_preserves_all_rows() {
        let t = Topology::nehalem_ex();
        let data = sample_batch(1000);
        let r = Relation::partitioned(
            schema(),
            &data,
            PartitionBy::Hash { column: 0 },
            64,
            Placement::FirstTouch,
            &t,
        );
        assert_eq!(r.partitions().len(), 64);
        assert_eq!(r.total_rows(), 1000);
        // Key k must be in the partition hash says it is.
        for p in r.partitions() {
            for &k in p.data.column(0).as_i64() {
                assert_eq!((hash_i64(k) % 64) as usize % 4, p.node.0 as usize % 4);
            }
        }
    }

    #[test]
    fn hash_partitioning_is_roughly_balanced() {
        let t = Topology::nehalem_ex();
        let data = sample_batch(6400);
        let r = Relation::partitioned(
            schema(),
            &data,
            PartitionBy::Hash { column: 0 },
            64,
            Placement::FirstTouch,
            &t,
        );
        let avg = 100.0;
        for p in r.partitions() {
            let n = p.data.rows() as f64;
            assert!(
                n > avg * 0.5 && n < avg * 1.7,
                "partition size {n} too far from {avg}"
            );
        }
    }

    #[test]
    fn chunk_partitioning_keeps_order() {
        let t = Topology::laptop();
        let data = sample_batch(10);
        let r = Relation::partitioned(
            schema(),
            &data,
            PartitionBy::Chunks,
            3,
            Placement::FirstTouch,
            &t,
        );
        assert_eq!(r.partition(0).data.column(0).as_i64(), &[0, 1, 2, 3]);
        assert_eq!(r.partition(2).data.column(0).as_i64(), &[8, 9]);
        assert_eq!(
            r.gather().column(0).as_i64(),
            sample_batch(10).column(0).as_i64()
        );
    }

    #[test]
    fn os_default_places_everything_on_node0() {
        let t = Topology::nehalem_ex();
        let data = sample_batch(100);
        let r = Relation::partitioned(
            schema(),
            &data,
            PartitionBy::Chunks,
            8,
            Placement::OsDefault,
            &t,
        );
        assert!(r.partitions().iter().all(|p| p.node == SocketId(0)));
    }

    #[test]
    fn first_touch_spreads_over_nodes() {
        let t = Topology::nehalem_ex();
        let data = sample_batch(100);
        let r = Relation::partitioned(
            schema(),
            &data,
            PartitionBy::Chunks,
            8,
            Placement::FirstTouch,
            &t,
        );
        let nodes: std::collections::HashSet<u16> =
            r.partitions().iter().map(|p| p.node.0).collect();
        assert_eq!(nodes.len(), 4);
    }

    #[test]
    fn replacement_changes_nodes_not_data() {
        let t = Topology::nehalem_ex();
        let data = sample_batch(100);
        let r = Relation::partitioned(
            schema(),
            &data,
            PartitionBy::Chunks,
            8,
            Placement::FirstTouch,
            &t,
        );
        let r2 = r.with_placement(Placement::OsDefault, &t);
        assert!(r2.partitions().iter().all(|p| p.node == SocketId(0)));
        assert_eq!(r2.total_rows(), r.total_rows());
        assert_eq!(r2.gather(), r.gather());
    }

    #[test]
    fn stats_merge_partitions_and_cache() {
        let t = Topology::nehalem_ex();
        let data = sample_batch(1000);
        let r = Relation::partitioned(
            schema(),
            &data,
            PartitionBy::Hash { column: 0 },
            16,
            Placement::FirstTouch,
            &t,
        );
        let s = r.stats();
        assert_eq!(s.rows, 1000);
        assert_eq!(s.bytes, r.total_bytes());
        assert_eq!(s.column(0).min, Some(crate::value::Value::I64(0)));
        assert_eq!(s.column(0).max, Some(crate::value::Value::I64(999)));
        let err = (s.column(0).ndv - 1000.0).abs() / 1000.0;
        assert!(err < 0.08, "ndv {}", s.column(0).ndv);
        // Cached: same Arc on the second call, carried across re-placement.
        assert!(Arc::ptr_eq(&s, &r.stats()));
        let r2 = r.with_placement(Placement::OsDefault, &t);
        assert!(Arc::ptr_eq(&s, &r2.stats()));
    }

    #[test]
    fn dict_encoding_shares_dictionary_across_partitions() {
        use crate::column::Column;
        use crate::value::{DataType, Value};
        let t = Topology::nehalem_ex();
        let n = 400usize;
        let data = Batch::from_columns(vec![
            Column::I64((0..n as i64).collect()),
            Column::Str((0..n).map(|i| format!("tag{}", i % 7)).collect()),
            // High-cardinality column stays plain.
            Column::Str((0..n).map(|i| format!("unique-{i}")).collect()),
        ]);
        let schema = Schema::new(vec![
            ("k", DataType::I64),
            ("tag", DataType::Str),
            ("note", DataType::Str),
        ]);
        let plain = Relation::partitioned(
            schema,
            &data,
            PartitionBy::Hash { column: 0 },
            8,
            Placement::FirstTouch,
            &t,
        );
        let rows_before = plain.total_rows();
        let gathered_before = plain.gather();
        let r = plain.dict_encoded();
        assert_eq!(r.total_rows(), rows_before);
        // All partitions of the encoded column share one dictionary.
        let dicts: Vec<_> = r
            .partitions()
            .iter()
            .map(|p| p.data.column(1).as_dict().expect("tag should encode"))
            .collect();
        assert!(dicts.windows(2).all(|w| w[0].same_dict(w[1])));
        assert_eq!(dicts[0].dict().len(), 7);
        assert!(r
            .partitions()
            .iter()
            .all(|p| p.data.column(2).as_dict().is_none()));
        // Encoded bytes shrink; decoded gather is unchanged.
        assert!(r.total_bytes() < rows_before as u64 * 100);
        assert_eq!(r.gather(), gathered_before);
        // Stats over codes expose the dictionary and the true NDV.
        let s = r.stats();
        assert!(s.column(1).dict.is_some());
        assert!((s.column(1).ndv - 7.0).abs() < 1.0);
        assert_eq!(s.column(1).min, Some(Value::Str("tag0".into())));
        assert_eq!(s.column(1).max, Some(Value::Str("tag6".into())));
    }

    #[test]
    fn single_partition_relation() {
        let r = Relation::single(schema(), sample_batch(5));
        assert_eq!(r.partitions().len(), 1);
        assert_eq!(r.total_rows(), 5);
        assert!(r.total_bytes() > 0);
    }
}
