//! Per-worker NUMA-local storage areas.
//!
//! Section 2: "to write NUMA-locally and to avoid synchronization while
//! writing intermediate results the QEPobject allocates a storage area for
//! each such thread/core for each executable pipeline", and "after
//! completion of the entire pipeline the temporary storage areas are
//! logically re-fragmented into equally sized morsels" for the next
//! pipeline. A stolen morsel's output "turns blue": it is written to the
//! *worker's* local area, not the input's node.

use morsel_numa::SocketId;

use crate::batch::Batch;
use crate::schema::Schema;
use crate::value::DataType;

/// An appendable, node-tagged result buffer owned by one worker while a
/// pipeline runs.
#[derive(Debug, Clone)]
pub struct StorageArea {
    node: SocketId,
    data: Batch,
}

impl StorageArea {
    pub fn new(node: SocketId, types: &[DataType]) -> Self {
        StorageArea {
            node,
            data: Batch::empty(types),
        }
    }

    pub fn node(&self) -> SocketId {
        self.node
    }

    pub fn data(&self) -> &Batch {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut Batch {
        &mut self.data
    }

    pub fn rows(&self) -> usize {
        self.data.rows()
    }
}

/// The frozen output of a completed pipeline: one storage area per worker,
/// ready to be re-fragmented into morsels for the next pipeline.
#[derive(Debug, Clone)]
pub struct AreaSet {
    schema: Schema,
    areas: Vec<StorageArea>,
}

impl AreaSet {
    pub fn new(schema: Schema, areas: Vec<StorageArea>) -> Self {
        AreaSet { schema, areas }
    }

    /// An empty set (pipeline produced nothing).
    pub fn empty(schema: Schema) -> Self {
        AreaSet {
            schema,
            areas: Vec::new(),
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn areas(&self) -> &[StorageArea] {
        &self.areas
    }

    pub fn area(&self, i: usize) -> &StorageArea {
        &self.areas[i]
    }

    pub fn total_rows(&self) -> usize {
        self.areas.iter().map(StorageArea::rows).sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.areas.iter().map(|a| a.data.total_bytes()).sum()
    }

    /// Concatenate all areas into one batch (result delivery, tests).
    pub fn gather(&self) -> Batch {
        let mut out = Batch::empty(&self.schema.data_types());
        for a in &self.areas {
            out.extend_from(&a.data);
        }
        out
    }

    /// Drop empty areas (workers that never produced output).
    pub fn prune_empty(mut self) -> Self {
        self.areas.retain(|a| a.rows() > 0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn schema() -> Schema {
        Schema::new(vec![("x", DataType::I64)])
    }

    #[test]
    fn area_append_and_tag() {
        let mut a = StorageArea::new(SocketId(2), &[DataType::I64]);
        assert_eq!(a.node(), SocketId(2));
        a.data_mut()
            .extend_from(&Batch::from_columns(vec![Column::I64(vec![1, 2, 3])]));
        assert_eq!(a.rows(), 3);
    }

    #[test]
    fn area_set_gather_concatenates_in_area_order() {
        let mut a0 = StorageArea::new(SocketId(0), &[DataType::I64]);
        a0.data_mut()
            .extend_from(&Batch::from_columns(vec![Column::I64(vec![1, 2])]));
        let mut a1 = StorageArea::new(SocketId(1), &[DataType::I64]);
        a1.data_mut()
            .extend_from(&Batch::from_columns(vec![Column::I64(vec![3])]));
        let set = AreaSet::new(schema(), vec![a0, a1]);
        assert_eq!(set.total_rows(), 3);
        assert_eq!(set.gather().column(0).as_i64(), &[1, 2, 3]);
    }

    #[test]
    fn prune_empty_removes_idle_workers() {
        let a0 = StorageArea::new(SocketId(0), &[DataType::I64]);
        let mut a1 = StorageArea::new(SocketId(1), &[DataType::I64]);
        a1.data_mut()
            .extend_from(&Batch::from_columns(vec![Column::I64(vec![3])]));
        let set = AreaSet::new(schema(), vec![a0, a1]).prune_empty();
        assert_eq!(set.areas().len(), 1);
        assert_eq!(set.area(0).node(), SocketId(1));
    }

    #[test]
    fn empty_set() {
        let set = AreaSet::empty(schema());
        assert_eq!(set.total_rows(), 0);
        assert_eq!(set.gather().rows(), 0);
        assert_eq!(set.total_bytes(), 0);
    }
}
