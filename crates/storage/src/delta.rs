//! Versioned delta stores: the MVCC write side of immutable column
//! partitions.
//!
//! Base relations stay exactly what the read path built at load time —
//! immutable, NUMA-placed, dictionary-encoded column partitions. All
//! writes go to a per-relation [`DeltaStore`]: committed inserts append
//! to a row-ordered delta batch stamped with their commit timestamp,
//! and deletes are tombstones (`row id → delete timestamp`) that may
//! point at base rows or at delta rows. An `UPDATE` is a delete plus an
//! insert in the same transaction. A reader at snapshot timestamp `ts`
//! sees: base rows without a tombstone `≤ ts`, plus delta rows inserted
//! `≤ ts` and not tombstoned `≤ ts` — writers never block readers and
//! vice versa.
//!
//! **Row addressing.** Base rows are numbered globally in partition
//! order (partition 0's rows first, then partition 1's, …). Delta rows
//! set the high bit: [`delta_row_id`]. A background merge folds all
//! committed delta state into fresh base partitions, which renumbers
//! rows and bumps the store's *epoch* — transactions that captured row
//! ids under the old epoch must conflict-abort, which the transaction
//! layer enforces by comparing epochs at commit.
//!
//! The store holds **committed data only**. Uncommitted writes live in
//! per-transaction buffers (in `morsel-txn`) and are applied here in
//! one deterministic sequence at commit, mirroring the WAL record
//! order. That makes crash recovery trivial to state: replaying the
//! committed prefix of the log through [`DeltaStore::apply_insert`] /
//! [`DeltaStore::apply_delete`] / [`DeltaStore::merge`] reconstructs a
//! store that is `==` (field-for-field, row-for-row) to the one the
//! crashed process held — the property the crash sweep asserts.

use std::collections::BTreeMap;

use morsel_numa::SocketId;

use crate::batch::Batch;
use crate::relation::{Partition, Relation};
use crate::schema::Schema;
use crate::value::Value;

/// High bit marks a delta row id; the low bits are the index into the
/// delta batch.
pub const DELTA_ROW_BIT: u64 = 1 << 63;

/// Row id of the `i`-th delta row of the current epoch.
pub fn delta_row_id(i: usize) -> u64 {
    DELTA_ROW_BIT | i as u64
}

/// Approximate in-memory bytes of one row (memory-budget accounting;
/// matches the column layer's byte accounting conventions).
pub fn row_bytes(row: &[Value]) -> u64 {
    row.iter()
        .map(|v| match v {
            Value::I64(_) | Value::F64(_) => 8,
            Value::I32(_) => 4,
            Value::Str(s) => 1 + s.len() as u64,
        })
        .sum()
}

/// Committed MVCC delta state for one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaStore {
    schema: Schema,
    /// Inserted rows in commit order (plain columns; dictionary
    /// encoding happens only when a merge folds them into base
    /// partitions).
    rows: Batch,
    /// Commit timestamp of each delta row, aligned with `rows`.
    insert_ts: Vec<u64>,
    /// Deleted row id → commit timestamp of the delete.
    tombstones: BTreeMap<u64, u64>,
    /// Bumped by every merge; row ids are only meaningful within one
    /// epoch.
    epoch: u64,
    /// Highest commit timestamp applied to this store.
    last_commit_ts: u64,
}

impl DeltaStore {
    pub fn new(schema: Schema) -> Self {
        let types = schema.data_types();
        DeltaStore {
            schema,
            rows: Batch::empty(&types),
            insert_ts: Vec::new(),
            tombstones: BTreeMap::new(),
            epoch: 0,
            last_commit_ts: 0,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// No committed writes at all (a snapshot is exactly the base).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() && self.tombstones.is_empty()
    }

    pub fn delta_rows(&self) -> usize {
        self.rows.rows()
    }

    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn last_commit_ts(&self) -> u64 {
        self.last_commit_ts
    }

    /// Approximate committed delta bytes (rows + tombstone entries).
    pub fn approx_bytes(&self) -> u64 {
        self.rows.total_bytes() + self.tombstones.len() as u64 * 16
    }

    /// Append a committed insert; returns the new row's id.
    pub fn apply_insert(&mut self, row: Vec<Value>, commit_ts: u64) -> u64 {
        let id = delta_row_id(self.rows.rows());
        self.rows.push_row(row);
        self.insert_ts.push(commit_ts);
        self.last_commit_ts = self.last_commit_ts.max(commit_ts);
        id
    }

    /// Record a committed delete of `row_id` (base or delta). A second
    /// delete of the same row can only happen when write-write conflict
    /// detection is deliberately disabled (the SI checker's teeth
    /// mode); the earliest tombstone governs visibility, and replaying
    /// such a log must reproduce the same state, so first delete wins.
    pub fn apply_delete(&mut self, row_id: u64, commit_ts: u64) {
        self.tombstones.entry(row_id).or_insert(commit_ts);
        self.last_commit_ts = self.last_commit_ts.max(commit_ts);
    }

    fn deleted_at(&self, row_id: u64, ts: u64) -> bool {
        self.tombstones.get(&row_id).is_some_and(|&d| d <= ts)
    }

    /// Whether `row_id` carries a tombstone of *any* timestamp. The
    /// first-committer-wins check: a committing transaction saw this
    /// row alive at its begin snapshot, so any tombstone present now
    /// was committed by a concurrent transaction — write-write
    /// conflict.
    pub fn tombstoned(&self, row_id: u64) -> bool {
        self.tombstones.contains_key(&row_id)
    }

    /// True when a snapshot at `ts` sees no delta effects: the caller
    /// can serve the base relation unchanged (and byte-identical).
    pub fn snapshot_is_base(&self, ts: u64) -> bool {
        self.insert_ts.iter().all(|&t| t > ts) && self.tombstones.values().all(|&t| t > ts)
    }

    /// Materialize the relation a snapshot at `ts` sees: base partitions
    /// with tombstoned rows filtered out (in place, keeping node
    /// placement and dictionary encoding) plus one extra plain
    /// partition of visible delta rows. Always builds a **fresh**
    /// [`Relation`], so row/byte totals and planner statistics are
    /// recomputed — never served from a pre-write cache.
    pub fn snapshot(&self, base: &Relation, ts: u64) -> Relation {
        let mut parts: Vec<Partition> = Vec::with_capacity(base.partitions().len() + 1);
        let mut start = 0u64;
        for p in base.partitions() {
            let n = p.data.rows() as u64;
            let dead: Vec<u32> = self
                .tombstones
                .range(start..start + n)
                .filter(|&(_, &d)| d <= ts)
                .map(|(&id, _)| (id - start) as u32)
                .collect();
            let data = if dead.is_empty() {
                p.data.clone()
            } else {
                let dead_set: std::collections::HashSet<u32> = dead.into_iter().collect();
                let sel: Vec<u32> = (0..p.data.rows() as u32)
                    .filter(|i| !dead_set.contains(i))
                    .collect();
                p.data.gather(&sel)
            };
            parts.push(Partition { node: p.node, data });
            start += n;
        }
        let mut extra = Batch::empty(&self.schema.data_types());
        for i in 0..self.rows.rows() {
            if self.insert_ts[i] <= ts && !self.deleted_at(delta_row_id(i), ts) {
                extra.push_from(&self.rows, i);
            }
        }
        if !extra.is_empty() {
            parts.push(Partition {
                node: SocketId(0),
                data: extra,
            });
        }
        Relation::from_partitions(self.schema.clone(), parts)
    }

    /// All rows visible at `ts` as one decoded batch plus their row ids
    /// (aligned). The transaction layer scans this to resolve `UPDATE`
    /// / `DELETE` predicates to row ids.
    pub fn visible_rows(&self, base: &Relation, ts: u64) -> (Batch, Vec<u64>) {
        let mut out = Batch::empty(&self.schema.data_types());
        let mut ids = Vec::new();
        let mut start = 0u64;
        for p in base.partitions() {
            let decoded = p.data.decoded();
            for i in 0..decoded.rows() {
                let id = start + i as u64;
                if !self.deleted_at(id, ts) {
                    out.push_from(&decoded, i);
                    ids.push(id);
                }
            }
            start += p.data.rows() as u64;
        }
        for i in 0..self.rows.rows() {
            let id = delta_row_id(i);
            if self.insert_ts[i] <= ts && !self.deleted_at(id, ts) {
                out.push_from(&self.rows, i);
                ids.push(id);
            }
        }
        (out, ids)
    }

    /// Fold all committed delta state into fresh base partitions and
    /// start a new epoch. `upto_ts` must cover every commit in the
    /// store (the transaction layer merges under its commit lock, so
    /// nothing newer can exist); it is logged in the WAL `Merge` record
    /// so replay re-folds at exactly the same point and reconstructs
    /// the same row numbering.
    pub fn merge(&self, base: &Relation, upto_ts: u64) -> (Relation, DeltaStore) {
        assert!(
            upto_ts >= self.last_commit_ts,
            "merge upto_ts {upto_ts} must cover last commit {}",
            self.last_commit_ts
        );
        let folded = self.snapshot(base, upto_ts);
        let next = DeltaStore {
            schema: self.schema.clone(),
            rows: Batch::empty(&self.schema.data_types()),
            insert_ts: Vec::new(),
            tombstones: BTreeMap::new(),
            epoch: self.epoch + 1,
            last_commit_ts: self.last_commit_ts,
        };
        (folded, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::value::DataType;
    use morsel_numa::{Placement, Topology};

    fn schema() -> Schema {
        Schema::new(vec![("k", DataType::I64), ("tag", DataType::Str)])
    }

    fn base() -> Relation {
        let data = Batch::from_columns(vec![
            Column::I64(vec![1, 2, 3, 4]),
            Column::Str(vec!["a".into(), "b".into(), "a".into(), "b".into()]),
        ]);
        Relation::partitioned(
            schema(),
            &data,
            crate::relation::PartitionBy::Chunks,
            2,
            Placement::FirstTouch,
            &Topology::laptop(),
        )
    }

    fn row(k: i64, tag: &str) -> Vec<Value> {
        vec![Value::I64(k), Value::Str(tag.into())]
    }

    #[test]
    fn empty_delta_serves_base_unchanged() {
        let b = base();
        let d = DeltaStore::new(schema());
        assert!(d.is_empty());
        assert!(d.snapshot_is_base(u64::MAX));
        let snap = d.snapshot(&b, 100);
        assert_eq!(snap.gather(), b.gather());
    }

    #[test]
    fn snapshot_respects_timestamps() {
        let b = base();
        let mut d = DeltaStore::new(schema());
        d.apply_insert(row(5, "c"), 10);
        d.apply_delete(0, 20); // base row k=1
        d.apply_delete(delta_row_id(0), 30); // the row we inserted

        assert!(d.snapshot_is_base(9));
        assert!(!d.snapshot_is_base(10));

        let at9 = d.snapshot(&b, 9).gather();
        assert_eq!(at9.column(0).as_i64(), &[1, 2, 3, 4]);

        let at10 = d.snapshot(&b, 10).gather();
        assert_eq!(at10.column(0).as_i64(), &[1, 2, 3, 4, 5]);

        let at20 = d.snapshot(&b, 20).gather();
        assert_eq!(at20.column(0).as_i64(), &[2, 3, 4, 5]);

        let at30 = d.snapshot(&b, 30).gather();
        assert_eq!(at30.column(0).as_i64(), &[2, 3, 4]);
        assert_eq!(d.last_commit_ts(), 30);
    }

    #[test]
    fn visible_rows_align_ids() {
        let b = base();
        let mut d = DeltaStore::new(schema());
        d.apply_insert(row(5, "c"), 10);
        d.apply_delete(1, 10); // base row k=2
        let (rows, ids) = d.visible_rows(&b, 10);
        assert_eq!(rows.column(0).as_i64(), &[1, 3, 4, 5]);
        assert_eq!(ids, vec![0, 2, 3, delta_row_id(0)]);
        for (i, &id) in ids.iter().enumerate() {
            if id & DELTA_ROW_BIT == 0 {
                assert!(id < b.total_rows() as u64, "base id in range");
            }
            let _ = i;
        }
    }

    #[test]
    fn merge_folds_and_bumps_epoch() {
        let b = base();
        let mut d = DeltaStore::new(schema());
        d.apply_insert(row(5, "c"), 10);
        d.apply_delete(0, 20);
        let (merged, next) = d.merge(&b, 20);
        assert_eq!(merged.gather().column(0).as_i64(), &[2, 3, 4, 5]);
        assert_eq!(merged.total_rows(), 4);
        assert!(next.is_empty());
        assert_eq!(next.epoch(), 1);
        assert_eq!(next.last_commit_ts(), 20);
        // Fresh relation → fresh stats (not the base's cached ones).
        assert_eq!(merged.stats().rows, 4);
        assert_eq!(b.stats().rows, 4 /* base never mutated */);
        assert_eq!(b.total_rows(), 4);
    }

    #[test]
    fn replay_reconstructs_identical_store() {
        let b = base();
        let mut live = DeltaStore::new(schema());
        live.apply_insert(row(5, "c"), 10);
        live.apply_delete(2, 11);
        live.apply_insert(row(6, "d"), 12);

        let mut replayed = DeltaStore::new(schema());
        replayed.apply_insert(row(5, "c"), 10);
        replayed.apply_delete(2, 11);
        replayed.apply_insert(row(6, "d"), 12);

        assert_eq!(live, replayed, "same op sequence, equal stores");
        assert_eq!(
            live.snapshot(&b, 12).gather(),
            replayed.snapshot(&b, 12).gather()
        );
    }
}
