//! Minimal API-compatible property-testing harness standing in for
//! `proptest` (offline vendored stub, see DESIGN.md §7). Supports the
//! surface this repo's property tests use:
//!
//! - the `proptest! { #![proptest_config(..)] #[test] fn f(x in strat, ..) {..} }`
//!   macro form,
//! - integer range strategies (`0usize..5_000`, `-50i64..50`, `1..=9`),
//! - `any::<T>()` for integers and `bool`,
//! - tuple strategies `(stratA, stratB)`,
//! - `proptest::collection::vec(strat, len_range)`,
//! - string strategies from the `[chars]{lo,hi}` regex subset,
//! - `prop_assert!` / `prop_assert_eq!` (panic-based; no shrinking).
//!
//! Cases are generated deterministically from the test name and case
//! index, so failures are reproducible by rerunning the test. Shrinking is
//! not implemented; failures report the panic message directly.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case RNG (xoshiro256++ seeded by splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed = (seed ^ u64::from(b)).wrapping_mul(0x1_0000_01b3);
        }
        let mut sm = seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// Something that can produce random values of a type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// `any::<T>()` marker.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                // Bias towards small magnitudes now and then: uniform bits
                // rarely produce the interesting collisions around zero.
                match rng.below(4) {
                    0 => (rng.below(201) as i128 - 100) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_any_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// String strategy from the `[chars]{lo,hi}` regex subset (literal
/// characters inside one class, repeated a bounded number of times).
/// Unsupported patterns panic with a clear message.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_repeat(self).unwrap_or_else(|| {
            panic!(
                "vendored proptest stub only supports '[chars]{{lo,hi}}' string \
                 strategies, got {self:?}"
            )
        });
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let rest = rest.strip_prefix('{')?;
    let body = rest.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let chars: Vec<char> = class.chars().collect();
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)`: a vector whose length is drawn from
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Assert within a property (panic-based in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The `proptest!` block: declares `#[test]` functions whose arguments are
/// drawn from strategies for `config.cases` deterministic cases each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..u64::from(cfg.cases) {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..1_000 {
            let v = Strategy::sample(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            let u = Strategy::sample(&(0usize..=3), &mut rng);
            assert!(u <= 3);
        }
    }

    #[test]
    fn vec_and_tuple_strategies() {
        let mut rng = TestRng::for_case("t2", 1);
        let v = Strategy::sample(
            &collection::vec((0i64..20, -100i64..100), 1..2_000),
            &mut rng,
        );
        assert!(!v.is_empty() && v.len() < 2_000);
        for (a, b) in v {
            assert!((0..20).contains(&a));
            assert!((-100..100).contains(&b));
        }
    }

    #[test]
    fn string_class_repeat() {
        let mut rng = TestRng::for_case("t3", 2);
        for _ in 0..200 {
            let s = Strategy::sample(&"[ab%]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| "ab%".contains(c)));
        }
    }

    #[test]
    fn deterministic_cases() {
        let mut a = TestRng::for_case("same", 3);
        let mut b = TestRng::for_case("same", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("same", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro form itself works end to end.
        #[test]
        fn macro_form_runs(x in 0i64..10, mut v in collection::vec(0i64..5, 0..4)) {
            prop_assert!((0..10).contains(&x));
            v.push(x);
            prop_assert_eq!(*v.last().unwrap(), x, "x was {}", x);
        }
    }
}
