//! Minimal API-compatible wall-clock benchmark harness standing in for
//! `criterion` (offline vendored stub, see DESIGN.md §7). It implements the
//! subset the repo's benches use — groups, throughput annotation, sample
//! size, `bench_function` / `bench_with_input`, `b.iter` — and measures for
//! real: per sample it times one closure invocation with `std::time::Instant`
//! after a short warm-up, then reports median / mean / min / max and derived
//! throughput in a stable, greppable one-line format:
//!
//! ```text
//! bench probe_pipeline/4  time: [12.345 ms 12.500 ms 13.001 ms]  thrpt: [40.000 Melem/s]
//! ```
//!
//! (the three bracketed times are min, median, max of the samples).

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation: scales time into elements or bytes per second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier, rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the bench closure; `iter` runs and times the workload.
pub struct Bencher {
    /// Duration of each measured sample (one closure call per sample).
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_iters: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_size,
            warm_up_iters: 2,
        }
    }

    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.warm_up_iters {
            hint::black_box(routine());
        }
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// The harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility (`cargo bench` passes `--bench`);
    /// arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    pub fn bench_function<S: Into<BenchmarkId>, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one("", &id.into().id, None, sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<S: Into<BenchmarkId>, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into().id,
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    pub fn bench_with_input<S: Into<BenchmarkId>, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.into().id,
            self.throughput,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    let mut b = Bencher::new(sample_size);
    f(&mut b);
    let full = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("bench {full}  (no samples: closure never called iter)");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort();
    let min = sorted[0];
    let max = *sorted.last().unwrap();
    let median = sorted[sorted.len() / 2];
    let line = format!(
        "bench {full}  time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max),
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / median.as_secs_f64();
            println!("{line}  thrpt: [{:.3} Melem/s]", rate / 1e6);
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / median.as_secs_f64();
            println!("{line}  thrpt: [{:.3} MiB/s]", rate / (1024.0 * 1024.0));
        }
        None => println!("{line}"),
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declare a bench group function invoking each registered bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declare the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("insert", "tagged").id, "insert/tagged");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 5);
        // 2 warm-up + 5 measured.
        assert_eq!(calls, 7);
    }

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(10)).sample_size(3);
        let mut ran = false;
        g.bench_with_input(BenchmarkId::from_parameter(1), &5u64, |b, &x| {
            b.iter(|| x * 2);
            ran = true;
        });
        g.finish();
        assert!(ran);
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn duration_formats() {
        assert!(fmt_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
