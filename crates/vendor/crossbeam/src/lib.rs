//! Minimal API-compatible stand-in for `crossbeam` (offline vendored stub,
//! see DESIGN.md §7). Only `utils::CachePadded` is needed: a wrapper that
//! aligns its contents to a cache-line boundary so hot atomics in adjacent
//! queue slots do not false-share.

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) one cache line. 128 bytes
    /// covers the common 64-byte line plus adjacent-line prefetchers.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::utils::CachePadded;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn aligned_and_transparent() {
        let p = CachePadded::new(AtomicU64::new(7));
        assert_eq!(std::mem::align_of_val(&p), 128);
        p.store(9, Ordering::Relaxed);
        assert_eq!(p.load(Ordering::Relaxed), 9);
        assert_eq!(CachePadded::new(5u32).into_inner(), 5);
    }
}
