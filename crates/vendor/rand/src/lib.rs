//! Minimal API-compatible stand-in for the `rand` crate (offline vendored
//! stub, see DESIGN.md §7). Implements exactly the surface the data
//! generators use: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` methods `gen_range` (half-open and inclusive integer ranges),
//! `gen_bool`, and `gen_ratio`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — a solid,
//! deterministic PRNG. Value streams differ from upstream `rand`'s
//! `StdRng` (ChaCha12), which is fine: all datagen consumers derive their
//! reference answers from the generated data itself, never from hardcoded
//! expected values.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be positive");
        assert!(
            numerator <= denominator,
            "gen_ratio numerator > denominator"
        );
        uniform_u64(self, u64::from(denominator)) < u64::from(numerator)
    }
}

impl<T: RngCore> Rng for T {}

/// Uniform `u64` in `[0, bound)` via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the sample exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Ranges an RNG can sample from.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + u * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: i64 = rng.gen_range(-5..17);
            assert!((-5..17).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let z: i64 = rng.gen_range(10..=12);
            assert!((10..=12).contains(&z));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_inc = [false; 3];
        for _ in 0..1_000 {
            seen_inc[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_and_ratio_are_calibrated() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (23_000..27_000).contains(&hits),
            "gen_bool(0.25) hit {hits}/100000"
        );
        let hits = (0..100_000).filter(|_| rng.gen_ratio(1, 10)).count();
        assert!(
            (8_500..11_500).contains(&hits),
            "gen_ratio(1,10) hit {hits}/100000"
        );
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn negative_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-99_999..=999_999i64);
            assert!((-99_999..=999_999).contains(&v));
        }
    }
}
