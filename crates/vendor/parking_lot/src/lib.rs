//! Minimal API-compatible stand-in for the `parking_lot` crate, backed by
//! `std::sync`. The container this repo builds in has no crates.io access,
//! so the handful of external dependencies are vendored as thin stubs (see
//! DESIGN.md §7). Semantics match what the engine relies on: `lock()`
//! returns a guard directly (no `Result`), and poisoning is transparent —
//! a panicked holder does not poison the lock for later users.

use std::sync::{self, TryLockError};

/// A mutual exclusion primitive (std-backed, poison-transparent).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock (std-backed, poison-transparent).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_is_poison_transparent() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
