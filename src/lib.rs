//! # morsel-repro
//!
//! A from-scratch Rust reproduction of **"Morsel-Driven Parallelism: A
//! NUMA-Aware Query Evaluation Framework for the Many-Core Age"** (Leis,
//! Boncz, Kemper, Neumann — SIGMOD 2014): the HyPer parallel query
//! execution framework, its parallel operators, a simulated-NUMA
//! substrate, the TPC-H/SSB workloads, and a harness regenerating every
//! table and figure of the paper's evaluation.
//!
//! This crate is the facade: it re-exports the workspace members under one
//! roof and hosts the runnable examples and cross-crate integration tests.
//!
//! ```
//! use morsel_repro::prelude::*;
//! use std::sync::Arc;
//!
//! // A tiny table, NUMA-partitioned over the simulated Nehalem EX box.
//! let topo = Topology::nehalem_ex();
//! let batch = Batch::from_columns(vec![
//!     Column::I64((0..10_000).collect()),
//!     Column::I64((0..10_000).map(|x| x % 7).collect()),
//! ]);
//! let rel = Arc::new(Relation::partitioned(
//!     Schema::new(vec![("id", DataType::I64), ("grp", DataType::I64)]),
//!     &batch,
//!     PartitionBy::Hash { column: 0 },
//!     16,
//!     Placement::FirstTouch,
//!     &topo,
//! ));
//!
//! // SELECT grp, count(*), sum(id) FROM rel WHERE id >= 100 GROUP BY grp.
//! let plan = Plan::scan(rel, Some(ge(col(0), lit(100))), &["id", "grp"])
//!     .agg(&["grp"], vec![("cnt", AggFn::Count), ("sum", AggFn::SumI64(0))])
//!     .sort_by(vec![SortKey::asc(0)], None);
//!
//! // Run it morsel-driven on 64 virtual threads.
//! let env = ExecEnv::new(topo);
//! let out = run_sim(&env, "demo", plan, SystemVariant::full(), 64, 1024);
//! assert_eq!(out.result.rows(), 7);
//! ```

pub use morsel_core as core;
pub use morsel_datagen as datagen;
pub use morsel_exec as exec;
pub use morsel_numa as numa;
pub use morsel_planner as planner;
pub use morsel_queries as queries;
pub use morsel_service as service;
pub use morsel_sql as sql;
pub use morsel_storage as storage;
pub use morsel_txn as txn;

/// Everything needed to build and run queries.
pub mod prelude {
    pub use morsel_core::{
        result_slot, AgingPolicy, DispatchConfig, ExecEnv, QueryHandle, QueryOutcome, QuerySpec,
        SchedulingMode, SimExecutor, ThreadedExecutor, DEFAULT_MORSEL_SIZE,
    };
    pub use morsel_datagen::{generate_ssb, generate_tpch, SsbConfig, TpchConfig};
    pub use morsel_exec::agg::AggFn;
    pub use morsel_exec::expr::*;
    pub use morsel_exec::join::JoinKind;
    pub use morsel_exec::plan::{compile_query, Plan};
    pub use morsel_exec::sort::SortKey;
    pub use morsel_exec::SystemVariant;
    pub use morsel_numa::{CostModel, Placement, SocketId, Topology};
    pub use morsel_planner::{AggSpec, LogicalPlan, OrderBy, Planner};
    pub use morsel_queries::{format_rows, run_sim, run_threaded};
    pub use morsel_sql::{plan_sql, SqlError};
    pub use morsel_storage::{
        date, Batch, Catalog, Column, DataType, PartitionBy, Relation, Schema, Value,
    };
}
