//! Cross-crate integration tests through the public facade API.

use std::sync::Arc;

use morsel_repro::prelude::*;
use morsel_repro::queries::tpch_queries;

fn sales_relation(topo: &Topology, n: i64) -> Arc<Relation> {
    let batch = Batch::from_columns(vec![
        Column::I64((0..n).collect()),
        Column::I64((0..n).map(|x| x % 5).collect()),
        Column::I64((0..n).map(|x| (x * 37) % 10_000).collect()),
    ]);
    Arc::new(Relation::partitioned(
        Schema::new(vec![
            ("id", DataType::I64),
            ("region_id", DataType::I64),
            ("amount", DataType::I64),
        ]),
        &batch,
        PartitionBy::Hash { column: 0 },
        32,
        Placement::FirstTouch,
        topo,
    ))
}

#[test]
fn quickstart_flow_produces_correct_answer() {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let n = 50_000i64;
    let sales = sales_relation(&topo, n);
    let plan = Plan::scan(sales, Some(ge(col(2), lit(100))), &["region_id", "amount"])
        .agg(
            &["region_id"],
            vec![("cnt", AggFn::Count), ("total", AggFn::SumI64(1))],
        )
        .sort_by(vec![SortKey::asc(0)], None);
    let out = run_sim(&env, "q", plan, SystemVariant::full(), 64, 4096);

    // Brute force.
    let mut cnt = [0i64; 5];
    let mut tot = [0i64; 5];
    for x in 0..n {
        let amount = (x * 37) % 10_000;
        if amount >= 100 {
            cnt[(x % 5) as usize] += 1;
            tot[(x % 5) as usize] += amount;
        }
    }
    assert_eq!(out.result.rows(), 5);
    for i in 0..5 {
        assert_eq!(out.result.column(0).as_i64()[i], i as i64);
        assert_eq!(out.result.column(1).as_i64()[i], cnt[i]);
        assert_eq!(out.result.column(2).as_i64()[i], tot[i]);
    }
}

#[test]
fn priority_elasticity_shortens_interactive_latency() {
    // A high-priority short query arriving mid-flight must finish sooner
    // than the same query at equal priority (the Section 3.1 scenario).
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let db = generate_tpch(
        TpchConfig {
            scale: 0.002,
            ..Default::default()
        },
        &topo,
    );

    let latency_with_priority = |prio: u32| -> u64 {
        let mut sim = SimExecutor::new(env.clone(), DispatchConfig::new(8).with_morsel_size(1024));
        let (long, _) = compile_query("long", tpch_queries::query(&db, 13), SystemVariant::full());
        let (short, _) = compile_query("short", tpch_queries::query(&db, 6), SystemVariant::full());
        sim.submit(long);
        sim.submit_at(1_000_000, short.with_priority(prio));
        let report = sim.run();
        assert!(report.handle("long").is_done());
        report.handle("short").stats().elapsed_ns()
    };

    let high = latency_with_priority(16);
    let low = latency_with_priority(1);
    assert!(
        high <= low,
        "high priority latency {high} should not exceed equal-priority {low}"
    );
}

#[test]
fn cancellation_frees_workers_for_other_queries() {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let db = generate_tpch(
        TpchConfig {
            scale: 0.002,
            ..Default::default()
        },
        &topo,
    );
    let mut sim = SimExecutor::new(env, DispatchConfig::new(4).with_morsel_size(512));
    let (victim, victim_result) =
        compile_query("victim", tpch_queries::query(&db, 9), SystemVariant::full());
    let (survivor, survivor_result) = compile_query(
        "survivor",
        tpch_queries::query(&db, 6),
        SystemVariant::full(),
    );
    sim.submit(victim);
    sim.submit(survivor);
    sim.cancel_at(10_000, "victim");
    let report = sim.run();
    assert!(report.handle("victim").is_cancelled());
    assert!(report.handle("survivor").is_done());
    assert!(!report.handle("survivor").is_cancelled());
    // The survivor produced its scalar result; the victim produced none.
    assert!(survivor_result.lock().take().is_some());
    assert!(victim_result.lock().take().is_none());
}

#[test]
fn threaded_and_sim_agree_on_tpch_q5() {
    // Q5 exercises the deepest probe pipeline (4 hash tables + a
    // cross-key filter); executor agreement here is a strong signal.
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let db = generate_tpch(
        TpchConfig {
            scale: 0.002,
            ..Default::default()
        },
        &topo,
    );
    let sim = run_sim(
        &env,
        "q5",
        tpch_queries::query(&db, 5),
        SystemVariant::full(),
        32,
        1024,
    );
    let thr = run_threaded(
        &env,
        "q5",
        tpch_queries::query(&db, 5),
        SystemVariant::full(),
        4,
        1024,
    );
    assert_eq!(
        sim.result, thr.result,
        "Q5 results diverge between executors"
    );
}

#[test]
fn work_stealing_keeps_all_data_reachable() {
    // Put all data on one socket; workers of other sockets must steal and
    // the result must still be exact.
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let n = 100_000i64;
    let sales = sales_relation(&topo, n);
    let pinned = Arc::new(sales.with_placement(Placement::OsDefault, &topo));
    let plan = Plan::scan(pinned, None, &["amount"]).agg(&[], vec![("total", AggFn::SumI64(0))]);
    let out = run_sim(&env, "q", plan, SystemVariant::full(), 32, 2048);
    let expect: i64 = (0..n).map(|x| (x * 37) % 10_000).sum();
    assert_eq!(out.result.column(0).as_i64(), &[expect]);
    // Most morsels were stolen (only 8 of 32 workers are on socket 0).
    assert!(out.stats.stolen_morsels > 0);
    assert!(out.traffic.remote_fraction() > 0.5);
}

#[test]
fn traffic_counters_balance() {
    // Reads reported by a scan must equal the bytes of the scanned
    // columns, independent of scheduling.
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let n = 64_000i64;
    let sales = sales_relation(&topo, n);
    let plan = Plan::scan(sales, None, &["id"]).agg(&[], vec![("c", AggFn::Count)]);
    let out = run_sim(&env, "q", plan, SystemVariant::full(), 16, 1000);
    // Scan bytes exactly, plus the small phase-2 read-back of per-worker
    // partial aggregate states (bounded by workers * entry size).
    let scan_bytes = n as u64 * 8;
    assert!(out.traffic.total_read() >= scan_bytes);
    assert!(out.traffic.total_read() < scan_bytes + 16 * 64);
    assert_eq!(out.result.column(0).as_i64(), &[n]);
}
