//! The planner's oracle gate, three ways: every query expressed as a
//! `LogicalPlan` — and every query expressed as SQL *text* — must return
//! exactly what its hand-authored `exec::Plan` returns. The SQL leg runs
//! the complete front end (lex → parse → bind → plan → execute), so this
//! test holds the text path to the same bar as the algebra it lowers to.
//!
//! Result comparison accounts for what each query actually pins down:
//! un-limited queries compare full results (normalized by sorting on all
//! columns — join order changes row arrival order, which an order-less
//! aggregate output does not promise); top-k queries compare the sort-key
//! columns, which the limit boundary determines uniquely even when
//! payload columns tie.

use morsel_repro::exec::plan::Plan;
use morsel_repro::exec::sort::{sort_batch, SortKey};
use morsel_repro::planner::{plan_cost, LogicalPlan, Planner};
use morsel_repro::prelude::*;
use morsel_repro::queries::{
    run_sim, ssb_logical, ssb_queries, ssb_sql, tpch_logical, tpch_queries, tpch_sql,
};
use morsel_repro::service::{CacheDisposition, Session};
use morsel_repro::storage::Batch;

fn normalized(batch: &Batch) -> Batch {
    let keys: Vec<SortKey> = (0..batch.width()).map(SortKey::asc).collect();
    sort_batch(batch, &keys)
}

/// Columns a `Sort { limit }` plan pins down exactly: its sort keys.
fn sort_key_cols(plan: &Plan) -> Option<(Vec<usize>, usize)> {
    match plan {
        Plan::Sort {
            keys,
            limit: Some(k),
            ..
        } => Some((keys.iter().map(|s| s.col).collect(), *k)),
        _ => None,
    }
}

fn assert_equivalent(env: &ExecEnv, name: &str, oracle: Plan, lowered: Plan) {
    let keyed = sort_key_cols(&oracle);
    let want = run_sim(
        env,
        &format!("{name}-oracle"),
        oracle,
        SystemVariant::full(),
        16,
        512,
    );
    let got = run_sim(
        env,
        &format!("{name}-planned"),
        lowered,
        SystemVariant::full(),
        16,
        512,
    );
    match keyed {
        None => {
            assert_eq!(
                normalized(&want.result),
                normalized(&got.result),
                "{name}: planned result differs from oracle"
            );
        }
        Some((key_cols, _limit)) => {
            // Top-k with ties at the boundary: the kept key tuples are
            // deterministic, payload columns of boundary ties are not.
            assert_eq!(
                want.result.rows(),
                got.result.rows(),
                "{name}: planned row count differs"
            );
            for (label, c) in key_cols.iter().enumerate() {
                assert_eq!(
                    want.result.column(*c),
                    got.result.column(*c),
                    "{name}: sort key column #{label} differs"
                );
            }
        }
    }
}

/// Bind a fixture, failing with the rendered caret diagnostic.
fn bind_fixture(catalog: &Catalog, name: &str, sql: &str) -> LogicalPlan {
    match plan_sql(catalog, sql) {
        Ok(plan) => plan,
        Err(e) => panic!("{name}: SQL fixture failed to bind\n{}", e.render(sql)),
    }
}

#[test]
fn tpch_logical_slice_matches_oracle_plans() {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let db = generate_tpch(TpchConfig::scaled(0.01), &topo);
    let catalog = db.catalog();
    let planner = Planner::new(&topo);
    for &q in &tpch_logical::IDS {
        let logical = tpch_logical::query(&db, q).unwrap();
        let lowered = planner.plan(&logical);
        let oracle = tpch_queries::query(&db, q);
        assert_equivalent(&env, &format!("Q{q}"), oracle, lowered);
        // Third leg: the SQL fixture through the full text front end.
        let bound = bind_fixture(&catalog, &format!("Q{q}"), tpch_sql::text(q).unwrap());
        let from_sql = planner.plan(&bound);
        let oracle = tpch_queries::query(&db, q);
        assert_equivalent(&env, &format!("Q{q}-sql"), oracle, from_sql);
    }
}

#[test]
fn ssb_logical_matches_oracle_plans() {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let db = generate_ssb(SsbConfig::scaled(0.01), &topo);
    let catalog = db.catalog();
    let planner = Planner::new(&topo);
    for id in ssb_logical::IDS {
        let lowered = planner.plan(&ssb_logical::query(&db, id));
        let oracle = ssb_queries::query(&db, id);
        assert_equivalent(&env, &format!("SSB{id}"), oracle, lowered);
        let bound = bind_fixture(&catalog, &format!("SSB{id}"), ssb_sql::text(id).unwrap());
        let from_sql = planner.plan(&bound);
        let oracle = ssb_queries::query(&db, id);
        assert_equivalent(&env, &format!("SSB{id}-sql"), oracle, from_sql);
    }
}

/// Fourth leg of the oracle: the plan-cache path. For every SQL fixture,
/// plan cold (a miss), plan again (a hit), and run both physical plans —
/// the results must be *exactly* equal (the cache may never change what
/// a query returns), and the warm plan must still pass the hand-authored
/// oracle gate from [`assert_equivalent`].
#[test]
fn cached_plans_are_byte_identical_to_cold_plans() {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());

    fn check_fixture(env: &ExecEnv, session: &Session, name: &str, sql: &str, oracle: Plan) {
        let (cold, first) = session
            .resolve(sql)
            .unwrap_or_else(|e| panic!("{name}: fixture failed to plan\n{}", e.render(sql)));
        assert_eq!(first, CacheDisposition::Miss, "{name}: cold lookup");
        let (warm, second) = session.resolve(sql).unwrap();
        assert_eq!(second, CacheDisposition::Hit, "{name}: warm lookup");
        let a = run_sim(
            env,
            &format!("{name}-cold"),
            cold.plan,
            SystemVariant::full(),
            16,
            512,
        );
        let b = run_sim(
            env,
            &format!("{name}-warm"),
            warm.plan.clone(),
            SystemVariant::full(),
            16,
            512,
        );
        assert_eq!(
            a.result, b.result,
            "{name}: cached plan result differs from the cold-planned result"
        );
        assert_equivalent(env, &format!("{name}-cached"), oracle, warm.plan);
    }

    let tpch = generate_tpch(TpchConfig::scaled(0.002), &topo);
    let session = Session::builder()
        .catalog(tpch.catalog())
        .topology(&topo)
        .build();
    let mut fixtures = 0u64;
    for (q, sql) in tpch_sql::all() {
        check_fixture(
            &env,
            &session,
            &format!("Q{q}"),
            sql,
            tpch_queries::query(&tpch, q),
        );
        fixtures += 1;
    }
    let stats = session.stats();
    assert_eq!(stats.plan_misses, fixtures, "one cold plan per fixture");
    assert_eq!(stats.plan_hits, fixtures, "one warm hit per fixture");

    let ssb = generate_ssb(SsbConfig::scaled(0.002), &topo);
    let session = Session::builder()
        .catalog(ssb.catalog())
        .topology(&topo)
        .build();
    for (id, sql) in ssb_sql::all() {
        check_fixture(
            &env,
            &session,
            &format!("SSB{id}"),
            sql,
            ssb_queries::query(&ssb, id),
        );
    }
}

/// Fifth leg of the oracle: the feedback-warm path. Every SQL fixture is
/// run once cold through a feedback-enabled session (identical to the
/// non-adaptive plan by construction — the cache is empty), the whole
/// workload's actuals are harvested, and the replay with learned
/// selectivities must return byte-identical results — re-chosen join
/// orders may only change *how* a result is computed, never the result —
/// and still pass the hand-authored oracle gate.
#[test]
fn feedback_warm_plans_are_byte_identical_to_cold_plans() {
    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());

    fn check_workload(
        env: &ExecEnv,
        session: &Session,
        fixtures: &[(String, &'static str)],
        oracles: Vec<Plan>,
    ) {
        let fb = session.feedback().expect("feedback-enabled session");
        assert!(fb.is_empty(), "the first pass must be cold");
        // Cold pass: run, record, and only then harvest (mirrors a
        // workload replay — within one pass nothing is learned yet).
        let mut cold_results = Vec::new();
        let mut harvest = Vec::new();
        for (name, sql) in fixtures {
            let (handle, _) = session
                .resolve(sql)
                .unwrap_or_else(|e| panic!("{name}: {}", e.render(sql)));
            let out = run_sim(
                env,
                &format!("{name}-fb-cold"),
                handle.plan.clone(),
                SystemVariant::full(),
                16,
                512,
            );
            let profile = out.profile.expect("profiling on");
            cold_results.push(out.result);
            harvest.push((handle.plan, profile));
        }
        for (plan, profile) in &harvest {
            session.observe(plan, profile);
        }
        assert!(!fb.is_empty(), "the workload harvest populated the cache");
        // Warm pass: learned selectivities may re-choose join orders.
        for (((name, sql), cold), oracle) in fixtures.iter().zip(&cold_results).zip(oracles) {
            let (handle, _) = session.resolve(sql).unwrap();
            let out = run_sim(
                env,
                &format!("{name}-fb-warm"),
                handle.plan.clone(),
                SystemVariant::full(),
                16,
                512,
            );
            assert_eq!(
                &out.result, cold,
                "{name}: feedback-warm result differs from the cold result"
            );
            assert_equivalent(env, &format!("{name}-fb"), oracle, handle.plan);
        }
    }

    let tpch = generate_tpch(TpchConfig::scaled(0.002), &topo);
    let session = Session::builder()
        .catalog(tpch.catalog())
        .topology(&topo)
        .feedback(true)
        .build();
    let fixtures: Vec<(String, &'static str)> = tpch_sql::all()
        .into_iter()
        .map(|(q, sql)| (format!("Q{q}"), sql))
        .collect();
    let oracles: Vec<Plan> = tpch_sql::all()
        .into_iter()
        .map(|(q, _)| tpch_queries::query(&tpch, q))
        .collect();
    check_workload(&env, &session, &fixtures, oracles);

    let ssb = generate_ssb(SsbConfig::scaled(0.002), &topo);
    let session = Session::builder()
        .catalog(ssb.catalog())
        .topology(&topo)
        .feedback(true)
        .build();
    let fixtures: Vec<(String, &'static str)> = ssb_sql::all()
        .into_iter()
        .map(|(id, sql)| (format!("SSB{id}"), sql))
        .collect();
    let oracles: Vec<Plan> = ssb_sql::all()
        .into_iter()
        .map(|(id, _)| ssb_queries::query(&ssb, id))
        .collect();
    check_workload(&env, &session, &fixtures, oracles);
}

#[test]
fn sql_fixtures_bind_to_the_logical_schemas() {
    // Cheap structural gate on top of the result oracle: the SQL text
    // produces the same output column names and types as the logical
    // plans, at a tiny scale.
    let topo = Topology::nehalem_ex();
    let db = generate_tpch(TpchConfig::scaled(0.002), &topo);
    let catalog = db.catalog();
    for (q, sql) in tpch_sql::all() {
        let bound = bind_fixture(&catalog, &format!("Q{q}"), sql);
        let logical = tpch_logical::query(&db, q).unwrap();
        assert_eq!(
            bound.schema().names(),
            logical.schema().names(),
            "Q{q}: SQL output columns diverge from the logical plan"
        );
        assert_eq!(
            bound.schema().data_types(),
            logical.schema().data_types(),
            "Q{q}: SQL output types diverge from the logical plan"
        );
    }
    let ssb = generate_ssb(SsbConfig::scaled(0.002), &topo);
    let catalog = ssb.catalog();
    for (id, sql) in ssb_sql::all() {
        let bound = bind_fixture(&catalog, &format!("SSB{id}"), sql);
        let logical = ssb_logical::query(&ssb, id);
        assert_eq!(
            bound.schema().names(),
            logical.schema().names(),
            "SSB{id}: SQL output columns diverge from the logical plan"
        );
        assert_eq!(
            bound.schema().data_types(),
            logical.schema().data_types(),
            "SSB{id}: SQL output types diverge from the logical plan"
        );
    }
}

/// The EXPLAIN ANALYZE oracle: the per-operator actuals reported by ONE
/// profiled execution (what `repro explain` / `repro sql --analyze`
/// print) must equal the old quadratic oracle — re-executing every
/// explain line's subtree in isolation and counting its result rows —
/// on every TPC-H and SSB fixture.
#[test]
fn analyze_profile_matches_subtree_oracle_on_all_fixtures() {
    use morsel_repro::planner::explain;
    use morsel_repro::queries::{ssb_logical, tpch_logical};

    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let planner = Planner::new(&topo);
    let tpch = generate_tpch(TpchConfig::scaled(0.002), &topo);
    let ssb = generate_ssb(SsbConfig::scaled(0.002), &topo);

    let mut fixtures: Vec<(String, Plan)> = Vec::new();
    for &q in &tpch_logical::IDS {
        let logical = tpch_logical::query(&tpch, q).unwrap();
        fixtures.push((format!("Q{q}"), planner.plan(&logical)));
    }
    for id in ssb_logical::IDS {
        fixtures.push((
            format!("SSB{id}"),
            planner.plan(&ssb_logical::query(&ssb, id)),
        ));
    }
    assert_eq!(fixtures.len(), 25, "the full TPC-H + SSB fixture set");

    for (name, plan) in fixtures {
        let lines = explain::collect(&plan, &planner.estimator);
        let run = run_sim(
            &env,
            &format!("{name}-analyze"),
            plan.clone(),
            SystemVariant::full(),
            16,
            512,
        );
        let profile = run
            .profile
            .unwrap_or_else(|| panic!("{name}: profiling on, no profile attached"));
        assert_eq!(
            profile.ops.len(),
            lines.len(),
            "{name}: profile slot count diverges from explain lines"
        );
        for (i, line) in lines.iter().enumerate() {
            let oracle = run_sim(
                &env,
                &format!("{name}-sub{i}"),
                line.subplan.clone(),
                SystemVariant::full(),
                16,
                512,
            )
            .result
            .rows();
            assert_eq!(
                profile.ops[i].rows_out as usize, oracle,
                "{name} line {i} ({}): profiled actual diverges from the \
                 subtree re-execution oracle",
                line.label
            );
        }
    }
}

/// Fifth leg: the write path compiled in but quiescent. Every SQL
/// fixture must return byte-identical results whether planned against
/// the generated catalog directly or against a [`TxnDb`] snapshot of
/// the same tables with empty delta stores — the read side may not pay
/// (or change) anything for durability it isn't using. With no
/// committed deltas the snapshot hands back the *same* `Arc<Relation>`
/// pointers, which the test also pins down directly.
#[test]
fn empty_delta_snapshots_are_byte_identical_for_all_fixtures() {
    use morsel_repro::txn::TxnDb;
    use std::sync::Arc;

    let topo = Topology::nehalem_ex();
    let env = ExecEnv::new(topo.clone());
    let planner = Planner::new(&topo);

    fn check(
        env: &ExecEnv,
        planner: &Planner,
        name: &str,
        direct: &Catalog,
        snap: &Catalog,
        sql: &str,
    ) {
        let a_plan = planner.plan(&bind_fixture(direct, name, sql));
        let b_plan = planner.plan(&bind_fixture(snap, name, sql));
        let a = run_sim(
            env,
            &format!("{name}-direct"),
            a_plan,
            SystemVariant::full(),
            16,
            512,
        );
        let b = run_sim(
            env,
            &format!("{name}-empty-delta"),
            b_plan,
            SystemVariant::full(),
            16,
            512,
        );
        assert_eq!(
            a.result, b.result,
            "{name}: empty-delta snapshot result differs from the direct catalog"
        );
    }

    let mut fixtures = 0usize;
    for is_tpch in [true, false] {
        let (direct, tag): (Catalog, &str) = if is_tpch {
            (
                generate_tpch(TpchConfig::scaled(0.002), &topo).catalog(),
                "tpch",
            )
        } else {
            (
                generate_ssb(SsbConfig::scaled(0.002), &topo).catalog(),
                "ssb",
            )
        };
        let dir =
            std::env::temp_dir().join(format!("morsel-empty-delta-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tables: Vec<(&str, Arc<Relation>)> = direct
            .iter()
            .map(|(name, rel)| (name, Arc::clone(rel)))
            .collect();
        let db = TxnDb::create(&dir, tables).expect("txn db over the generated tables");
        let snap = db.snapshot_catalog();
        for (name, rel) in direct.iter() {
            assert!(
                Arc::ptr_eq(rel, snap.get(name).expect("table survives the snapshot")),
                "{tag}.{name}: an empty delta store must hand back the base relation"
            );
        }
        if is_tpch {
            for (q, sql) in tpch_sql::all() {
                check(&env, &planner, &format!("Q{q}"), &direct, &snap, sql);
                fixtures += 1;
            }
        } else {
            for (id, sql) in ssb_sql::all() {
                check(&env, &planner, &format!("SSB{id}"), &direct, &snap, sql);
                fixtures += 1;
            }
        }
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(fixtures, 25, "the full TPC-H + SSB fixture set");
}

#[test]
fn planner_cost_beats_or_matches_hand_orders_on_multi_join_queries() {
    // The acceptance bar: on the multi-join slice, the enumerator's
    // chosen order must be at least as cheap as the hand-authored order
    // under the shared simulated cost model — and never meaningfully
    // worse anywhere.
    let topo = Topology::nehalem_ex();
    let db = generate_tpch(TpchConfig::scaled(0.01), &topo);
    let planner = Planner::new(&topo);
    let multi_join = [3usize, 5, 8, 9, 10, 18];
    let mut wins = Vec::new();
    for &q in &multi_join {
        let logical = tpch_logical::query(&db, q).unwrap();
        let lowered = planner.plan(&logical);
        let hand = tpch_queries::query(&db, q);
        let cp = plan_cost(&planner.params, &planner.estimator, &lowered);
        let ch = plan_cost(&planner.params, &planner.estimator, &hand);
        assert!(
            cp <= ch * 1.05,
            "Q{q}: planned cost {cp:.3e} is >5% worse than hand {ch:.3e}"
        );
        if cp <= ch * 1.000_001 {
            wins.push(q);
        }
    }
    assert!(
        wins.len() >= 3,
        "planner should match/beat the hand order on >= 3 multi-join \
         queries, only did on {wins:?}"
    );
    for q in [5usize, 8] {
        assert!(wins.contains(&q), "Q{q} expected among the wins: {wins:?}");
    }
}

#[test]
fn multi_join_queries_get_reordered_blocks() {
    // The planner must actually be planning: Q5/Q8/Q9 contain inner-join
    // blocks of at least five relations each, and the chosen orders are
    // reported.
    let topo = Topology::nehalem_ex();
    let db = generate_tpch(TpchConfig::scaled(0.002), &topo);
    let planner = Planner::new(&topo);
    for (q, min_leaves) in [(5usize, 6usize), (8, 8), (9, 5)] {
        let logical = tpch_logical::query(&db, q).unwrap();
        let (_, report) = planner.plan_with_report(&logical);
        let widest = report
            .blocks
            .iter()
            .map(|b| b.leaves.len())
            .max()
            .unwrap_or(0);
        assert!(
            widest >= min_leaves,
            "Q{q}: expected a join block of >= {min_leaves} relations, got {widest}"
        );
        let block = report
            .blocks
            .iter()
            .find(|b| b.leaves.len() == widest)
            .unwrap();
        assert!(!block.forced_cross, "Q{q} join graph is connected");
        assert!(block.order.contains('⋈'));
    }
}
