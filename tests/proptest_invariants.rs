//! Property-based tests on the engine's core invariants.

use std::collections::HashMap;
use std::sync::Arc;

use morsel_repro::core::{
    ChunkMeta, ExecEnv, MorselQueues, PipelineJob, SchedulingMode, TaskContext,
};
use morsel_repro::exec::expr::LikePattern;
use morsel_repro::exec::ht::TaggedHashTable;
use morsel_repro::exec::join::{join_slot, HtInsertJob, ProbeOp};
use morsel_repro::exec::pipeline::{FilterOp, PipeOp, SelBatch};
use morsel_repro::exec::sort::{is_sorted, sort_batch, SortKey};
use morsel_repro::prelude::*;
use morsel_repro::storage::{date_parts, hash64, AreaSet, StorageArea};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Morsel queues hand out every row exactly once, under any mode,
    /// morsel size, and chunk layout.
    #[test]
    fn morsel_queues_partition_rows(
        chunk_rows in proptest::collection::vec(0usize..5_000, 1..12),
        morsel_size in 1usize..4_000,
        mode_sel in 0u8..3,
        workers in 1usize..9,
    ) {
        let topo = Topology::nehalem_ex();
        let chunks: Vec<ChunkMeta> = chunk_rows
            .iter()
            .enumerate()
            .map(|(i, &rows)| ChunkMeta { node: SocketId((i % 4) as u16), rows })
            .collect();
        let mode = match mode_sel {
            0 => SchedulingMode::NumaAware,
            1 => SchedulingMode::NumaOblivious,
            _ => SchedulingMode::Static { workers, align: true },
        };
        let q = MorselQueues::build(&chunks, mode, morsel_size, workers, &topo);
        let mut seen: Vec<Vec<bool>> = chunk_rows.iter().map(|&r| vec![false; r]).collect();
        for w in 0..workers {
            while let Some((m, _)) = q.next_for(w) {
                for r in m.range.clone() {
                    prop_assert!(!seen[m.chunk][r], "row handed out twice");
                    seen[m.chunk][r] = true;
                }
                prop_assert!(m.rows() <= morsel_size.max(1));
            }
        }
        prop_assert!(seen.iter().flatten().all(|&b| b), "row never handed out");
    }

    /// The tagged hash table finds exactly the inserted occurrences of
    /// every key, and nothing for absent keys.
    #[test]
    fn tagged_ht_is_exact(keys in proptest::collection::vec(-50i64..50, 0..400)) {
        let ht = TaggedHashTable::new(&[keys.len()], 4);
        for (row, &k) in keys.iter().enumerate() {
            ht.insert(row, hash64(k as u64));
        }
        let mut expect: HashMap<i64, usize> = HashMap::new();
        for &k in &keys {
            *expect.entry(k).or_default() += 1;
        }
        for k in -60i64..60 {
            let got = ht.probe_key_i64(k).len();
            prop_assert_eq!(got, expect.get(&k).copied().unwrap_or(0), "key {}", k);
        }
    }

    /// sort_batch returns a sorted permutation of its input.
    #[test]
    fn sort_is_sorted_permutation(
        mut values in proptest::collection::vec(-1000i64..1000, 0..500),
        desc in any::<bool>(),
    ) {
        let batch = Batch::from_columns(vec![Column::I64(values.clone())]);
        let key = if desc { SortKey::desc(0) } else { SortKey::asc(0) };
        let sorted = sort_batch(&batch, &[key]);
        prop_assert!(is_sorted(&sorted, &[key]));
        let mut got = sorted.column(0).as_i64().to_vec();
        got.sort_unstable();
        values.sort_unstable();
        prop_assert_eq!(got, values);
    }

    /// Date arithmetic round-trips across the whole supported range.
    #[test]
    fn date_roundtrip(days in -100_000i32..100_000) {
        let (y, m, d) = date_parts(days);
        prop_assert_eq!(date(y, m, d), days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    /// LikePattern agrees with a naive backtracking matcher.
    #[test]
    fn like_matches_naive_reference(
        pattern in "[ab%]{0,8}",
        input in "[ab]{0,10}",
    ) {
        fn naive(p: &[u8], s: &[u8]) -> bool {
            match (p.first(), s.first()) {
                (None, None) => true,
                (None, Some(_)) => false,
                (Some(b'%'), _) => {
                    naive(&p[1..], s) || (!s.is_empty() && naive(p, &s[1..]))
                }
                (Some(&c), Some(&x)) if c == x => naive(&p[1..], &s[1..]),
                _ => false,
            }
        }
        let fast = LikePattern::parse(&pattern).matches(&input);
        let slow = naive(pattern.as_bytes(), input.as_bytes());
        prop_assert_eq!(fast, slow, "pattern {:?} input {:?}", pattern, input);
    }

    /// The selection-vector pipeline path (filters narrowing a selection,
    /// batched probe, deferred gather) produces exactly the rows of a
    /// force-materialize path that gathers after every operator and uses
    /// the row-at-a-time reference probe.
    #[test]
    fn selection_vector_path_matches_materialized_path(
        rows in proptest::collection::vec((0i64..30, -100i64..100), 0..600),
        build_keys in proptest::collection::vec(0i64..30, 0..80),
        threshold in -110i64..110,
    ) {
        let env = ExecEnv::new(Topology::nehalem_ex());
        let mut ctx = TaskContext::new(&env, 0);

        // Build side: one area with (bk, bv) rows, inserted into the
        // tagged hash table.
        let schema = Schema::new(vec![("bk", DataType::I64), ("bv", DataType::I64)]);
        let mut area = StorageArea::new(SocketId(0), &schema.data_types());
        area.data_mut().extend_from(&Batch::from_columns(vec![
            Column::I64(build_keys.clone()),
            Column::I64(build_keys.iter().map(|k| k * 1000).collect()),
        ]));
        let build = Arc::new(AreaSet::new(schema, vec![area]));
        let slot = join_slot();
        let insert = HtInsertJob::new(Arc::clone(&build), vec![0], 4, slot.clone());
        insert.run_morsel(
            &mut ctx,
            morsel_repro::core::Morsel { chunk: 0, range: 0..build_keys.len() },
        );
        PipelineJob::finish(&insert, &mut ctx);

        let input = Batch::from_columns(vec![
            Column::I64(rows.iter().map(|r| r.0).collect()),
            Column::I64(rows.iter().map(|r| r.1).collect()),
        ]);
        let filter = FilterOp::new(gt(col(1), lit(threshold)));
        let make_probe = |scalar: bool| ProbeOp {
            table: slot.clone(),
            probe_keys: vec![0],
            kind: JoinKind::Inner,
            build_cols: vec![1],
            scalar,
        };

        // Path A: selection vectors throughout, vectorized probe.
        let a = {
            let s = filter.apply(&mut ctx, SelBatch::dense(input.clone()));
            let s = make_probe(false).apply(&mut ctx, s);
            s.materialize(&mut ctx)
        };
        // Path B: force-materialize after every operator, scalar probe.
        let b = {
            let s = filter.apply(&mut ctx, SelBatch::dense(input));
            let dense = SelBatch::dense(s.materialize(&mut ctx));
            let s = make_probe(true).apply(&mut ctx, dense);
            s.materialize(&mut ctx)
        };
        prop_assert_eq!(a, b);
    }

    /// Semi/anti joins agree between the two paths as well (their
    /// vectorized output stays a selection vector).
    #[test]
    fn selection_vector_semi_anti_matches(
        probe_keys in proptest::collection::vec(0i64..20, 0..300),
        build_keys in proptest::collection::vec(0i64..20, 0..40),
        anti in any::<bool>(),
    ) {
        let env = ExecEnv::new(Topology::nehalem_ex());
        let mut ctx = TaskContext::new(&env, 0);
        let schema = Schema::new(vec![("bk", DataType::I64)]);
        let mut area = StorageArea::new(SocketId(0), &schema.data_types());
        area.data_mut()
            .extend_from(&Batch::from_columns(vec![Column::I64(build_keys.clone())]));
        let build = Arc::new(AreaSet::new(schema, vec![area]));
        let slot = join_slot();
        let insert = HtInsertJob::new(build, vec![0], 4, slot.clone());
        insert.run_morsel(
            &mut ctx,
            morsel_repro::core::Morsel { chunk: 0, range: 0..build_keys.len() },
        );
        PipelineJob::finish(&insert, &mut ctx);

        let kind = if anti { JoinKind::Anti } else { JoinKind::Semi };
        let input = Batch::from_columns(vec![Column::I64(probe_keys)]);
        let make = |scalar: bool| ProbeOp {
            table: slot.clone(),
            probe_keys: vec![0],
            kind,
            build_cols: vec![],
            scalar,
        };
        let a = make(false).apply(&mut ctx, SelBatch::dense(input.clone())).materialize(&mut ctx);
        let b = make(true).apply(&mut ctx, SelBatch::dense(input)).materialize(&mut ctx);
        prop_assert_eq!(a, b);
    }

    /// Hash partitioning preserves the exact multiset of rows.
    #[test]
    fn partitioning_preserves_rows(
        keys in proptest::collection::vec(any::<i64>(), 1..300),
        parts in 1usize..40,
    ) {
        let topo = Topology::nehalem_ex();
        let batch = Batch::from_columns(vec![Column::I64(keys.clone())]);
        let rel = Relation::partitioned(
            Schema::new(vec![("k", DataType::I64)]),
            &batch,
            PartitionBy::Hash { column: 0 },
            parts,
            Placement::FirstTouch,
            &topo,
        );
        let mut got = rel.gather().column(0).as_i64().to_vec();
        let mut want = keys;
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}

proptest! {
    // Fewer cases for the expensive whole-engine properties.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A grouped aggregation over random data matches a HashMap reference,
    /// for any worker count and morsel size.
    #[test]
    fn grouped_agg_matches_reference(
        rows in proptest::collection::vec((0i64..20, -100i64..100), 1..2_000),
        workers in 1usize..17,
        morsel in 1usize..3_000,
    ) {
        let topo = Topology::nehalem_ex();
        let env = ExecEnv::new(topo.clone());
        let batch = Batch::from_columns(vec![
            Column::I64(rows.iter().map(|r| r.0).collect()),
            Column::I64(rows.iter().map(|r| r.1).collect()),
        ]);
        let rel = Arc::new(Relation::partitioned(
            Schema::new(vec![("g", DataType::I64), ("v", DataType::I64)]),
            &batch,
            PartitionBy::Hash { column: 0 },
            8,
            Placement::FirstTouch,
            &topo,
        ));
        let plan = Plan::scan(rel, None, &["g", "v"])
            .agg(&["g"], vec![("cnt", AggFn::Count), ("sum", AggFn::SumI64(1))])
            .sort_by(vec![SortKey::asc(0)], None);
        let out = run_sim(&env, "agg", plan, SystemVariant::full(), workers, morsel);

        let mut expect: HashMap<i64, (i64, i64)> = HashMap::new();
        for (g, v) in &rows {
            let e = expect.entry(*g).or_default();
            e.0 += 1;
            e.1 += v;
        }
        prop_assert_eq!(out.result.rows(), expect.len());
        for i in 0..out.result.rows() {
            let g = out.result.column(0).as_i64()[i];
            let (cnt, sum) = expect[&g];
            prop_assert_eq!(out.result.column(1).as_i64()[i], cnt);
            prop_assert_eq!(out.result.column(2).as_i64()[i], sum);
        }
    }

    /// A whole query (scan + filter + join + grouped agg + sort) returns
    /// identical results under the vectorized and the scalar-operator
    /// variants, for any worker count.
    #[test]
    fn vectorized_and_scalar_variants_agree(
        rows in proptest::collection::vec((0i64..25, -50i64..50), 1..1_500),
        build_keys in proptest::collection::vec(0i64..25, 1..40),
        workers in 1usize..9,
    ) {
        let topo = Topology::nehalem_ex();
        let env = ExecEnv::new(topo.clone());
        let probe = Arc::new(Relation::partitioned(
            Schema::new(vec![("k", DataType::I64), ("v", DataType::I64)]),
            &Batch::from_columns(vec![
                Column::I64(rows.iter().map(|r| r.0).collect()),
                Column::I64(rows.iter().map(|r| r.1).collect()),
            ]),
            PartitionBy::Chunks,
            4,
            Placement::FirstTouch,
            &topo,
        ));
        let build = Arc::new(Relation::single(
            Schema::new(vec![("bk", DataType::I64)]),
            Batch::from_columns(vec![Column::I64(build_keys)]),
        ));
        let make_plan = || {
            Plan::scan(Arc::clone(&probe), Some(gt(col(1), lit(0))), &["k", "v"])
                .join(
                    Plan::scan(Arc::clone(&build), None, &["bk"]),
                    &["k"],
                    &["bk"],
                    &[],
                )
                .agg(&["k"], vec![("cnt", AggFn::Count), ("sum", AggFn::SumI64(1))])
                .sort_by(vec![SortKey::asc(0)], None)
        };
        let a = run_sim(&env, "vec", make_plan(), SystemVariant::full(), workers, 128);
        let b = run_sim(&env, "sca", make_plan(), SystemVariant::scalar_ops(), workers, 128);
        prop_assert_eq!(a.result, b.result);
    }

    /// An inner join over random keys matches the nested-loop reference.
    #[test]
    fn join_matches_reference(
        probe_keys in proptest::collection::vec(0i64..30, 0..500),
        build_keys in proptest::collection::vec(0i64..30, 0..60),
        workers in 1usize..9,
    ) {
        let topo = Topology::nehalem_ex();
        let env = ExecEnv::new(topo.clone());
        let probe = Arc::new(Relation::partitioned(
            Schema::new(vec![("k", DataType::I64)]),
            &Batch::from_columns(vec![Column::I64(probe_keys.clone())]),
            PartitionBy::Chunks,
            4,
            Placement::FirstTouch,
            &topo,
        ));
        let build = Arc::new(Relation::single(
            Schema::new(vec![("bk", DataType::I64)]),
            Batch::from_columns(vec![Column::I64(build_keys.clone())]),
        ));
        let plan = Plan::scan(probe, None, &["k"])
            .join(Plan::scan(build, None, &["bk"]), &["k"], &["bk"], &[])
            .agg(&[], vec![("cnt", AggFn::Count)]);
        let out = run_sim(&env, "join", plan, SystemVariant::full(), workers, 64);
        let expect: i64 = probe_keys
            .iter()
            .map(|p| build_keys.iter().filter(|b| *b == p).count() as i64)
            .sum();
        prop_assert_eq!(out.result.column(0).as_i64(), &[expect]);
    }
}
