//! Chaos property suite: deterministic fault injection over a mixed
//! TPC-H/SSB workload.
//!
//! Each scenario derives a random fault schedule (injected panics,
//! failed allocations, virtual delays, starvation-level memory caps)
//! from an LCG seed, runs the workload under it, and asserts the
//! resource-governance invariants:
//!
//! - **No deadlock**: the simulator's `run()` proves the event loop
//!   drains; the threaded service's `shutdown()` joins every worker.
//! - **No leaked reservations**: the service-wide memory pool is back
//!   to zero bytes reserved after every scenario.
//! - **Every ticket resolves exactly once**: every submission reaches a
//!   terminal outcome and the report's outcome counts conserve.
//! - **Fault isolation**: queries the schedule never touched complete
//!   with results byte-identical to a fault-free baseline; a panicking
//!   or over-budget query fails *itself* (typed outcome), never the
//!   process or its neighbours.
//!
//! The fixed-seed tests run everywhere. Set `MORSEL_CHAOS_SEED=<n>` to
//! run an additional randomized schedule (CI passes a fresh seed per
//! run); the schedule is written to `target/chaos/fault_plan.txt`
//! before execution so a failing run leaves its `FaultPlan` behind as
//! an artifact.

use std::sync::{Arc, OnceLock};

use morsel_repro::core::{
    BuiltJob, ChunkMeta, FailReason, Fault, FaultPlan, FnStage, MemPool, Morsel, PipelineJob,
    QueryOutcome, Stage, TaskContext,
};
use morsel_repro::datagen::{SsbDb, TpchDb};
use morsel_repro::prelude::*;
use morsel_repro::queries::{format_rows, ssb_queries, tpch_queries};
use morsel_repro::service::{
    CacheDisposition, QueryRequest, QueryService, ServiceConfig, SqlSession,
};

// ------------------------------------------------------------ utilities

/// Deterministic schedule generator (no external RNG dependency).
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x2545_F491_4F6C_DD1D))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const TPCH_MIX: [usize; 4] = [1, 6, 13, 14];
const SSB_MIX: [&str; 2] = ["1.1", "2.1"];
const MIX_LEN: usize = TPCH_MIX.len() + SSB_MIX.len();

fn plan_for(tpch: &TpchDb, ssb: &SsbDb, mix: usize) -> Plan {
    if mix < TPCH_MIX.len() {
        tpch_queries::query(tpch, TPCH_MIX[mix])
    } else {
        ssb_queries::query(ssb, SSB_MIX[mix - TPCH_MIX.len()])
    }
}

fn sorted_rows(batch: &morsel_repro::storage::Batch) -> Vec<String> {
    let mut rows = format_rows(batch, usize::MAX);
    rows.sort();
    rows
}

/// The shared workload: tiny TPC-H + SSB instances and, for every mix
/// entry, the fault-free result (all aggregates in the mix are
/// integer-valued, so results are bit-stable across executors and
/// worker interleavings; rows are compared order-insensitively).
struct Workload {
    tpch: TpchDb,
    ssb: SsbDb,
    baseline: Vec<Vec<String>>,
}

fn workload() -> &'static Workload {
    static W: OnceLock<Workload> = OnceLock::new();
    W.get_or_init(|| {
        let topo = Topology::laptop();
        let tpch = generate_tpch(
            TpchConfig {
                scale: 0.001,
                ..Default::default()
            },
            &topo,
        );
        let ssb = generate_ssb(
            SsbConfig {
                scale: 0.001,
                ..Default::default()
            },
            &topo,
        );
        let env = ExecEnv::new(topo);
        let baseline = (0..MIX_LEN)
            .map(|m| {
                let out = run_sim(
                    &env,
                    "baseline",
                    plan_for(&tpch, &ssb, m),
                    SystemVariant::full(),
                    4,
                    2048,
                );
                sorted_rows(&out.result)
            })
            .collect();
        Workload {
            tpch,
            ssb,
            baseline,
        }
    })
}

/// Injected panics are expected here; keep them off the test output.
/// (The hook is process-global: worst case another test's panic message
/// is swallowed while a chaos scenario runs, which only affects
/// diagnostics, never outcomes.)
fn silenced<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

// --------------------------------------------------- simulator chaos

#[derive(Clone, Copy, Debug, PartialEq)]
enum Injected {
    None,
    Panic,
    Alloc,
    Delay,
    Cap,
}

/// One randomized simulator round: 8 queries, roughly half touched by a
/// fault. Returns nothing — panics on any invariant violation.
fn run_sim_chaos(seed: u64) {
    let w = workload();
    let mut rng = Lcg::new(seed);
    const N: usize = 8;

    let mut plan = FaultPlan::none();
    let mut queries = Vec::new();
    for i in 0..N {
        let name = format!("chaos-{seed}-{i}");
        let mix = rng.below(MIX_LEN as u64) as usize;
        let injected = match rng.below(10) {
            0 | 1 => {
                plan = plan.with(Fault::PanicAt {
                    query: name.clone(),
                    op: String::new(),
                    morsel: rng.below(4),
                });
                Injected::Panic
            }
            2 | 3 => {
                plan = plan.with(Fault::FailAlloc {
                    query: name.clone(),
                    alloc: rng.below(3),
                });
                Injected::Alloc
            }
            4 => {
                plan = plan.with(Fault::DelayMorsel {
                    query: name.clone(),
                    op: String::new(),
                    morsel: rng.below(6),
                    delay_ns: 1 + rng.below(1_000_000),
                });
                Injected::Delay
            }
            5 => Injected::Cap,
            _ => Injected::None,
        };
        queries.push((name, mix, injected));
    }

    let pool = MemPool::new(1 << 30);
    let env = ExecEnv::new(Topology::laptop())
        .with_fault_plan(plan)
        .with_mem_pool(Arc::clone(&pool));
    let mut sim = SimExecutor::new(env, DispatchConfig::new(8).with_morsel_size(2048));
    let mut slots = Vec::new();
    for (name, mix, injected) in &queries {
        let (mut spec, slot) = compile_query(
            name.clone(),
            plan_for(&w.tpch, &w.ssb, *mix),
            SystemVariant::full(),
        );
        if *injected == Injected::Cap {
            spec = spec.with_mem_cap(64);
        }
        sim.submit(spec);
        slots.push(slot);
    }
    // `run` itself asserts the no-deadlock invariant (event loop drains
    // with every query terminal).
    let report = silenced(|| sim.run());

    for ((name, mix, injected), slot) in queries.iter().zip(&slots) {
        let outcome = report
            .handle(name)
            .outcome()
            .unwrap_or_else(|| panic!("{name} did not resolve"));
        let check_baseline = || {
            let result = slot.lock().take().unwrap_or_default();
            assert_eq!(
                sorted_rows(&result),
                w.baseline[*mix],
                "{name} (mix {mix}, {injected:?}) diverged from the fault-free baseline",
            );
        };
        match injected {
            // Delays perturb the schedule, never the answer.
            Injected::None | Injected::Delay => {
                assert_eq!(outcome, QueryOutcome::Completed, "{name}: {outcome}");
                check_baseline();
            }
            // A panic fault fails its query unless the query finished
            // before the target morsel count was ever reached.
            Injected::Panic => match outcome {
                QueryOutcome::Failed(FailReason::OperatorPanic) => {}
                QueryOutcome::Completed => check_baseline(),
                other => panic!("{name}: panic fault produced {other}"),
            },
            // Allocation faults and starvation caps surface as typed
            // resource exhaustion (or don't fire at all on a query that
            // reserves little enough).
            Injected::Alloc | Injected::Cap => match outcome {
                QueryOutcome::Failed(FailReason::ResourceExhausted) => {}
                QueryOutcome::Completed => check_baseline(),
                other => panic!("{name}: {injected:?} fault produced {other}"),
            },
        }
    }
    assert_eq!(
        pool.reserved(),
        0,
        "seed {seed}: pool holds leaked reservations after drain"
    );
}

#[test]
fn sim_chaos_fixed_seeds() {
    for seed in [7, 19, 42, 1031, 65_537] {
        run_sim_chaos(seed);
    }
}

/// A panic injected *past* the query's deadline never fires: the
/// deadline sweep cancels and reaps the query first, so it resolves
/// `Cancelled` — not `Failed` — exactly once. The mirror fault placed
/// before the deadline resolves `Failed(OperatorPanic)`.
#[test]
fn deadline_beats_late_injected_panic_in_sim() {
    struct Spin;
    impl PipelineJob for Spin {
        fn run_morsel(&self, ctx: &mut TaskContext<'_>, m: Morsel) {
            ctx.cpu(m.rows() as u64, 10.0);
        }
    }
    let spec = |name: &str| {
        let stage: Box<dyn Stage> = Box::new(FnStage::new("spin", |_env, _w| {
            BuiltJob::new(
                "spin",
                Arc::new(Spin),
                vec![ChunkMeta {
                    node: SocketId(0),
                    rows: 1_000_000,
                }],
            )
        }));
        // ~10ms of virtual work against a 1ms deadline.
        QuerySpec::new(name, vec![stage], result_slot()).with_deadline_ns(1_000_000)
    };
    // Morsel 900 (size 1000 → ~9ms in) is far past the deadline; morsel
    // 5 (~50us) is far before it.
    let run = |name: &str, morsel: u64| -> QueryOutcome {
        let env = ExecEnv::new(Topology::laptop()).with_fault_plan(FaultPlan::none().with(
            Fault::PanicAt {
                query: name.to_owned(),
                op: String::new(),
                morsel,
            },
        ));
        let mut sim = SimExecutor::new(env, DispatchConfig::new(2).with_morsel_size(1_000));
        sim.submit(spec(name));
        let report = silenced(|| sim.run());
        let outcome = report.handle(name).outcome().expect("query resolved");
        // Exactly once: the outcome is stable on re-read.
        assert_eq!(report.handle(name).outcome(), Some(outcome));
        outcome
    };
    assert_eq!(run("late", 900), QueryOutcome::Cancelled);
    assert_eq!(
        run("early", 5),
        QueryOutcome::Failed(FailReason::OperatorPanic)
    );
}

// ----------------------------------------------- threaded service gate

/// The chaos acceptance gate on the real threaded service: 4 workers,
/// 30 queries — 10% with injected panics, 10% with starvation-level
/// memory caps, the rest untouched. Every unaffected query must
/// complete with a baseline-identical result, every ticket must
/// resolve, the failed queries must carry typed outcomes, and the pool
/// must drain to zero.
fn run_service_chaos(seed: u64, artifact: Option<&std::path::Path>) {
    let w = workload();
    let mut rng = Lcg::new(seed);
    const N: usize = 30;

    let mut plan = FaultPlan::none();
    let mut queries = Vec::new();
    for i in 0..N {
        let name = format!("svc-{seed}-{i}");
        let (mix, injected) = match i % 10 {
            // Injected panic at an early morsel: guaranteed to fire on
            // every query in the mix (all have ≥ 4 morsels at this
            // scale and morsel size).
            0 => {
                plan = plan.with(Fault::PanicAt {
                    query: name.clone(),
                    op: String::new(),
                    morsel: rng.below(4),
                });
                (rng.below(MIX_LEN as u64) as usize, Injected::Panic)
            }
            // A 64-byte cap on TPC-H Q1 (which must materialize far
            // more): guaranteed resource exhaustion.
            5 => (0, Injected::Cap),
            _ => (rng.below(MIX_LEN as u64) as usize, Injected::None),
        };
        queries.push((name, mix, injected));
    }

    if let Some(path) = artifact {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = std::fs::write(
            path,
            format!(
                "seed: {seed}\nMORSEL_FAULT_PLAN={plan}\ncaps: {}\n",
                queries
                    .iter()
                    .filter(|(_, _, i)| *i == Injected::Cap)
                    .map(|(n, _, _)| format!("{n}=64B"))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        );
    }

    let pool = MemPool::new(1 << 30);
    let env = ExecEnv::new(Topology::laptop())
        .with_fault_plan(plan)
        .with_mem_pool(Arc::clone(&pool));
    let service = QueryService::start(
        env,
        ServiceConfig::new(4)
            .with_morsel_size(2048)
            .with_max_in_flight(8)
            .with_max_queue(N),
    );

    let outcome = silenced(|| {
        let tickets: Vec<_> = queries
            .iter()
            .map(|(name, mix, injected)| {
                let (spec, slot) = compile_query(
                    name.clone(),
                    plan_for(&w.tpch, &w.ssb, *mix),
                    SystemVariant::full(),
                );
                let mut request = QueryRequest::new(spec);
                if *injected == Injected::Cap {
                    request = request.with_mem_cap(64);
                }
                (service.submit(request), slot)
            })
            .collect();

        for ((name, mix, injected), (ticket, slot)) in queries.iter().zip(&tickets) {
            let report = ticket.wait();
            match injected {
                Injected::None => {
                    assert_eq!(
                        report.outcome,
                        QueryOutcome::Completed,
                        "untouched {name} did not complete: {}",
                        report.outcome
                    );
                    let result = slot.lock().take().unwrap_or_default();
                    assert_eq!(
                        sorted_rows(&result),
                        w.baseline[*mix],
                        "untouched {name} (mix {mix}) diverged from baseline"
                    );
                }
                Injected::Panic => assert_eq!(
                    report.outcome,
                    QueryOutcome::Failed(FailReason::OperatorPanic),
                    "{name}: {}",
                    report.outcome
                ),
                Injected::Cap => assert_eq!(
                    report.outcome,
                    QueryOutcome::Failed(FailReason::ResourceExhausted),
                    "{name}: {}",
                    report.outcome
                ),
                other => unreachable!("{other:?} not used in the service gate"),
            }
        }
        service.shutdown()
    });

    let touched = queries
        .iter()
        .filter(|(_, _, i)| *i != Injected::None)
        .count() as u64;
    assert_eq!(outcome.totals.total(), N as u64, "ticket conservation");
    assert_eq!(outcome.completed(), N as u64 - touched);
    assert_eq!(outcome.failed(), touched);
    assert_eq!(outcome.rejected() + outcome.cancelled(), 0);
    assert_eq!(outcome.worker_panics, 0, "a worker thread died");
    assert_eq!(
        pool.reserved(),
        0,
        "seed {seed}: pool holds leaked reservations after shutdown"
    );
}

#[test]
fn service_chaos_gate_fixed_seed() {
    run_service_chaos(0xC0FFEE, None);
}

// ------------------------------------------------- cached-plan chaos

/// Faults injected into a *cached-plan* execution: the plan cache must
/// never retain a poisoned entry, reservations release exactly once,
/// and a later hit on the same shape succeeds. Covers both failure
/// classes — an injected operator panic and a starvation-level memory
/// cap (typed `ResourceExhausted`).
#[test]
fn poisoned_cached_plans_are_evicted_and_recover() {
    let w = workload();
    // The fault targets the submission *named* "poison", which is the
    // second execution of its shape — i.e. it runs a cache hit.
    let plan = FaultPlan::none().with(Fault::PanicAt {
        query: "poison".to_owned(),
        op: String::new(),
        morsel: 0,
    });
    let pool = MemPool::new(1 << 30);
    let env = ExecEnv::new(Topology::laptop())
        .with_fault_plan(plan)
        .with_mem_pool(Arc::clone(&pool));
    let service = QueryService::start(
        env,
        ServiceConfig::new(4)
            .with_morsel_size(2048)
            .with_max_in_flight(4)
            .with_max_queue(16),
    );
    let topo = Topology::laptop();
    // Deliberately the raw session, not `Session::builder()`: this suite
    // asserts on the cache dispositions of *failed* executions, which
    // the facade folds into errors.
    #[allow(deprecated)]
    let session = SqlSession::for_service(
        &service,
        w.tpch.catalog(),
        Planner::new(&topo),
        SystemVariant::full(),
    );
    let sql = "SELECT COUNT(*) AS n, SUM(l_quantity) AS qty \
               FROM lineitem WHERE l_quantity < 30";
    // TPC-H Q1 for the memory-cap leg: its aggregation state cannot fit
    // a 64-byte reservation budget, so exhaustion is guaranteed.
    let q1 = morsel_repro::queries::tpch_sql::text(1).unwrap();

    let report = silenced(|| {
        let run = |name: &str, text: &str| session.execute(&service, name, text).unwrap();

        let warm = run("warm", sql);
        assert_eq!(warm.report.outcome, QueryOutcome::Completed);
        assert_eq!(warm.plan_cache, CacheDisposition::Miss);
        let baseline = warm.rows.expect("warm run returns rows");

        // The hit that dies mid-flight.
        let poison = run("poison", sql);
        assert_eq!(poison.plan_cache, CacheDisposition::Hit);
        assert_eq!(
            poison.report.outcome,
            QueryOutcome::Failed(FailReason::OperatorPanic),
            "{}",
            poison.report.outcome
        );
        assert!(poison.rows.is_none());
        assert_eq!(session.stats().plan_poisoned, 1);
        assert_eq!(pool.reserved(), 0, "panic leg leaked a reservation");

        // The poisoned entry is gone: cold replan, then hits again.
        let recover = run("recover", sql);
        assert_eq!(recover.plan_cache, CacheDisposition::Miss);
        assert_eq!(recover.report.outcome, QueryOutcome::Completed);
        assert_eq!(recover.rows.as_ref(), Some(&baseline));
        let rehit = run("rehit", sql);
        assert_eq!(rehit.plan_cache, CacheDisposition::Hit);
        assert_eq!(rehit.rows.as_ref(), Some(&baseline));

        // Resource exhaustion on a warmed shape behaves the same way.
        let warm_q1 = run("warm-q1", q1);
        assert_eq!(warm_q1.report.outcome, QueryOutcome::Completed);
        let squeeze = session
            .execute_with(&service, "squeeze", q1, |r| r.with_mem_cap(64))
            .unwrap();
        assert_eq!(squeeze.plan_cache, CacheDisposition::Hit);
        assert_eq!(
            squeeze.report.outcome,
            QueryOutcome::Failed(FailReason::ResourceExhausted),
            "{}",
            squeeze.report.outcome
        );
        assert_eq!(session.stats().plan_poisoned, 2);
        assert_eq!(pool.reserved(), 0, "cap leg leaked a reservation");
        let recover_q1 = run("recover-q1", q1);
        assert_eq!(recover_q1.plan_cache, CacheDisposition::Miss);
        assert_eq!(recover_q1.report.outcome, QueryOutcome::Completed);

        service.shutdown()
    });

    assert_eq!(report.totals.total(), 7, "ticket conservation");
    assert_eq!(report.completed(), 5);
    assert_eq!(report.failed(), 2);
    assert_eq!(report.worker_panics, 0, "a worker thread died");
    assert_eq!(pool.reserved(), 0, "pool holds leaked reservations");
}

/// The result cache under a fault: a cold execution that fails must not
/// seed the cache, the retry repopulates it, and only then does a
/// repeat get served from memory.
#[test]
fn result_cache_never_retains_a_poisoned_entry() {
    let w = workload();
    let plan = FaultPlan::none().with(Fault::PanicAt {
        query: "cold".to_owned(),
        op: String::new(),
        morsel: 0,
    });
    let pool = MemPool::new(1 << 30);
    let env = ExecEnv::new(Topology::laptop())
        .with_fault_plan(plan)
        .with_mem_pool(Arc::clone(&pool));
    let service = QueryService::start(
        env,
        ServiceConfig::new(4)
            .with_morsel_size(2048)
            .with_max_in_flight(4)
            .with_max_queue(16),
    );
    let topo = Topology::laptop();
    #[allow(deprecated)]
    let session = SqlSession::for_service(
        &service,
        w.tpch.catalog(),
        Planner::new(&topo),
        SystemVariant::full(),
    )
    .with_result_caching(true);
    let sql = "SELECT SUM(l_extendedprice) AS total \
               FROM lineitem WHERE l_quantity < 20";

    let report = silenced(|| {
        let cold = session.execute(&service, "cold", sql).unwrap();
        assert_eq!(cold.result_cache, CacheDisposition::Miss);
        assert_eq!(
            cold.report.outcome,
            QueryOutcome::Failed(FailReason::OperatorPanic)
        );
        assert_eq!(pool.reserved(), 0, "failed run leaked a reservation");

        // Nothing was cached by the failure: this is a miss that runs
        // for real (the injected fault only targeted "cold").
        let retry = session.execute(&service, "retry", sql).unwrap();
        assert_eq!(retry.result_cache, CacheDisposition::Miss);
        assert_eq!(retry.plan_cache, CacheDisposition::Miss, "plan was evicted");
        assert_eq!(retry.report.outcome, QueryOutcome::Completed);
        let rows = retry.rows.expect("retry returns rows");

        let served = session.execute(&service, "served", sql).unwrap();
        assert_eq!(served.result_cache, CacheDisposition::Hit);
        assert_eq!(served.report.outcome, QueryOutcome::Completed);
        assert_eq!(served.rows.as_ref(), Some(&rows));

        service.shutdown()
    });

    assert_eq!(report.totals.total(), 3, "ticket conservation");
    assert_eq!(report.completed(), 2);
    assert_eq!(report.failed(), 1);
    assert_eq!(report.cache.result_hits, 1);
    assert_eq!(report.cache.plan_poisoned, 1);
    assert_eq!(pool.reserved(), 0, "pool holds leaked reservations");
}

/// Opt-in randomized round (CI runs one per build with a fresh seed).
/// The generated schedule is persisted before execution so a failure
/// leaves `target/chaos/fault_plan.txt` behind for reproduction.
#[test]
fn service_chaos_randomized() {
    let Ok(seed) = std::env::var("MORSEL_CHAOS_SEED") else {
        return;
    };
    let seed: u64 = seed
        .trim()
        .parse()
        .expect("MORSEL_CHAOS_SEED must be an integer");
    let artifact = std::path::Path::new("target/chaos/fault_plan.txt");
    run_service_chaos(seed, Some(artifact));
}
