//! Black-box snapshot-isolation acceptance gate (after the checker of
//! arXiv 2301.07313): generate LCG-seeded random concurrent histories,
//! run them against the engine, and ask the checker whether a valid
//! snapshot point exists for every committed transaction.
//!
//! Two directions:
//! - **soundness of the engine** — ≥256 random histories on each
//!   executor (deterministic simulator and 4 real worker threads) must
//!   all pass the checker;
//! - **teeth of the checker** — an engine with one isolation rule
//!   deliberately broken (`SiMode`) must produce at least one flagged
//!   history within a modest seed budget, for every broken mode.

use morsel_repro::txn::{
    check_history, kv_relation, run_history, ExecMode, HistorySpec, SiMode, TxnDb, TxnDbConfig,
};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "morsel-si-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn db_with_mode(dir: &std::path::Path, keys: i64, mode: SiMode) -> TxnDb {
    TxnDb::create_with(
        dir,
        vec![("kv", kv_relation(keys))],
        TxnDbConfig {
            mode,
            ..TxnDbConfig::default()
        },
    )
    .expect("create")
}

/// Run `count` seeded histories on `mode`'s executor against a correct
/// engine; panic on the first checker violation.
fn assert_histories_pass(tag: &str, exec: ExecMode, seeds: std::ops::Range<u64>) {
    let count = (seeds.end - seeds.start) as usize;
    let mut committed_total = 0usize;
    for seed in seeds {
        let spec = HistorySpec::small(seed);
        let dir = tmpdir(&format!("{tag}-{seed}"));
        let db = db_with_mode(&dir, spec.keys, SiMode::Correct);
        let h = run_history(&db, &spec, exec);
        committed_total += h.txns.iter().filter(|t| t.committed).count();
        if let Err(v) = check_history(&h) {
            panic!("{tag}: seed {seed} flagged a correct engine: {v:#?}");
        }
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    // The sweep must actually exercise concurrency, not vacuously pass
    // over empty histories.
    assert!(
        committed_total >= count * 2,
        "{tag}: histories too trivial ({committed_total} commits over {count} seeds)"
    );
}

#[test]
fn sim_executor_passes_256_random_histories() {
    assert_histories_pass("sim", ExecMode::Sim, 0..256);
}

#[test]
fn threaded_executor_passes_256_random_histories() {
    assert_histories_pass("threaded", ExecMode::Threaded(4), 1000..1256);
}

/// A broken engine must be caught within this many seeds. Contention is
/// raised over `HistorySpec::small` so every broken rule gets a chance
/// to bite (more clients and ops over fewer keys).
fn broken_mode_is_flagged(mode: SiMode, tag: &str) {
    const SEED_BUDGET: u64 = 64;
    for seed in 0..SEED_BUDGET {
        let spec = HistorySpec {
            clients: 4,
            txns_per_client: 4,
            keys: 2,
            ops_per_txn: 4,
            ..HistorySpec::small(seed)
        };
        let dir = tmpdir(&format!("broken-{tag}-{seed}"));
        let db = db_with_mode(&dir, spec.keys, mode);
        let h = run_history(&db, &spec, ExecMode::Sim);
        let verdict = check_history(&h);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
        if verdict.is_err() {
            return;
        }
    }
    panic!(
        "{tag}: no history flagged in {SEED_BUDGET} seeds — the checker has no teeth for {mode:?}"
    );
}

#[test]
fn read_latest_mode_is_caught() {
    broken_mode_is_flagged(SiMode::ReadLatest, "read-latest");
}

#[test]
fn ww_blind_mode_is_caught() {
    broken_mode_is_flagged(SiMode::WwBlind, "ww-blind");
}

#[test]
fn reuse_commit_ts_mode_is_caught() {
    broken_mode_is_flagged(SiMode::ReuseCommitTs, "reuse-commit-ts");
}
