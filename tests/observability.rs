//! Observability regression gates: the threaded executor's span
//! recording and the per-operator runtime profile.
//!
//! The trace test is the satellite bar from the profiling PR: a 4-worker
//! threaded run must emit at least one [`SpanKind::Pipeline`] span for
//! every `(query, pipeline job, worker)` combination that appears in the
//! morsel spans — i.e. every worker that participated in a pipeline gets
//! a coalesced pipeline span, and every morsel span nests inside one.

use std::sync::Arc;

use morsel_repro::core::{SpanKind, TraceRecorder};
use morsel_repro::prelude::*;
use morsel_repro::queries::{run_sim, run_threaded, tpch_queries};

#[test]
fn four_worker_trace_has_pipeline_spans_for_every_participant() {
    let topo = Topology::laptop();
    let env = ExecEnv::new(topo.clone());
    let db = generate_tpch(TpchConfig::scaled(0.005), &topo);
    let workers = 4;
    let variant = SystemVariant::full();
    let config = DispatchConfig::new(workers)
        .with_mode(variant.mode(workers))
        .with_morsel_size(512);
    let recorder = Arc::new(TraceRecorder::new());
    let exec = ThreadedExecutor::new(env, config).with_trace(Arc::clone(&recorder));
    // Q13 (join + aggregation + sort) exercises several pipelines; Q6 adds
    // a second concurrent query so spans interleave across queries too.
    let (s13, _r13) = compile_query("q13", tpch_queries::query(&db, 13), variant);
    let (s6, _r6) = compile_query("q6", tpch_queries::query(&db, 6), variant);
    let handles = exec.run(vec![s13, s6]);
    assert!(handles.iter().all(|h| h.is_done()));

    let events = recorder.take();
    let queries: Vec<&str> = {
        let mut qs: Vec<&str> = events
            .iter()
            .filter(|e| e.kind == SpanKind::Query)
            .map(|e| e.query.as_str())
            .collect();
        qs.sort_unstable();
        qs
    };
    assert_eq!(queries, ["q13", "q6"], "one query span per query");

    let morsels: Vec<_> = events
        .iter()
        .filter(|e| e.kind == SpanKind::Morsel)
        .collect();
    let pipelines: Vec<_> = events
        .iter()
        .filter(|e| e.kind == SpanKind::Pipeline)
        .collect();
    assert!(!morsels.is_empty(), "threaded run recorded no morsel spans");
    assert!(!pipelines.is_empty(), "no pipeline spans recorded");

    // Every (query, job, worker) that executed morsels has >= 1 pipeline
    // span, and every morsel span nests inside one of its pipeline spans.
    let mut participants: Vec<(&str, &str, usize)> = morsels
        .iter()
        .map(|m| (m.query.as_str(), m.job.as_str(), m.worker))
        .collect();
    participants.sort_unstable();
    participants.dedup();
    assert!(
        participants.len() > 1,
        "expected several (query, job, worker) participants, got {participants:?}"
    );
    for (query, job, worker) in &participants {
        assert!(
            pipelines
                .iter()
                .any(|p| p.query == *query && p.job == *job && p.worker == *worker),
            "no pipeline span for query={query} job={job} worker={worker}"
        );
    }
    for m in &morsels {
        assert!(
            pipelines.iter().any(|p| {
                p.query == m.query
                    && p.job == m.job
                    && p.worker == m.worker
                    && p.start_ns <= m.start_ns
                    && m.end_ns <= p.end_ns
            }),
            "morsel span {}/{} on worker {} at [{}, {}] not nested in any pipeline span",
            m.query,
            m.job,
            m.worker,
            m.start_ns,
            m.end_ns,
        );
    }

    // Spans are well-formed and within the query envelope.
    for e in &events {
        assert!(e.start_ns <= e.end_ns, "inverted span {e:?}");
    }
}

#[test]
fn threaded_and_sim_profiles_agree_on_actual_rows() {
    // The profile rides the same slots in both executors; actual row
    // counts are execution-order invariant, so the two must agree.
    let topo = Topology::laptop();
    let env = ExecEnv::new(topo.clone());
    let db = generate_tpch(TpchConfig::scaled(0.002), &topo);
    for q in [1usize, 6, 13] {
        let sim = run_sim(
            &env,
            &format!("q{q}-sim"),
            tpch_queries::query(&db, q),
            SystemVariant::full(),
            4,
            1024,
        );
        let thr = run_threaded(
            &env,
            &format!("q{q}-thr"),
            tpch_queries::query(&db, q),
            SystemVariant::full(),
            4,
            1024,
        );
        let (sp, tp) = (sim.profile.unwrap(), thr.profile.unwrap());
        assert_eq!(sp.actual_rows(), tp.actual_rows(), "Q{q} actuals diverge");
        let labels: Vec<&str> = sp.ops.iter().map(|o| o.label.as_str()).collect();
        let tlabels: Vec<&str> = tp.ops.iter().map(|o| o.label.as_str()).collect();
        assert_eq!(labels, tlabels, "Q{q} operator labels diverge");
    }
}

#[test]
fn profiling_off_yields_no_profile_and_same_results() {
    let topo = Topology::laptop();
    let env = ExecEnv::new(topo.clone());
    let db = generate_tpch(TpchConfig::scaled(0.002), &topo);
    let off = SystemVariant {
        profiling: false,
        ..SystemVariant::full()
    };
    let with = run_sim(
        &env,
        "q1-on",
        tpch_queries::query(&db, 1),
        SystemVariant::full(),
        8,
        1024,
    );
    let without = run_sim(&env, "q1-off", tpch_queries::query(&db, 1), off, 8, 1024);
    assert!(with.profile.is_some(), "profiling on must attach a profile");
    assert!(
        without.profile.is_none(),
        "profiling off must not allocate slots"
    );
    assert_eq!(
        with.result, without.result,
        "profiling must not change query results"
    );
}
