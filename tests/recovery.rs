//! The crash-recovery acceptance gate: for **every WAL record
//! boundary** in a seeded 200-transaction workload, killing the engine
//! there (via the chaos grammar's `crash@lsn#n` fault) and recovering
//! must yield committed state identical to an uncrashed oracle run of
//! exactly the acknowledged prefix — with zero leaked memory
//! reservations at every step.
//!
//! The oracle is cheap because the workload is prefix-deterministic
//! (see `morsel_txn::workload`): one uncrashed pass, snapshotting
//! logical state after every commit, yields the expected state for
//! *any* crash point. The sweep then replays the workload once per
//! boundary under an injected fault and compares the recovered state
//! against the snapshot at its acknowledged commit count.

use std::sync::Arc;

use morsel_repro::core::{FaultPlan, MemPool};
use morsel_repro::storage::Batch;
use morsel_repro::txn::{kv_relation, run_step, skip_step, Lcg, TxnDb, TxnDbConfig, WorkloadSpec};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "morsel-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn pooled_config(pool: &Arc<MemPool>) -> TxnDbConfig {
    TxnDbConfig {
        pool: Some(Arc::clone(pool)),
        ..TxnDbConfig::default()
    }
}

const SEED: u64 = 0xC0FFEE;
const TXNS: usize = 200;
const KEYS: i64 = 16;

#[test]
fn crash_sweep_recovers_every_wal_boundary() {
    let spec = WorkloadSpec::new(SEED, TXNS, KEYS);

    // Uncrashed oracle pass: snapshot the committed logical state after
    // every acknowledged commit. states[k] is the expected state of any
    // run that acked exactly k commits.
    let oracle_pool = MemPool::new(256 << 20);
    let oracle_dir = tmpdir("oracle");
    let oracle = TxnDb::create_with(
        &oracle_dir,
        vec![("kv", kv_relation(KEYS))],
        pooled_config(&oracle_pool),
    )
    .expect("oracle create");
    let mut states: Vec<Vec<(String, Batch)>> = Vec::with_capacity(TXNS + 1);
    states.push(oracle.logical_state());
    let mut rng = Lcg(spec.seed);
    for i in 0..TXNS {
        assert!(
            run_step(&oracle, &spec, &mut rng, i),
            "oracle commit {i} must be acknowledged"
        );
        states.push(oracle.logical_state());
    }
    let total_records = oracle.wal_stats().next_lsn - 1;
    assert!(
        total_records > TXNS as u64,
        "each commit logs its row ops plus a Commit marker"
    );
    drop(oracle);
    assert_eq!(oracle_pool.reserved(), 0, "oracle leaked reservations");
    let _ = std::fs::remove_dir_all(&oracle_dir);

    // The sweep: crash immediately before writing WAL record L, for
    // every L. A crash can land mid-batch (between a transaction's row
    // ops and its Commit marker) — recovery must discard the torn
    // transaction. Everything the client was told is durable must
    // survive, nothing more may appear.
    for crash_lsn in 1..=total_records {
        let plan: FaultPlan = format!("crash@lsn#{crash_lsn}")
            .parse()
            .expect("chaos grammar accepts crash@lsn");
        let pool = MemPool::new(256 << 20);
        let dir = tmpdir(&format!("sweep-{crash_lsn}"));
        let victim = TxnDb::create_with(
            &dir,
            vec![("kv", kv_relation(KEYS))],
            TxnDbConfig {
                faults: plan.wal_faults(),
                ..pooled_config(&pool)
            },
        )
        .expect("victim create");
        let acked = morsel_repro::txn::run_seeded(&victim, &spec, spec.txns);
        assert!(
            victim.is_poisoned(),
            "crash@lsn#{crash_lsn} must poison the engine"
        );
        assert!(
            (acked as u64) < crash_lsn,
            "crash@lsn#{crash_lsn}: acked {acked} commits but only \
             {crash_lsn} records could have been written"
        );
        drop(victim);
        assert_eq!(
            pool.reserved(),
            0,
            "crash@lsn#{crash_lsn}: victim leaked reservations"
        );

        let recovered =
            TxnDb::open_with(&dir, vec![("kv", kv_relation(KEYS))], pooled_config(&pool))
                .expect("recovery succeeds");
        assert_eq!(
            recovered.logical_state(),
            states[acked],
            "crash@lsn#{crash_lsn}: recovered state diverges from the \
             oracle prefix of {acked} commits"
        );
        drop(recovered);
        assert_eq!(
            pool.reserved(),
            0,
            "crash@lsn#{crash_lsn}: recovered engine leaked reservations"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A recovered engine is not a dead end: it accepts the remainder of
/// the stream and converges to the uncrashed oracle's final state.
#[test]
fn recovered_engine_resumes_the_stream_to_the_oracle_state() {
    let spec = WorkloadSpec::new(SEED, TXNS, KEYS);
    let oracle_dir = tmpdir("resume-oracle");
    let oracle =
        TxnDb::create(&oracle_dir, vec![("kv", kv_relation(KEYS))]).expect("oracle create");
    assert_eq!(
        morsel_repro::txn::run_seeded(&oracle, &spec, spec.txns),
        TXNS
    );

    // Crash mid-stream, recover, and resume from the acked prefix by
    // fast-forwarding a fresh rng over the transactions that survived.
    let crash_lsn = (TXNS / 2) as u64;
    let plan: FaultPlan = format!("crash@lsn#{crash_lsn}").parse().unwrap();
    let dir = tmpdir("resume-victim");
    let victim = TxnDb::create_with(
        &dir,
        vec![("kv", kv_relation(KEYS))],
        TxnDbConfig {
            faults: plan.wal_faults(),
            ..TxnDbConfig::default()
        },
    )
    .expect("victim create");
    let acked = morsel_repro::txn::run_seeded(&victim, &spec, spec.txns);
    drop(victim);

    let recovered = TxnDb::open(&dir, vec![("kv", kv_relation(KEYS))]).expect("recovery");
    let mut rng = Lcg(spec.seed);
    for i in 0..acked {
        skip_step(&mut rng, &spec, i);
    }
    for i in acked..TXNS {
        assert!(
            run_step(&recovered, &spec, &mut rng, i),
            "resumed commit {i} must be acknowledged"
        );
    }
    assert_eq!(
        morsel_repro::txn::diff_logical_state(&recovered, &oracle),
        None,
        "resumed run must converge to the uncrashed oracle"
    );
    for d in [oracle_dir, dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}
